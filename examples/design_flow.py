#!/usr/bin/env python3
"""Run the Figure 4-1 design methodology end to end.

Executes every subtask of the paper's task dependency graph in order --
algorithm design through cell boundary layouts -- with each step
producing its real artifact, and writes the resulting chip as a CIF file
ready for (1979) mask making.
"""

import os

from repro.methodology import DesignFlow, FIGURE_4_1
from repro.methodology.tasks import figure_4_1_graph

OUTPUT = "prototype_chip.cif"


def main():
    graph = figure_4_1_graph()
    print("Figure 4-1 task dependency graph")
    for wave_no, wave in enumerate(graph.parallel_schedule()):
        print(f"  wave {wave_no}: {', '.join(wave)}")
    path, weeks = graph.critical_path()
    print(f"  critical path: {' -> '.join(path)} ({weeks} weeks)\n")

    flow = DesignFlow(columns=8, char_bits=2)  # the Plate 2 configuration
    for task in graph.topological_order():
        spec = next(s for s in FIGURE_4_1 if s.name == task)
        print(f"running {task:<24} -- {spec.description}")
        flow.artifacts[task] = flow._runners[task]()

    final = flow.artifacts["cell_boundary_layouts"]
    area = final["area"]
    print(f"\nchip: {area['cells']} cells, {area['pads']} pads, "
          f"die {area['die_area_mm2']:.1f} mm^2 at lambda = 2.5 um")

    with open(OUTPUT, "w") as f:
        f.write(final["cif"])
    print(f"wrote {OUTPUT} ({os.path.getsize(OUTPUT)} bytes of CIF)")

    sticks = flow.artifacts["cell_sticks"][("comparator", True)]
    print("\npositive comparator stick diagram (excerpt):")
    excerpt = sticks.render().splitlines()
    for line in excerpt[:2] + excerpt[-14:]:
        print("  " + line[:100])


if __name__ == "__main__":
    main()
