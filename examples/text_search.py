#!/usr/bin/env python3
"""Office-automation text search (the Warter & Mules motivation).

The paper cites string-matching hardware "proposed for use in office
automation systems".  This example plays that scenario: a stream of
document text searched for wildcard queries on a cascade of pattern
matching chips, with the host's naive software matcher timed for
comparison under the 1979 cost model.
"""

import time

from repro import ASCII_UPPER, match_oracle, parse_pattern
from repro.baselines.naive import OpCounter, naive_match
from repro.chip import ChipCascade
from repro.chip.chip import ChipSpec
from repro.host.bus import HostSpec

DOCUMENT = (
    "THE TIME TO DESIGN SPECIAL PURPOSE CHIPS HAS COME "
    "SYSTOLIC ALGORITHMS PUMP DATA THROUGH SIMPLE CELLS "
    "THE PATTERN MATCHING CHIP FINDS PATTERNS AT FOUR MEGACHARACTERS "
    "PER SECOND WHICH IS FASTER THAN THE HOST MEMORY CAN SUPPLY THEM "
) * 4

#: Queries with wild cards: "?" matches any character (X itself is a
#: letter of this alphabet, so the paper's X cannot serve as the marker).
QUERIES = ["CHIP", "P?TTERN", "S?STOLIC", "THE TIME", "MEG?CHARACTERS"]


def main():
    spec = ChipSpec(n_cells=8, char_bits=5, beat_ns=250.0)
    cascade = ChipCascade(spec, n_chips=2, alphabet=ASCII_UPPER)  # 16 cells
    host = HostSpec()

    print(f"document: {len(DOCUMENT)} characters; "
          f"cascade capacity {cascade.capacity} characters\n")

    for query in QUERIES:
        cascade.load_pattern(query, wildcard_symbol="?")
        t0 = time.perf_counter()
        results = cascade.match(DOCUMENT)
        sim_s = time.perf_counter() - t0

        pcs = parse_pattern(query, ASCII_UPPER, wildcard_symbol="?")
        assert results == match_oracle(pcs, list(DOCUMENT))
        counter = OpCounter()
        naive_match(pcs, list(DOCUMENT), counter)

        k = len(query) - 1
        starts = [i - k for i, r in enumerate(results) if r]
        chip_us = cascade.beats_for_text(len(DOCUMENT)) * spec.beat_ns / 1000
        sw_us = host.software_match_time_ns(len(DOCUMENT), len(query)) / 1000
        print(f"query {query!r:>18}: {len(starts):2d} hits at {starts[:6]}"
              f"{'...' if len(starts) > 6 else ''}")
        print(f"{'':>20} chip {chip_us:8.1f} us | 1979 host software "
              f"{sw_us:8.1f} us ({counter.comparisons} comparisons) "
              f"| sim wall {sim_s*1e3:.0f} ms")


if __name__ == "__main__":
    main()
