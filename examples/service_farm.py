#!/usr/bin/env python3
"""The matcher farm: many clients, one pool of imperfect chips.

Harvests a worker pool from four simulated wafers (one degraded by a
targeted defect, one dead on arrival), then serves a mixed workload from
three tenants -- interactive queries, batch scans, patterns longer than
any single worker (multipass), and one text wide enough to shard across
the pool -- under seeded fault injection.  Every answer is checked
against the Section 3.1 oracle before the farm's telemetry is printed.
"""

import random

from repro import Alphabet, match_oracle, parse_pattern
from repro.host.bus import HostSpec
from repro.service import (
    FaultInjector,
    MatcherService,
    Priority,
    SchedulerConfig,
    pool_from_wafers,
)
from repro.wafer.wafer import Wafer


def main():
    ab = Alphabet("ABCD")
    rng = random.Random(1980)

    # Four wafers off the line: two clean, one with a defect cluster
    # (degraded worker), one unharvestable (dead worker).
    degraded = Wafer(2, 8)
    for col in (2, 5, 6):
        degraded.mark_defective(0, col)
    dead = Wafer(1, 6)
    for col in range(6):
        dead.mark_defective(0, col)
    pool = pool_from_wafers([Wafer(2, 8), Wafer(2, 8), degraded, dead], ab)
    for w in pool:
        print(f"  {w!r}")

    # A mainframe-class host: the farm, not the bus, sets the pace.
    svc = MatcherService(
        pool,
        host=HostSpec(name="mainframe", memory_cycle_ns=100.0, bytes_per_word=8),
        config=SchedulerConfig(
            queue_capacity=32,
            wide_text_threshold=120,
            min_shard_chars=32,
            max_retries=1,
        ),
        faults=FaultInjector(seed=7, p_death=0.04, p_stuck=0.12),
    )

    def text(n):
        return "".join(rng.choice("ABCD") for _ in range(n))

    jobs = {}
    # One wide scan submitted to the idle farm -- sharded across workers.
    wide = ("ABXA", text(400))
    jobs[svc.submit(*wide, tenant="search", priority=Priority.BATCH)] = wide
    svc.drain()
    # A pattern longer than any worker's cells -- multipass.
    long = ("ABCDABCDABCDABCDABC", text(120))
    jobs[svc.submit(*long, tenant="genomics")] = long
    # A burst of interactive lookups from three tenants.
    for i in range(18):
        pattern = "".join(rng.choice("ABCDX") for _ in range(rng.randint(2, 8)))
        query = (pattern, text(rng.randint(20, 100)))
        jid = svc.submit(*query, tenant=("search", "genomics", "logs")[i % 3],
                         priority=Priority.INTERACTIVE)
        jobs[jid] = query

    results = {r.job_id: r for r in svc.drain()}
    for jid, (pattern, t) in jobs.items():
        want = match_oracle(parse_pattern(pattern, ab), list(t))
        assert results[jid].results == want, f"job {jid} diverged from oracle"
    print(f"\n{len(results)} jobs served, all oracle-verified; modes used: "
          f"{sorted({r.mode for r in results.values()})}")
    retried = [r for r in results.values() if r.attempts]
    if retried:
        print(f"{len(retried)} job(s) survived a worker death via retry")

    beat_ns = svc.beat_ns
    interactive = [r for r in results.values()
                   if r.priority is Priority.INTERACTIVE]
    batch = [r for r in results.values() if r.priority is Priority.BATCH]
    mean = lambda xs: sum(xs) / len(xs) if xs else 0.0
    print(f"mean interactive latency: "
          f"{mean([r.latency_beats for r in interactive]) * beat_ns / 1000:.1f} us")
    print(f"mean batch latency:       "
          f"{mean([r.latency_beats for r in batch]) * beat_ns / 1000:.1f} us")
    rate = svc.telemetry.aggregate_chars_per_s(beat_ns)
    print(f"aggregate throughput:     {rate / 1e6:.2f} Mchar/s\n")
    print(svc.report())


if __name__ == "__main__":
    main()
