#!/usr/bin/env python3
"""Pulse-echo detection with the Section 3.4 correlation machine.

"A problem of more practical interest is the computation of
correlations."  A known pulse shape is buried in a noisy received
signal; the correlation machine -- the pattern matcher with its
comparator swapped for a difference cell and its accumulator for an
adder -- computes the squared distance of every window to the pulse,
and the echoes appear as sharp minima.
"""

import numpy as np

from repro.extensions import CorrelationMachine, systolic_fir

PULSE = [0.0, 0.9, 1.0, 0.4, -0.5, -1.0, -0.3, 0.2]
ECHO_POSITIONS = [40, 105, 180]
NOISE = 0.15
N_SAMPLES = 256


def build_signal(rng):
    signal = rng.normal(0.0, NOISE, N_SAMPLES)
    for pos in ECHO_POSITIONS:
        signal[pos : pos + len(PULSE)] += PULSE
    return signal


def main():
    rng = np.random.default_rng(1979)
    signal = build_signal(rng)

    machine = CorrelationMachine(PULSE)
    scores = np.array(machine.correlate(list(signal)))
    k = len(PULSE) - 1

    # Detect echoes: local minima of the squared distance, thresholded.
    threshold = np.median(scores[k:]) * 0.35
    detected = [
        int(i) - k
        for i in range(k, N_SAMPLES)
        if scores[i] < threshold
        and scores[i] == min(scores[max(k, i - 4) : i + 5])
    ]

    print(f"pulse of {len(PULSE)} samples; echoes planted at {ECHO_POSITIONS}")
    print(f"correlation machine detected starts at {detected}")
    assert detected == ECHO_POSITIONS, "detection failed"

    # Bonus: the same data flow runs an FIR smoother over the scores.
    smooth = systolic_fir([0.25, 0.5, 0.25], list(scores[k:]))
    print(f"FIR-smoothed score minimum: {min(smooth):.3f} "
          f"(raw minimum {scores[k:].min():.3f})")

    # A crude terminal plot of the match score (lower = better match).
    print("\nsquared-distance profile (each column = 4 samples, '#' = echo):")
    tail = scores[k:]
    usable = tail[: len(tail) - len(tail) % 4]
    buckets = usable.reshape(-1, 4).min(axis=1)
    line = "".join("#" if b < threshold else "." for b in buckets)
    print(line)


if __name__ == "__main__":
    main()
