#!/usr/bin/env python3
"""Pulse-echo detection served through the workload API.

"A problem of more practical interest is the computation of
correlations."  A known pulse shape is buried in a noisy received
signal; the correlation workload -- the pattern matcher with its
comparator swapped for a difference cell and its accumulator for an
adder -- computes the squared distance of every window to the pulse,
and the echoes appear as sharp minima.

This example runs the whole pipeline two ways:

* locally via :func:`repro.workloads.run_workload` (the fast strided
  kernel, differentially tested against the stepwise cell machine), and
* at farm scale via ``MatcherService.submit(workload=...)``, where the
  same signal is scheduled onto a pool of simulated chips with
  halo-overlap sharding -- and comes back identical.
"""

import numpy as np

from repro import Alphabet
from repro.chip.chip import ChipSpec
from repro.service import MatcherService, SchedulerConfig, uniform_pool
from repro.workloads import run_workload

PULSE = [0.0, 0.9, 1.0, 0.4, -0.5, -1.0, -0.3, 0.2]
ECHO_POSITIONS = [40, 105, 180]
NOISE = 0.15
N_SAMPLES = 256


def build_signal(rng):
    signal = rng.normal(0.0, NOISE, N_SAMPLES)
    for pos in ECHO_POSITIONS:
        signal[pos : pos + len(PULSE)] += PULSE
    return signal


def main():
    rng = np.random.default_rng(1979)
    signal = build_signal(rng)

    scores = np.array(run_workload("correlation", PULSE, list(signal)))
    k = len(PULSE) - 1

    # The stepwise cell-by-cell machine computes the same windows.
    stepwise = run_workload("correlation", PULSE, list(signal),
                            engine="stepwise")
    assert np.allclose(scores, stepwise)

    # Detect echoes: local minima of the squared distance, thresholded.
    threshold = np.median(scores[k:]) * 0.35
    detected = [
        int(i) - k
        for i in range(k, N_SAMPLES)
        if scores[i] < threshold
        and scores[i] == min(scores[max(k, i - 4) : i + 5])
    ]

    print(f"pulse of {len(PULSE)} samples; echoes planted at {ECHO_POSITIONS}")
    print(f"correlation workload detected starts at {detected}")
    assert detected == ECHO_POSITIONS, "detection failed"

    # The same query, served by the matcher farm: the signal shards
    # across workers with a (window - 1)-sample halo and merges back.
    svc = MatcherService(
        uniform_pool(4, ChipSpec(8, 2), Alphabet("ABCD")),
        config=SchedulerConfig(wide_text_threshold=64, min_shard_chars=32),
    )
    jid = svc.submit(PULSE, list(signal), tenant="radar",
                     workload="correlation")
    farm = svc.drain()[jid]
    assert farm.results == list(scores), "farm must equal the local kernel"
    print(f"farm served the same scores (mode={farm.mode}, "
          f"workers={list(farm.workers)})")

    # Bonus: the same data flow runs an FIR smoother over the scores.
    smooth = run_workload("fir", [0.25, 0.5, 0.25], list(scores[k:]))
    print(f"FIR-smoothed score minimum: {min(smooth):.3f} "
          f"(raw minimum {scores[k:].min():.3f})")

    # A crude terminal plot of the match score (lower = better match).
    print("\nsquared-distance profile (each column = 4 samples, '#' = echo):")
    tail = scores[k:]
    usable = tail[: len(tail) - len(tail) % 4]
    buckets = usable.reshape(-1, 4).min(axis=1)
    line = "".join("#" if b < threshold else "." for b in buckets)
    print(line)


if __name__ == "__main__":
    main()
