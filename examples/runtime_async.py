#!/usr/bin/env python3
"""The concurrent runtime: an async host over real worker processes.

Starts an ``AsyncMatcherService`` -- the asyncio front door over a pool
of spawn-context worker processes, each simulating one attached device
-- and streams a mixed workload at it from three tenants: interactive
pattern matches, a batch of FIR filter jobs over sampled signals, and
one throttled tenant pushing against a token-bucket rate limit.  One
job carries a tight SLO deadline and is served degraded from the
host-side oracle when it expires.  Every result is checked against the
workload oracle before the runtime's counters are printed.
"""

import asyncio
import random

from repro import Alphabet
from repro.runtime import AsyncMatcherService, RuntimeConfig
from repro.service import FaultInjector
from repro.workloads import get_workload

CHAR_WORKERS = 3


async def main():
    ab = Alphabet("ABCD")
    rng = random.Random(1980)
    config = RuntimeConfig(
        max_pending=64,
        max_retries=2,
        # The "logs" tenant is throttled hard; everyone else rides the
        # default (unlimited) bucket.
        rate_limits={"logs": (40.0, 4)},
    )
    # A little seeded chaos: some jobs lose their worker mid-flight and
    # are retried; the answers must not change.
    faults = FaultInjector(seed=7, p_death=0.15)

    async with AsyncMatcherService(CHAR_WORKERS, ab, config=config,
                                   faults=faults) as svc:
        def text(n):
            return "".join(rng.choice("ABCD") for _ in range(n))

        jobs = {}  # job_id -> (workload, params, stream)

        # Interactive lookups from two tenants.
        for i in range(8):
            pattern = "".join(rng.choice("ABCDX")
                              for _ in range(rng.randint(2, 6)))
            stream = text(rng.randint(200, 2000))
            jid = await svc.submit(pattern, stream,
                                   tenant=("search", "genomics")[i % 2])
            jobs[jid] = ("match", pattern, stream)

        # A batch of FIR smoothing jobs -- same systolic data flow,
        # multiply-accumulate cells (Section 3.4).
        taps = [0.25, 0.5, 0.25]
        for _ in range(4):
            signal = [rng.uniform(-1.0, 1.0) for _ in range(600)]
            jid = await svc.submit(taps, signal, tenant="dsp",
                                   workload="fir")
            jobs[jid] = ("fir", taps, signal)

        # A throttled tenant: more jobs than its burst allows, so later
        # submits suspend until the bucket refills.
        for _ in range(8):
            stream = text(300)
            jid = await svc.submit("AXC", stream, tenant="logs")
            jobs[jid] = ("match", "AXC", stream)

        # One job with a deliberately impossible deadline: it is shed
        # to the host-side oracle fallback -- degraded, never wrong.
        slo_stream = text(5000)
        slo_jid = await svc.submit("ABXD", slo_stream, tenant="search",
                                   timeout=1e-6)
        jobs[slo_jid] = ("match", "ABXD", slo_stream)

        # Consume in completion order, as a real client would.
        results = {}
        async for r in svc.stream_results():
            results[r.job_id] = r

        for jid, (workload, params, stream) in jobs.items():
            spec = get_workload(workload)
            want = spec.run(params, stream, ab, engine="oracle")
            assert results[jid].results == want, \
                f"job {jid} diverged from the {workload} oracle"

        shed = results[slo_jid]
        assert shed.timed_out and shed.via_fallback
        print(f"{len(results)} jobs served across "
              f"{len({r.worker for r in results.values() if r.worker is not None})} "
              f"worker process(es), all oracle-verified")
        print(f"modes used: {sorted({r.mode for r in results.values()})}")
        if svc.deaths:
            print(f"{svc.deaths} worker death(s) injected; "
                  f"{svc.retries} retry(ies), {svc.fallbacks} oracle fallback(s)")
        print(f"SLO job {slo_jid}: timed out after {config.max_retries} "
              f"retries budgeted, served degraded in "
              f"{shed.latency_s * 1000:.1f} ms")

        stats = svc.stats()
        print(f"rate limiter suspensions for 'logs': {stats['rate_limit_waits']}")
        print(f"pool: {stats['pool_dispatched']} dispatched, "
              f"{stats['pool_replies']} replies, "
              f"{stats['pool_dropped_replies']} stale replies dropped")


if __name__ == "__main__":
    asyncio.run(main())
