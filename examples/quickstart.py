#!/usr/bin/env python3
"""Quickstart: the paper's own example, at three levels of the stack.

Runs the pattern AXC (X = wild card) over the Figure 3-1 text on the
behavioural chip model, the bit-pipelined array, and -- transistor by
transistor -- the switch-level netlist, and shows they agree with the
definition.
"""

from repro import Alphabet, BitLevelMatcher, PatternMatcher, match_oracle
from repro.circuit.chipnet import GateLevelMatcher

ALPHABET = Alphabet("ABCD")      # the prototype's two-bit characters
PATTERN = "AXC"
TEXT = "ABCAACACCAB"


def show(name, results):
    bits = "".join("1" if r else "0" for r in results)
    print(f"{name:>28}: {bits}")


def main():
    print(f"pattern {PATTERN!r} over text {TEXT!r}")
    print(f"{'text':>28}: {TEXT}")

    oracle = match_oracle(PatternMatcher(PATTERN, ALPHABET).pattern, list(TEXT))
    show("definition (Section 3.1)", oracle)

    matcher = PatternMatcher(PATTERN, ALPHABET)
    show("systolic array (char level)", matcher.match(TEXT))

    bit_level = BitLevelMatcher(PATTERN, ALPHABET)
    show("bit-pipelined (Figure 3-4)", bit_level.match(TEXT))

    gate_level = GateLevelMatcher(PATTERN, ALPHABET)
    show(f"{gate_level.n_transistors}-transistor netlist", gate_level.match(TEXT))

    report = matcher.report(TEXT)
    print(f"\nmatches end at positions {report.match_positions} "
          f"(substrings ABC, AAC, ACC -- the paper's Figure 3-1)")
    print(f"run took {report.beats} beats; at 250 ns/beat that is "
          f"{report.beats * 250 / 1000:.1f} us")


if __name__ == "__main__":
    main()
