#!/usr/bin/env python3
"""The Figure 1-1 system: a 1979 host with three special-purpose chips.

Attaches the pattern matcher, a systolic sorter, and an FFT device to a
minicomputer-class host, runs a mixed workload, and reports the bus and
device timing -- including the paper's point that the matcher outruns
the host memory that feeds it.
"""

import numpy as np

from repro import Alphabet
from repro.chip.chip import ChipSpec
from repro.host import HostSpec, HostSystem
from repro.host.devices import FFTDevice, PatternMatcherDevice, SystolicSorterDevice


def main():
    host = HostSpec()  # 600 ns memory cycle, 2-byte words
    system = HostSystem(host)
    system.attach(SystolicSorterDevice(n_cells=128))
    system.attach(FFTDevice(block_size=64))
    matcher = PatternMatcherDevice(ChipSpec(8, 2), Alphabet("ABCD"))
    matcher.load_pattern("ABXD")
    system.attach(matcher)

    print(f"host: {host.name} "
          f"({host.memory_bandwidth_chars_per_s()/1e6:.1f} Mchar/s memory)")
    print(f"devices: {', '.join(sorted(system.devices))}\n")

    rng = np.random.default_rng(7)
    text = "".join(rng.choice(list("ABCD")) for _ in range(600))
    hits = system.run("pattern-matcher", text)
    print(f"pattern-matcher: {sum(hits)} matches in {len(text)} characters")

    samples = list(rng.normal(size=128))
    spectrum = system.run("fft", samples)
    peak = int(np.argmax(np.abs(spectrum[1:64]))) + 1
    print(f"fft: 128-sample block transformed; strongest bin {peak}")

    keys = list(rng.normal(size=120))
    ranked = system.run("sorter", keys)
    assert ranked == sorted(keys)
    print(f"sorter: {len(keys)} keys ordered; median {ranked[len(keys)//2]:.3f}")

    print("\njob accounting (device vs bus, overlapped):")
    for job in system.jobs:
        print(f"  {job.device:>16}: {job.n_items:4d} items | "
              f"device {job.device_ns/1000:8.1f} us | "
              f"bus {job.transfer_ns/1000:8.1f} us | "
              f"job {job.total_ns/1000:8.1f} us")
    starved = system.bus.is_device_starved(250.0)
    print(f"\nmatcher starved by host memory: {'yes' if starved else 'no'} "
          f"(the Section 1 claim)")


if __name__ == "__main__":
    main()
