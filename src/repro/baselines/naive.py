"""Naive software string matching (the O(N*L) reference point).

This is the algorithm a host computer without special hardware runs for
wildcard matching: compare every window position by position.  It is the
only *sequential* baseline that handles wild cards without preprocessing,
and its per-character cost grows linearly with the pattern length -- the
scaling the systolic chip removes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..alphabet import PatternChar
from ..errors import PatternError


@dataclass
class OpCounter:
    """Counts elementary character comparisons, for the cost benches."""

    comparisons: int = 0


def naive_match(
    pattern: Sequence[PatternChar],
    text: Sequence[str],
    counter: OpCounter = None,
) -> List[bool]:
    """Oracle-convention result stream via window-by-window comparison.

    With early exit on the first mismatch, so the comparison count
    reflects real software behaviour (best case ~N, worst case N*L).
    """
    if not pattern:
        raise PatternError("pattern must be non-empty")
    k = len(pattern) - 1
    out: List[bool] = []
    for i in range(len(text)):
        if i < k:
            out.append(False)
            continue
        matched = True
        for j in range(len(pattern)):
            if counter is not None:
                counter.comparisons += 1
            if not pattern[j].matches(text[i - k + j]):
                matched = False
                break
        out.append(matched)
    return out
