"""Working implementations of every alternative the paper discusses.

Section 3.3.1 surveys the design space the systolic matcher was chosen
from; this package implements each alternative so the comparison benches
can reproduce the paper's arguments quantitatively:

* :mod:`repro.baselines.naive` -- direct O(N*L) software matching.
* :mod:`repro.baselines.kmp` -- Knuth-Morris-Pratt [Knuth et al. 77]
  (exact patterns only; "breaks down" with wild cards because matching is
  no longer transitive).
* :mod:`repro.baselines.boyer_moore` -- Boyer-Moore [Boyer and Moore 77]
  (exact patterns only; also requires random access to the text, which a
  streaming chip cannot have).
* :mod:`repro.baselines.shift_or` -- bit-parallel shift-or matching, the
  strongest word-RAM streaming baseline (supports wild cards).
* :mod:`repro.baselines.fischer_paterson` -- wildcard matching via
  convolution / integer multiplication [Fischer and Paterson 74], "the
  fastest algorithm known for string matching with wild card characters"
  on a sequential machine, "requires more than linear time".
* :mod:`repro.baselines.broadcast` -- Mukhopadhyay's broadcast cellular
  matcher [Mukhopadhyay 79], with the capacitive-load cost its broadcast
  bus implies.
* :mod:`repro.baselines.unidirectional` -- the one-directional array with
  statically stored pattern and half-speed results that the paper rejects
  for its loading overhead.

All matchers share the oracle's output convention: one boolean per text
position, True when the window ending there matches.
"""

from .boyer_moore import BoyerMooreMatcher, boyer_moore_match
from .broadcast import BroadcastMatcher
from .fischer_paterson import fischer_paterson_match
from .kmp import KMPMatcher, kmp_match
from .naive import naive_match
from .shift_or import ShiftOrMatcher, shift_or_match
from .unidirectional import UnidirectionalArrayMatcher

__all__ = [
    "BoyerMooreMatcher",
    "BroadcastMatcher",
    "KMPMatcher",
    "ShiftOrMatcher",
    "UnidirectionalArrayMatcher",
    "boyer_moore_match",
    "fischer_paterson_match",
    "kmp_match",
    "naive_match",
    "shift_or_match",
]
