"""Boyer-Moore matching [Boyer and Moore 77].

The other fast sequential algorithm Section 3.3.1 rules out.  Besides
breaking down on wild cards, Boyer-Moore *skips* text characters -- it
requires random access to the text, so it cannot run on a streaming
interface at all; the benches report its skip behaviour to make that
architectural mismatch visible (a chip fed one character per beat gains
nothing from skipping).

This implementation uses the bad-character rule plus the strong good-suffix
rule, exact patterns only.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..alphabet import PatternChar
from ..errors import PatternError
from .naive import OpCounter


class BoyerMooreMatcher:
    """Exact-pattern Boyer-Moore with the oracle output convention."""

    def __init__(self, pattern: Sequence[PatternChar]):
        if not pattern:
            raise PatternError("pattern must be non-empty")
        if any(pc.is_wild for pc in pattern):
            raise PatternError(
                "Boyer-Moore is inapplicable to wildcard patterns: skip "
                "information about the pattern matching itself is "
                "irrelevant with wild cards (Section 3.1)"
            )
        self.pattern: List[str] = [pc.char for pc in pattern]
        self.bad_char = self._build_bad_char(self.pattern)
        self.good_suffix = self._build_good_suffix(self.pattern)

    @staticmethod
    def _build_bad_char(p: List[str]) -> Dict[str, int]:
        """Rightmost occurrence index of each pattern character."""
        return {c: i for i, c in enumerate(p)}

    @staticmethod
    def _build_good_suffix(p: List[str]) -> List[int]:
        """Shift table for the strong good-suffix rule."""
        m = len(p)
        shift = [0] * (m + 1)
        border = [0] * (m + 1)
        i, j = m, m + 1
        border[i] = j
        while i > 0:
            while j <= m and p[i - 1] != p[j - 1]:
                if shift[j] == 0:
                    shift[j] = j - i
                j = border[j]
            i -= 1
            j -= 1
            border[i] = j
        j = border[0]
        for i in range(m + 1):
            if shift[i] == 0:
                shift[i] = j
            if i == j:
                j = border[j]
        return shift

    def match(self, text: Sequence[str], counter: OpCounter = None) -> List[bool]:
        """One boolean per text position; also counts alignment skips."""
        p = self.pattern
        m, n = len(p), len(text)
        out = [False] * n
        if m > n:
            return out
        s = 0
        while s <= n - m:
            j = m - 1
            while j >= 0:
                if counter is not None:
                    counter.comparisons += 1
                if p[j] != text[s + j]:
                    break
                j -= 1
            if j < 0:
                out[s + m - 1] = True
                s += self.good_suffix[0]
            else:
                bc = self.bad_char.get(text[s + j], -1)
                s += max(self.good_suffix[j + 1], j - bc, 1)
        return out

    def characters_examined(self, text: Sequence[str]) -> int:
        """Comparisons performed on *text* (sublinear for long patterns)."""
        counter = OpCounter()
        self.match(text, counter)
        return counter.comparisons


def boyer_moore_match(
    pattern: Sequence[PatternChar],
    text: Sequence[str],
    counter: OpCounter = None,
) -> List[bool]:
    """Functional wrapper; raises PatternError for wildcard patterns."""
    return BoyerMooreMatcher(pattern).match(text, counter)
