"""The rejected one-directional array with statically stored pattern.

Section 3.3.1: "An algorithm that is similar to ours uses a linear array
of cells with data flowing in only one direction.  The pattern is
permanently stored in the array of cells, and the text string moves past
it.  Partial results move at half the speed of the text so that they
accumulate results from an entire substring match.  This algorithm was
rejected because of the static storage of the pattern.  Loading the cells
in preparation for a pattern match would require extra time and
circuitry."

Mechanics simulated here: cell ``c`` stores ``p_c``; text characters enter
cell 0 one per beat and move right one cell per beat; a result token is
launched at cell 0 on every beat and advances one cell every *two* beats.
The token launched on beat ``b`` reaches cell ``c`` exactly when text
character ``s_{b+c}`` does, so it accumulates the window starting at
``b`` -- each token meets every cell, and two interleaved token streams
(even/odd launch beats) keep every cell busy on every beat.

Consequences the benches expose:

* steady-state throughput is one text character per beat -- *twice* the
  bidirectional design's rate -- and cell utilization is ~100%;
* but every pattern change stalls the pipe for a serial reload
  (``n_cells`` beats) and requires static (refreshed) storage in every
  cell, which the paper's dynamic-register design avoids entirely.
  For query-style workloads with frequent pattern changes the chosen
  design wins; for one long scan the rejected design would have been
  faster.  The paper's stated reason is the loading time and circuitry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..alphabet import PatternChar
from ..errors import PatternError


@dataclass
class _ResultToken:
    launch_beat: int
    window_start: int
    value: bool = True


class UnidirectionalArrayMatcher:
    """Beat-accurate simulation of the rejected one-directional design."""

    def __init__(self, pattern: Sequence[PatternChar]):
        if not pattern:
            raise PatternError("pattern must be non-empty")
        self.pattern: List[PatternChar] = list(pattern)
        self.load_beats = len(pattern)  # serial shift-in of the pattern
        self.beats_run = 0

    @property
    def n_cells(self) -> int:
        return len(self.pattern)

    def match(self, text: Sequence[str]) -> List[bool]:
        """One boolean per text position (oracle convention)."""
        L = self.n_cells
        n = len(text)
        k = L - 1
        out = [False] * n
        # text[i] enters cell 0 at beat i; at beat t it occupies cell t - i.
        # The token launched at beat b occupies cell (t - b) // 2 and
        # accumulates on arrival beats (t - b even).
        total_beats = n + 2 * L + 2
        tokens: List[_ResultToken] = []
        for t in range(total_beats):
            if t < n:
                tokens.append(_ResultToken(launch_beat=t, window_start=t))
            done: List[_ResultToken] = []
            for tok in tokens:
                age = t - tok.launch_beat
                if age % 2 != 0:
                    continue
                c = age // 2
                if c >= L:
                    done.append(tok)
                    continue
                i = tok.launch_beat + c  # the text char arriving at cell c now
                if i < n:
                    tok.value = tok.value and self.pattern[c].matches(text[i])
                else:
                    tok.value = False  # window runs off the end of the text
            for tok in done:
                tokens.remove(tok)
                end = tok.window_start + k
                if tok.window_start >= 0 and end < n:
                    out[end] = tok.value
            self.beats_run += 1
        return out

    def beats_for_text(self, n_text: int) -> int:
        """Steady-state beats to process *n_text* characters (rate = 1)."""
        return n_text + 2 * self.n_cells + 2

    def beats_for_workload(self, queries: Sequence[int]) -> int:
        """Total beats for a workload of texts, one reload per query.

        *queries* lists the text length of each query; each query pays the
        serial pattern reload before streaming.
        """
        return sum(self.load_beats + self.beats_for_text(n) for n in queries)
