"""Knuth-Morris-Pratt matching [Knuth et al. 77].

One of the "fast sequential algorithms" Section 3.3.1 rules out for
hardware: it relies on information about partial matches of the pattern
with itself, which (a) implies dynamically changing communication in any
hardware realisation and (b) "breaks down" when wild cards are present,
because the matches relation is no longer transitive (the paper's example:
AC and XB both match AX but not each other).

:class:`KMPMatcher` therefore refuses wildcard patterns --
reproducing the *inapplicability* result, not merely a slowdown -- and
provides the classic linear-time scan for exact patterns.
"""

from __future__ import annotations

from typing import List, Sequence

from ..alphabet import PatternChar
from ..errors import PatternError
from .naive import OpCounter


class KMPMatcher:
    """Exact-pattern KMP with the oracle output convention."""

    def __init__(self, pattern: Sequence[PatternChar]):
        if not pattern:
            raise PatternError("pattern must be non-empty")
        if any(pc.is_wild for pc in pattern):
            raise PatternError(
                "KMP is inapplicable to wildcard patterns: the matches "
                "relation is not transitive (Section 3.3.1)"
            )
        self.pattern: List[str] = [pc.char for pc in pattern]
        self.failure = self._build_failure(self.pattern)

    @staticmethod
    def _build_failure(p: List[str]) -> List[int]:
        """The classic failure function: longest proper border lengths."""
        fail = [0] * len(p)
        j = 0
        for i in range(1, len(p)):
            while j > 0 and p[i] != p[j]:
                j = fail[j - 1]
            if p[i] == p[j]:
                j += 1
            fail[i] = j
        return fail

    def match(self, text: Sequence[str], counter: OpCounter = None) -> List[bool]:
        """One boolean per text position (True at window-ending matches)."""
        p, fail = self.pattern, self.failure
        out = [False] * len(text)
        j = 0
        for i, c in enumerate(text):
            while j > 0 and c != p[j]:
                if counter is not None:
                    counter.comparisons += 1
                j = fail[j - 1]
            if counter is not None:
                counter.comparisons += 1
            if c == p[j]:
                j += 1
            if j == len(p):
                out[i] = True
                j = fail[j - 1]
        return out


def kmp_match(
    pattern: Sequence[PatternChar],
    text: Sequence[str],
    counter: OpCounter = None,
) -> List[bool]:
    """Functional wrapper; raises PatternError for wildcard patterns."""
    return KMPMatcher(pattern).match(text, counter)
