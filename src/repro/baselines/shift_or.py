"""Bit-parallel shift-or matching (Baeza-Yates / Gonnet style).

Not cited by the paper (it post-dates it), but included as the strongest
modern *software* streaming baseline: it handles wild cards naturally and
processes one text character per step using machine-word bit parallelism.
Its limit is the word width -- patterns longer than the word need
multi-word state, degrading per-character cost, whereas the systolic array
simply adds cells.  The benches use it to show the paper's argument
survives against stronger software than existed in 1979.

Formulation: state ``D`` is a bit vector with bit ``j`` **clear** iff the
pattern prefix of length ``j+1`` matches the text suffix ending at the
current character; per character ``D = (D << 1) | B[c]`` where ``B[c]``
has bit ``j`` set iff pattern position ``j`` does *not* match ``c``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..alphabet import PatternChar
from ..errors import PatternError
from .naive import OpCounter


class ShiftOrMatcher:
    """Shift-or automaton over arbitrary (hashable) characters."""

    def __init__(self, pattern: Sequence[PatternChar]):
        if not pattern:
            raise PatternError("pattern must be non-empty")
        self.length = len(pattern)
        self._all_ones = (1 << self.length) - 1
        match_masks: Dict[str, int] = {}
        wild_mask = 0
        for j, pc in enumerate(pattern):
            bit = 1 << j
            if pc.is_wild:
                wild_mask |= bit
            else:
                match_masks[pc.char] = match_masks.get(pc.char, 0) | bit
        # B[c] = positions that MISmatch c; characters absent from the
        # table mismatch everywhere except wild positions.
        self._mismatch_default = self._all_ones & ~wild_mask
        self._mismatch: Dict[str, int] = {
            c: self._all_ones & ~(m | wild_mask) for c, m in match_masks.items()
        }
        self._match_bit = 1 << (self.length - 1)

    def match(self, text: Sequence[str], counter: OpCounter = None) -> List[bool]:
        """One boolean per text position (oracle convention)."""
        d = self._all_ones
        all_ones = self._all_ones
        default = self._mismatch_default
        table = self._mismatch
        match_bit = self._match_bit
        out: List[bool] = []
        for c in text:
            if counter is not None:
                counter.comparisons += 1  # one table lookup + word op per char
            d = ((d << 1) & all_ones) | table.get(c, default)
            out.append(not d & match_bit)
        return out

    def words_per_character(self, word_bits: int = 32) -> int:
        """Machine words touched per text character on a *word_bits* host.

        The 1979-era host comparison: a pattern longer than the word
        multiplies the per-character software cost, while the chip's
        per-character cost is constant.
        """
        return -(-self.length // word_bits)


def shift_or_match(
    pattern: Sequence[PatternChar],
    text: Sequence[str],
    counter: OpCounter = None,
) -> List[bool]:
    """Functional wrapper around :class:`ShiftOrMatcher`."""
    return ShiftOrMatcher(pattern).match(text, counter)
