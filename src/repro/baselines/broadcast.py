"""Mukhopadhyay's broadcast cellular matcher [Mukhopadhyay 79].

Section 3.3.1: "Mukhopadhyay has proposed several machines in which each
cell stores a character of the pattern, and the text string is broadcast
character by character to all cells.  The broadcast communication is the
major disadvantage of this algorithm.  Each cell requires a connection to
the broadcast channel, which either increases the power requirements of
the system as a whole or decreases its speed."

The machine: cell ``j`` statically stores pattern character ``p_j``; on
each cycle the next text character is broadcast to every cell, each cell
compares it with its stored character, and the partial-match bit chains
from cell to cell (cell j's new bit = cell j-1's previous bit AND its own
comparison -- a local connection, so the *only* global wire is the
broadcast bus).  One text character per cycle; the last cell's bit is the
result for the window ending at that character.

The broadcast cost is modelled explicitly: the bus driver sees one gate
load per cell, so the cycle time grows with array size --
``cycle_time(n) = t_logic + n * t_load`` (unbuffered) or
``t_logic + t_load * ceil(log2 n) * fanout_factor`` with a buffer tree,
which trades the delay for extra power and area.  The systolic design's
cycle time is constant in ``n``; that contrast is the content of the
Section 3.3.1 comparison bench.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..alphabet import PatternChar
from ..errors import PatternError


@dataclass(frozen=True)
class BroadcastTimingModel:
    """Delay/power model for the broadcast bus.

    ``t_logic``: fixed per-cycle logic delay (same units as the systolic
    beat; default equals one systolic beat so comparisons are apples to
    apples).  ``t_load_per_cell``: incremental bus delay per attached
    cell.  ``buffered``: drive the bus through a fanout tree instead of a
    single driver.
    """

    t_logic: float = 1.0
    t_load_per_cell: float = 0.05
    buffered: bool = False
    buffer_fanout: int = 4

    def cycle_time(self, n_cells: int) -> float:
        """Cycle time of an ``n_cells`` machine under this model."""
        if n_cells <= 0:
            raise PatternError("n_cells must be positive")
        if not self.buffered:
            return self.t_logic + self.t_load_per_cell * n_cells
        levels = max(1, math.ceil(math.log(n_cells, self.buffer_fanout)))
        return self.t_logic + self.t_load_per_cell * self.buffer_fanout * levels

    def drive_power(self, n_cells: int) -> float:
        """Relative bus-driver power: proportional to total switched load."""
        return self.t_load_per_cell * n_cells


class BroadcastMatcher:
    """Cycle-accurate simulation of the broadcast machine.

    Matches the oracle bit-for-bit (the algorithm is correct -- the
    paper's objection is architectural, not functional).
    """

    def __init__(
        self,
        pattern: Sequence[PatternChar],
        timing: BroadcastTimingModel = None,
    ):
        if not pattern:
            raise PatternError("pattern must be non-empty")
        self.pattern: List[PatternChar] = list(pattern)
        self.timing = timing or BroadcastTimingModel()
        self.cycles_run = 0

    @property
    def n_cells(self) -> int:
        return len(self.pattern)

    def match(self, text: Sequence[str]) -> List[bool]:
        """One boolean per text position (oracle convention)."""
        L = len(self.pattern)
        # bits[j]: does the pattern prefix of length j+1 match the text
        # suffix ending at the previous character?
        bits = [False] * L
        out: List[bool] = []
        for c in text:
            new_bits = [False] * L
            for j, pc in enumerate(self.pattern):
                local = pc.matches(c)  # broadcast comparison at cell j
                chain = True if j == 0 else bits[j - 1]
                new_bits[j] = chain and local
            bits = new_bits
            out.append(bits[L - 1])
            self.cycles_run += 1
        return out

    def elapsed_time(self) -> float:
        """Total time under the broadcast timing model."""
        return self.cycles_run * self.timing.cycle_time(self.n_cells)

    def load_pattern_cycles(self) -> int:
        """Cycles to (re)load the statically stored pattern (serial shift)."""
        return self.n_cells
