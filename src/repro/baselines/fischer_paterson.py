"""Wildcard matching via convolution [Fischer and Paterson 74].

Section 3.1: "The fastest algorithm known for string matching with wild
card characters is based on multiplication of large integers, and requires
more than linear time."  The construction reduces matching-with-wildcards
to one convolution per alphabet symbol -- equivalently, to multiplying
large integers -- giving O(N log N log |Sigma|)-flavour bounds instead of
the naive O(N * L).

Implementation: for each symbol ``a``, build an indicator vector of
pattern positions that *require* ``a`` and an indicator of text positions
that are *not* ``a``; their correlation counts, for each alignment, the
violated positions contributed by ``a``.  A window matches iff the total
violation count over all symbols is zero.  Convolutions are computed with
numpy's FFT, the modern stand-in for the paper-era fast integer
multiplication.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..alphabet import PatternChar
from ..errors import PatternError


def fischer_paterson_match(
    pattern: Sequence[PatternChar], text: Sequence[str]
) -> List[bool]:
    """Oracle-convention result stream via per-symbol FFT correlations."""
    if not pattern:
        raise PatternError("pattern must be non-empty")
    n, L = len(text), len(pattern)
    k = L - 1
    out = [False] * n
    if n < L:
        return out

    symbols = sorted(
        {pc.char for pc in pattern if not pc.is_wild} & set(text)
        | {pc.char for pc in pattern if not pc.is_wild}
    )
    violations = np.zeros(n - k, dtype=np.float64)
    text_arr = np.asarray(list(text), dtype=object)
    fft_len = 1 << int(np.ceil(np.log2(max(2, n + L))))
    for a in symbols:
        p_ind = np.array(
            [1.0 if (not pc.is_wild and pc.char == a) else 0.0 for pc in pattern]
        )
        if not p_ind.any():
            continue
        t_not = np.array([0.0 if c == a else 1.0 for c in text_arr])
        # correlation: v[i] = sum_j p_ind[j] * t_not[i+j] for window starts i
        pf = np.fft.rfft(p_ind[::-1], fft_len)
        tf = np.fft.rfft(t_not, fft_len)
        corr = np.fft.irfft(pf * tf, fft_len)
        # window starting at i aligns p_ind[j] with t_not[i+j]; with the
        # reversed kernel the value sits at index i + L - 1.
        violations += corr[k : k + (n - k)]

    for start, v in enumerate(np.rint(violations).astype(np.int64)):
        if v == 0:
            out[start + k] = True
    return out


def fft_work_estimate(n_text: int, pattern_len: int, alphabet_size: int) -> float:
    """Super-linear work model for the comparison benches.

    One length-~(N+L) FFT per alphabet symbol appearing in the pattern:
    work ~ |Sigma| * (N+L) * log2(N+L).  Used to reproduce the paper's
    "more than linear time" contrast with the chip's N beats.
    """
    m = n_text + pattern_len
    if m <= 1:
        return 0.0
    return alphabet_size * m * np.log2(m)
