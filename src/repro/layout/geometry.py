"""Points and rectangles in lambda units.

All layout coordinates are integers in units of lambda, the scalable
length unit of the Mead & Conway design rules; the fabricated prototype
used lambda = 2.5 um (a 5-micron process).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import LayoutError


@dataclass(frozen=True)
class Point:
    """A point in lambda units."""

    x: int
    y: int

    def translated(self, dx: int, dy: int) -> "Point":
        return Point(self.x + dx, self.y + dy)

    def __iter__(self):
        return iter((self.x, self.y))


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle [x0, x1) x [y0, y1) in lambda units."""

    x0: int
    y0: int
    x1: int
    y1: int

    def __post_init__(self):
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise LayoutError(f"degenerate rectangle {self}")

    @property
    def width(self) -> int:
        return self.x1 - self.x0

    @property
    def height(self) -> int:
        return self.y1 - self.y0

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def min_dimension(self) -> int:
        return min(self.width, self.height)

    @property
    def center(self) -> Tuple[float, float]:
        return ((self.x0 + self.x1) / 2, (self.y0 + self.y1) / 2)

    def translated(self, dx: int, dy: int) -> "Rect":
        return Rect(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)

    def intersects(self, other: "Rect") -> bool:
        """Open-interval overlap (touching edges do not intersect)."""
        return not (
            self.x1 <= other.x0
            or other.x1 <= self.x0
            or self.y1 <= other.y0
            or other.y1 <= self.y0
        )

    def touches_or_intersects(self, other: "Rect") -> bool:
        return not (
            self.x1 < other.x0
            or other.x1 < self.x0
            or self.y1 < other.y0
            or other.y1 < self.y0
        )

    def separation(self, other: "Rect") -> int:
        """Rectilinear gap between two rectangles (0 if touching/overlap)."""
        dx = max(other.x0 - self.x1, self.x0 - other.x1, 0)
        dy = max(other.y0 - self.y1, self.y0 - other.y1, 0)
        if dx > 0 and dy > 0:
            # Diagonal separation: design rules use the larger axis gap,
            # the conservative rectilinear convention.
            return max(dx, dy)
        return max(dx, dy)

    def union_bbox(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.x0, other.x0),
            min(self.y0, other.y0),
            max(self.x1, other.x1),
            max(self.y1, other.y1),
        )

    def contains(self, other: "Rect") -> bool:
        return (
            self.x0 <= other.x0
            and self.y0 <= other.y0
            and self.x1 >= other.x1
            and self.y1 >= other.y1
        )

    def contains_point(self, p: Point) -> bool:
        """Closed-boundary containment (lambda grid points on an edge count)."""
        return self.x0 <= p.x <= self.x1 and self.y0 <= p.y <= self.y1

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlap rectangle, or None when interiors are disjoint."""
        x0, y0 = max(self.x0, other.x0), max(self.y0, other.y0)
        x1, y1 = min(self.x1, other.x1), min(self.y1, other.y1)
        if x1 <= x0 or y1 <= y0:
            return None
        return Rect(x0, y0, x1, y1)

    def subtract(self, cut: "Rect") -> List["Rect"]:
        """This rectangle minus *cut*, as up to four disjoint rectangles."""
        inter = self.intersection(cut)
        if inter is None:
            return [self]
        out: List[Rect] = []
        if self.y0 < inter.y0:                      # band below the cut
            out.append(Rect(self.x0, self.y0, self.x1, inter.y0))
        if inter.y1 < self.y1:                      # band above the cut
            out.append(Rect(self.x0, inter.y1, self.x1, self.y1))
        if self.x0 < inter.x0:                      # left of the cut
            out.append(Rect(self.x0, inter.y0, inter.x0, inter.y1))
        if inter.x1 < self.x1:                      # right of the cut
            out.append(Rect(inter.x1, inter.y0, self.x1, inter.y1))
        return out


def bounding_box(rects: Iterable[Rect]) -> Optional[Rect]:
    """The bounding box of a rectangle collection (None if empty)."""
    rects = list(rects)
    if not rects:
        return None
    box = rects[0]
    for r in rects[1:]:
        box = box.union_bbox(r)
    return box


def subtract_all(rect: Rect, cuts: Iterable[Rect]) -> List[Rect]:
    """*rect* minus every rectangle in *cuts* (disjoint fragment list)."""
    pieces = [rect]
    for cut in cuts:
        pieces = [frag for piece in pieces for frag in piece.subtract(cut)]
    return pieces


class RectIndex:
    """A uniform-grid spatial index over rectangles.

    Replaces the all-pairs scans that made connectivity extraction and
    spacing checks quadratic: querying returns only candidates whose grid
    cells overlap the probe window, so chip-scale rectangle sets (the
    flattened prototype CIF) stay near-linear.
    """

    def __init__(self, rects: List[Rect], cell: int = 32):
        self.rects = rects
        self.cell = max(1, cell)
        self._buckets: dict = {}
        for i, r in enumerate(rects):
            for key in self._keys(r, 0):
                self._buckets.setdefault(key, []).append(i)

    def _keys(self, r: Rect, pad: int):
        c = self.cell
        for bx in range((r.x0 - pad) // c, (r.x1 + pad) // c + 1):
            for by in range((r.y0 - pad) // c, (r.y1 + pad) // c + 1):
                yield (bx, by)

    def near(self, r: Rect, pad: int = 0) -> List[int]:
        """Indices of rectangles whose grid cells overlap *r* grown by *pad*."""
        seen: set = set()
        for key in self._keys(r, pad):
            seen.update(self._buckets.get(key, ()))
        return sorted(seen)


class _UnionFind:
    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, i: int) -> int:
        p = self.parent
        while p[i] != i:
            p[i] = p[p[i]]
            i = p[i]
        return i

    def union(self, i: int, j: int) -> None:
        ri, rj = self.find(i), self.find(j)
        if ri != rj:
            self.parent[ri] = rj


def connected_labels(rects: List[Rect]) -> List[int]:
    """Cluster id per rectangle (touching/overlapping rects share an id)."""
    uf = _UnionFind(len(rects))
    index = RectIndex(rects)
    for i, r in enumerate(rects):
        for j in index.near(r):
            if j > i and r.touches_or_intersects(rects[j]):
                uf.union(i, j)
    roots: Dict[int, int] = {}
    labels = []
    for i in range(len(rects)):
        root = uf.find(i)
        labels.append(roots.setdefault(root, len(roots)))
    return labels


def merge_connected(rects: List[Rect]) -> List[List[Rect]]:
    """Group rectangles into electrically connected clusters (same layer)."""
    labels = connected_labels(rects)
    groups: Dict[int, List[Rect]] = {}
    for label, rect in zip(labels, rects):
        groups.setdefault(label, []).append(rect)
    return [groups[k] for k in sorted(groups)]
