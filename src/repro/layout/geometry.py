"""Points and rectangles in lambda units.

All layout coordinates are integers in units of lambda, the scalable
length unit of the Mead & Conway design rules; the fabricated prototype
used lambda = 2.5 um (a 5-micron process).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..errors import LayoutError


@dataclass(frozen=True)
class Point:
    """A point in lambda units."""

    x: int
    y: int

    def translated(self, dx: int, dy: int) -> "Point":
        return Point(self.x + dx, self.y + dy)

    def __iter__(self):
        return iter((self.x, self.y))


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle [x0, x1) x [y0, y1) in lambda units."""

    x0: int
    y0: int
    x1: int
    y1: int

    def __post_init__(self):
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise LayoutError(f"degenerate rectangle {self}")

    @property
    def width(self) -> int:
        return self.x1 - self.x0

    @property
    def height(self) -> int:
        return self.y1 - self.y0

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def min_dimension(self) -> int:
        return min(self.width, self.height)

    @property
    def center(self) -> Tuple[float, float]:
        return ((self.x0 + self.x1) / 2, (self.y0 + self.y1) / 2)

    def translated(self, dx: int, dy: int) -> "Rect":
        return Rect(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)

    def intersects(self, other: "Rect") -> bool:
        """Open-interval overlap (touching edges do not intersect)."""
        return not (
            self.x1 <= other.x0
            or other.x1 <= self.x0
            or self.y1 <= other.y0
            or other.y1 <= self.y0
        )

    def touches_or_intersects(self, other: "Rect") -> bool:
        return not (
            self.x1 < other.x0
            or other.x1 < self.x0
            or self.y1 < other.y0
            or other.y1 < self.y0
        )

    def separation(self, other: "Rect") -> int:
        """Rectilinear gap between two rectangles (0 if touching/overlap)."""
        dx = max(other.x0 - self.x1, self.x0 - other.x1, 0)
        dy = max(other.y0 - self.y1, self.y0 - other.y1, 0)
        if dx > 0 and dy > 0:
            # Diagonal separation: design rules use the larger axis gap,
            # the conservative rectilinear convention.
            return max(dx, dy)
        return max(dx, dy)

    def union_bbox(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.x0, other.x0),
            min(self.y0, other.y0),
            max(self.x1, other.x1),
            max(self.y1, other.y1),
        )

    def contains(self, other: "Rect") -> bool:
        return (
            self.x0 <= other.x0
            and self.y0 <= other.y0
            and self.x1 >= other.x1
            and self.y1 >= other.y1
        )


def bounding_box(rects: Iterable[Rect]) -> Optional[Rect]:
    """The bounding box of a rectangle collection (None if empty)."""
    rects = list(rects)
    if not rects:
        return None
    box = rects[0]
    for r in rects[1:]:
        box = box.union_bbox(r)
    return box


def merge_connected(rects: List[Rect]) -> List[List[Rect]]:
    """Group rectangles into electrically connected clusters (same layer)."""
    n = len(rects)
    parent = list(range(n))

    def find(i):
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for i in range(n):
        for j in range(i + 1, n):
            if rects[i].touches_or_intersects(rects[j]):
                parent[find(i)] = find(j)
    groups = {}
    for i in range(n):
        groups.setdefault(find(i), []).append(rects[i])
    return list(groups.values())
