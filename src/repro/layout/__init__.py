"""Stick-diagram / mask-layout / CIF substrate (Section 3.2.2, Plates 1-2).

The paper's final design artifacts are NMOS stick diagrams (Plate 1), a
lambda-rule mask layout, and a Caltech Intermediate Form description that
"can be interpreted to make the masks".  This subpackage reproduces that
tail of the design flow:

* :mod:`repro.layout.layers` -- the silicon-gate NMOS conduction layers
  with the paper's colour convention;
* :mod:`repro.layout.geometry` -- points and rectangles in lambda units;
* :mod:`repro.layout.sticks` -- topological stick diagrams;
* :mod:`repro.layout.cells` -- stick diagrams and generated layouts for
  the comparator and accumulator twins;
* :mod:`repro.layout.design_rules` -- the lambda-based design rule checker;
* :mod:`repro.layout.cif` -- CIF 2.0 writer and parser;
* :mod:`repro.layout.assembly` -- array assembly with power routing and
  pads (the Plate 2 chip floorplan).
"""

from .cif import CIFWriter, parse_cif
from .design_rules import DesignRuleChecker, LAMBDA_RULES
from .geometry import Point, Rect
from .layers import Layer
from .sticks import StickDiagram

__all__ = [
    "CIFWriter",
    "DesignRuleChecker",
    "LAMBDA_RULES",
    "Layer",
    "Point",
    "Rect",
    "StickDiagram",
    "parse_cif",
]
