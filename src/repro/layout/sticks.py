"""Topological stick diagrams (the Plate 1 artifact).

"The stick diagram shows the relative positions of all signal paths,
power connections, and components, but hides their absolute sizes and
positions."  A :class:`StickDiagram` is a set of coloured sticks
(axis-aligned segments on a conduction layer), contacts joining layers,
implant marks for depletion loads, and named ports on the cell boundary.

The diagram is *checkable*: :meth:`transistor_sites` finds every
poly-over-diffusion crossing (a transistor), :meth:`connectivity` builds
the electrical net list implied by the geometry, and the test suite
verifies that the comparator's stick diagram implies exactly the
Figure 3-6 circuit.  :meth:`render` draws the diagram as text, one
character per lambda, with the paper's colour letters
(G=green/diffusion, R=red/poly, B=blue/metal, *=contact, +=crossing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..errors import LayoutError
from .geometry import Point
from .layers import Layer


@dataclass(frozen=True)
class Stick:
    """One axis-aligned wire segment on a conduction layer."""

    layer: Layer
    a: Point
    b: Point

    def __post_init__(self):
        if self.a.x != self.b.x and self.a.y != self.b.y:
            raise LayoutError("sticks must be axis-aligned")
        if self.a == self.b:
            raise LayoutError("zero-length stick")
        if not self.layer.is_conductor:
            raise LayoutError(f"sticks must be on conduction layers, not {self.layer}")

    @property
    def is_horizontal(self) -> bool:
        return self.a.y == self.b.y

    def points(self) -> List[Point]:
        """Every lambda grid point the stick covers."""
        if self.is_horizontal:
            x0, x1 = sorted((self.a.x, self.b.x))
            return [Point(x, self.a.y) for x in range(x0, x1 + 1)]
        y0, y1 = sorted((self.a.y, self.b.y))
        return [Point(self.a.x, y) for y in range(y0, y1 + 1)]


@dataclass(frozen=True)
class Contact:
    """A contact cut joining two layers at a point (the round black dot)."""

    at: Point
    layers: FrozenSet[Layer]

    @staticmethod
    def of(at: Point, la: Layer, lb: Layer) -> "Contact":
        return Contact(at, frozenset({la, lb}))


@dataclass(frozen=True)
class Implant:
    """An ion-implantation mark making the transistor at *at* depletion mode."""

    at: Point


@dataclass(frozen=True)
class Port:
    """A named signal entering/leaving the cell at a boundary point."""

    name: str
    at: Point
    layer: Layer


class StickDiagram:
    """A cell's stick diagram with electrical interpretation."""

    def __init__(self, name: str, width: int, height: int):
        if width <= 0 or height <= 0:
            raise LayoutError("cell must have positive extent")
        self.name = name
        self.width = width
        self.height = height
        self.sticks: List[Stick] = []
        self.contacts: List[Contact] = []
        self.implants: List[Implant] = []
        self.ports: Dict[str, Port] = {}

    # -- construction -----------------------------------------------------

    def _check_bounds(self, p: Point) -> None:
        if not (0 <= p.x <= self.width and 0 <= p.y <= self.height):
            raise LayoutError(f"{p} outside cell {self.name} bounds")

    def stick(self, layer: Layer, x0: int, y0: int, x1: int, y1: int) -> Stick:
        s = Stick(layer, Point(x0, y0), Point(x1, y1))
        self._check_bounds(s.a)
        self._check_bounds(s.b)
        self.sticks.append(s)
        return s

    def contact(self, x: int, y: int, la: Layer, lb: Layer) -> Contact:
        c = Contact.of(Point(x, y), la, lb)
        self._check_bounds(c.at)
        self.contacts.append(c)
        return c

    def implant(self, x: int, y: int) -> Implant:
        i = Implant(Point(x, y))
        self._check_bounds(i.at)
        self.implants.append(i)
        return i

    def port(self, name: str, x: int, y: int, layer: Layer) -> Port:
        p = Point(x, y)
        self._check_bounds(p)
        if not (p.x in (0, self.width) or p.y in (0, self.height)):
            raise LayoutError(f"port {name} must sit on the cell boundary")
        port = Port(name, p, layer)
        self.ports[name] = port
        return port

    # -- electrical interpretation ---------------------------------------------

    def transistor_sites(self) -> List[Tuple[Point, bool]]:
        """Every poly-over-diffusion crossing: (location, is_depletion).

        "Field-effect transistors are created in NMOS by crossing a
        diffusion path with a polysilicon area" -- unless a contact joins
        the layers at that very point (a butting contact, not a device).
        """
        poly_pts: Set[Point] = set()
        diff_pts: Set[Point] = set()
        for s in self.sticks:
            target = poly_pts if s.layer is Layer.POLY else (
                diff_pts if s.layer is Layer.DIFFUSION else None
            )
            if target is not None:
                target.update(s.points())
        contact_pts = {c.at for c in self.contacts}
        implant_pts = {i.at for i in self.implants}
        sites = []
        for p in sorted(poly_pts & diff_pts, key=lambda q: (q.y, q.x)):
            if p in contact_pts:
                continue
            sites.append((p, p in implant_pts))
        return sites

    def connectivity(self) -> List[Set[str]]:
        """Groups of port names that the geometry electrically connects.

        Two sticks on the same layer connect where they share a point;
        different layers connect only through contacts.  Poly crossing
        diffusion does NOT connect them (it makes a transistor), so the
        crossing points are cut out of the diffusion nets.
        """
        transistor_pts = {p for p, _ in self.transistor_sites()}
        # node id: (layer, point); union-find over them
        parent: Dict[Tuple[str, Point], Tuple[str, Point]] = {}

        def find(k):
            while parent[k] != k:
                parent[k] = parent[parent[k]]
                k = parent[k]
            return k

        def union(a, b):
            for k in (a, b):
                parent.setdefault(k, k)
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for s in self.sticks:
            pts = s.points()
            if s.layer is Layer.DIFFUSION:
                # Split the diffusion net at transistor channels.
                run: List[Point] = []
                for p in pts:
                    if p in transistor_pts:
                        for i in range(len(run) - 1):
                            union((s.layer.value, run[i]), (s.layer.value, run[i + 1]))
                        run = []
                    else:
                        run.append(p)
                for i in range(len(run) - 1):
                    union((s.layer.value, run[i]), (s.layer.value, run[i + 1]))
                for p in pts:
                    if p not in transistor_pts:
                        parent.setdefault((s.layer.value, p), (s.layer.value, p))
            else:
                for i in range(len(pts) - 1):
                    union((s.layer.value, pts[i]), (s.layer.value, pts[i + 1]))
        for c in self.contacts:
            layers = sorted(l.value for l in c.layers)
            union((layers[0], c.at), (layers[1], c.at))

        groups: Dict[Tuple[str, Point], Set[str]] = {}
        for name, port in self.ports.items():
            key = (port.layer.value, port.at)
            parent.setdefault(key, key)
            groups.setdefault(find(key), set()).add(name)
        return [g for g in groups.values() if g]

    # -- rendering -----------------------------------------------------------------

    def render(self) -> str:
        """ASCII stick diagram, origin bottom-left."""
        symbols = {Layer.DIFFUSION: "G", Layer.POLY: "R", Layer.METAL: "B"}
        grid = [[" "] * (self.width + 1) for _ in range(self.height + 1)]
        for s in self.sticks:
            ch = symbols[s.layer]
            for p in s.points():
                cur = grid[p.y][p.x]
                grid[p.y][p.x] = ch if cur in (" ", ch) else "+"
        for i in self.implants:
            grid[i.at.y][i.at.x] = "Y"
        for c in self.contacts:
            grid[c.at.y][c.at.x] = "*"
        for port in self.ports.values():
            grid[port.at.y][port.at.x] = "o"
        lines = ["".join(row) for row in reversed(grid)]
        header = f"stick diagram: {self.name} ({self.width}x{self.height} lambda)"
        legend = "G=diffusion R=poly B=metal Y=implant *=contact o=port +=crossing"
        return "\n".join([header, legend] + lines)
