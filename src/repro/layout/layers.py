"""The silicon-gate NMOS layers and their conventions.

Section 3.2.2: "Silicon-gate NMOS technology uses three conduction
layers ... blue lines represent metal conduction paths, red lines
represent polycrystalline silicon (polysilicon) and green lines represent
diffusion into the substrate.  The three layers are insulated from each
other except at contact cuts, which are represented by round black dots.
The yellow squares are areas of ion implantation, used to create
depletion mode transistors."

CIF layer names follow the Mead & Conway NMOS set.
"""

from __future__ import annotations

from enum import Enum


class Layer(Enum):
    """An NMOS mask layer."""

    DIFFUSION = "diffusion"   # green
    POLY = "poly"             # red
    METAL = "metal"           # blue
    IMPLANT = "implant"       # yellow
    CONTACT = "contact"       # black
    OVERGLASS = "overglass"   # pad openings

    @property
    def color(self) -> str:
        """The stick-diagram colour convention of the paper."""
        return {
            Layer.DIFFUSION: "green",
            Layer.POLY: "red",
            Layer.METAL: "blue",
            Layer.IMPLANT: "yellow",
            Layer.CONTACT: "black",
            Layer.OVERGLASS: "grey",
        }[self]

    @property
    def cif_name(self) -> str:
        """Mead & Conway CIF layer name."""
        return {
            Layer.DIFFUSION: "ND",
            Layer.POLY: "NP",
            Layer.METAL: "NM",
            Layer.IMPLANT: "NI",
            Layer.CONTACT: "NC",
            Layer.OVERGLASS: "NG",
        }[self]

    @classmethod
    def from_cif_name(cls, name: str) -> "Layer":
        for layer in cls:
            if layer.cif_name == name:
                return layer
        raise ValueError(f"unknown CIF layer {name!r}")

    @property
    def is_conductor(self) -> bool:
        """Can this layer carry signals?"""
        return self in (Layer.DIFFUSION, Layer.POLY, Layer.METAL)


#: "Field-effect transistors are created in NMOS by crossing a diffusion
#: path (green) with a polysilicon area (red)."
TRANSISTOR_LAYERS = (Layer.DIFFUSION, Layer.POLY)
