"""Lambda-based design rule checking.

"Designing a layout involves choosing electrical parameters for all
transistors, as well as following minimum spacing rules for the intended
fabrication process."  The rules here are the classic Mead & Conway NMOS
lambda rules (the set the prototype was fabricated under at XEROX PARC):

==============================  ======
rule                            lambda
==============================  ======
diffusion width                 2
diffusion spacing               3
poly width                      2
poly spacing                    2
metal width                     3
metal spacing                   3
contact size                    2 x 2
implant overlap of gate         1.5 -> 2 (integer-conservative)
poly gate extension past diff   2
==============================  ======
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..errors import DesignRuleViolation
from .geometry import Rect, merge_connected
from .layers import Layer


#: Minimum feature width per layer, in lambda.
LAMBDA_RULES: Dict[str, int] = {
    "diffusion-width": 2,
    "diffusion-spacing": 3,
    "poly-width": 2,
    "poly-spacing": 2,
    "metal-width": 3,
    "metal-spacing": 3,
    "contact-size": 2,
    "implant-gate-overlap": 2,
}

_WIDTH_RULES = {
    Layer.DIFFUSION: "diffusion-width",
    Layer.POLY: "poly-width",
    Layer.METAL: "metal-width",
}
_SPACING_RULES = {
    Layer.DIFFUSION: "diffusion-spacing",
    Layer.POLY: "poly-spacing",
    Layer.METAL: "metal-spacing",
}


@dataclass
class Violation:
    """One recorded rule violation."""

    rule: str
    detail: str

    def raise_(self) -> None:
        raise DesignRuleViolation(self.rule, self.detail)


@dataclass
class DesignRuleChecker:
    """Checks a layout given as per-layer rectangle lists.

    ``check`` returns the violation list (empty = clean); ``enforce``
    raises on the first violation, for use in generators that must never
    emit an illegal layout.
    """

    rules: Dict[str, int] = field(default_factory=lambda: dict(LAMBDA_RULES))

    def check(self, rects_by_layer: Dict[Layer, Sequence[Rect]]) -> List[Violation]:
        violations: List[Violation] = []
        violations.extend(self._check_widths(rects_by_layer))
        violations.extend(self._check_spacing(rects_by_layer))
        violations.extend(self._check_contacts(rects_by_layer))
        return violations

    def enforce(self, rects_by_layer: Dict[Layer, Sequence[Rect]]) -> None:
        for v in self.check(rects_by_layer):
            v.raise_()

    # -- individual rule families ------------------------------------------

    def _check_widths(self, rbl) -> List[Violation]:
        out = []
        for layer, rule in _WIDTH_RULES.items():
            min_w = self.rules[rule]
            for r in rbl.get(layer, []):
                if r.min_dimension < min_w:
                    out.append(
                        Violation(
                            rule,
                            f"{layer.value} rect {r} narrower than {min_w} lambda",
                        )
                    )
        return out

    def _check_spacing(self, rbl) -> List[Violation]:
        """Spacing between electrically distinct same-layer clusters.

        Touching/overlapping rectangles are one conductor and exempt;
        distinct clusters must keep the layer's minimum gap.
        """
        out = []
        for layer, rule in _SPACING_RULES.items():
            min_s = self.rules[rule]
            rects = list(rbl.get(layer, []))
            clusters = merge_connected(rects)
            for i in range(len(clusters)):
                for j in range(i + 1, len(clusters)):
                    gap = min(
                        a.separation(b) for a in clusters[i] for b in clusters[j]
                    )
                    if gap < min_s:
                        out.append(
                            Violation(
                                rule,
                                f"{layer.value} clusters {gap} lambda apart "
                                f"(need {min_s})",
                            )
                        )
        return out

    def _check_contacts(self, rbl) -> List[Violation]:
        """Contacts must be exactly contact-size and covered by a conductor."""
        out = []
        size = self.rules["contact-size"]
        conductors = [
            r
            for layer in (Layer.DIFFUSION, Layer.POLY, Layer.METAL)
            for r in rbl.get(layer, [])
        ]
        for c in rbl.get(Layer.CONTACT, []):
            if c.width != size or c.height != size:
                out.append(
                    Violation("contact-size", f"contact {c} is not {size}x{size}")
                )
            covering = sum(1 for r in conductors if r.contains(c))
            if covering < 2:
                out.append(
                    Violation(
                        "contact-coverage",
                        f"contact {c} must be covered by two conduction layers",
                    )
                )
        return out
