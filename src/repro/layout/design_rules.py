"""Lambda-based design rule checking.

"Designing a layout involves choosing electrical parameters for all
transistors, as well as following minimum spacing rules for the intended
fabrication process."  The rules here are the classic Mead & Conway NMOS
lambda rules (the set the prototype was fabricated under at XEROX PARC):

==============================  ======
rule                            lambda
==============================  ======
diffusion width                 2
diffusion spacing               3
poly width                      2
poly spacing                    2
metal width                     3
metal spacing                   3
poly to unrelated diffusion     1
contact size                    2 x 2
contact spacing                 2
implant overlap of gate         1.5 -> 2 (integer-conservative)
poly gate extension past diff   2
==============================  ======

The last four rows were absent from the original checker and were added
in the signoff audit: ``poly-diff-spacing`` keeps a wire of one layer off
an unrelated region of the other (overlapping shapes form a transistor
and are exempt), ``contact-spacing`` keeps cuts apart, and the two gate
rules (``implant-gate-overlap``, ``gate-extension``) guarantee that a
drawn channel really is a well-formed transistor: the implant must
blanket a depletion gate with 2 lambda to spare and the polysilicon must
run 2 lambda past the diffusion edge so mask misalignment cannot open a
diffusion short around the gate.  Conductor *coverage* of a contact is
enforced by the pre-existing ``contact-coverage`` containment rule (the
zero-margin form of the Mead & Conway overlap-of-contact rule).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..errors import DesignRuleViolation
from .geometry import Rect, RectIndex, connected_labels, merge_connected
from .layers import Layer


#: Minimum feature width per layer, in lambda.
LAMBDA_RULES: Dict[str, int] = {
    "diffusion-width": 2,
    "diffusion-spacing": 3,
    "poly-width": 2,
    "poly-spacing": 2,
    "metal-width": 3,
    "metal-spacing": 3,
    "poly-diff-spacing": 1,
    "contact-size": 2,
    "contact-spacing": 2,
    "implant-gate-overlap": 2,
    "gate-extension": 2,
}

_WIDTH_RULES = {
    Layer.DIFFUSION: "diffusion-width",
    Layer.POLY: "poly-width",
    Layer.METAL: "metal-width",
}
_SPACING_RULES = {
    Layer.DIFFUSION: "diffusion-spacing",
    Layer.POLY: "poly-spacing",
    Layer.METAL: "metal-spacing",
}


def gate_channels(
    poly: Sequence[Rect], diff: Sequence[Rect], contacts: Sequence[Rect] = ()
) -> List[Rect]:
    """Merged poly-over-diffusion regions: the transistor channels.

    Every overlap of a poly shape with a diffusion shape is a channel
    candidate ("Field-effect transistors are created in NMOS by crossing
    a diffusion path with a polysilicon area") unless a contact cut sits
    on the overlap (a butting contact joins the layers instead).
    Overlapping/touching candidates merge into one channel, reported as
    the bounding box of the merged region -- one rectangle per device.
    """
    diff_list = list(diff)
    index = RectIndex(diff_list)
    contact_list = list(contacts)
    contact_index = RectIndex(contact_list)
    candidates: List[Rect] = []
    for p in poly:
        for k in index.near(p):
            overlap = p.intersection(diff_list[k])
            if overlap is None:
                continue
            butted = any(
                contact_list[c].intersects(overlap)
                for c in contact_index.near(overlap)
            )
            if not butted:
                candidates.append(overlap)
    channels = []
    for cluster in merge_connected(candidates):
        box = cluster[0]
        for r in cluster[1:]:
            box = box.union_bbox(r)
        channels.append(box)
    return sorted(channels, key=lambda r: (r.y0, r.x0))


@dataclass
class Violation:
    """One recorded rule violation."""

    rule: str
    detail: str

    def raise_(self) -> None:
        raise DesignRuleViolation(self.rule, self.detail)


@dataclass
class DesignRuleChecker:
    """Checks a layout given as per-layer rectangle lists.

    ``check`` returns the violation list (empty = clean); ``enforce``
    raises on the first violation, for use in generators that must never
    emit an illegal layout.
    """

    rules: Dict[str, int] = field(default_factory=lambda: dict(LAMBDA_RULES))

    def check(self, rects_by_layer: Dict[Layer, Sequence[Rect]]) -> List[Violation]:
        violations: List[Violation] = []
        violations.extend(self._check_widths(rects_by_layer))
        violations.extend(self._check_spacing(rects_by_layer))
        violations.extend(self._check_contacts(rects_by_layer))
        violations.extend(self._check_poly_diff_spacing(rects_by_layer))
        violations.extend(self._check_gates(rects_by_layer))
        return violations

    def enforce(self, rects_by_layer: Dict[Layer, Sequence[Rect]]) -> None:
        for v in self.check(rects_by_layer):
            v.raise_()

    # -- individual rule families ------------------------------------------

    def _check_widths(self, rbl) -> List[Violation]:
        out = []
        for layer, rule in _WIDTH_RULES.items():
            min_w = self.rules[rule]
            for r in rbl.get(layer, []):
                if r.min_dimension < min_w:
                    out.append(
                        Violation(
                            rule,
                            f"{layer.value} rect {r} narrower than {min_w} lambda",
                        )
                    )
        return out

    def _check_spacing(self, rbl) -> List[Violation]:
        """Spacing between electrically distinct same-layer clusters.

        Touching/overlapping rectangles are one conductor and exempt;
        distinct clusters must keep the layer's minimum gap.  The scan is
        index-accelerated: each rectangle is compared only against
        rectangles within the rule distance, and each close cluster pair
        is reported once.
        """
        out = []
        for layer, rule in _SPACING_RULES.items():
            min_s = self.rules[rule]
            rects = list(rbl.get(layer, []))
            if not rects:
                continue
            labels = connected_labels(rects)
            index = RectIndex(rects)
            reported: Dict[tuple, int] = {}
            for i, r in enumerate(rects):
                for j in index.near(r, pad=min_s):
                    if j <= i or labels[i] == labels[j]:
                        continue
                    gap = r.separation(rects[j])
                    if gap < min_s:
                        pair = (min(labels[i], labels[j]), max(labels[i], labels[j]))
                        if pair in reported:
                            reported[pair] = min(reported[pair], gap)
                        else:
                            reported[pair] = gap
            for gap in reported.values():
                out.append(
                    Violation(
                        rule,
                        f"{layer.value} clusters {gap} lambda apart "
                        f"(need {min_s})",
                    )
                )
        return out

    def _check_contacts(self, rbl) -> List[Violation]:
        """Contacts: exact size, two covering conductors, mutual spacing."""
        out = []
        size = self.rules["contact-size"]
        min_s = self.rules["contact-spacing"]
        conductors = [
            r
            for layer in (Layer.DIFFUSION, Layer.POLY, Layer.METAL)
            for r in rbl.get(layer, [])
        ]
        cover_index = RectIndex(conductors)
        contacts = list(rbl.get(Layer.CONTACT, []))
        contact_index = RectIndex(contacts)
        for i, c in enumerate(contacts):
            if c.width != size or c.height != size:
                out.append(
                    Violation("contact-size", f"contact {c} is not {size}x{size}")
                )
            covering = sum(
                1 for k in cover_index.near(c) if conductors[k].contains(c)
            )
            if covering < 2:
                out.append(
                    Violation(
                        "contact-coverage",
                        f"contact {c} must be covered by two conduction layers",
                    )
                )
            for j in contact_index.near(c, pad=min_s):
                if j <= i:
                    continue
                gap = c.separation(contacts[j])
                if 0 < gap < min_s:
                    out.append(
                        Violation(
                            "contact-spacing",
                            f"contacts {c} and {contacts[j]} are {gap} lambda "
                            f"apart (need {min_s})",
                        )
                    )
        return out

    def _check_poly_diff_spacing(self, rbl) -> List[Violation]:
        """Unrelated polysilicon must keep 1 lambda off diffusion.

        Overlapping poly/diffusion pairs form a transistor channel and are
        exempt; everything else (including touching shapes, which a mask
        shift would merge) must keep the gap.
        """
        out = []
        min_s = self.rules["poly-diff-spacing"]
        diff = list(rbl.get(Layer.DIFFUSION, []))
        index = RectIndex(diff)
        for p in rbl.get(Layer.POLY, []):
            for k in index.near(p, pad=min_s):
                d = diff[k]
                if p.intersects(d):
                    continue  # a channel, handled by the gate rules
                gap = p.separation(d)
                if gap < min_s:
                    out.append(
                        Violation(
                            "poly-diff-spacing",
                            f"poly {p} is {gap} lambda from unrelated "
                            f"diffusion {d} (need {min_s})",
                        )
                    )
        return out

    def _check_gates(self, rbl) -> List[Violation]:
        """Channel-formation rules: implant blanket and poly overhang.

        Every merged poly-over-diffusion region is a channel.  A channel
        touched by implant must be *contained* in implant with the rule
        margin on every side; and some poly shape must extend past the
        channel by the gate-extension margin on both sides of one axis
        (the poly line crossing the diffusion).
        """
        out = []
        overlap = self.rules["implant-gate-overlap"]
        extension = self.rules["gate-extension"]
        poly = list(rbl.get(Layer.POLY, []))
        diff = list(rbl.get(Layer.DIFFUSION, []))
        implants = list(rbl.get(Layer.IMPLANT, []))
        contacts = list(rbl.get(Layer.CONTACT, []))
        channels = gate_channels(poly, diff, contacts)
        poly_index = RectIndex(poly)
        implant_index = RectIndex(implants)
        for ch in channels:
            touching = [
                implants[k]
                for k in implant_index.near(ch)
                if implants[k].intersects(ch)
            ]
            if touching:
                grown = Rect(
                    ch.x0 - overlap, ch.y0 - overlap,
                    ch.x1 + overlap, ch.y1 + overlap,
                )
                if not any(imp.contains(grown) for imp in touching):
                    out.append(
                        Violation(
                            "implant-gate-overlap",
                            f"implant must cover gate {ch} plus {overlap} "
                            "lambda on every side",
                        )
                    )
            extended = False
            for k in poly_index.near(ch):
                p = poly[k]
                if not p.intersects(ch):
                    continue
                if p.x0 <= ch.x0 - extension and p.x1 >= ch.x1 + extension:
                    extended = True
                    break
                if p.y0 <= ch.y0 - extension and p.y1 >= ch.y1 + extension:
                    extended = True
                    break
            if not extended:
                out.append(
                    Violation(
                        "gate-extension",
                        f"no poly shape extends {extension} lambda past "
                        f"gate {ch} on both sides of either axis",
                    )
                )
        return out
