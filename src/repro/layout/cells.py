"""Stick diagrams and mask layouts generated from cell netlists.

The paper's Plate 1 is a hand-packed stick diagram of the positive
comparator.  Here the stick diagram is *generated* from the very netlist
that the switch-level simulator executes
(:func:`repro.circuit.cells.build_comparator` /
:func:`~repro.circuit.cells.build_accumulator`), in a standard-cell
style: devices in a row at the bottom, one horizontal polysilicon track
per net above them, vertical metal risers connecting device terminals to
tracks, and metal power rails at top and bottom.  This is less dense than
the Plate 1 artwork but has a property the photograph cannot offer: the
stick diagram's *electrical interpretation* (see
:meth:`repro.layout.sticks.StickDiagram.connectivity`) provably matches
the simulated circuit, which the test suite checks -- the "cell sticks
from cell circuits" step of Figure 4-1 made mechanical, exactly as the
paper predicts ("In principle the layout can be designed mechanically
from the circuit and stick diagrams").

The layout expansion then turns sticks into lambda-rule rectangles
(:class:`CellLayout`) that pass the design-rule checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..circuit.netlist import GND, VDD, Circuit
from ..errors import LayoutError
from .design_rules import DesignRuleChecker
from .geometry import Point, Rect, bounding_box
from .layers import Layer
from .sticks import StickDiagram

# Geometry constants (lambda).  Chosen so the mechanical expansion is
# design-rule clean by construction; see tests/test_layout_cells.py.
# The device row leaves 8 lambda of channel headroom between the source
# and drain stubs so depletion pullups can be drawn with the elongated
# (L/W = 4) gates that ratioed NMOS logic requires.  The source row sits
# 6 lambda up so the metal of its contacts and risers clears the GND
# rail (which spans y in [-1, 2)) by the 3-lambda metal spacing --
# lower rows put riser metal inside the rail band, shorting every
# source-row net to ground (found by the signoff extractor).
DEVICE_Y = 12         # gate row
DEV_SRC_Y = 6         # source stub row
DEV_DRN_Y = 18        # drain stub row
TRACK_Y0 = 22         # first net track
TRACK_PITCH = 6
COLUMN_PITCH = 24
GATE_RISER_DX = -6    # gate contact, relative to device diffusion
SRC_RISER_DX = 6
DRN_RISER_DX = 12

# Mask-level device sizing (see expand_sticks).  Depletion gates are
# stretched to PULLUP_L along the channel; enhancement channels are
# widened to PULLDOWN_W across it.  Resulting impedances (Z = L/W):
# pullup 8/2 = 4, pulldown 2/4 = 0.5 -- so an inverter sees an 8:1 ratio
# and a two-high series stack (NAND, the equality gate) sees 4:1, the
# Mead & Conway minimum for restoring logic.
PULLUP_L = 8
PULLDOWN_W = 4


@dataclass
class CellLayout:
    """Mask layout of one cell: rectangles per layer plus port points."""

    name: str
    rects: Dict[Layer, List[Rect]] = field(default_factory=dict)
    ports: Dict[str, Tuple[Point, Layer]] = field(default_factory=dict)
    width: int = 0
    height: int = 0

    def add(self, layer: Layer, rect: Rect) -> None:
        self.rects.setdefault(layer, []).append(rect)

    @property
    def area(self) -> int:
        return self.width * self.height

    def bbox(self) -> Optional[Rect]:
        return bounding_box(r for rl in self.rects.values() for r in rl)


def generate_cell_sticks(
    circuit: Circuit,
    ports: Dict[str, str],
    name: str,
) -> StickDiagram:
    """Generate a stick diagram for *circuit*.

    *ports* maps external signal names to circuit node names; those nets
    get boundary ports on their tracks (plus VDD/GND on the rails).
    """
    devices = list(circuit.transistors)
    loads = list(circuit.loads)
    n_cols = len(devices) + len(loads)
    if n_cols == 0:
        raise LayoutError("cannot lay out an empty circuit")

    # Net assignment: every node that is a terminal somewhere.
    net_names: List[str] = []

    def note(n: str) -> None:
        if n not in (VDD, GND) and n not in net_names:
            net_names.append(n)

    for t in devices:
        note(t.gate), note(t.a), note(t.b)
    for d in loads:
        note(d.node)
    for n in ports.values():
        note(n)

    track_of = {n: TRACK_Y0 + TRACK_PITCH * i for i, n in enumerate(net_names)}
    top_track = TRACK_Y0 + TRACK_PITCH * max(0, len(net_names) - 1)
    y_vdd = top_track + TRACK_PITCH + 2
    width = COLUMN_PITCH * n_cols + 8
    height = y_vdd + 2
    sd = StickDiagram(name, width, height)

    # Power rails in metal, spanning the cell for abutment.
    sd.stick(Layer.METAL, 0, 0, width, 0)            # GND
    sd.stick(Layer.METAL, 0, y_vdd, width, y_vdd)    # VDD
    sd.port("GND", 0, 0, Layer.METAL)
    sd.port("VDD", 0, y_vdd, Layer.METAL)

    def riser_to(x: int, y_from: int, net: str) -> None:
        """Vertical metal from (x, y_from) to the net's destination."""
        if net == GND:
            sd.stick(Layer.METAL, x, 0, x, y_from)
        elif net == VDD:
            sd.stick(Layer.METAL, x, y_from, x, y_vdd)
        else:
            y = track_of[net]
            sd.stick(Layer.METAL, x, min(y_from, y), x, max(y_from, y))
            sd.contact(x, y, Layer.POLY, Layer.METAL)

    col = 0
    track_used: Dict[str, List[int]] = {n: [] for n in net_names}

    def place_device(gate: Optional[str], a: str, b: str, depletion: bool) -> None:
        nonlocal col
        x_dev = COLUMN_PITCH * col + 12
        col += 1
        # Channel: vertical diffusion crossed by the horizontal gate poly.
        sd.stick(Layer.DIFFUSION, x_dev, DEV_SRC_Y, x_dev, DEV_DRN_Y)
        sd.stick(Layer.POLY, x_dev + GATE_RISER_DX, DEVICE_Y, x_dev + 3, DEVICE_Y)
        if depletion:
            sd.implant(x_dev, DEVICE_Y)
        # Gate connection.
        if gate is not None:
            xg = x_dev + GATE_RISER_DX
            sd.contact(xg, DEVICE_Y, Layer.POLY, Layer.METAL)
            riser_to(xg, DEVICE_Y, gate)
            if gate not in (VDD, GND):
                track_used[gate].append(xg)
        # Source and drain stubs with metal risers.
        xs = x_dev + SRC_RISER_DX
        sd.stick(Layer.DIFFUSION, x_dev, DEV_SRC_Y, xs, DEV_SRC_Y)
        sd.contact(xs, DEV_SRC_Y, Layer.DIFFUSION, Layer.METAL)
        riser_to(xs, DEV_SRC_Y, a)
        if a not in (VDD, GND):
            track_used[a].append(xs)
        xd = x_dev + DRN_RISER_DX
        sd.stick(Layer.DIFFUSION, x_dev, DEV_DRN_Y, xd, DEV_DRN_Y)
        sd.contact(xd, DEV_DRN_Y, Layer.DIFFUSION, Layer.METAL)
        riser_to(xd, DEV_DRN_Y, b)
        if b not in (VDD, GND):
            track_used[b].append(xd)

    for t in devices:
        place_device(t.gate, t.a, t.b, depletion=False)
    for d in loads:
        # Depletion pullup: gate tied to source, channel from VDD.
        # Electrically the gate-source tie is the load's defining feature;
        # we wire the gate to the output net like the source.
        place_device(d.node, d.node, VDD, depletion=True)

    # Net tracks in poly.  Port nets span the full cell width so abutting
    # cells connect; internal nets span just their risers.
    port_nets = set(ports.values())
    for net, y in track_of.items():
        xs = track_used[net]
        if net in port_nets:
            sd.stick(Layer.POLY, 0, y, width, y)
        elif len(xs) >= 2:
            sd.stick(Layer.POLY, min(xs), y, max(xs), y)
        elif len(xs) == 1:
            sd.stick(Layer.POLY, xs[0], y, xs[0] + 2, y)
        else:
            continue
    for ext_name, node in ports.items():
        if node == VDD or node == GND:
            continue
        y = track_of[node]
        sd.port(ext_name, 0, y, Layer.POLY)
        sd.port(ext_name + "_r", width, y, Layer.POLY)
    return sd


# -- stick -> mask expansion ---------------------------------------------------

_WIDTHS = {Layer.DIFFUSION: 2, Layer.POLY: 2, Layer.METAL: 3}


def expand_sticks(sd: StickDiagram) -> CellLayout:
    """Mechanically expand a stick diagram into lambda-rule rectangles.

    "In principle the layout can be designed mechanically from the
    circuit and stick diagrams."  Each stick becomes a rectangle of its
    layer's minimum width, extended one lambda past its endpoints;
    contacts become 2x2 cuts.

    Device sizing happens here, at the mask level, so the topological
    stick diagram stays untouched: every depletion site (implant mark on
    a poly/diffusion crossing) gets its gate poly stretched to
    ``PULLUP_L`` along the channel plus an implant blanket with the
    2-lambda overlap the design rules demand, and every enhancement site
    gets its diffusion widened to ``PULLDOWN_W`` across the channel.
    That gives the ratioed impedances the electrical-rule check verifies
    (pullup Z = 4, pulldown Z = 1/2).
    """
    layout = CellLayout(sd.name, width=sd.width, height=sd.height)
    for s in sd.sticks:
        w = _WIDTHS[s.layer]
        lo, hi = (w // 2), (w - w // 2)  # 2 -> (1,1); 3 -> (1,2)
        if s.is_horizontal:
            x0, x1 = sorted((s.a.x, s.b.x))
            layout.add(
                s.layer, Rect(x0 - 1, s.a.y - lo, x1 + 1, s.a.y + hi)
            )
        else:
            y0, y1 = sorted((s.a.y, s.b.y))
            layout.add(
                s.layer, Rect(s.a.x - lo, y0 - 1, s.a.x + hi, y1 + 1)
            )
    for c in sd.contacts:
        layout.add(Layer.CONTACT, Rect(c.at.x - 1, c.at.y - 1, c.at.x + 1, c.at.y + 1))
    depletion_sites = set()
    half_l = PULLUP_L // 2
    half_w = PULLDOWN_W // 2
    for p, is_depletion in sd.transistor_sites():
        if is_depletion:
            depletion_sites.add(p)
            layout.add(
                Layer.POLY, Rect(p.x - 1, p.y - half_l, p.x + 1, p.y + half_l)
            )
            layout.add(
                Layer.IMPLANT,
                Rect(p.x - 3, p.y - half_l - 2, p.x + 3, p.y + half_l + 2),
            )
        else:
            layout.add(
                Layer.DIFFUSION,
                Rect(p.x - half_w, p.y - half_w - 1, p.x + half_w, p.y + half_w + 1),
            )
    for imp in sd.implants:
        if imp.at in depletion_sites:
            continue  # already blanketed above
        layout.add(
            Layer.IMPLANT, Rect(imp.at.x - 2, imp.at.y - 2, imp.at.x + 2, imp.at.y + 2)
        )
    for name, port in sd.ports.items():
        layout.ports[name] = (port.at, port.layer)
    return layout


@dataclass
class CellBundle:
    """One cell across abstraction levels, for cross-checking.

    ``circuit`` is the switch-level netlist the sticks were generated
    from, ``ports`` maps external port names to circuit node names,
    ``clocks`` names the clock nodes, and ``sticks``/``layout`` are the
    derived geometric artifacts.  The signoff pipeline consumes this to
    prove the levels agree (extraction + LVS) and to lint the netlist
    with the right clock discipline (ERC, timing).
    """

    name: str
    circuit: Circuit
    ports: Dict[str, str]
    clocks: Tuple[str, ...]
    sticks: StickDiagram
    layout: CellLayout


def comparator_bundle(positive: bool = True) -> CellBundle:
    """Circuit, sticks, and layout for a comparator twin."""
    from ..circuit.cells.comparator import build_comparator

    c = Circuit("cmp")
    ports = build_comparator(c, "u.", "clk", positive=positive)
    external = {
        "p_in": ports["p_in"], "s_in": ports["s_in"], "d_in": ports["d_in"],
        "p_out": ports["p_out"], "s_out": ports["s_out"], "d_out": ports["d_out"],
        "clk": "clk",
    }
    name = f"comparator_{'pos' if positive else 'neg'}"
    sd = generate_cell_sticks(c, external, name)
    return CellBundle(name, c, external, ("clk",), sd, expand_sticks(sd))


def accumulator_bundle(positive: bool = True) -> CellBundle:
    """Circuit, sticks, and layout for an accumulator twin."""
    from ..circuit.cells.accumulator import build_accumulator

    c = Circuit("acc")
    ports = build_accumulator(c, "a.", "clkA", "clkB", positive=positive)
    external = {
        "lam_in": ports["lam_in"], "x_in": ports["x_in"],
        "d_in": ports["d_in"], "r_in": ports["r_in"],
        "lam_out": ports["lam_out"], "x_out": ports["x_out"],
        "r_out": ports["r_out"],
        "clkA": "clkA", "clkB": "clkB",
    }
    name = f"accumulator_{'pos' if positive else 'neg'}"
    sd = generate_cell_sticks(c, external, name)
    return CellBundle(name, c, external, ("clkA", "clkB"), sd, expand_sticks(sd))


def counter_bundle(result_bits: int, positive: bool = True) -> CellBundle:
    """Circuit, sticks, and layout for a counting-cell twin.

    The Section 3.4 counting cell with a ``result_bits``-wide ripple
    counter, laid out by the same mechanical stick generator as the
    prototype cells.  Used by the chip compiler's ``count`` kernel.
    """
    from ..circuit.cells.counter import build_counter

    c = Circuit("cnt")
    ports = build_counter(c, "u.", "clkA", "clkB", result_bits,
                          positive=positive)
    external = {"clkA": "clkA", "clkB": "clkB"}
    for p in ("lam_in", "x_in", "d_in", "lam_out", "x_out"):
        external[p] = ports[p]
    for i in range(result_bits):
        external[f"r_in{i}"] = ports[f"r_in{i}"]
        external[f"r_out{i}"] = ports[f"r_out{i}"]
    name = f"counter{result_bits}_{'pos' if positive else 'neg'}"
    sd = generate_cell_sticks(c, external, name)
    return CellBundle(name, c, external, ("clkA", "clkB"), sd, expand_sticks(sd))


def mac_bundle(
    data_bits: int, result_bits: int, positive: bool = True
) -> CellBundle:
    """Circuit, sticks, and layout for a multiply-accumulate cell twin.

    The inner-product cell of Section 3.4's final generalization
    (``data_bits``-wide operands, ``result_bits``-wide accumulator).
    Used by the chip compiler's ``inner-product`` kernel.
    """
    from ..circuit.cells.mac import build_mac

    c = Circuit("mac")
    ports = build_mac(c, "u.", "clkA", "clkB", data_bits, result_bits,
                      positive=positive)
    external = {"clkA": "clkA", "clkB": "clkB",
                "lam_in": ports["lam_in"], "lam_out": ports["lam_out"]}
    for b in range(data_bits):
        for p in ("p", "s"):
            external[f"{p}_in{b}"] = ports[f"{p}_in{b}"]
            external[f"{p}_out{b}"] = ports[f"{p}_out{b}"]
    for i in range(result_bits):
        external[f"r_in{i}"] = ports[f"r_in{i}"]
        external[f"r_out{i}"] = ports[f"r_out{i}"]
    name = f"mac{data_bits}x{result_bits}_{'pos' if positive else 'neg'}"
    sd = generate_cell_sticks(c, external, name)
    return CellBundle(name, c, external, ("clkA", "clkB"), sd, expand_sticks(sd))


def cell_bundle(kind: str, positive: bool = True) -> CellBundle:
    """Bundle for *kind* in {"comparator", "accumulator"}."""
    if kind == "comparator":
        return comparator_bundle(positive)
    if kind == "accumulator":
        return accumulator_bundle(positive)
    raise LayoutError(f"unknown cell kind {kind!r}")


def comparator_layout(positive: bool = True) -> Tuple[StickDiagram, CellLayout]:
    """Sticks + layout for a comparator twin, from its real netlist."""
    b = comparator_bundle(positive)
    return b.sticks, b.layout


def accumulator_layout(positive: bool = True) -> Tuple[StickDiagram, CellLayout]:
    """Sticks + layout for an accumulator twin, from its real netlist."""
    b = accumulator_bundle(positive)
    return b.sticks, b.layout


def check_cell(layout: CellLayout) -> List:
    """Run the DRC on a cell layout; returns the violation list."""
    return DesignRuleChecker().check(layout.rects)
