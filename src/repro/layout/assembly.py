"""Chip assembly: the Plate 2 floorplan.

"When the layouts for all cells are complete, they are assembled into a
working array with the inputs and outputs hooked to contact pads."  The
assembler places the comparator rows over the accumulator row in the
Figure 3-3/3-4 arrangement with polarity alternating by column parity,
rings the array with bonding pads, and emits the whole chip as CIF --
one symbol per cell type, instantiated by translation, which is exactly
the replication economy the paper's design philosophy predicts ("most of
the cells on a chip are copies of a few basic ones").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import LayoutError
from .cells import CellLayout, accumulator_layout, comparator_layout
from .cif import CIFWriter
from .geometry import Rect
from .layers import Layer

#: Bonding pad dimensions (lambda); Mead & Conway suggest ~100 um pads,
#: i.e. 40 lambda at lambda = 2.5 um.
PAD_SIZE = 40
PAD_PITCH = 60

#: Vertical gap between abutted cell rows.  Each cell's GND rail rect
#: reaches 1 lambda below its origin and its VDD rail 2 lambda above its
#: height, so butting rows would overlap the two supply rails -- a dead
#: short the signoff extractor flags.  Four lambda keeps the rails at the
#: 3-lambda metal spacing rule.
ROW_GAP = 4


@dataclass
class ChipFloorplan:
    """Placement result: cell instances, pads, and area accounting."""

    name: str
    columns: int
    bit_rows: int
    cell_instances: List[Tuple[str, int, int]] = field(default_factory=list)
    pads: List[Tuple[str, Rect]] = field(default_factory=list)
    core_width: int = 0
    core_height: int = 0
    die_width: int = 0
    die_height: int = 0

    @property
    def core_area(self) -> int:
        return self.core_width * self.core_height

    @property
    def die_area(self) -> int:
        return self.die_width * self.die_height

    @property
    def n_cells(self) -> int:
        return len(self.cell_instances)

    @property
    def n_pads(self) -> int:
        return len(self.pads)


class ArrayAssembler:
    """Floorplan + CIF for any rectangular array of library cells.

    The generic engine behind :class:`ChipAssembler` and the chip
    compiler's generated designs (:mod:`repro.compiler.physical`):

    ``cells``
        Library of placeable layouts, keyed by cell name.
    ``rows``
        The array, bottom row first; each row is a list of cell names,
        one per column, all rows the same length.  Columns share one
        pitch (the widest library cell) so twins abut interchangeably --
        the "exterior details such as size ... must be known" boundary of
        Section 4.
    ``pins``
        Bonding-pad names, ringed around the die in order.
    """

    def __init__(
        self,
        cells: Dict[str, CellLayout],
        rows: List[List[str]],
        pins: List[str],
        name: str = "array",
    ):
        if not rows or not rows[0]:
            raise LayoutError("array needs at least one row and one column")
        width = len(rows[0])
        for row in rows:
            if len(row) != width:
                raise LayoutError("every array row needs the same column count")
            for cname in row:
                if cname not in cells:
                    raise LayoutError(f"unknown cell {cname!r} in array rows")
        self._cells = dict(cells)
        self._rows = [list(row) for row in rows]
        self._pins = list(pins)
        self.name = name
        self.columns = width
        self.bit_rows = len(rows) - 1

    def pin_names(self) -> List[str]:
        """The bonding-pad inventory, in placement order."""
        return list(self._pins)

    # -- floorplan ------------------------------------------------------------------

    def floorplan(self) -> ChipFloorplan:
        # One column pitch for the whole array (the twins of a cell type
        # may differ slightly in net count, so sizes are bounded over the
        # library); each row is as tall as its tallest cell.
        col_w = max(c.width for c in self._cells.values())
        fp = ChipFloorplan(self.name, self.columns, self.bit_rows)
        y = 0
        for row in self._rows:
            row_h = max(self._cells[cname].height for cname in row)
            for i, cname in enumerate(row):
                fp.cell_instances.append((cname, i * col_w, y))
            y += row_h + ROW_GAP
        fp.core_width = self.columns * col_w
        fp.core_height = y - ROW_GAP
        self._place_pads(fp)
        return fp

    def _place_pads(self, fp: ChipFloorplan) -> None:
        pins = self.pin_names()
        margin = PAD_SIZE + 20
        fp.die_width = fp.core_width + 2 * margin
        fp.die_height = fp.core_height + 2 * margin
        # Ring the die, greedily: bottom, right, top, left.
        per_side = -(-len(pins) // 4)
        fp.die_width = max(fp.die_width, per_side * PAD_PITCH + 2 * margin)
        fp.die_height = max(fp.die_height, per_side * PAD_PITCH + 2 * margin)
        sides = []
        for k in range(per_side):
            sides.append((margin + k * PAD_PITCH, 0))                       # bottom
        for k in range(per_side):
            sides.append((fp.die_width - PAD_SIZE, margin + k * PAD_PITCH))  # right
        for k in range(per_side):
            sides.append((margin + k * PAD_PITCH, fp.die_height - PAD_SIZE))  # top
        for k in range(per_side):
            sides.append((0, margin + k * PAD_PITCH))                        # left
        for pin, (x, y) in zip(pins, sides):
            fp.pads.append((pin, Rect(x, y, x + PAD_SIZE, y + PAD_SIZE)))

    # -- CIF emission ---------------------------------------------------------------

    def to_cif(self) -> str:
        """The whole chip as CIF text (one symbol per cell type + pads)."""
        fp = self.floorplan()
        writer = CIFWriter()
        cell_symbols: Dict[str, object] = {}
        for cname, layout in self._cells.items():
            sym = writer.new_symbol(cname)
            for layer, rects in layout.rects.items():
                for r in rects:
                    sym.add_box(layer, r)
            cell_symbols[cname] = sym
        pad_sym = writer.new_symbol("pad")
        pad_sym.add_box(Layer.METAL, Rect(0, 0, PAD_SIZE, PAD_SIZE))
        pad_sym.add_box(
            Layer.OVERGLASS, Rect(4, 4, PAD_SIZE - 4, PAD_SIZE - 4)
        )
        chip = writer.new_symbol(self.name)
        margin_x = (fp.die_width - fp.core_width) // 2
        margin_y = (fp.die_height - fp.core_height) // 2
        for cname, x, y in fp.cell_instances:
            chip.call(cell_symbols[cname].symbol_id, x + margin_x, y + margin_y)
        for _pin, rect in fp.pads:
            chip.call(pad_sym.symbol_id, rect.x0, rect.y0)
        writer.place(chip, 0, 0)
        return writer.render()

    def area_report(self) -> Dict[str, float]:
        """Area accounting for the Plate 2 bench (lambda^2 and mm^2 at
        lambda = 2.5 um)."""
        fp = self.floorplan()
        lam_mm = 2.5e-3
        return {
            "columns": self.columns,
            "bit_rows": self.bit_rows,
            "cells": fp.n_cells,
            "core_area_lambda2": fp.core_area,
            "die_area_lambda2": fp.die_area,
            "core_area_mm2": fp.core_area * lam_mm ** 2,
            "die_area_mm2": fp.die_area * lam_mm ** 2,
            "pads": fp.n_pads,
        }


class ChipAssembler(ArrayAssembler):
    """The prototype matcher chip: m columns, w comparator rows over one
    accumulator row, polarity alternating by (column + row) parity."""

    def __init__(self, columns: int, bit_rows: int, name: str = "pattern_matcher"):
        if columns <= 0 or bit_rows <= 0:
            raise LayoutError("chip needs at least one column and one bit row")
        cells: Dict[str, CellLayout] = {}
        for positive in (True, False):
            suffix = "pos" if positive else "neg"
            cells[f"comparator_{suffix}"] = comparator_layout(positive)[1]
            cells[f"accumulator_{suffix}"] = accumulator_layout(positive)[1]

        def twin(kind: str, i: int, j: int) -> str:
            return f"{kind}_{'pos' if (i + j) % 2 == 0 else 'neg'}"

        # Accumulator row at the bottom (row index w in the polarity
        # scheme), comparator rows above, row 0 on top (Figure 3-3 draws
        # comparators on top).
        rows = [[twin("accumulator", i, bit_rows) for i in range(columns)]]
        for j in range(bit_rows - 1, -1, -1):
            rows.append([twin("comparator", i, j) for i in range(columns)])

        # Pin inventory (Figure 3-7 extensibility): pattern/string bit
        # inputs AND outputs, the result stream in and out, the control
        # bits, clocks and power.
        pins = ["VDD", "GND", "PHI1", "PHI2", "LAM_IN", "X_IN",
                "LAM_OUT", "X_OUT", "R_IN", "R_OUT"]
        for j in range(bit_rows):
            pins += [f"P_IN{j}", f"P_OUT{j}", f"S_IN{j}", f"S_OUT{j}"]
        super().__init__(cells, rows, pins, name)

    def cell(self, kind: str, positive: bool) -> CellLayout:
        return self._cells[f"{kind}_{'pos' if positive else 'neg'}"]
