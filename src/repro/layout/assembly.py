"""Chip assembly: the Plate 2 floorplan.

"When the layouts for all cells are complete, they are assembled into a
working array with the inputs and outputs hooked to contact pads."  The
assembler places the comparator rows over the accumulator row in the
Figure 3-3/3-4 arrangement with polarity alternating by column parity,
rings the array with bonding pads, and emits the whole chip as CIF --
one symbol per cell type, instantiated by translation, which is exactly
the replication economy the paper's design philosophy predicts ("most of
the cells on a chip are copies of a few basic ones").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import LayoutError
from .cells import CellLayout, accumulator_layout, comparator_layout
from .cif import CIFWriter
from .geometry import Rect
from .layers import Layer

#: Bonding pad dimensions (lambda); Mead & Conway suggest ~100 um pads,
#: i.e. 40 lambda at lambda = 2.5 um.
PAD_SIZE = 40
PAD_PITCH = 60

#: Vertical gap between abutted cell rows.  Each cell's GND rail rect
#: reaches 1 lambda below its origin and its VDD rail 2 lambda above its
#: height, so butting rows would overlap the two supply rails -- a dead
#: short the signoff extractor flags.  Four lambda keeps the rails at the
#: 3-lambda metal spacing rule.
ROW_GAP = 4


@dataclass
class ChipFloorplan:
    """Placement result: cell instances, pads, and area accounting."""

    name: str
    columns: int
    bit_rows: int
    cell_instances: List[Tuple[str, int, int]] = field(default_factory=list)
    pads: List[Tuple[str, Rect]] = field(default_factory=list)
    core_width: int = 0
    core_height: int = 0
    die_width: int = 0
    die_height: int = 0

    @property
    def core_area(self) -> int:
        return self.core_width * self.core_height

    @property
    def die_area(self) -> int:
        return self.die_width * self.die_height

    @property
    def n_cells(self) -> int:
        return len(self.cell_instances)

    @property
    def n_pads(self) -> int:
        return len(self.pads)


class ChipAssembler:
    """Builds the floorplan and CIF for an m-column, w-row matcher chip."""

    def __init__(self, columns: int, bit_rows: int, name: str = "pattern_matcher"):
        if columns <= 0 or bit_rows <= 0:
            raise LayoutError("chip needs at least one column and one bit row")
        self.columns = columns
        self.bit_rows = bit_rows
        self.name = name
        self._cells: Dict[str, CellLayout] = {}
        for positive in (True, False):
            suffix = "pos" if positive else "neg"
            self._cells[f"comparator_{suffix}"] = comparator_layout(positive)[1]
            self._cells[f"accumulator_{suffix}"] = accumulator_layout(positive)[1]

    def cell(self, kind: str, positive: bool) -> CellLayout:
        return self._cells[f"{kind}_{'pos' if positive else 'neg'}"]

    # -- pin inventory (Figure 3-7 extensibility) -----------------------------

    def pin_names(self) -> List[str]:
        """Every pad the extensible chip needs.

        Per Section 3.4: pattern/string bit inputs AND outputs, the
        result stream in and out, the control bits, clocks and power.
        """
        pins = ["VDD", "GND", "PHI1", "PHI2", "LAM_IN", "X_IN",
                "LAM_OUT", "X_OUT", "R_IN", "R_OUT"]
        for j in range(self.bit_rows):
            pins += [f"P_IN{j}", f"P_OUT{j}", f"S_IN{j}", f"S_OUT{j}"]
        return pins

    # -- floorplan ------------------------------------------------------------------

    def floorplan(self) -> ChipFloorplan:
        # The twins of a cell type may differ slightly in net count (a NOR
        # has no internal pulldown node where a NAND does); the floorplan
        # uses each type's bounding size so twins abut interchangeably --
        # the "exterior details such as size ... must be known" boundary
        # of Section 4.
        cmp_h = max(self.cell("comparator", p).height for p in (True, False))
        acc_h = max(self.cell("accumulator", p).height for p in (True, False))
        col_w = max(
            self.cell(kind, p).width
            for kind in ("comparator", "accumulator")
            for p in (True, False)
        )
        fp = ChipFloorplan(self.name, self.columns, self.bit_rows)
        y = 0
        # Accumulator row at the bottom, comparator rows above (Figure 3-3
        # draws comparators on top).
        for i in range(self.columns):
            positive = (i + self.bit_rows) % 2 == 0
            fp.cell_instances.append(
                (f"accumulator_{'pos' if positive else 'neg'}", i * col_w, y)
            )
        y += acc_h + ROW_GAP
        for j in range(self.bit_rows - 1, -1, -1):
            for i in range(self.columns):
                positive = (i + j) % 2 == 0
                fp.cell_instances.append(
                    (f"comparator_{'pos' if positive else 'neg'}", i * col_w, y)
                )
            y += cmp_h + ROW_GAP
        fp.core_width = self.columns * col_w
        fp.core_height = y - ROW_GAP
        self._place_pads(fp)
        return fp

    def _place_pads(self, fp: ChipFloorplan) -> None:
        pins = self.pin_names()
        margin = PAD_SIZE + 20
        fp.die_width = fp.core_width + 2 * margin
        fp.die_height = fp.core_height + 2 * margin
        # Ring the die, greedily: bottom, right, top, left.
        per_side = -(-len(pins) // 4)
        fp.die_width = max(fp.die_width, per_side * PAD_PITCH + 2 * margin)
        fp.die_height = max(fp.die_height, per_side * PAD_PITCH + 2 * margin)
        sides = []
        for k in range(per_side):
            sides.append((margin + k * PAD_PITCH, 0))                       # bottom
        for k in range(per_side):
            sides.append((fp.die_width - PAD_SIZE, margin + k * PAD_PITCH))  # right
        for k in range(per_side):
            sides.append((margin + k * PAD_PITCH, fp.die_height - PAD_SIZE))  # top
        for k in range(per_side):
            sides.append((0, margin + k * PAD_PITCH))                        # left
        for pin, (x, y) in zip(pins, sides):
            fp.pads.append((pin, Rect(x, y, x + PAD_SIZE, y + PAD_SIZE)))

    # -- CIF emission ---------------------------------------------------------------

    def to_cif(self) -> str:
        """The whole chip as CIF text (one symbol per cell type + pads)."""
        fp = self.floorplan()
        writer = CIFWriter()
        cell_symbols: Dict[str, object] = {}
        for cname, layout in self._cells.items():
            sym = writer.new_symbol(cname)
            for layer, rects in layout.rects.items():
                for r in rects:
                    sym.add_box(layer, r)
            cell_symbols[cname] = sym
        pad_sym = writer.new_symbol("pad")
        pad_sym.add_box(Layer.METAL, Rect(0, 0, PAD_SIZE, PAD_SIZE))
        pad_sym.add_box(
            Layer.OVERGLASS, Rect(4, 4, PAD_SIZE - 4, PAD_SIZE - 4)
        )
        chip = writer.new_symbol(self.name)
        margin_x = (fp.die_width - fp.core_width) // 2
        margin_y = (fp.die_height - fp.core_height) // 2
        for cname, x, y in fp.cell_instances:
            chip.call(cell_symbols[cname].symbol_id, x + margin_x, y + margin_y)
        for _pin, rect in fp.pads:
            chip.call(pad_sym.symbol_id, rect.x0, rect.y0)
        writer.place(chip, 0, 0)
        return writer.render()

    def area_report(self) -> Dict[str, float]:
        """Area accounting for the Plate 2 bench (lambda^2 and mm^2 at
        lambda = 2.5 um)."""
        fp = self.floorplan()
        lam_mm = 2.5e-3
        return {
            "columns": self.columns,
            "bit_rows": self.bit_rows,
            "cells": fp.n_cells,
            "core_area_lambda2": fp.core_area,
            "die_area_lambda2": fp.die_area,
            "core_area_mm2": fp.core_area * lam_mm ** 2,
            "die_area_mm2": fp.die_area * lam_mm ** 2,
            "pads": fp.n_pads,
        }
