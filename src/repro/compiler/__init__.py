"""The chip compiler: parameterized workload spec -> verified silicon.

The paper closes with the prediction that special-purpose chips will be
*compiled*: "we believe that the efficient design of special-purpose
chips will be based on design methodologies ... in which the layout is
generated directly from a high-level specification."  This package is
that flow for the repository's systolic family.  A
:class:`~repro.compiler.spec.ChipSpec` -- kernel, cell count, character
or data width -- is elaborated into a validated logical IR, placed onto
the checkerboard grid, and lowered to both a switch-level transistor
netlist and mask geometry (sticks -> layout -> CIF), then pushed through
the same signoff gauntlet as the hand-built prototype.

Entry points:

* :func:`compile_workload` -- the programmatic front door,
* ``python -m repro.compiler`` -- the command-line flow driver,
* :meth:`repro.workloads.registry.WorkloadSpec.compile_chip` -- from the
  workload registry.

The stage-by-stage handbook lives in ``docs/COMPILER.md``.
"""

from .flow import CompiledChip, compile_workload
from .ir import build_logical_db, build_net_to_cells, elaborate, validate_ir
from .library import Library, library_for
from .place import Placement, place
from .spec import KERNELS, ChipSpec, CompileError
from .verify import differential, run_design_mutants

__all__ = [
    "ChipSpec",
    "CompileError",
    "CompiledChip",
    "KERNELS",
    "Library",
    "Placement",
    "build_logical_db",
    "build_net_to_cells",
    "compile_workload",
    "differential",
    "elaborate",
    "library_for",
    "place",
    "run_design_mutants",
    "validate_ir",
]
