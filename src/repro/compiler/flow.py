"""The flow driver: spec in, verified silicon out.

:func:`compile_workload` is the compiler's public entry point.  It runs
the front half of the flow eagerly -- spec validation, IR elaboration,
IR validation, placement -- because those are cheap and their failures
are design errors the caller wants immediately.  The expensive back half
(physical twins, floorplan, transistor netlist) is materialized lazily
by the returned :class:`CompiledChip`, so a caller who only wants to
simulate the IR never pays for layout.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..alphabet import Alphabet
from .ir import LogicalDesign, build_logical_db, build_net_to_cells, elaborate
from .library import Library, library_for
from .netlist import CompiledNetlist, elaborate_circuit
from .physical import build_assembler, build_bundles
from .place import Placement, place
from .simulate import feed_plan, mask_results, run_structural, run_switch_level
from .ir import validate_ir
from .spec import ChipSpec, CompileError

__all__ = ["CompiledChip", "compile_workload"]

_INCOMPLETE = {"match": False, "count": 0, "inner-product": 0.0}


class CompiledChip:
    """A compiled design: IR + placement eagerly, silicon on demand.

    ``bundles`` / ``assembler`` / ``netlist`` are built on first access
    and cached; ``simulate`` runs either the structural (``"ir"``) or
    the transistor-level (``"switch"``) engine over the same feed plan.
    """

    def __init__(self, spec: ChipSpec, library: Library,
                 design: LogicalDesign, placement: Placement):
        self.spec = spec
        self.library = library
        self.design = design
        self.placement = placement
        self._bundles = None
        self._assembler = None
        self._netlist: Optional[CompiledNetlist] = None

    # -- views over the IR ----------------------------------------------------

    def logical_db(self) -> Dict[str, List[str]]:
        return build_logical_db(self.design)

    def net_to_cells(self):
        return build_net_to_cells(self.design)

    # -- lazy physical views --------------------------------------------------

    @property
    def bundles(self):
        if self._bundles is None:
            self._bundles = build_bundles(self.library)
        return self._bundles

    @property
    def assembler(self):
        if self._assembler is None:
            self._assembler = build_assembler(
                self.spec, self.design, self.placement, self.bundles
            )
        return self._assembler

    @property
    def netlist(self) -> CompiledNetlist:
        if self._netlist is None:
            self._netlist = elaborate_circuit(
                self.design, self.placement, self.library
            )
        return self._netlist

    def reset_netlist(self) -> CompiledNetlist:
        """Discard simulation state: rebuild the transistor netlist."""
        self._netlist = None
        return self.netlist

    def cif(self) -> str:
        return self.assembler.to_cif()

    # -- execution ------------------------------------------------------------

    def simulate(
        self,
        params,
        stream: Sequence,
        alphabet: Optional[Alphabet] = None,
        engine: str = "ir",
    ) -> List:
        """Run one (parameters, stream) job on the compiled design.

        ``engine="ir"`` fires the placed IR's cell behaviors;
        ``engine="switch"`` drives the generated transistor netlist.
        Both return the workload output convention: one value per stream
        position, the kernel's ``incomplete`` marker before the first
        full window.
        """
        plan = feed_plan(self.spec, params, stream, alphabet)
        if engine == "ir":
            raw = run_structural(
                self.design, self.placement, self.library, plan,
                self.spec.result_bits,
            )
        elif engine == "switch":
            raw = run_switch_level(self.reset_netlist(), plan)
        else:
            raise CompileError(f"unknown engine {engine!r}")
        masked = mask_results(raw, plan, _INCOMPLETE[self.spec.kernel])
        if self.spec.kernel == "match":
            return [bool(v) for v in masked]
        if self.spec.kernel == "inner-product":
            return [float(v) for v in masked]
        return masked

    def signoff(self):
        """Run the full signoff pipeline on this design's silicon."""
        from ..signoff.pipeline import Signoff
        return Signoff().run_design(self)


def compile_workload(
    kernel: str,
    cells: int,
    char_bits: int = 2,
    data_bits: int = 2,
    name: str = "",
) -> CompiledChip:
    """Compile a parameterized workload spec down to a chip.

    >>> chip = compile_workload("match", cells=4, char_bits=2)
    >>> chip.spec.name
    'match_4x2'
    >>> sorted(chip.logical_db())
    ['accumulator', 'comparator']
    >>> len(chip.design.cells)
    12
    >>> chip.simulate("AB", "ABAB", Alphabet("ABCD"))
    [False, True, False, True]

    >>> chip = compile_workload("count", cells=3, char_bits=1)
    >>> chip.simulate("ab", "abab", Alphabet("ab"))
    [0, 2, 0, 2]

    >>> chip = compile_workload("inner-product", cells=2, data_bits=2)
    >>> chip.simulate([1, 2], [3, 1, 0, 2])
    [0.0, 5.0, 1.0, 4.0]
    """
    spec = ChipSpec(
        kernel=kernel,
        cells=cells,
        char_bits=char_bits,
        data_bits=data_bits,
        chip_name=name,
    )
    library = library_for(spec)
    design = elaborate(spec)
    validate_ir(design, library)
    placement = place(design, spec)
    return CompiledChip(spec, library, design, placement)
