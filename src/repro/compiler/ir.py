"""The compiler's intermediate representation: cells, nets, and views.

Between logical elaboration and physical assembly sits a deliberately
plain IR in the style of a synthesis database: a :class:`LogicalDesign`
holds the instance list (cell type + port-to-net connections) and the
chip's port directions, and two *views* are derived from it --

``logical_db``
    cell type -> instance names, the validation view: census checks,
    library lookups, and LVS anchoring all key off it;
``net_to_cells``
    net -> ``(instance, port)`` endpoints, the placement view: the
    placer recovers the array grid purely by walking this graph, so a
    wiring bug in elaboration becomes a placement error, not silent
    misplaced silicon.

Net naming: chip-level ports *are* nets and share their name (``P_IN0``,
``LAM_OUT``, ``R_OUT3``...); internal nets are ``<stream><row>.<col>``
(``p0.3`` = pattern bit row 0 entering column 3); ``$one`` is the
constant-TRUE net feeding row 0's ``d_in`` chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .spec import ChipSpec, CompileError

__all__ = [
    "LogicalDesign",
    "build_logical_db",
    "build_net_to_cells",
    "elaborate",
    "validate_ir",
    "CONST_ONE",
]

#: The constant-TRUE net (row 0's hardwired ``d_in``).
CONST_ONE = "$one"


@dataclass
class LogicalDesign:
    """The elaborated chip: instances, connections, and chip ports.

    ``cells`` maps instance name to ``{"type": <cell type>,
    "connections": {<port>: <net>}}``; ``ports`` maps chip port name
    (== net name) to direction (``"in"`` / ``"out"``).
    """

    name: str
    kernel: str
    cells: Dict[str, Dict] = field(default_factory=dict)
    ports: Dict[str, str] = field(default_factory=dict)

    def add_cell(self, inst: str, cell_type: str) -> Dict[str, str]:
        if inst in self.cells:
            raise CompileError(f"duplicate instance {inst!r}")
        conns: Dict[str, str] = {}
        self.cells[inst] = {"type": cell_type, "connections": conns}
        return conns

    def add_port(self, name: str, direction: str) -> str:
        if direction not in ("in", "out"):
            raise CompileError(f"bad port direction {direction!r}")
        self.ports[name] = direction
        return name


def build_logical_db(design: LogicalDesign) -> Dict[str, List[str]]:
    """The validation view: cell type -> sorted instance names.

    >>> chip = elaborate(ChipSpec("match", cells=2, char_bits=1))
    >>> for cell_type, insts in sorted(build_logical_db(chip).items()):
    ...     print(cell_type, insts)
    accumulator ['a0', 'a1']
    comparator ['c0_0', 'c1_0']
    """
    db: Dict[str, List[str]] = {}
    for inst, cell in design.cells.items():
        db.setdefault(cell["type"], []).append(inst)
    for insts in db.values():
        insts.sort()
    return db


def build_net_to_cells(
    design: LogicalDesign,
) -> Dict[str, List[Tuple[str, str]]]:
    """The placement view: net -> ``(instance, port)`` endpoints.

    Chip-level ports are nets named after themselves, so the edge nets of
    the graph are exactly ``design.ports``:

    >>> chip = elaborate(ChipSpec("match", cells=2, char_bits=1))
    >>> build_net_to_cells(chip)["P_IN0"]
    [('c0_0', 'p_in')]
    >>> build_net_to_cells(chip)["lam.1"]
    [('a0', 'lam_out'), ('a1', 'lam_in')]
    """
    graph: Dict[str, List[Tuple[str, str]]] = {}
    for inst, cell in design.cells.items():
        for port, net in cell["connections"].items():
            graph.setdefault(net, []).append((inst, port))
    return graph


# -- elaboration --------------------------------------------------------------

def elaborate(spec: ChipSpec) -> LogicalDesign:
    """Lower a :class:`ChipSpec` to a :class:`LogicalDesign`.

    The topology is the Figure 3-3/3-4 array: pattern (``p``) streams
    flow rightward, string (``s``) streams leftward, partial results
    (``d``) fall row to row, and the result row carries ``lam``/``x``
    rightward and the ``r`` bus leftward.  The numeric kernel is the
    degenerate case with zero comparator rows and bus-wide ``p``/``s``.
    """
    m, w, R = spec.cells, spec.w_rows, spec.result_bits
    design = LogicalDesign(spec.name, spec.kernel)
    result_type = _result_cell_type(spec)

    if spec.kernel in ("match", "count"):
        data_rows = [(f"p{j}", f"s{j}", 1) for j in range(w)]
    else:
        data_rows = []

    # Chip ports, canonical order: control ins, data ins, result ins,
    # then the mirrored outs (the pad ring follows this order).
    design.add_port("LAM_IN", "in")
    if spec.kernel in ("match", "count"):
        design.add_port("X_IN", "in")
        for j in range(w):
            design.add_port(f"P_IN{j}", "in")
        for j in range(w):
            design.add_port(f"S_IN{j}", "in")
    else:
        for b in range(spec.data_bits):
            design.add_port(f"P_IN{b}", "in")
        for b in range(spec.data_bits):
            design.add_port(f"S_IN{b}", "in")
    for b in range(R):
        design.add_port(f"R_IN{b}", "in")
    design.add_port("LAM_OUT", "out")
    if spec.kernel in ("match", "count"):
        design.add_port("X_OUT", "out")
        for j in range(w):
            design.add_port(f"P_OUT{j}", "out")
        for j in range(w):
            design.add_port(f"S_OUT{j}", "out")
    else:
        for b in range(spec.data_bits):
            design.add_port(f"P_OUT{b}", "out")
        for b in range(spec.data_bits):
            design.add_port(f"S_OUT{b}", "out")
    for b in range(R):
        design.add_port(f"R_OUT{b}", "out")

    def right_net(stream: str, i: int, first: str, last: str) -> Tuple[str, str]:
        """(input net, output net) of column *i* on a rightward stream."""
        inp = first if i == 0 else f"{stream}.{i}"
        out = last if i == m - 1 else f"{stream}.{i + 1}"
        return inp, out

    def left_net(stream: str, i: int, first: str, last: str) -> Tuple[str, str]:
        """(input net, output net) of column *i* on a leftward stream."""
        inp = first if i == m - 1 else f"{stream}.{i}"
        out = last if i == 0 else f"{stream}.{i - 1}"
        return inp, out

    # Comparator rows (matching kernels only).
    for j, (p, s, _width) in enumerate(data_rows):
        for i in range(m):
            conns = design.add_cell(f"c{i}_{j}", "comparator")
            conns["p_in"], conns["p_out"] = right_net(
                p, i, f"P_IN{j}", f"P_OUT{j}"
            )
            conns["s_in"], conns["s_out"] = left_net(
                s, i, f"S_IN{j}", f"S_OUT{j}"
            )
            conns["d_in"] = CONST_ONE if j == 0 else f"d{i}.{j}"
            conns["d_out"] = f"d{i}.{j + 1}"

    # The result row.
    for i in range(m):
        conns = design.add_cell(f"a{i}", result_type)
        conns["lam_in"], conns["lam_out"] = right_net(
            "lam", i, "LAM_IN", "LAM_OUT"
        )
        if spec.kernel in ("match", "count"):
            conns["x_in"], conns["x_out"] = right_net("x", i, "X_IN", "X_OUT")
            conns["d_in"] = f"d{i}.{w}"
        else:
            for b in range(spec.data_bits):
                conns[f"p_in{b}"], conns[f"p_out{b}"] = right_net(
                    f"p{b}", i, f"P_IN{b}", f"P_OUT{b}"
                )
                conns[f"s_in{b}"], conns[f"s_out{b}"] = left_net(
                    f"s{b}", i, f"S_IN{b}", f"S_OUT{b}"
                )
        for b in range(R):
            conns[f"r_in{b}"], conns[f"r_out{b}"] = left_net(
                f"r{b}", i, f"R_IN{b}", f"R_OUT{b}"
            )
    return design


def _result_cell_type(spec: ChipSpec) -> str:
    if spec.kernel == "match":
        return "accumulator"
    if spec.kernel == "count":
        return f"counter{spec.result_bits}"
    return f"mac{spec.data_bits}x{spec.result_bits}"


# -- validation ---------------------------------------------------------------

def validate_ir(design: LogicalDesign, library) -> None:
    """Check the IR against the cell library; raise :class:`CompileError`.

    Rules: every instance's type exists in the library and its connection
    set matches the type's port list exactly; every net has exactly one
    driver (a cell output, a chip ``in`` port, or the constant net) and
    at least one sink; chip ``out`` ports are driven.
    """
    types = library.cell_types()
    drivers: Dict[str, List[str]] = {}
    sinks: Dict[str, List[str]] = {}
    for inst, cell in design.cells.items():
        ct = types.get(cell["type"])
        if ct is None:
            raise CompileError(
                f"instance {inst!r} uses unknown cell type {cell['type']!r}"
            )
        want = set(ct.inputs) | set(ct.outputs)
        have = set(cell["connections"])
        if want != have:
            missing = sorted(want - have)
            extra = sorted(have - want)
            raise CompileError(
                f"instance {inst!r} port mismatch for {cell['type']!r}: "
                f"missing {missing}, extra {extra}"
            )
        for port, net in cell["connections"].items():
            bucket = drivers if port in ct.outputs else sinks
            bucket.setdefault(net, []).append(f"{inst}.{port}")
    for name, direction in design.ports.items():
        bucket = drivers if direction == "in" else sinks
        bucket.setdefault(name, []).append(f"chip.{name}")
    drivers.setdefault(CONST_ONE, []).append("const.$one")

    for net, who in drivers.items():
        if len(who) > 1:
            raise CompileError(f"net {net!r} has {len(who)} drivers: {who}")
    for net in set(drivers) | set(sinks):
        if net not in drivers:
            raise CompileError(f"net {net!r} has no driver (sinks: {sinks[net]})")
        if net not in sinks and net != CONST_ONE:
            raise CompileError(f"net {net!r} drives nothing ({drivers[net]})")
