"""Placement: recover the array grid from the ``net_to_cells`` graph.

The placer deliberately does *not* trust instance names.  It derives the
grid the way a traveller would map the chip: start at a chip input pin,
follow the stream from cell to cell, and record the order of arrival.
The result row is the walk of the ``lam`` chain from ``LAM_IN``; each
comparator row is the walk of its ``P_IN<j>`` chain; the ``d`` chains
are then checked column by column so a mis-wired elaboration is caught
here, as a placement error, before any silicon is generated.

Polarity and clocking fall out of the grid: cell (column *i*, row *j*)
is the positive twin when ``(i + j)`` is even and fires on clock phase
``phi[(i + j) % 2]`` -- the checkerboard discipline of Figure 3-4, with
the result row at index ``w``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .ir import CONST_ONE, LogicalDesign, build_net_to_cells
from .spec import ChipSpec, CompileError

__all__ = ["Placement", "place"]


@dataclass
class Placement:
    """The recovered grid: instance -> (column, row) and back.

    Row indices follow the polarity scheme: comparator row 0 on top,
    the result row at index ``w_rows``.
    """

    columns: int
    w_rows: int
    loc: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    grid: Dict[Tuple[int, int], str] = field(default_factory=dict)

    @property
    def result_row(self) -> int:
        return self.w_rows

    def is_positive(self, inst: str) -> bool:
        i, j = self.loc[inst]
        return (i + j) % 2 == 0

    def phase_index(self, inst: str) -> int:
        i, j = self.loc[inst]
        return (i + j) % 2

    def row(self, j: int) -> List[str]:
        return [self.grid[(i, j)] for i in range(self.columns)]


def _walk_chain(
    graph: Dict[str, List[Tuple[str, str]]],
    design: LogicalDesign,
    start_net: str,
    in_port: str,
    out_port: str,
) -> List[str]:
    """Follow a rightward stream from a chip input pin to the output pin."""
    order: List[str] = []
    net = start_net
    seen = set()
    while True:
        sinks = [(i, p) for i, p in graph.get(net, []) if p == in_port]
        if not sinks:
            if net in design.ports and design.ports[net] == "out":
                return order
            raise CompileError(
                f"stream chain from {start_net!r} dead-ends at net {net!r}"
            )
        if len(sinks) > 1:
            raise CompileError(
                f"net {net!r} fans out to {len(sinks)} {in_port!r} sinks"
            )
        inst = sinks[0][0]
        if inst in seen:
            raise CompileError(f"stream chain from {start_net!r} loops at {inst!r}")
        seen.add(inst)
        order.append(inst)
        net = design.cells[inst]["connections"][out_port]


def place(design: LogicalDesign, spec: ChipSpec) -> Placement:
    """Derive the grid from the IR connectivity and verify it is an array.

    >>> from .ir import elaborate
    >>> spec = ChipSpec("match", cells=3, char_bits=1)
    >>> p = place(elaborate(spec), spec)
    >>> p.row(1)
    ['a0', 'a1', 'a2']
    >>> p.loc["c2_0"], p.is_positive("c2_0")
    ((2, 0), True)
    """
    graph = build_net_to_cells(design)
    m, w = spec.cells, spec.w_rows

    result_row = _walk_chain(graph, design, "LAM_IN", "lam_in", "lam_out")
    if len(result_row) != m:
        raise CompileError(
            f"lam chain visits {len(result_row)} cells; spec says {m} columns"
        )
    rows: List[List[str]] = []
    for j in range(w):
        row = _walk_chain(graph, design, f"P_IN{j}", "p_in", "p_out")
        if len(row) != m:
            raise CompileError(
                f"row {j} p chain visits {len(row)} cells; spec says {m}"
            )
        rows.append(row)
    rows.append(result_row)

    pl = Placement(columns=m, w_rows=w)
    for j, row in enumerate(rows):
        for i, inst in enumerate(row):
            if inst in pl.loc:
                raise CompileError(f"instance {inst!r} appears in two rows")
            pl.loc[inst] = (i, j)
            pl.grid[(i, j)] = inst
    if len(pl.loc) != len(design.cells):
        missing = sorted(set(design.cells) - set(pl.loc))
        raise CompileError(f"instances unreachable from any chain: {missing}")

    # Column alignment: each cell's d chain must fall straight down.
    for j in range(w):
        for i in range(m):
            inst = pl.grid[(i, j)]
            conns = design.cells[inst]["connections"]
            if j == 0 and conns["d_in"] != CONST_ONE:
                raise CompileError(
                    f"row 0 cell {inst!r} d_in is {conns['d_in']!r}, "
                    f"expected the constant net"
                )
            below = pl.grid[(i, j + 1)]
            below_d = design.cells[below]["connections"]["d_in"]
            if conns["d_out"] != below_d:
                raise CompileError(
                    f"d chain broken at column {i}: {inst!r} drives "
                    f"{conns['d_out']!r} but {below!r} listens on {below_d!r}"
                )
    return pl
