"""Chip specifications: the compiler's input language.

Section 4's methodology starts from "a precise functional specification
of the chip"; here that is a :class:`ChipSpec` -- a kernel name plus the
two or three numbers that size the machine.  Everything else (result-bus
width, comparator row count, cell library, floorplan) is *derived*, which
is the point of a silicon compiler: the designer states the problem, the
flow computes the silicon.

Supported kernels (the Section 3 machines with real cell circuits):

``match``
    Wildcard substring matching -- ``char_bits`` comparator rows over a
    row of one-bit accumulators (the fabricated prototype's function).
``count``
    Per-window count of matching positions -- the same comparator rows
    over a row of :mod:`counting cells <repro.circuit.cells.counter>`
    with a ripple counter wide enough that a full window never wraps.
``inner-product``
    Sliding inner products over small unsigned integers -- a single row
    of :mod:`multiply-accumulate cells <repro.circuit.cells.mac>` with
    ``data_bits``-wide operand buses and an accumulator sized so the
    worst-case window sum never wraps.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError

__all__ = ["CompileError", "ChipSpec", "KERNELS"]

#: Kernels the compiler can lower to silicon.
KERNELS = ("match", "count", "inner-product")


class CompileError(ReproError):
    """Invalid chip specification or inconsistent intermediate form."""


@dataclass(frozen=True)
class ChipSpec:
    """One chip, fully parameterized.

    ``cells`` is the column count *m* (the longest pattern / tap vector
    the chip accepts); ``char_bits`` is the character width *w* for the
    matching kernels; ``data_bits`` is the operand width *B* for the
    numeric kernel.  ``name`` defaults to a size-mnemonic identifier.

    >>> ChipSpec("match", cells=8).name
    'match_8x2'
    >>> ChipSpec("count", cells=12, char_bits=3).result_bits
    4
    >>> ChipSpec("inner-product", cells=4, data_bits=2).result_bits
    6
    """

    kernel: str
    cells: int
    char_bits: int = 2
    data_bits: int = 2
    chip_name: str = ""

    def __post_init__(self) -> None:
        if self.kernel not in KERNELS:
            raise CompileError(
                f"unknown kernel {self.kernel!r} (known: {', '.join(KERNELS)})"
            )
        if self.cells < 2:
            raise CompileError("a chip needs at least two cells")
        if self.kernel in ("match", "count") and self.char_bits < 1:
            raise CompileError("char_bits must be at least 1")
        if self.kernel == "inner-product" and self.data_bits < 1:
            raise CompileError("data_bits must be at least 1")

    # -- derived dimensions -------------------------------------------------

    @property
    def w_rows(self) -> int:
        """Comparator rows above the result row (0 for numeric kernels)."""
        return self.char_bits if self.kernel in ("match", "count") else 0

    @property
    def result_row(self) -> int:
        """Row index of the result row in the (i + j) polarity scheme."""
        return self.w_rows

    @property
    def result_bits(self) -> int:
        """Result-bus width, sized so a full window never wraps.

        ``match`` carries one bit.  ``count`` can reach ``cells`` (every
        position matches), needing ``cells.bit_length()`` bits.  The
        inner product of ``cells`` maximal ``data_bits``-wide operands
        reaches ``cells * (2**data_bits - 1)**2``; the accumulator is
        additionally at least ``2 * data_bits`` wide so a single product
        always fits.
        """
        if self.kernel == "match":
            return 1
        if self.kernel == "count":
            return max(2, self.cells.bit_length())
        peak = self.cells * (2 ** self.data_bits - 1) ** 2
        return max(2 * self.data_bits, peak.bit_length())

    @property
    def name(self) -> str:
        if self.chip_name:
            return self.chip_name
        if self.kernel == "inner-product":
            return f"ip_{self.cells}x{self.data_bits}"
        return f"{self.kernel}_{self.cells}x{self.char_bits}"
