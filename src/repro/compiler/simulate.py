"""Simulate compiled designs: one feed plan, two execution engines.

A :class:`FeedPlan` captures the host's feeding discipline for one run
-- what to drive on every chip input pin each beat, and at which beats
results exit -- shared verbatim by

* the **structural** engine (:func:`run_structural`), which fires the
  library behaviors of the placed IR on the Figure 3-4 checkerboard
  schedule (cell (i, j) active on beats of parity ``(i + j) % 2``), and
* the **switch-level** engine (:func:`run_switch_level`), which drives
  the generated transistor netlist pin by pin and clock phase by clock
  phase.

Both return the same result mapping, so a compiled design can be checked
behavior-against-silicon with a single comparison -- and both are in
turn compared against the workload registry's ``fast`` and ``oracle``
engines by :mod:`repro.compiler.verify`.

For the matching kernels the plan is
:func:`repro.core.bit_level.bit_feed_schedule` -- the same staggered-bit
discipline the prototype uses, with pattern bit *j* of character *c*
entering row *j* at beat ``2c + j`` and results exiting at
``e_s + 2q + w + m``.  The numeric kernel carries whole values on its
buses, so its plan is the character-level schedule: tap *c* (with its
``lambda`` bit) enters at beat ``2c``, stream sample *q* at
``e_s + 2q``, and the window ending at *q* exits at ``e_s + 2q + m``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..alphabet import Alphabet, PatternChar, parse_pattern
from ..circuit.signals import HIGH, UNKNOWN
from ..core.bit_level import bit_feed_schedule
from ..errors import PatternError
from ..streams import RecirculatingPattern
from ..systolic.cell import is_bubble
from .ir import CONST_ONE, LogicalDesign
from .library import Library
from .netlist import CompiledNetlist
from .place import Placement
from .spec import ChipSpec, CompileError

__all__ = [
    "FeedPlan",
    "feed_plan",
    "run_structural",
    "run_switch_level",
    "mask_results",
]


@dataclass
class FeedPlan:
    """Host-side stimulus for one run of a compiled chip.

    ``drive[b]`` maps every data input pin to its logical bit for beat
    *b*; ``exit_beat`` maps a beat number to the stream position whose
    result is sampled *after the previous beat's pulse* (the convention
    of :class:`~repro.circuit.chipnet.GateLevelMatcher`); ``k`` is the
    first stream position with a complete window.
    """

    n_beats: int
    drive: List[Dict[str, int]]
    exit_beat: Dict[int, int]
    n_stream: int
    k: int


def feed_plan(
    spec: ChipSpec,
    params,
    stream: Sequence,
    alphabet: Optional[Alphabet] = None,
) -> FeedPlan:
    """Build the feed plan for one (parameters, stream) run."""
    if spec.kernel in ("match", "count"):
        return _feed_plan_bits(spec, params, stream, alphabet)
    return _feed_plan_values(spec, params, stream)


def _feed_plan_bits(spec, params, stream, alphabet) -> FeedPlan:
    if alphabet is None:
        raise CompileError(f"kernel {spec.kernel!r} needs an alphabet")
    if alphabet.bits != spec.char_bits:
        raise CompileError(
            f"alphabet encodes {alphabet.bits}-bit characters; the chip "
            f"has {spec.char_bits} comparator rows"
        )
    if params and all(isinstance(pc, PatternChar) for pc in params):
        pattern = list(params)
    else:
        pattern = parse_pattern(params, alphabet)
    if len(pattern) > spec.cells:
        raise PatternError("pattern does not fit in the array")
    chars = alphabet.validate_text(stream)
    m, w = spec.cells, spec.char_bits
    items = RecirculatingPattern(pattern).items
    e_s = m + 1
    n_beats = e_s + 2 * max(0, len(chars) - 1) + w + m + 2
    schedule = bit_feed_schedule(alphabet, items, chars, m, w, e_s, n_beats)
    drive: List[Dict[str, int]] = []
    for beat in schedule:
        pins: Dict[str, int] = {}
        for j in range(w):
            pb, sb = beat.p_row_in[j], beat.s_row_in[j]
            pins[f"P_IN{j}"] = 0 if is_bubble(pb) else int(pb)
            pins[f"S_IN{j}"] = 0 if is_bubble(sb) else int(sb)
        lam = beat.lam_in
        pins["LAM_IN"] = 0 if is_bubble(lam) else int(lam.is_last)
        pins["X_IN"] = 0 if is_bubble(lam) else int(lam.is_wild)
        drive.append(pins)
    exit_beat = {e_s + 2 * q + w + m: q for q in range(len(chars))}
    return FeedPlan(n_beats, drive, exit_beat, len(chars), len(pattern) - 1)


def _feed_plan_values(spec, params, stream) -> FeedPlan:
    B, m = spec.data_bits, spec.cells
    taps = [int(v) for v in params]
    if not taps:
        raise PatternError("inner product needs at least one tap")
    if len(taps) > m:
        raise PatternError("tap vector does not fit in the array")
    samples = [int(v) for v in stream]
    top = 1 << B
    for v in taps + samples:
        if not 0 <= v < top:
            raise CompileError(
                f"value {v} does not fit the chip's {B}-bit data bus"
            )
    L = len(taps)
    e_s = m + 1
    n_beats = e_s + 2 * max(0, len(samples) - 1) + m + 2
    drive: List[Dict[str, int]] = []
    for b in range(n_beats):
        pins = {f"P_IN{k}": 0 for k in range(B)}
        pins.update({f"S_IN{k}": 0 for k in range(B)})
        pins["LAM_IN"] = 0
        if b % 2 == 0:
            c = (b // 2) % L
            for k in range(B):
                pins[f"P_IN{k}"] = (taps[c] >> k) & 1
            pins["LAM_IN"] = int(c == L - 1)
        if b >= e_s and (b - e_s) % 2 == 0:
            q = (b - e_s) // 2
            if q < len(samples):
                for k in range(B):
                    pins[f"S_IN{k}"] = (samples[q] >> k) & 1
        drive.append(pins)
    exit_beat = {e_s + 2 * q + m: q for q in range(len(samples))}
    return FeedPlan(n_beats, drive, exit_beat, len(samples), L - 1)


# -- structural engine --------------------------------------------------------

def run_structural(
    design: LogicalDesign,
    placement: Placement,
    library: Library,
    plan: FeedPlan,
    result_bits: int,
) -> Dict[int, int]:
    """Fire the placed IR's cell behaviors on the checkerboard schedule.

    Nets start at 0 (power-up garbage is irrelevant: every sampled
    window is preceded by a ``lambda`` clear, exactly as in silicon).
    Returns stream position -> raw result value.
    """
    types = library.cell_types()
    behaviors = {
        inst: types[cell["type"]].behavior()
        for inst, cell in design.cells.items()
    }
    conns = {inst: cell["connections"] for inst, cell in design.cells.items()}
    inputs_of = {
        inst: types[cell["type"]].inputs for inst, cell in design.cells.items()
    }
    by_parity: Dict[int, List[str]] = {0: [], 1: []}
    for inst in design.cells:
        by_parity[placement.phase_index(inst)].append(inst)

    nets: Dict[str, int] = {CONST_ONE: 1}
    results: Dict[int, int] = {}
    for b in range(plan.n_beats):
        nets.update(plan.drive[b])
        nets[CONST_ONE] = 1
        active = by_parity[b % 2]
        staged = [
            (inst, behaviors[inst].fire(
                {p: nets.get(conns[inst][p], 0) for p in inputs_of[inst]}
            ))
            for inst in active
        ]
        for inst, outs in staged:
            for port, v in outs.items():
                nets[conns[inst][port]] = v
        q = plan.exit_beat.get(b + 1)
        if q is not None:
            results[q] = sum(
                nets.get(f"R_OUT{i}", 0) << i for i in range(result_bits)
            )
    return results


# -- switch-level engine ------------------------------------------------------

def run_switch_level(net: CompiledNetlist, plan: FeedPlan) -> Dict[int, int]:
    """Drive the generated transistor netlist through the plan.

    Returns stream position -> raw result value; positions whose sampled
    nodes were still UNKNOWN (power-up garbage before the first lambda
    clear reaches them) are omitted, as in the prototype harness.
    """
    out_inv = net.out_invert.get("R_OUT0", False)
    results: Dict[int, int] = {}
    for b in range(plan.n_beats):
        for pin, bit in plan.drive[b].items():
            net.drive_pin(pin, bit)
        net.pulse(b)
        q = plan.exit_beat.get(b + 1)
        if q is None:
            continue
        value, valid = 0, True
        for i, node in enumerate(net.result_nodes):
            v = net.circuit.read(node)
            if v is UNKNOWN:
                valid = False
                break
            value |= int((v is HIGH) ^ out_inv) << i
        if valid:
            results[q] = value
    return results


def mask_results(
    results: Dict[int, int], plan: FeedPlan, incomplete
) -> List:
    """Window-mask raw results into the workload output convention:
    one value per stream position, ``incomplete`` before the first full
    window (and for positions the engine never sampled)."""
    return [
        results.get(i, incomplete) if i >= plan.k else incomplete
        for i in range(plan.n_stream)
    ]
