"""Physical assembly: bundles, floorplan, and CIF for a placed design.

Each library cell type is lowered to its two physical twins (circuit ->
sticks -> layout, by the same mechanical generators that built the
prototype cells), and the placed grid is handed to the generic
:class:`~repro.layout.assembly.ArrayAssembler`: result row at the
bottom, comparator rows above with row 0 on top, one pad per chip port
plus power and clocks -- the Plate 2 arrangement at whatever size the
spec asked for.
"""

from __future__ import annotations

from typing import Dict, List

from ..layout.assembly import ArrayAssembler
from ..layout.cells import CellBundle
from .ir import LogicalDesign
from .library import Library
from .place import Placement
from .spec import ChipSpec

__all__ = ["build_bundles", "build_assembler"]


def build_bundles(library: Library) -> Dict[str, CellBundle]:
    """Both physical twins of every library cell, keyed by twin name."""
    bundles: Dict[str, CellBundle] = {}
    for ct in library.cell_types().values():
        for positive in (True, False):
            b = ct.bundle(positive)
            bundles[b.name] = b
    return bundles


def build_assembler(
    spec: ChipSpec,
    design: LogicalDesign,
    placement: Placement,
    bundles: Dict[str, CellBundle],
) -> ArrayAssembler:
    """Floorplan the placed grid and ring it with pads."""
    layouts = {name: b.layout for name, b in bundles.items()}
    w = placement.w_rows

    def twin_name(inst: str) -> str:
        cell_type = design.cells[inst]["type"]
        suffix = "pos" if placement.is_positive(inst) else "neg"
        return f"{cell_type}_{suffix}"

    # Bottom row first: the result row, then comparator rows w-1 .. 0.
    rows: List[List[str]] = [[twin_name(i) for i in placement.row(w)]]
    for j in range(w - 1, -1, -1):
        rows.append([twin_name(i) for i in placement.row(j)])

    pins = ["VDD", "GND", "PHI1", "PHI2"] + list(design.ports)
    return ArrayAssembler(layouts, rows, pins, name=spec.name)
