"""Netlist generation: the placed IR as one switch-level circuit.

This is the compiler's counterpart of the hand-built
:class:`~repro.circuit.chipnet.MatcherArrayNetlist`, generalized to any
placed design: every instance is built by its library cell's ``build``
hook on the clock phase its grid parity dictates, every IR net becomes a
chain of always-on wire transistors joining its endpoint nodes, chip
ports get ``pin.<NAME>`` nodes, and the polarity bookkeeping the twins
impose (which pins must be driven complemented, whether the result
emerges complemented) is recorded for the simulation harness.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..circuit.netlist import GND, VDD, Circuit
from ..circuit.signals import HIGH, LOW
from .ir import CONST_ONE, LogicalDesign, build_net_to_cells
from .library import Library
from .place import Placement
from .spec import CompileError

__all__ = ["CompiledNetlist", "elaborate_circuit"]


class CompiledNetlist:
    """The generated chip circuit plus its pin/polarity book-keeping.

    ``pins`` maps chip port name to its ``pin.<NAME>`` node;
    ``in_invert[name]`` says whether a driven input pin takes the
    complemented value (its first sink is a negative twin);
    ``out_invert[name]`` says whether an output pin's electrical level is
    the complement of the logical value (its driver is a positive twin,
    whose output inverter emits the complement);
    ``result_nodes[b]`` is the driver node of ``R_OUT<b>`` (read directly,
    as the host would probe the pad).
    """

    def __init__(self, name: str, retention_ns: float = 1e9):
        self.circuit = Circuit(name, retention_ns=retention_ns)
        self.phi: Tuple[str, str] = ("phi1", "phi2")
        self.circuit.set_input("phi1", LOW)
        self.circuit.set_input("phi2", LOW)
        self.pins: Dict[str, str] = {}
        self.in_invert: Dict[str, bool] = {}
        self.out_invert: Dict[str, bool] = {}
        self.result_nodes: List[str] = []
        self.instance_ports: Dict[str, Dict[str, str]] = {}

    def pulse(self, beat: int, phase_high_ns: float = 100.0,
              gap_ns: float = 25.0) -> None:
        """One beat: raise the beat's phase, settle, lower it."""
        c = self.circuit
        phase = self.phi[beat % 2]
        c.set_input(phase, HIGH)
        c.settle()
        c.advance_time(phase_high_ns)
        c.set_input(phase, LOW)
        c.settle()
        c.advance_time(gap_ns)

    def drive_pin(self, name: str, bit: int) -> None:
        """Drive an input pin with a logical bit, honouring twin polarity."""
        v = bool(bit) ^ self.in_invert[name]
        self.circuit.set_input(self.pins[name], HIGH if v else LOW)

    @property
    def n_transistors(self) -> int:
        return self.circuit.n_transistors


def elaborate_circuit(
    design: LogicalDesign,
    placement: Placement,
    library: Library,
    retention_ns: float = 1e9,
) -> CompiledNetlist:
    """Build the whole-chip switch-level circuit for a placed design."""
    net = CompiledNetlist(design.name, retention_ns=retention_ns)
    c = net.circuit
    types = library.cell_types()

    for inst, cell in design.cells.items():
        ct = types[cell["type"]]
        k = placement.phase_index(inst)
        net.instance_ports[inst] = ct.build(
            c, f"{inst}.", net.phi[k], net.phi[1 - k],
            placement.is_positive(inst),
        )

    def node_of(endpoint: Tuple[str, str]) -> str:
        inst, port = endpoint
        return net.instance_ports[inst][port]

    graph = build_net_to_cells(design)
    for name, direction in design.ports.items():
        net.pins[name] = f"pin.{name}"
    for netname, endpoints in graph.items():
        if netname == CONST_ONE:
            # Row 0's hardwired TRUE: each sink sees its own rail.
            for ep in endpoints:
                rail = VDD if placement.is_positive(ep[0]) else GND
                _wire(c, rail, node_of(ep))
            continue
        nodes = [node_of(ep) for ep in endpoints]
        if netname in net.pins:
            nodes.append(net.pins[netname])
        if len(nodes) < 2:
            raise CompileError(f"net {netname!r} has a single endpoint")
        for other in nodes[1:]:
            _wire(c, nodes[0], other)

    # Polarity book-keeping per chip pin: inputs are complemented when the
    # receiving twin is negative; outputs are complemented when the
    # driving twin is positive (its output inverter emits the complement).
    types_outputs = {n: set(t.outputs) for n, t in types.items()}
    for name, direction in design.ports.items():
        eps = graph.get(name, [])
        if not eps:
            raise CompileError(f"chip port {name!r} connects to no cell")
        inst, port = eps[0]
        pos = placement.is_positive(inst)
        if direction == "in":
            net.in_invert[name] = not pos
        else:
            if port not in types_outputs[design.cells[inst]["type"]]:
                raise CompileError(f"chip port {name!r} driven by input {port!r}")
            net.out_invert[name] = pos

    # The result-in pins carry "no result yet": tie each to logical 0.
    R = sum(1 for p in design.ports if p.startswith("R_OUT"))
    for b in range(R):
        net.drive_pin(f"R_IN{b}", 0)
        net.result_nodes.append(
            node_of(next(ep for ep in graph[f"R_OUT{b}"]))
        )
    return net


def _wire(c: Circuit, a: str, b: str) -> None:
    """Join two nodes with a permanent wire (a VDD-gated channel)."""
    c.add_enhancement(VDD, a, b, label=f"wire:{a}={b}")
