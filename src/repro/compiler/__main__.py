"""Command-line flow driver: ``python -m repro.compiler``.

With no arguments, compiles the acceptance matrix -- every kernel at two
sizes, one larger than the 8-cell prototype -- and prints one line per
design.  ``--kernel`` (with ``--cells`` etc.) compiles a single point
instead.  ``--signoff`` pushes each compiled design through the full
signoff pipeline and exits non-zero if any design fails; ``--verify``
runs the differential check (structural and switch-level engines against
the workload registry's fast and oracle engines) on a seeded sample job;
``--json`` archives the signoff reports for CI.
"""

from __future__ import annotations

import argparse
import json
import random
import sys

from ..alphabet import Alphabet
from ..signoff.pipeline import Signoff
from .flow import compile_workload
from .spec import KERNELS
from .verify import differential

#: The default compile matrix: every kernel at two sizes, one beyond the
#: prototype's 8 columns.
MATRIX = (
    ("match", 8, 2, 2),
    ("match", 16, 4, 2),
    ("count", 8, 2, 2),
    ("count", 12, 3, 2),
    ("inner-product", 4, 2, 2),
    ("inner-product", 6, 2, 2),
)


def _sample_job(spec):
    """A deterministic sample job for one compiled design."""
    rng = random.Random(20260808)
    if spec.kernel == "inner-product":
        top = 1 << spec.data_bits
        taps = [(i % (top - 1)) + 1 for i in range(min(spec.cells, 3))]
        stream = [rng.randrange(top) for _ in range(24)]
        return taps, stream, None
    symbols = "".join(chr(ord("A") + i) for i in range(1 << spec.char_bits))
    alphabet = Alphabet(symbols)
    pattern = symbols[: min(spec.cells, 3)]
    stream = "".join(rng.choice(symbols) for _ in range(24))
    return pattern, stream, alphabet


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.compiler",
        description="Compile parameterized workload specs to silicon "
        "(netlist, layout, CIF) and optionally run signoff and "
        "differential verification.",
    )
    parser.add_argument(
        "--kernel", choices=KERNELS,
        help="compile a single design instead of the default matrix",
    )
    parser.add_argument(
        "--cells", type=int, default=8,
        help="with --kernel: array columns (default 8)",
    )
    parser.add_argument(
        "--char-bits", type=int, default=2,
        help="with --kernel: bits per character (default 2)",
    )
    parser.add_argument(
        "--data-bits", type=int, default=2,
        help="with --kernel: data bus width of numeric kernels (default 2)",
    )
    parser.add_argument(
        "--signoff", action="store_true",
        help="run the full signoff pipeline on every compiled design",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="differentially verify each design (structural and "
        "switch-level vs the workload fast and oracle engines)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="write the signoff report(s) to PATH (implies --signoff; a "
        "single report for --kernel, a name-keyed object for the matrix)",
    )
    parser.add_argument(
        "--cif", metavar="PATH",
        help="with --kernel: write the design's CIF to PATH",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the text summary"
    )
    args = parser.parse_args(argv)
    if args.json:
        args.signoff = True
    if args.cif and not args.kernel:
        parser.error("--cif needs --kernel (one design, one CIF)")

    if args.kernel:
        points = [(args.kernel, args.cells, args.char_bits, args.data_bits)]
    else:
        points = list(MATRIX)

    signoff = Signoff()
    reports = {}
    failures = 0
    for kernel, cells, char_bits, data_bits in points:
        chip = compile_workload(
            kernel, cells, char_bits=char_bits, data_bits=data_bits
        )
        line = (
            f"{chip.spec.name:12s} {len(chip.design.cells):3d} cells "
            f"{chip.netlist.n_transistors:5d} transistors"
        )
        if args.signoff:
            report = signoff.run_design(chip)
            reports[chip.spec.name] = report
            line += f"  signoff={'PASS' if report.ok else 'FAIL'}"
            if not report.ok:
                failures += 1
        if args.verify:
            params, stream, alphabet = _sample_job(chip.spec)
            d = differential(
                chip, params, stream, alphabet, engines=("ir", "switch")
            )
            line += f"  differential={'PASS' if d.ok else 'FAIL'}"
            if not d.ok:
                failures += 1
                line += f" ({d.detail})"
        if args.cif:
            with open(args.cif, "w") as fh:
                fh.write(chip.cif())
            line += f"  cif={args.cif}"
        if not args.quiet:
            print(line)

    if args.json:
        if args.kernel:
            payload = next(iter(reports.values())).to_dict()
        else:
            payload = {name: r.to_dict() for name, r in reports.items()}
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    if not args.quiet and args.signoff:
        bad = [n for n, r in reports.items() if not r.ok]
        print(
            f"{len(reports)} design(s) through signoff"
            + (f"; FAILED: {', '.join(bad)}" if bad else ", all clean")
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
