"""The compiler's cell library: one entry per IR cell type.

A :class:`CellType` ties together everything the flow needs to know
about one cell, across all abstraction levels:

* ``inputs`` / ``outputs`` -- the IR port contract (buses bit-flattened),
* ``build`` -- the switch-level constructor (netlist elaboration),
* ``bundle`` -- the physical twin factory (circuit + sticks + layout,
  consumed by DRC / extraction / LVS),
* ``behavior`` -- the cycle-accurate logical model (structural
  simulation, the differential-verification reference).

:func:`library_for` assembles the :class:`Library` a given
:class:`~repro.compiler.spec.ChipSpec` elaborates against; result-cell
types are parameterized by bus width, so ``counter4`` and ``counter5``
are distinct library entries with distinct layouts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..circuit.cells.accumulator import build_accumulator
from ..circuit.cells.comparator import build_comparator
from ..circuit.cells.counter import build_counter
from ..circuit.cells.mac import build_mac
from ..circuit.netlist import Circuit
from ..layout.cells import (
    CellBundle,
    accumulator_bundle,
    comparator_bundle,
    counter_bundle,
    mac_bundle,
)
from .spec import ChipSpec, CompileError

__all__ = ["CellType", "Library", "library_for"]


@dataclass(frozen=True)
class CellType:
    """One library cell: IR contract + netlist, layout, and behavior
    factories.

    ``build(circuit, prefix, clk, clk_other, positive)`` adds one
    instance and returns its port-name -> node map (IR port names);
    ``bundle(positive)`` returns the physical twin; ``behavior()``
    returns a fresh cycle model with ``fire(inputs) -> outputs`` over
    0/1-valued IR ports.
    """

    name: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    build: Callable[[Circuit, str, str, str, bool], Dict[str, str]]
    bundle: Callable[[bool], CellBundle]
    behavior: Callable[[], object]


# -- cycle-accurate behaviors -------------------------------------------------

class ComparatorBehavior:
    """d_out <- d_in AND (p == s); operands latched through."""

    def fire(self, ins: Dict[str, int]) -> Dict[str, int]:
        p, s, d = ins["p_in"], ins["s_in"], ins["d_in"]
        return {"p_out": p, "s_out": s, "d_out": int(bool(d) and p == s)}


class AccumulatorBehavior:
    """t <- t AND (x OR d), emitted and reset on lambda."""

    def __init__(self) -> None:
        self.t = True

    def fire(self, ins: Dict[str, int]) -> Dict[str, int]:
        lam, x, d = ins["lam_in"], ins["x_in"], ins["d_in"]
        t2 = self.t and (bool(x) or bool(d))
        if lam:
            r, self.t = t2, True
        else:
            r, self.t = bool(ins["r_in0"]), t2
        return {"lam_out": lam, "x_out": x, "r_out0": int(r)}


class CounterBehavior:
    """t <- t + (x OR d), emitted and cleared on lambda (mod 2**bits,
    exactly as the ripple hardware wraps)."""

    def __init__(self, bits: int) -> None:
        self.bits = bits
        self.t = 0

    def fire(self, ins: Dict[str, int]) -> Dict[str, int]:
        lam, x, d = ins["lam_in"], ins["x_in"], ins["d_in"]
        t2 = (self.t + (1 if (x or d) else 0)) % (1 << self.bits)
        if lam:
            r, self.t = t2, 0
        else:
            r = sum(ins[f"r_in{b}"] << b for b in range(self.bits))
            self.t = t2
        out = {"lam_out": lam, "x_out": x}
        for b in range(self.bits):
            out[f"r_out{b}"] = (r >> b) & 1
        return out


class MacBehavior:
    """t <- t + p * s, emitted and cleared on lambda (mod 2**result_bits,
    exactly as the ripple hardware wraps)."""

    def __init__(self, data_bits: int, result_bits: int) -> None:
        self.data_bits = data_bits
        self.result_bits = result_bits
        self.t = 0

    def fire(self, ins: Dict[str, int]) -> Dict[str, int]:
        B, R = self.data_bits, self.result_bits
        lam = ins["lam_in"]
        p = sum(ins[f"p_in{b}"] << b for b in range(B))
        s = sum(ins[f"s_in{b}"] << b for b in range(B))
        t2 = (self.t + p * s) % (1 << R)
        if lam:
            r, self.t = t2, 0
        else:
            r = sum(ins[f"r_in{b}"] << b for b in range(R))
            self.t = t2
        out = {"lam_out": lam}
        for b in range(B):
            out[f"p_out{b}"] = (p >> b) & 1
            out[f"s_out{b}"] = (s >> b) & 1
        for b in range(R):
            out[f"r_out{b}"] = (r >> b) & 1
        return out


# -- cell type factories ------------------------------------------------------

def _comparator_type() -> CellType:
    return CellType(
        name="comparator",
        inputs=("p_in", "s_in", "d_in"),
        outputs=("p_out", "s_out", "d_out"),
        build=lambda c, prefix, clk, _other, positive: build_comparator(
            c, prefix, clk, positive=positive
        ),
        bundle=comparator_bundle,
        behavior=ComparatorBehavior,
    )


def _accumulator_build(c, prefix, clk, clk_other, positive):
    ports = dict(build_accumulator(c, prefix, clk, clk_other, positive=positive))
    ports["r_in0"] = ports.pop("r_in")
    ports["r_out0"] = ports.pop("r_out")
    return ports


def _accumulator_type() -> CellType:
    return CellType(
        name="accumulator",
        inputs=("lam_in", "x_in", "d_in", "r_in0"),
        outputs=("lam_out", "x_out", "r_out0"),
        build=_accumulator_build,
        bundle=accumulator_bundle,
        behavior=AccumulatorBehavior,
    )


def _counter_type(result_bits: int) -> CellType:
    r_ins = tuple(f"r_in{b}" for b in range(result_bits))
    r_outs = tuple(f"r_out{b}" for b in range(result_bits))
    return CellType(
        name=f"counter{result_bits}",
        inputs=("lam_in", "x_in", "d_in") + r_ins,
        outputs=("lam_out", "x_out") + r_outs,
        build=lambda c, prefix, clk, other, positive: build_counter(
            c, prefix, clk, other, result_bits, positive=positive
        ),
        bundle=lambda positive: counter_bundle(result_bits, positive),
        behavior=lambda: CounterBehavior(result_bits),
    )


def _mac_type(data_bits: int, result_bits: int) -> CellType:
    bus_ins = tuple(
        f"{p}_in{b}" for p in ("p", "s") for b in range(data_bits)
    ) + tuple(f"r_in{b}" for b in range(result_bits))
    bus_outs = tuple(
        f"{p}_out{b}" for p in ("p", "s") for b in range(data_bits)
    ) + tuple(f"r_out{b}" for b in range(result_bits))
    return CellType(
        name=f"mac{data_bits}x{result_bits}",
        inputs=("lam_in",) + bus_ins,
        outputs=("lam_out",) + bus_outs,
        build=lambda c, prefix, clk, other, positive: build_mac(
            c, prefix, clk, other, data_bits, result_bits, positive=positive
        ),
        bundle=lambda positive: mac_bundle(data_bits, result_bits, positive),
        behavior=lambda: MacBehavior(data_bits, result_bits),
    )


@dataclass(frozen=True)
class Library:
    """The cells a spec's design is elaborated against."""

    comparator: Optional[CellType]
    result_cell: CellType

    def cell_types(self) -> Dict[str, CellType]:
        types = {self.result_cell.name: self.result_cell}
        if self.comparator is not None:
            types[self.comparator.name] = self.comparator
        return types


def library_for(spec: ChipSpec) -> Library:
    """The library a :class:`ChipSpec` needs.

    >>> sorted(library_for(ChipSpec("count", cells=8)).cell_types())
    ['comparator', 'counter4']
    >>> library_for(ChipSpec("inner-product", cells=4)).result_cell.name
    'mac2x6'
    """
    if spec.kernel == "match":
        return Library(_comparator_type(), _accumulator_type())
    if spec.kernel == "count":
        return Library(_comparator_type(), _counter_type(spec.result_bits))
    if spec.kernel == "inner-product":
        return Library(None, _mac_type(spec.data_bits, spec.result_bits))
    raise CompileError(f"unknown kernel {spec.kernel!r}")
