"""Differential verification of compiled designs.

Two independent checks close the loop between the compiler's output and
the rest of the repository:

* :func:`differential` runs one job on the compiled design -- with the
  structural engine, and optionally the transistor-level one -- and
  compares the masked results against the workload registry's ``fast``
  and ``oracle`` engines.  Four independent implementations (oracle,
  fast path, IR behaviors, generated silicon) must agree exactly.

* :func:`run_design_mutants` seeds all six known signoff defects into
  *generated* cells and netlists and asserts each is still caught by
  its responsible stage with every upstream stage clean -- proof that
  the signoff gauntlet keeps its teeth on compiler output, not just on
  the hand-built prototype cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..alphabet import Alphabet
from ..workloads.registry import run_workload
from .flow import CompiledChip
from .spec import CompileError

__all__ = ["DifferentialResult", "differential", "MutantResult",
           "run_design_mutants"]


@dataclass
class DifferentialResult:
    """Outcome of one differential run: per-engine results and verdict."""

    name: str
    params: object
    stream: object
    results: Dict[str, list]
    ok: bool
    detail: str = ""


def _normalize(kernel: str, values: Sequence) -> list:
    if kernel == "inner-product":
        return [float(v) for v in values]
    if kernel == "match":
        return [bool(v) for v in values]
    return [int(v) for v in values]


def differential(
    chip: CompiledChip,
    params,
    stream: Sequence,
    alphabet: Optional[Alphabet] = None,
    engines: Sequence[str] = ("ir",),
) -> DifferentialResult:
    """Compare the compiled design against the registry's engines.

    ``engines`` selects the chip-side engines to run (``"ir"`` and/or
    ``"switch"``); the registry's ``fast`` and ``oracle`` engines are
    always the references.
    """
    kernel = chip.spec.kernel
    results: Dict[str, list] = {}
    for engine in ("fast", "oracle"):
        results[engine] = _normalize(
            kernel,
            run_workload(kernel, params, stream, alphabet=alphabet,
                         engine=engine),
        )
    for engine in engines:
        results[f"chip-{engine}"] = _normalize(
            kernel, chip.simulate(params, stream, alphabet, engine=engine)
        )
    reference = results["oracle"]
    mismatches = [
        f"{name} != oracle: {vals} vs {reference}"
        for name, vals in results.items()
        if vals != reference
    ]
    return DifferentialResult(
        name=chip.spec.name,
        params=params,
        stream=stream,
        results=results,
        ok=not mismatches,
        detail="; ".join(mismatches),
    )


# -- mutation coverage on generated designs -----------------------------------

@dataclass
class MutantResult:
    """One seeded defect pushed through signoff on a generated cell."""

    name: str
    stage: str
    caught: bool
    upstream_clean: bool
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.caught and self.upstream_clean


def _check(mutation, report) -> MutantResult:
    stages = {s.stage: s for s in report.stages}
    order = [s.stage for s in report.stages]
    target = stages.get(mutation.stage)
    caught = target is not None and any(
        f.severity == "error" and mutation.rule in f.rule
        for f in target.findings
    )
    upstream = order[: order.index(mutation.stage)] if mutation.stage in order else []
    dirty = [
        s for s in upstream
        if any(f.severity == "error" for f in stages[s].findings)
    ]
    detail = "" if caught else f"{mutation.stage} did not report {mutation.rule!r}"
    if dirty:
        detail += f"; upstream stages with errors: {dirty}"
    return MutantResult(
        name=mutation.name,
        stage=mutation.stage,
        caught=caught,
        upstream_clean=not dirty,
        detail=detail,
    )


def run_design_mutants(chip: CompiledChip, signoff=None) -> List[MutantResult]:
    """Seed all six signoff defects into the compiled design's cells.

    Layout defects go into the generated result cell's positive twin
    (the cell the compiler synthesized, not a prototype); the mis-phased
    transfer gate needs a cell with a t master/slave pair, so it also
    targets the result cell; the unbuffered chain hangs off the result
    output.  Each mutant must be caught by its responsible stage with
    all upstream stages clean.
    """
    from ..signoff.mutations import (
        LAYOUT_MUTANTS,
        NETLIST_MUTANTS,
        erc_misphased_transfer,
        timing_unbuffered_chain,
    )
    from ..signoff.pipeline import Signoff

    signoff = signoff or Signoff()
    result_twin = f"{chip.library.result_cell.name}_pos"
    bundle = chip.bundles[result_twin]
    out: List[MutantResult] = []

    for name, factory in LAYOUT_MUTANTS.items():
        mutation, mutated = factory(bundle)
        out.append(_check(mutation, signoff.run_cell(bundle=mutated)))

    mutation, (circuit, clocks, ports) = erc_misphased_transfer(bundle)
    out.append(_check(
        mutation,
        signoff.run_netlist(circuit, clocks, ports, name=mutation.name),
    ))

    port = "r_out0" if "r_out0" in bundle.ports else "r_out"
    mutation, (circuit, clocks, ports) = timing_unbuffered_chain(bundle, port)
    out.append(_check(
        mutation,
        signoff.run_netlist(circuit, clocks, ports, name=mutation.name),
    ))

    if len(out) != len(LAYOUT_MUTANTS) + len(NETLIST_MUTANTS):
        raise CompileError("mutant inventory drifted; update run_design_mutants")
    return out
