"""Beat streams and the host/chip bus protocol of Figure 3-1.

The chip communicates with its host through synchronous *beats*: the
pattern and the text string arrive alternately over the bus, one character
per beat, and one result bit leaves the chip for every text character
(Section 3.2.1, "During each pair of consecutive beats the chip must input
two characters and output one result").

This module models that protocol at the transaction level:

* :class:`Beat` -- the unit of time.
* :class:`BusWord` -- what travels over the host bus on one beat (a pattern
  character, a text character, or an idle slot).
* :func:`interleave` -- merge a recirculating pattern stream and a text
  stream into the alternating bus schedule of Figure 3-1.
* :class:`RecirculatingPattern` -- the pattern wrapped around so that the
  first character follows two beats after the last one (Section 3.2.1),
  carrying the ``lambda`` (end-of-pattern) and ``x`` (don't-care) bits.
* :class:`ResultStream` -- collects the chip's output bits together with
  their validity schedule.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator, List, Optional, Sequence

from .alphabet import PatternChar
from .errors import StreamError


class WordKind(Enum):
    """What a bus word carries."""

    PATTERN = "pattern"
    TEXT = "text"
    IDLE = "idle"


@dataclass(frozen=True)
class Beat:
    """A point in discrete time.  Beats are numbered from zero."""

    index: int

    @property
    def is_pattern_beat(self) -> bool:
        """Pattern characters occupy even beats in the Figure 3-1 schedule."""
        return self.index % 2 == 0

    @property
    def is_text_beat(self) -> bool:
        return self.index % 2 == 1

    def next(self) -> "Beat":
        return Beat(self.index + 1)


@dataclass(frozen=True)
class BusWord:
    """One bus transfer: kind plus payload.

    For ``PATTERN`` words the payload is a :class:`PatternStreamItem`;
    for ``TEXT`` words it is a single character; ``IDLE`` words carry
    ``None``.
    """

    kind: WordKind
    payload: object = None

    @staticmethod
    def idle() -> "BusWord":
        return BusWord(WordKind.IDLE, None)


@dataclass(frozen=True)
class PatternStreamItem:
    """A pattern character as it appears on the wire.

    Carries the two control bits that flow with the pattern through the
    accumulators (Section 3.2.1): ``is_last`` is the end-of-pattern bit
    ``lambda``; ``is_wild`` is the don't-care bit ``x``.
    """

    char: str
    is_wild: bool
    is_last: bool

    @staticmethod
    def from_pattern_char(pc: PatternChar, is_last: bool) -> "PatternStreamItem":
        return PatternStreamItem(pc.char, pc.is_wild, is_last)

    def __str__(self) -> str:
        base = "X*" if self.is_wild else self.char
        return base + ("$" if self.is_last else "")


class RecirculatingPattern:
    """The pattern stream, recirculated indefinitely.

    Section 3.2.1: "If we recirculate the pattern so that the first
    character follows two beats after the last one, we can output the
    completed result and initialize a new partial result on the same beat."
    On the wire this means pattern items repeat with period ``len(pattern)``
    (in pattern beats), back to back.

    Iterating the object yields :class:`PatternStreamItem` objects forever;
    use :meth:`take` for a finite prefix.
    """

    def __init__(self, pattern: Sequence[PatternChar]):
        if not pattern:
            raise StreamError("cannot recirculate an empty pattern")
        self._items: List[PatternStreamItem] = [
            PatternStreamItem.from_pattern_char(pc, is_last=(i == len(pattern) - 1))
            for i, pc in enumerate(pattern)
        ]

    @property
    def length(self) -> int:
        """Pattern length k+1."""
        return len(self._items)

    @property
    def items(self) -> List[PatternStreamItem]:
        """One full period of the stream."""
        return list(self._items)

    def __iter__(self) -> Iterator[PatternStreamItem]:
        return itertools.cycle(self._items)

    def take(self, n: int) -> List[PatternStreamItem]:
        """The first *n* items of the recirculating stream."""
        if n < 0:
            raise StreamError("cannot take a negative number of items")
        return [self._items[i % len(self._items)] for i in range(n)]


def interleave(
    pattern: Iterable[PatternStreamItem],
    text: Iterable[str],
    n_beats: int,
    pattern_first: bool = True,
) -> List[BusWord]:
    """Build the alternating bus schedule of Figure 3-1.

    Pattern words occupy even beats and text words odd beats (or the
    reverse if ``pattern_first`` is False).  When either stream is
    exhausted its slots become idle words.  Returns exactly *n_beats*
    bus words.
    """
    if n_beats < 0:
        raise StreamError("n_beats must be non-negative")
    pat_iter = iter(pattern)
    txt_iter = iter(text)
    words: List[BusWord] = []
    for b in range(n_beats):
        pattern_slot = (b % 2 == 0) if pattern_first else (b % 2 == 1)
        if pattern_slot:
            item = next(pat_iter, None)
            words.append(
                BusWord(WordKind.PATTERN, item) if item is not None else BusWord.idle()
            )
        else:
            ch = next(txt_iter, None)
            words.append(
                BusWord(WordKind.TEXT, ch) if ch is not None else BusWord.idle()
            )
    return words


@dataclass
class ResultStream:
    """Collects chip output bits with their validity schedule.

    The chip produces one result bit per text character; during array
    fill-up the output slots carry garbage, which the host discards.  The
    driver records every output slot (for waveform-level inspection) and
    separately the clean, host-visible list of booleans.
    """

    raw_slots: List[Optional[object]] = field(default_factory=list)
    results: List[bool] = field(default_factory=list)

    def record_raw(self, value: Optional[object]) -> None:
        self.raw_slots.append(value)

    def record_result(self, value: bool) -> None:
        self.results.append(bool(value))

    def __len__(self) -> int:
        return len(self.results)


def alternating_schedule(n_pattern: int, n_text: int) -> List[WordKind]:
    """The kinds of the first ``n_pattern + n_text`` bus words.

    Convenience used by host-side DMA models: pattern/text alternate until
    one side runs out, after which the other side streams back to back.
    """
    kinds: List[WordKind] = []
    p = t = 0
    toggle_pattern = True
    while p < n_pattern or t < n_text:
        if toggle_pattern and p < n_pattern:
            kinds.append(WordKind.PATTERN)
            p += 1
        elif t < n_text:
            kinds.append(WordKind.TEXT)
            t += 1
        else:
            kinds.append(WordKind.PATTERN)
            p += 1
        toggle_pattern = not toggle_pattern
    return kinds
