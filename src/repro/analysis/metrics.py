"""Work and utilization metrics for the comparison benches."""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..alphabet import Alphabet, parse_pattern
from ..baselines.boyer_moore import BoyerMooreMatcher
from ..baselines.kmp import KMPMatcher
from ..baselines.naive import OpCounter, naive_match
from ..baselines.shift_or import ShiftOrMatcher
from ..core.matcher import PatternMatcher


def comparison_counts(pattern: str, text: str, alphabet: Alphabet) -> Dict[str, float]:
    """Character comparisons (or per-char unit work) for each approach.

    The systolic entry counts *cell firings* -- each is one character
    comparison, all in parallel hardware; the sequential entries count
    host instructions' worth of comparisons.  KMP/Boyer-Moore report
    ``nan`` for wildcard patterns (inapplicable, Section 3.3.1).
    """
    pcs = parse_pattern(pattern, alphabet)
    has_wild = any(p.is_wild for p in pcs)
    out: Dict[str, float] = {}

    counter = OpCounter()
    naive_match(pcs, list(text), counter)
    out["naive software"] = counter.comparisons

    if has_wild:
        out["KMP"] = float("nan")
        out["Boyer-Moore"] = float("nan")
    else:
        counter = OpCounter()
        KMPMatcher(pcs).match(list(text), counter)
        out["KMP"] = counter.comparisons
        counter = OpCounter()
        BoyerMooreMatcher(pcs).match(list(text), counter)
        out["Boyer-Moore"] = counter.comparisons

    counter = OpCounter()
    ShiftOrMatcher(pcs).match(list(text), counter)
    out["shift-or (word ops)"] = counter.comparisons

    matcher = PatternMatcher(pattern, alphabet)
    matcher.report(text)  # stepwise run: fire_count only exists there
    out["systolic (parallel cell firings)"] = matcher.array.array.fire_count
    return out


def utilization_profile(
    pattern: str, texts: Sequence[str], alphabet: Alphabet
) -> List[float]:
    """Cell utilization across runs (approaches 1/2 as texts lengthen)."""
    out: List[float] = []
    for text in texts:
        m = PatternMatcher(pattern, alphabet)
        out.append(m.report(text).utilization)
    return out
