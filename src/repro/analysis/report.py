"""Plain-text tables for the benchmark harness output."""

from __future__ import annotations

from typing import List, Mapping, Sequence


class Table:
    """Minimal fixed-width table formatter for bench reports.

    >>> t = Table(["n", "rate"])
    >>> t.row([8, 4.0])
    >>> print(t.render())          # doctest: +NORMALIZE_WHITESPACE
    n  rate
    -  ----
    8  4.0
    """

    def __init__(self, headers: Sequence[str], title: str = ""):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def row(self, values: Sequence[object]) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} values for {len(self.headers)} columns"
            )
        self.rows.append([self._fmt(v) for v in values])

    @staticmethod
    def _fmt(v: object) -> str:
        if isinstance(v, float):
            if v != v:  # NaN
                return "n/a"
            if abs(v) >= 1000 or (v != 0 and abs(v) < 0.01):
                return f"{v:.3g}"
            return f"{v:.3f}".rstrip("0").rstrip(".")
        return str(v)

    def render(self) -> str:
        widths = [
            max(len(self.headers[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.headers[i])
            for i in range(len(self.headers))
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for r in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
        return "\n".join(lines)

    def print(self) -> None:
        print(self.render())


def kv_table(title: str, mapping: Mapping[str, object]) -> Table:
    """A two-column metric/value table from a mapping (insertion order).

    The shared shape of the telemetry summary and the trace-replay
    report sections.
    """
    t = Table(["metric", "value"], title=title)
    for key, value in mapping.items():
        t.row([str(key).replace("_", " "), value])
    return t
