"""Cross-level verification helpers, metrics, and report formatting."""

from .metrics import comparison_counts, utilization_profile
from .report import Table
from .verify import verify_matcher_stack

__all__ = ["Table", "comparison_counts", "utilization_profile", "verify_matcher_stack"]
