"""Cross-level equivalence checking.

The hierarchy of models -- "from the algorithm level to the gate level to
the layout level ... each level ... serving as an implementation of the
next level up" (Section 4) -- is only trustworthy if adjacent levels are
checked against each other.  :func:`verify_matcher_stack` runs one
pattern/text pair through every level and the oracle and reports
agreement; the test suite calls it over randomised inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..alphabet import Alphabet, parse_pattern
from ..core.bit_level import BitLevelMatcher
from ..core.matcher import PatternMatcher
from ..core.multipass import multipass_match
from ..core.reference import match_oracle


@dataclass
class StackReport:
    """Per-level results and the agreement verdict."""

    oracle: List[bool]
    levels: Dict[str, List[bool]]

    @property
    def all_agree(self) -> bool:
        return all(v == self.oracle for v in self.levels.values())

    def disagreements(self) -> List[str]:
        return [name for name, v in self.levels.items() if v != self.oracle]


def verify_matcher_stack(
    pattern: str,
    text: str,
    alphabet: Alphabet,
    include_gate_level: bool = False,
    n_cells: Optional[int] = None,
) -> StackReport:
    """Run every model level on one input; gate level optional (slow)."""
    pcs = parse_pattern(pattern, alphabet)
    oracle = match_oracle(pcs, list(text))
    levels: Dict[str, List[bool]] = {}
    levels["char-level array"] = PatternMatcher(
        pattern, alphabet, n_cells=n_cells
    ).match(text)
    levels["bit-level array"] = BitLevelMatcher(
        pattern, alphabet, n_cells=n_cells
    ).match(text)
    levels["multipass (capacity 2)"] = multipass_match(
        pcs, list(text), n_cells=max(1, min(2, len(pcs)))
    )
    if include_gate_level:
        from ..circuit.chipnet import GateLevelMatcher

        levels["switch-level netlist"] = GateLevelMatcher(
            pattern, alphabet, n_cells=n_cells
        ).match(text)
    return StackReport(oracle=oracle, levels=levels)
