"""``python -m repro.bist`` -- demo, coverage gate, and health soak.

Three subcommands:

* ``demo``       -- self-test one healthy chip and one defective chip and
  print both verdicts (the quickstart).
* ``coverage``   -- run BIST over the full modelled fault universe of an
  ``m`` x ``w`` array; print the escape list and exit non-zero if
  coverage falls below the gate (default 0.95).
* ``soak``       -- the fleet-health soak: real traffic over a farm with
  latent defects, background BIST, quarantine, and wafer healing; exits
  non-zero unless every result matched the oracle and at least one full
  quarantine + heal cycle ran.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from .controller import BISTController
from .defects import fault_universe, mutation_defect


def _print_report(report) -> None:
    verdict = "PASS" if report.ok else "FAIL"
    print(
        f"{report.chip}: {verdict}  "
        f"(functional={'ok' if report.functional_ok else 'FAIL'}, "
        f"timing={'ok' if report.timing_ok else 'FAIL'}, "
        f"signature={report.signature:#010x}, "
        f"golden={report.golden:#010x})"
    )
    if report.diagnosis is not None:
        d = report.diagnosis
        print(
            f"  diagnosis: cell {d.cell} "
            f"(col {d.col}, row {d.row}), first divergence at beat "
            f"{d.beat}, node {d.node}: got {d.got}, want {d.want}"
        )
    if report.characterization is not None:
        c = report.characterization
        print(
            f"  timing: worst path {c.worst_delay_ns:.1f} ns vs "
            f"{c.phase_budget_ns:.1f} ns phase budget "
            f"({c.worst_phase}); recommended beat "
            f"{c.recommended_beat_ns:.0f} ns; "
            f"settle <= {c.max_settle_passes} passes"
        )


def cmd_demo(args: argparse.Namespace) -> int:
    controller = BISTController(m=args.m, w=args.w, vectors=args.vectors)
    print(f"BIST on a {args.m}x{args.w} matcher array, "
          f"{args.vectors} LFSR vectors\n")
    _print_report(controller.run(chip_name="healthy-chip"))
    print()
    defect = mutation_defect(args.mutant, args.m, args.w)
    print(f"injecting {defect.describe()} "
          f"(the {args.mutant!r} signoff mutant):")
    _print_report(controller.run(defect=defect, chip_name="defective-chip"))
    return 0


def cmd_coverage(args: argparse.Namespace) -> int:
    universe = fault_universe(args.m, args.w)
    controller = BISTController(
        m=args.m, w=args.w, vectors=args.vectors,
        fault_universe=universe,
    )
    t0 = time.perf_counter()
    escapes: List[str] = []
    by_kind: Dict[str, List[int]] = {}
    for defect in universe:
        report = controller.run(defect=defect)
        caught = not report.ok
        hit, total = by_kind.setdefault(defect.kind.value, [0, 0])
        by_kind[defect.kind.value] = [hit + (1 if caught else 0), total + 1]
        if not caught:
            escapes.append(defect.describe())
    elapsed = time.perf_counter() - t0
    coverage = 1.0 - len(escapes) / len(universe)
    print(f"fault universe: {len(universe)} faults on a "
          f"{args.m}x{args.w} array ({elapsed:.1f}s)")
    for kind in sorted(by_kind):
        hit, total = by_kind[kind]
        print(f"  {kind:<12} {hit}/{total}")
    print(f"coverage: {coverage:.3f} (gate {args.gate:.2f})")
    if escapes:
        print("escapes: " + ", ".join(escapes))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(
                {
                    "m": args.m, "w": args.w, "vectors": args.vectors,
                    "universe": len(universe), "coverage": coverage,
                    "gate": args.gate, "escapes": escapes,
                    "by_kind": {
                        k: {"caught": v[0], "total": v[1]}
                        for k, v in sorted(by_kind.items())
                    },
                },
                fh, indent=2,
            )
        print(f"wrote {args.out}")
    return 0 if coverage >= args.gate else 1


def cmd_soak(args: argparse.Namespace) -> int:
    from .soak import run_soak

    result = run_soak(
        rounds=args.rounds, jobs_per_round=args.jobs, seed=args.seed,
        log=print,
    )
    wire = result.to_wire()
    print(
        f"\nsoak: {wire['jobs']} jobs over {wire['rounds']} rounds; "
        f"{wire['mismatches']} mismatches, "
        f"{wire['quarantines']} quarantines, {wire['heals']} heals, "
        f"{wire['bist_runs']} BIST runs; "
        f"fleet {wire['final_live']}/{wire['target_live']} live"
    )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(wire, fh, indent=2)
        print(f"wrote {args.out}")
    print("SOAK " + ("PASS" if result.ok else "FAIL"))
    return 0 if result.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bist",
        description="Gate-level built-in self-test and fleet health.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="self-test a healthy and a "
                          "defective chip")
    demo.add_argument("--m", type=int, default=2, help="array columns")
    demo.add_argument("--w", type=int, default=2, help="array rows")
    demo.add_argument("--vectors", type=int, default=16)
    demo.add_argument("--mutant", default="erc-undersized-pullup",
                      help="signoff mutant to inject")
    demo.set_defaults(func=cmd_demo)

    cov = sub.add_parser("coverage", help="BIST coverage over the fault "
                         "universe")
    cov.add_argument("--m", type=int, default=2)
    cov.add_argument("--w", type=int, default=2)
    cov.add_argument("--vectors", type=int, default=16)
    cov.add_argument("--gate", type=float, default=0.95)
    cov.add_argument("--out", default="", help="write a JSON report here")
    cov.set_defaults(func=cmd_coverage)

    soak = sub.add_parser("soak", help="traffic + chip deaths + "
                          "quarantine + healing")
    soak.add_argument("--rounds", type=int, default=4)
    soak.add_argument("--jobs", type=int, default=18,
                      help="jobs per round")
    soak.add_argument("--seed", type=int, default=7)
    soak.add_argument("--out", default="", help="write a JSON report here")
    soak.set_defaults(func=cmd_soak)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
