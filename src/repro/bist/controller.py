"""The BIST controller: an FSM that self-tests a matcher array.

The controller drives the classic self-test loop over a switch-level
:class:`~repro.circuit.chipnet.MatcherArrayNetlist`:

.. code-block:: text

    RESET -> LOAD_GOLDEN -> (SHIFT -> CAPTURE) x vectors -> COMPARE
          -> CHARACTERIZE -> PASS
                         \\-> DIAGNOSE -> FAIL

* **SHIFT** applies the next LFSR stimulus vector to the chip-edge pins
  (pattern rows, string rows, lam/x controls; the result pin is tied by
  the netlist itself).
* **CAPTURE** pulses the beat's clock phase, settles the array, and
  folds the edge-visible responses into the MISR.
* **COMPARE** checks the compacted signature against the golden
  signature computed once from a healthy netlist of the same geometry
  (cached per configuration -- the "signature table" a production part
  would hold in ROM).
* **DIAGNOSE** (failures only) replays the same stimulus on a golden
  twin and the failing chip in lockstep, watching every cell port, and
  reports the first beat of divergence and the cell that diverged
  hardest -- which cell/stage went wrong, not just that one did.
* **CHARACTERIZE** runs the :class:`~repro.bist.characterize.
  Characterizer` so parts that compute correctly but miss the 100 ns
  phase budget (slow-path defects) still fail their verdict.

Everything is deterministic: same geometry, same LFSR seed, same vector
count => same signatures, same diagnosis, on every run and every host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from ..circuit.chipnet import MatcherArrayNetlist
from ..circuit.signals import HIGH, LOW
from ..errors import CircuitError
from ..service.reliability import CellDefect
from ..signoff.timing import TimingParams
from ..timing.model import TimingModel
from .characterize import CharacterizationReport, Characterizer
from .defects import inject_defect
from .lfsr import LFSRPatternGenerator
from .signature import SignatureAnalyzer


class BISTState(Enum):
    RESET = "reset"
    LOAD_GOLDEN = "load-golden"
    SHIFT = "shift"
    CAPTURE = "capture"
    COMPARE = "compare"
    CHARACTERIZE = "characterize"
    DIAGNOSE = "diagnose"
    PASS = "pass"
    FAIL = "fail"


@dataclass(frozen=True)
class BISTDiagnosis:
    """Where the failing chip first left the golden trajectory.

    ``beat`` is the stimulus beat of first divergence (``-1`` for
    timing-only failures, which never diverge logically); ``cell`` the
    netlist cell name (``c{col}_{row}`` / ``a{col}``); ``node`` one
    representative diverging node; ``divergent`` every node that
    diverged on that beat.
    """

    beat: int
    cell: str
    col: int
    row: int
    node: str
    got: str
    want: str
    divergent: Tuple[str, ...] = ()

    def to_wire(self) -> Dict[str, object]:
        return {
            "beat": self.beat, "cell": self.cell, "col": self.col,
            "row": self.row, "node": self.node, "got": self.got,
            "want": self.want, "divergent": list(self.divergent),
        }


@dataclass(frozen=True)
class BISTReport:
    """One chip's self-test verdict."""

    chip: str
    m: int
    w: int
    vectors: int
    signature: int
    golden: int
    functional_ok: bool
    timing_ok: Optional[bool]
    diagnosis: Optional[BISTDiagnosis]
    characterization: Optional[CharacterizationReport]
    states: Tuple[str, ...] = field(default=(), repr=False)

    @property
    def ok(self) -> bool:
        """PASS iff the signature matches *and* the part makes the beat."""
        return self.functional_ok and self.timing_ok is not False

    def to_wire(self) -> Dict[str, object]:
        return {
            "ok": self.ok, "chip": self.chip, "m": self.m, "w": self.w,
            "vectors": self.vectors, "signature": self.signature,
            "golden": self.golden, "functional_ok": self.functional_ok,
            "timing_ok": self.timing_ok,
            "diagnosis": self.diagnosis.to_wire() if self.diagnosis else None,
            "characterization": (
                self.characterization.to_wire()
                if self.characterization else None
            ),
            "states": list(self.states),
        }


#: (m, w, vectors, lfsr seed, misr width, misr poly) -> golden signature.
#: Computing one takes a full stimulus run on a healthy netlist; caching
#: it is the software stand-in for the ROM signature table.
_GOLDEN_CACHE: Dict[Tuple[int, int, int, int, int, int], int] = {}


class BISTController:
    """Drives one simulated chip through gate-level self-test."""

    def __init__(
        self,
        m: int = 2,
        w: int = 2,
        vectors: int = 16,
        seed: int = 0b1011,
        misr_width: int = 32,
        characterize: bool = True,
        model: Optional[TimingModel] = None,
        params: Optional[TimingParams] = None,
        fault_universe: Optional[Tuple[CellDefect, ...]] = None,
    ):
        if m <= 0 or w <= 0:
            raise CircuitError("BIST array needs at least one column and row")
        if vectors <= 0:
            raise CircuitError("BIST needs at least one stimulus vector")
        self.m, self.w = m, w
        self.vectors = vectors
        self.seed = seed
        self.stimulus_width = 2 * w + 2
        self.analyzer = SignatureAnalyzer(misr_width=misr_width)
        self.characterize = characterize
        self.characterizer = Characterizer(model=model, params=params, seed=seed)
        # An optional fault dictionary (signature -> candidate faults):
        # when the expected defect universe is known, a failing
        # signature can be looked up for an *exact* per-cell diagnosis,
        # the way production testers diagnose from compacted responses.
        self.fault_universe = tuple(fault_universe or ())
        self._dict: Optional[Dict[int, Tuple[CellDefect, ...]]] = None

    # -- stimulus ------------------------------------------------------------

    def _stimulus_bits(self, beat: int,
                       lfsr: LFSRPatternGenerator) -> Tuple[int, ...]:
        """The stimulus vector for *beat* (the LFSR steps every beat).

        Three beats in four come straight off the LFSR.  Every fourth
        beat is a deterministic *all-equal* vector -- every pattern and
        string pin driven to the same level, alternating 1/0 -- which
        holds the comparators' equality outputs TRUE so the d-chain (an
        AND ladder, random-pattern resistant) propagates and its
        stuck-at/open faults become observable.  lam/x stay random.
        """
        bits = lfsr.bits()
        lfsr.step()
        if beat % 4 == 3:
            level = 1 if (beat // 4) % 2 == 0 else 0
            bits = (level,) * (2 * self.w) + bits[2 * self.w:]
        return bits

    def _drive(self, net: MatcherArrayNetlist, bits: Tuple[int, ...]) -> None:
        """Apply one stimulus vector to the chip-edge pins."""
        c = net.circuit
        for j in range(net.w):
            c.set_input(net.p_edge[j], HIGH if bits[j] else LOW)
            c.set_input(net.s_edge[j], HIGH if bits[net.w + j] else LOW)
        c.set_input(net.lam_edge, HIGH if bits[2 * net.w] else LOW)
        c.set_input(net.x_edge, HIGH if bits[2 * net.w + 1] else LOW)

    def _signature_of(self, net: MatcherArrayNetlist) -> Tuple[int, bool]:
        """(signature, settled) of a full stimulus run on *net*.

        A DUT that cannot settle (oscillation) stops clocking after the
        failing beat; the partial signature is still deterministic and
        still distinguishes the fault for dictionary purposes.
        """
        misr = self.analyzer.new_misr()
        nodes = self.analyzer.response_nodes(net)
        lfsr = LFSRPatternGenerator(self.stimulus_width, seed=self.seed)
        for beat in range(self.vectors):
            self._drive(net, self._stimulus_bits(beat, lfsr))
            try:
                net.pulse(beat)
            except CircuitError:
                self.analyzer.observe(misr, net, nodes)
                return misr.signature, False
            self.analyzer.observe(misr, net, nodes)
        return misr.signature, True

    def golden_signature(self) -> int:
        """The healthy-netlist signature for this configuration (cached)."""
        key = (
            self.m, self.w, self.vectors, self.seed,
            self.analyzer.misr_width, self.analyzer.poly,
        )
        sig = _GOLDEN_CACHE.get(key)
        if sig is None:
            sig, settled = self._signature_of(MatcherArrayNetlist(self.m, self.w))
            if not settled:  # pragma: no cover - healthy arrays settle
                raise CircuitError("healthy netlist did not settle")
            _GOLDEN_CACHE[key] = sig
        return sig

    def dictionary(self) -> Dict[int, Tuple[CellDefect, ...]]:
        """Signature -> candidate faults over ``fault_universe`` (lazy).

        Faults whose signature equals the golden signature are escapes;
        they appear under the golden key, which is how the coverage
        report finds them.
        """
        if self._dict is None:
            table: Dict[int, List[CellDefect]] = {}
            for d in self.fault_universe:
                net = MatcherArrayNetlist(self.m, self.w)
                inject_defect(net, d)
                sig, _ = self._signature_of(net)
                table.setdefault(sig, []).append(d)
            self._dict = {sig: tuple(ds) for sig, ds in table.items()}
        return self._dict

    # -- diagnosis -----------------------------------------------------------

    #: A cell's input ports belong electrically to the track its
    #: neighbour drives; divergence there is the *upstream* cell's
    #: fault, so these ports never count toward a cell's own blame.
    _INPUT_PORTS = frozenset(
        ("p_in", "s_in", "d_in", "lam_in", "x_in", "r_in")
    )

    def _probe_list(self, net: MatcherArrayNetlist):
        """(cell, col, row, node, own) per cell port, row-major order."""
        probes = []
        for j in range(net.w):
            for i in range(net.m):
                ports = net.comparators[j][i]
                for port, node in sorted(ports.items(), key=lambda kv: kv[1]):
                    own = port not in self._INPUT_PORTS
                    probes.append((f"c{i}_{j}", i, j, node, own))
        for i in range(net.m):
            ports = net.accumulators[i]
            for port, node in sorted(ports.items(), key=lambda kv: kv[1]):
                own = port not in self._INPUT_PORTS
                probes.append((f"a{i}", i, -1, node, own))
        return probes

    def _diagnose(self, defect: Optional[CellDefect],
                  prefer_cell: str = "") -> BISTDiagnosis:
        """Lockstep golden-vs-DUT replay: first divergence, worst cell.

        ``prefer_cell`` (a fault-dictionary hit) short-circuits the
        blame heuristic when that cell shows own-node divergence; the
        replay still supplies the beat/node evidence.

        Attribution accumulates divergence counts over the whole replay
        rather than the first beat alone: a defect on a shared track
        (e.g. a bridge of an inter-cell wire) corrupts its neighbours
        once per latch, but corrupts its own cell every single beat, so
        the totals single out the source even when the first visible
        beat happens in a neighbour.
        """
        golden = MatcherArrayNetlist(self.m, self.w)
        dut = MatcherArrayNetlist(self.m, self.w)
        if defect is not None:
            inject_defect(dut, defect)
        probes = self._probe_list(golden)
        lfsr = LFSRPatternGenerator(self.stimulus_width, seed=self.seed)
        counts: Dict[str, int] = {}
        first: Dict[str, Tuple[int, int, int, str, str, str]] = {}
        first_beat = -1
        first_nodes: Tuple[str, ...] = ()
        settle_failed = False
        for beat in range(self.vectors):
            bits = self._stimulus_bits(beat, lfsr)
            self._drive(golden, bits)
            self._drive(dut, bits)
            golden.pulse(beat)
            try:
                dut.pulse(beat)
            except CircuitError:
                # The DUT oscillates (e.g. a misphased transfer closing
                # a same-phase loop).  The half-relaxed node values are
                # still the best witness of where it happened.
                settle_failed = True
            diverged = [
                (cell, col, row, node, own,
                 dut.circuit.read(node), golden.circuit.read(node))
                for cell, col, row, node, own in probes
                if dut.circuit.read(node) is not golden.circuit.read(node)
            ]
            for cell, col, row, node, own, got, want in diverged:
                if own:
                    counts[cell] = counts.get(cell, 0) + 1
                    if cell not in first:
                        first[cell] = (
                            beat, col, row, node, str(got), str(want)
                        )
            if diverged and first_beat < 0:
                first_beat = beat
                first_nodes = tuple(d[3] for d in diverged)
            if settle_failed:
                break
        if not counts:
            return BISTDiagnosis(
                beat=-1, cell="?", col=-1, row=-1, node="", got="", want="",
            )
        if prefer_cell and prefer_cell in first:
            cell = prefer_cell
        else:
            worst = max(counts.values())
            # Ties break toward the probe-list (row-major) order.
            cell = next(c for c, *rest in probes if counts.get(c) == worst)
        beat, col, row, node, got, want = first[cell]
        if settle_failed:
            got = got + " (did not settle)"
        return BISTDiagnosis(
            beat=first_beat, cell=cell, col=col, row=row, node=node,
            got=got, want=want, divergent=first_nodes,
        )

    # -- the FSM -------------------------------------------------------------

    def run(
        self,
        defect: Optional[CellDefect] = None,
        chip_name: str = "chip",
        obs=None,
    ) -> BISTReport:
        """Self-test one chip (optionally carrying *defect*)."""
        states: List[str] = [BISTState.RESET.value]
        dut = MatcherArrayNetlist(self.m, self.w)
        if defect is not None:
            inject_defect(dut, defect)
        states.append(BISTState.LOAD_GOLDEN.value)
        golden = self.golden_signature()
        misr = self.analyzer.new_misr()
        nodes = self.analyzer.response_nodes(dut)
        lfsr = LFSRPatternGenerator(self.stimulus_width, seed=self.seed)
        settle_failed = False
        for beat in range(self.vectors):
            states.append(BISTState.SHIFT.value)
            self._drive(dut, self._stimulus_bits(beat, lfsr))
            states.append(BISTState.CAPTURE.value)
            try:
                dut.pulse(beat)
            except CircuitError:
                # A DUT that cannot settle is as broken as one with a
                # wrong signature; fold the half-relaxed sample in and
                # stop clocking it.
                settle_failed = True
            self.analyzer.observe(misr, dut, nodes)
            if settle_failed:
                break
        states.append(BISTState.COMPARE.value)
        functional_ok = not settle_failed and misr.signature == golden

        characterization = None
        timing_ok: Optional[bool] = None
        if self.characterize and not settle_failed:
            states.append(BISTState.CHARACTERIZE.value)
            characterization = self.characterizer.characterize(
                dut, chip_name=chip_name
            )
            timing_ok = characterization.ok

        diagnosis = None
        ok = functional_ok and timing_ok is not False
        if not ok:
            states.append(BISTState.DIAGNOSE.value)
            if not functional_ok:
                prefer = ""
                if self.fault_universe:
                    cands = self.dictionary().get(misr.signature, ())
                    cells = {d.cell for d in cands}
                    if len(cells) == 1:
                        prefer = next(iter(cells))
                diagnosis = self._diagnose(defect, prefer_cell=prefer)
            else:
                # Timing-only escape: blame the cell the worst path
                # threads through (the defect chain is cell-prefixed).
                cell = characterization.worst_cell()
                col, row = -1, -1
                if cell.startswith("a"):
                    col, row = int(cell[1:]), -1
                elif cell.startswith("c"):
                    col, row = (int(x) for x in cell[1:].split("_"))
                diagnosis = BISTDiagnosis(
                    beat=-1, cell=cell or "?", col=col, row=row,
                    node=characterization.worst_path[-1]
                    if characterization.worst_path else "",
                    got=f"{characterization.worst_delay_ns:.1f}ns",
                    want=f"<={characterization.phase_budget_ns:.1f}ns",
                )
        states.append((BISTState.PASS if ok else BISTState.FAIL).value)

        report = BISTReport(
            chip=chip_name, m=self.m, w=self.w, vectors=self.vectors,
            signature=misr.signature, golden=golden,
            functional_ok=functional_ok, timing_ok=timing_ok,
            diagnosis=diagnosis, characterization=characterization,
            states=tuple(states),
        )
        if obs is not None:
            obs.tracer.record(
                "bist.run", t0=0.0, t1=float(self.vectors), unit="beats",
                chip=chip_name, ok=report.ok,
                functional_ok=functional_ok,
                timing_ok="n/a" if timing_ok is None else timing_ok,
                cell=diagnosis.cell if diagnosis else "",
                defect=defect.describe() if defect else "",
            )
            obs.registry.counter(
                "bist.runs", verdict="pass" if report.ok else "fail"
            ).inc()
        return report
