"""Built-in self-test: LFSR stimulus, MISR signatures, per-cell diagnosis.

The paper's wafer-scale argument (Section 2) assumes defective cells can
be *found*; this package closes that loop at the switch level.  An
:class:`LFSRPatternGenerator` stimulates a simulated matcher array, a
:class:`SignatureAnalyzer` compacts its edge-visible responses into a
MISR signature checked against a cached golden table, and the
:class:`BISTController` FSM turns the comparison into a pass/fail
verdict with a per-cell diagnosis.  The :class:`Characterizer` adds the
timing half: measured settle latency and Elmore phase-budget closure
against the 250 ns beat.  The fleet-health loops in
:mod:`repro.service.health` and :mod:`repro.runtime.health` run these
self-tests in the background on idle workers, quarantine failures, and
re-provision replacements from the wafer harvest model.

Run ``python -m repro.bist`` for a demo, coverage report, or soak.
"""

from .characterize import CharacterizationReport, Characterizer
from .controller import BISTController, BISTDiagnosis, BISTReport, BISTState
from .defects import (
    MUTATION_DEFECT_NAMES,
    fault_universe,
    inject_defect,
    mutation_defect,
)
from .lfsr import MISR, LFSRPatternGenerator
from .signature import SignatureAnalyzer

__all__ = [
    "BISTController",
    "BISTDiagnosis",
    "BISTReport",
    "BISTState",
    "CharacterizationReport",
    "Characterizer",
    "LFSRPatternGenerator",
    "MISR",
    "MUTATION_DEFECT_NAMES",
    "SignatureAnalyzer",
    "fault_universe",
    "inject_defect",
    "mutation_defect",
]
