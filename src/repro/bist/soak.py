"""The health soak: serve real traffic while chips die underneath it.

One seeded, self-checking exercise of the whole maintenance story: a
synchronous matcher farm serves every registered Section 3.4 workload
while the fault injector grows latent defects in its workers, the
fleet-health loop finds them by gate-level BIST between rounds,
quarantines the failures, and heals the pool back to its target live
count from a wafer supply.  After every round each job's result stream
is compared byte-for-byte against the workload's direct oracle.

The soak passes only if **zero** results diverged, at least one full
quarantine + heal cycle happened (otherwise nothing was exercised), and
the fleet ended at its target capacity.  Everything derives from the
single ``seed``, so a failure reproduces exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..alphabet import Alphabet
from ..chip.chip import ChipSpec
from ..service.health import FleetHealth, HealthConfig, HealthEvent
from ..service.pool import uniform_pool
from ..service.reliability import FaultInjector
from ..service.service import MatcherService
from ..service.telemetry import ServiceTelemetry
from ..wafer.provision import WaferSupply
from ..workloads.registry import get_workload, list_workloads


@dataclass(frozen=True)
class SoakResult:
    """What the soak saw; ``ok`` is the CI gate."""

    rounds: int
    jobs: int
    mismatches: int
    quarantines: int
    heals: int
    bist_runs: int
    target_live: int
    final_live: int
    events: Tuple[HealthEvent, ...] = field(default=(), repr=False)

    @property
    def ok(self) -> bool:
        """Zero wrong results, >= 1 quarantine+heal cycle, healed fleet."""
        return (
            self.mismatches == 0
            and self.quarantines >= 1
            and self.heals >= 1
            and self.final_live >= self.target_live
        )

    def to_wire(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "rounds": self.rounds,
            "jobs": self.jobs,
            "mismatches": self.mismatches,
            "quarantines": self.quarantines,
            "heals": self.heals,
            "bist_runs": self.bist_runs,
            "target_live": self.target_live,
            "final_live": self.final_live,
            "events": [
                {"worker": e.worker, "action": e.action, "cell": e.cell,
                 "detail": e.detail}
                for e in self.events
            ],
        }


def generate_jobs(
    rng: random.Random, n: int, alphabet: Alphabet
) -> List[Tuple[str, object, list]]:
    """*n* deterministic jobs cycling over every registered workload.

    Each entry is ``(workload, params, stream)`` ready for both
    ``MatcherService.submit`` and the workload's oracle engine.
    """
    names = list_workloads()
    symbols = list(alphabet.symbols)
    jobs: List[Tuple[str, object, list]] = []
    for i in range(n):
        name = names[i % len(names)]
        spec = get_workload(name)
        if spec.numeric:
            taps = [round(rng.uniform(-2.0, 2.0), 3)
                    for _ in range(rng.randint(2, 4))]
            stream = [round(rng.uniform(-4.0, 4.0), 3)
                      for _ in range(rng.randint(6, 24))]
            jobs.append((name, taps, stream))
        else:
            pattern = "".join(
                rng.choice(symbols) for _ in range(rng.randint(2, 5))
            )
            text = [rng.choice(symbols) for _ in range(rng.randint(6, 24))]
            jobs.append((name, pattern, text))
    return jobs


def run_soak(
    rounds: int = 4,
    jobs_per_round: int = 18,
    seed: int = 7,
    n_workers: int = 4,
    n_cells: int = 8,
    p_defect: float = 0.45,
    p_death: float = 0.05,
    n_wafers: int = 64,
    wafer_defect_rate: float = 0.05,
    config: Optional[HealthConfig] = None,
    log=None,
) -> SoakResult:
    """Run the seeded soak; see the module docstring for the contract.

    ``p_defect`` is deliberately high -- a soak that never sees a
    quarantine tests nothing -- and ``p_death`` keeps the farm's
    retry-and-reassign machinery busy at the same time, so the health
    loop is exercised *concurrently* with recovery, not instead of it.
    ``log`` is an optional ``print``-like callable for progress lines.
    """
    alphabet = Alphabet("abcd")
    pool = uniform_pool(
        n_workers, ChipSpec(n_cells, alphabet.bits, 250.0), alphabet
    )
    target_live = pool.n_live
    injector = FaultInjector(seed=seed, p_death=p_death, p_defect=p_defect)
    telemetry = ServiceTelemetry()
    supply = WaferSupply(
        n_wafers, rows=3, cols=4, defect_rate=wafer_defect_rate,
        seed=seed + 1,
    )
    health = FleetHealth(
        pool, supply=supply, injector=injector,
        config=config or HealthConfig(), telemetry=telemetry,
    )
    service = MatcherService(pool, faults=injector)

    total_jobs = 0
    mismatches = 0
    for rnd in range(rounds):
        rng = random.Random((seed << 8) ^ rnd)
        jobs = generate_jobs(rng, jobs_per_round, alphabet)
        expected: Dict[int, list] = {}
        for workload, params, stream in jobs:
            job_id = service.submit(params, stream, workload=workload)
            expected[job_id] = get_workload(workload).run(
                params, stream, alphabet, engine="oracle"
            )
        total_jobs += len(expected)
        for result in service.drain():
            want = expected.pop(result.job_id, None)
            if want is not None and result.results != want:
                mismatches += 1
        mismatches += len(expected)  # a job that never completed is wrong
        swept = health.sweep()
        if log is not None:
            acts = ", ".join(
                f"{e.action} {e.worker}" + (f" ({e.cell})" if e.cell else "")
                for e in swept
            ) or "all healthy"
            log(
                f"round {rnd}: {len(jobs)} jobs, "
                f"{mismatches} mismatches so far; {acts}; "
                f"live {pool.n_live}/{target_live}"
            )

    return SoakResult(
        rounds=rounds,
        jobs=total_jobs,
        mismatches=mismatches,
        quarantines=int(telemetry.quarantines),
        heals=int(telemetry.heals),
        bist_runs=int(telemetry.bist_runs),
        target_live=target_live,
        final_live=pool.n_live,
        events=tuple(health.events),
    )
