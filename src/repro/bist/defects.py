"""Planting circuit-level defects in a matcher array under test.

:func:`inject_defect` takes a healthy :class:`MatcherArrayNetlist` and
one :class:`~repro.service.reliability.CellDefect` and edits the netlist
the way silicon fails:

* stuck-at: the named cell port is welded to a rail through an
  always-on channel (a genuine short, so it loads whatever else drives
  the node -- often producing a drive fight that reads UNKNOWN, exactly
  like real welded silicon reads an intermediate level);
* bridge: an always-on channel (gate tied to VDD) welds two ports;
* open: the named device is removed (``Circuit.remove_enhancement``);
* slow-path: an unbuffered series pass chain hangs off the port, so the
  part works functionally but blows the Elmore phase budget;
* misphase: the accumulator's ``t_xfer`` is regated onto the cell's own
  phase, collapsing the master/slave separation.

:data:`MUTATION_DEFECTS` maps each seeded mutant of
:mod:`repro.signoff.mutations` to its canonical electrical failure mode,
so the signoff fault list and the BIST fault list are one universe.  The
one subtlety is ``drc-metal-sliver``: the planted sliver is *electrically
inert* by construction (that is what makes it a DRC-only catch), so its
BIST equivalent is the fault the same sliver causes when it does land on
circuitry -- a bridge of the two nearest tracks.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..circuit.chipnet import MatcherArrayNetlist
from ..circuit.netlist import GND, VDD
from ..errors import CircuitError
from ..service.reliability import CellDefect, CellDefectKind, FaultInjector

#: The injector's defect tables are the single source of truth for what
#: can break; re-exported here so the universe below and the injector's
#: random channel can never drift apart.
STUCK_PORTS = FaultInjector._STUCK_PORTS
BRIDGE_PAIRS = FaultInjector._BRIDGE_PAIRS
OPEN_DEVICES = FaultInjector._OPEN_DEVICES


def _cell_ports(net: MatcherArrayNetlist, defect: CellDefect) -> Dict[str, str]:
    if not 0 <= defect.col < net.m:
        raise CircuitError(f"defect column {defect.col} outside array 0..{net.m - 1}")
    if defect.row < 0:
        return net.accumulators[defect.col]
    if defect.row >= net.w:
        raise CircuitError(f"defect row {defect.row} outside array 0..{net.w - 1}")
    return net.comparators[defect.row][defect.col]


def _port_node(ports: Dict[str, str], name: str, defect: CellDefect) -> str:
    try:
        return ports[name]
    except KeyError:
        raise CircuitError(
            f"cell {defect.cell} has no port {name!r} "
            f"(has: {', '.join(sorted(ports))})"
        ) from None


def inject_defect(net: MatcherArrayNetlist, defect: CellDefect) -> str:
    """Edit *net* in place to carry *defect*; returns its description."""
    ports = _cell_ports(net, defect)
    prefix = defect.cell + "."
    c = net.circuit
    kind = defect.kind
    if kind in (CellDefectKind.STUCK_AT_0, CellDefectKind.STUCK_AT_1):
        node = _port_node(ports, defect.port, defect)
        rail = GND if kind is CellDefectKind.STUCK_AT_0 else VDD
        c.add_enhancement(VDD, node, rail, label=f"{prefix}defect.stuck")
    elif kind is CellDefectKind.BRIDGE:
        a = _port_node(ports, defect.port, defect)
        b = _port_node(ports, defect.other_port, defect)
        c.add_enhancement(VDD, a, b, label=f"{prefix}defect.bridge")
    elif kind is CellDefectKind.OPEN:
        if not defect.device:
            raise CircuitError("an open defect needs a device label")
        c.remove_enhancement(prefix + defect.device)
    elif kind is CellDefectKind.SLOW_PATH:
        if defect.stages <= 0:
            raise CircuitError("a slow-path defect needs at least one stage")
        prev = _port_node(ports, defect.port or "d_out", defect)
        for k in range(defect.stages):
            nxt = f"{prefix}defect.slow{k}"
            c.add_enhancement(VDD, prev, nxt, label=f"{prefix}defect.slowpass{k}")
            prev = nxt
    elif kind is CellDefectKind.MISPHASE:
        if defect.row >= 0:
            raise CircuitError("misphase defects live in the accumulator row")
        label = prefix + (defect.device or "t_xfer")
        t = c.remove_enhancement(label)
        own_phase = net.phase_of(defect.col, net.w)
        c.add_enhancement(own_phase, t.a, t.b, label=label)
    else:  # pragma: no cover - enum is closed
        raise CircuitError(f"unknown defect kind {kind!r}")
    return defect.describe()


def mutation_defect(name: str, m: int, w: int) -> CellDefect:
    """The gate-level equivalent of a :mod:`repro.signoff.mutations`
    mutant, placed mid-array in an ``m`` x ``w`` matcher."""
    ci, cj = m // 2, w // 2
    table = {
        # The sliver itself touches nothing; its failure mode when it
        # does land on circuitry is a short of the two nearest tracks.
        "drc-metal-sliver": CellDefect(
            CellDefectKind.BRIDGE, ci, cj, port="s_in", other_port="d_in"
        ),
        "lvs-shorted-tracks": CellDefect(
            CellDefectKind.BRIDGE, ci, cj, port="p_in", other_port="s_in"
        ),
        "lvs-missing-contact": CellDefect(
            CellDefectKind.OPEN, ci, cj, device="pass_p"
        ),
        # A 2:1 inverter ratio cannot pull its output low: stuck-at-1.
        "erc-undersized-pullup": CellDefect(
            CellDefectKind.STUCK_AT_1, ci, cj, port="p_out"
        ),
        "erc-misphased-transfer": CellDefect(
            CellDefectKind.MISPHASE, ci, -1, device="t_xfer"
        ),
        "timing-unbuffered-chain": CellDefect(
            CellDefectKind.SLOW_PATH, ci, cj, port="d_out", stages=50
        ),
    }
    try:
        return table[name]
    except KeyError:
        raise CircuitError(f"no defect mapping for mutant {name!r}") from None


def fault_universe(m: int, w: int, slow_stages: int = 50
                   ) -> Tuple[CellDefect, ...]:
    """Every modelled circuit-level fault of an ``m`` x ``w`` array.

    Per comparator cell: a stuck-at-0 and stuck-at-1 on each of its six
    own ports, the three adjacent-track bridges, the three pass-device
    opens, and one unbuffered slow chain; per accumulator, the misphased
    transfer.  This is the universe the coverage gate measures against
    and the dictionary-based diagnosis enumerates.
    """
    faults: List[CellDefect] = []
    for i in range(m):
        for j in range(w):
            for port in STUCK_PORTS:
                faults.append(
                    CellDefect(CellDefectKind.STUCK_AT_0, i, j, port=port)
                )
                faults.append(
                    CellDefect(CellDefectKind.STUCK_AT_1, i, j, port=port)
                )
            for a, b in BRIDGE_PAIRS:
                faults.append(
                    CellDefect(CellDefectKind.BRIDGE, i, j,
                               port=a, other_port=b)
                )
            for device in OPEN_DEVICES:
                faults.append(
                    CellDefect(CellDefectKind.OPEN, i, j, device=device)
                )
            faults.append(
                CellDefect(CellDefectKind.SLOW_PATH, i, j,
                           port="d_out", stages=slow_stages)
            )
        faults.append(
            CellDefect(CellDefectKind.MISPHASE, i, -1, device="t_xfer")
        )
    return tuple(faults)


#: The mutant names with a gate-level equivalent (all of them).
MUTATION_DEFECT_NAMES = (
    "drc-metal-sliver", "lvs-shorted-tracks", "lvs-missing-contact",
    "erc-undersized-pullup", "erc-misphased-transfer",
    "timing-unbuffered-chain",
)
