"""Chip characterization: does this part make the paper's beat?

Functional BIST answers "does the array compute the right values"; the
:class:`Characterizer` answers the second production question, "does it
compute them *in time*".  Two measurements per chip:

* **settle latency** -- the array is clocked through a short LFSR-driven
  warm-up and the relaxation passes of every settle are recorded; a
  healthy two-phase design settles in a small, flat number of passes.
* **Elmore phase budget** -- :func:`repro.signoff.timing.worst_paths`
  walks the conducting chains each phase turns on and checks the worst
  RC delay against the 100 ns phase budget (half the 250 ns beat minus
  the 25 ns non-overlap).  A slow-path defect (an unbuffered 50-stage
  chain) passes functional BIST -- the simulator settles logically --
  but fails here, exactly like real silicon that works at 1 MHz and not
  at the rated clock.

When the budget is missed, ``recommended_beat_ns`` reports the slowest
beat the part *could* run: the binning answer instead of the scrapping
answer.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..circuit.chipnet import MatcherArrayNetlist
from ..circuit.signals import HIGH, LOW
from ..errors import CircuitError
from ..signoff.timing import PathDelay, TimingParams, worst_paths
from ..timing.model import TimingModel
from .lfsr import LFSRPatternGenerator

#: Cell-prefixed node names: c{col}_{row}.x or a{col}.x
_CELL_NODE = re.compile(r"^(c\d+_\d+|a\d+)\.")


@dataclass(frozen=True)
class CharacterizationReport:
    """One chip's measured timing envelope."""

    chip: str
    m: int
    w: int
    n_transistors: int
    beats: int
    settle_passes: Tuple[int, ...]
    phase_budget_ns: float
    worst_delay_ns: float
    worst_phase: str
    worst_path: Tuple[str, ...]
    meets_budget: bool
    recommended_beat_ns: float
    settled: bool = True
    paths: Tuple[PathDelay, ...] = field(default=(), repr=False)

    @property
    def ok(self) -> bool:
        return self.meets_budget and self.settled

    @property
    def max_settle_passes(self) -> int:
        return max(self.settle_passes) if self.settle_passes else 0

    def worst_cell(self) -> str:
        """The cell the worst path spends most of its nodes in (or "")."""
        counts: Dict[str, int] = {}
        for node in self.worst_path:
            hit = _CELL_NODE.match(node)
            if hit:
                counts[hit.group(1)] = counts.get(hit.group(1), 0) + 1
        if not counts:
            return ""
        return max(sorted(counts), key=lambda cell: counts[cell])

    def to_wire(self) -> Dict[str, object]:
        return {
            "chip": self.chip, "m": self.m, "w": self.w,
            "n_transistors": self.n_transistors, "beats": self.beats,
            "settle_passes": list(self.settle_passes),
            "phase_budget_ns": self.phase_budget_ns,
            "worst_delay_ns": self.worst_delay_ns,
            "worst_phase": self.worst_phase,
            "worst_path": list(self.worst_path),
            "meets_budget": self.meets_budget,
            "recommended_beat_ns": self.recommended_beat_ns,
            "settled": self.settled,
            "worst_cell": self.worst_cell(),
        }


class Characterizer:
    """Measures a matcher array's real beat budget and settle latency.

    Parameters
    ----------
    model / params:
        The paper's beat (250 ns default) and the Elmore constants.
    beats:
        Warm-up clock beats for the settle-latency measurement.
    seed:
        LFSR seed for the warm-up stimulus.
    max_depth:
        Path-walk bound.  The budget is blown by depth ~24 under the
        default constants (0.35 ns x chain position, summed), so the
        default, 28, is deep enough to convict any over-budget chain
        while keeping the walk cheap.
    """

    def __init__(
        self,
        model: Optional[TimingModel] = None,
        params: Optional[TimingParams] = None,
        beats: int = 6,
        seed: int = 0b1011,
        max_depth: int = 28,
    ):
        self.model = model or TimingModel()
        self.params = params or TimingParams()
        self.beats = beats
        self.seed = seed
        self.max_depth = max_depth

    def _ports(self, net: MatcherArrayNetlist) -> List[str]:
        return list(net.p_edge) + list(net.s_edge) + [
            net.lam_edge, net.x_edge, net.r_edge,
        ]

    def measure_settle(
        self, net: MatcherArrayNetlist
    ) -> Tuple[Tuple[int, ...], bool]:
        """Clock the array under LFSR stimulus; passes per settle call.

        Returns ``(passes, settled)``: a part that oscillates under
        warm-up stimulus (``settled=False``) stops being clocked and
        fails characterization outright.
        """
        lfsr = LFSRPatternGenerator(2 * net.w + 2, seed=self.seed)
        c = net.circuit
        passes: List[int] = []
        for beat in range(self.beats):
            bits = lfsr.bits()
            for j in range(net.w):
                c.set_input(net.p_edge[j], HIGH if bits[j] else LOW)
                c.set_input(net.s_edge[j], HIGH if bits[net.w + j] else LOW)
            c.set_input(net.lam_edge, HIGH if bits[2 * net.w] else LOW)
            c.set_input(net.x_edge, HIGH if bits[2 * net.w + 1] else LOW)
            lfsr.step()
            phase = net.phi[beat % 2]
            for level, dt in ((HIGH, 100.0), (LOW, 25.0)):
                c.set_input(phase, level)
                try:
                    passes.append(c.settle())
                except CircuitError:
                    return tuple(passes), False
                c.advance_time(dt)
        return tuple(passes), True

    def characterize(self, net: MatcherArrayNetlist,
                     chip_name: str = "chip") -> CharacterizationReport:
        """Run both measurements on (a possibly defective) *net*."""
        settle_passes, settled = self.measure_settle(net)
        paths = worst_paths(
            net.circuit, net.phi, ports=self._ports(net),
            model=self.model, params=self.params, max_depth=self.max_depth,
        )
        worst = max(paths, key=lambda p: p.delay_ns)
        budget = self.params.budget_ns(self.model)
        meets = all(p.ok for p in paths)
        if meets:
            recommended = self.model.beat_ns
        else:
            recommended = 2 * (worst.delay_ns + self.params.nonoverlap_ns)
        return CharacterizationReport(
            chip=chip_name, m=net.m, w=net.w,
            n_transistors=net.n_transistors,
            beats=self.beats, settle_passes=settle_passes,
            phase_budget_ns=budget, worst_delay_ns=worst.delay_ns,
            worst_phase=worst.phase, worst_path=tuple(worst.path),
            meets_budget=meets, recommended_beat_ns=recommended,
            settled=settled, paths=tuple(paths),
        )
