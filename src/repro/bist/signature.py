"""Response compaction: which nodes BIST watches and how they compact.

A real tester can only afford the chip's pins, so the analyzer observes
exactly the edge-visible outputs of the array -- the pattern row exiting
right, the string row exiting left, the accumulator's result/control
outputs -- one sample per beat, compacted through a :class:`MISR`.

Each observed node contributes *two* bits per beat: its logic value and
a "known" flag.  The flag matters: an open defect often floats a node to
UNKNOWN rather than flipping it, and a value-only signature would read
UNKNOWN as LOW and could alias with a healthy LOW.
"""

from __future__ import annotations

from typing import List, Tuple

from ..circuit.chipnet import MatcherArrayNetlist
from ..circuit.signals import HIGH, UNKNOWN
from .lfsr import MISR


class SignatureAnalyzer:
    """Samples a matcher array's edge outputs into a MISR signature."""

    def __init__(self, misr_width: int = 32, poly: int = MISR.DEFAULT_POLY):
        self.misr_width = misr_width
        self.poly = poly

    def response_nodes(self, net: MatcherArrayNetlist) -> Tuple[str, ...]:
        """The observed output nodes, in a fixed observation order.

        Edge pins (pattern exiting right, string exiting left, the
        accumulator outputs) plus *test points* down the d-chain: every
        comparator's ``d_out`` and the chain foot entering each
        accumulator.  The d-chain is an AND ladder, the textbook
        random-pattern-resistant structure, and an open in it often
        shows only as an UNKNOWN confined to the broken gate's own
        output node -- so each stage is tapped directly, the
        observability a self-testing chip would route to its BIST
        comparator for exactly that reason.
        """
        m, w = net.m, net.w
        nodes: List[str] = []
        for j in range(w):
            nodes.append(net.comparators[j][m - 1]["p_out"])  # exits right
            nodes.append(net.comparators[j][0]["s_out"])      # exits left
        nodes.append(net.accumulators[0]["r_out"])            # chip R_OUT
        nodes.append(net.accumulators[m - 1]["lam_out"])
        nodes.append(net.accumulators[m - 1]["x_out"])
        for i in range(m):                                    # test points
            for j in range(w):
                nodes.append(net.comparators[j][i]["d_out"])
            # Every accumulator's own outputs, not just the chip edges:
            # a misphased transfer in an interior (or last) column races
            # only under rare stimulus if it must propagate to the far
            # edge, but shows at the cell's own latch outputs within a
            # few beats.
            acc = net.accumulators[i]
            nodes.append(acc["d_in"])
            nodes.append(acc["r_out"])
            nodes.append(acc["lam_out"])
            nodes.append(acc["x_out"])
        return tuple(nodes)

    def new_misr(self) -> MISR:
        return MISR(width=self.misr_width, poly=self.poly)

    def sample(self, net: MatcherArrayNetlist,
               nodes: Tuple[str, ...]) -> List[int]:
        """One response word as a bit list: (value, known) per node."""
        bits: List[int] = []
        read = net.circuit.read
        for node in nodes:
            v = read(node)
            if v is UNKNOWN:
                bits.extend((0, 0))
            else:
                bits.extend((1 if v is HIGH else 0, 1))
        return bits

    def observe(self, misr: MISR, net: MatcherArrayNetlist,
                nodes: Tuple[str, ...]) -> int:
        return misr.observe_bits(self.sample(net, nodes))
