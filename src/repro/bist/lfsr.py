"""LFSR stimulus and MISR compaction: the shift-register half of BIST.

The classic built-in self-test datapath (LFSR pattern generator feeding
the circuit under test, multiple-input signature register compacting its
responses) maps naturally onto the paper's technology: both registers are
exactly the kind of clocked shift structure the matcher chip is built
from, so a production part could carry them in the pad ring.

Here they are bit-exact software models:

* :class:`LFSRPatternGenerator` -- a Fibonacci LFSR over a maximal-length
  polynomial, one fresh ``width``-bit stimulus vector per beat.  Same
  seed, same taps => same vector sequence, forever; determinism is the
  point (the golden signature is only meaningful against a reproducible
  stimulus).
* :class:`MISR` -- a Galois-style multiple-input signature register.
  Each beat's observed response word is XOR-folded into the rotating
  state; after N beats the state is the *signature*.  A single wrong bit
  anywhere in the response stream changes the signature (aliasing
  probability ~2^-width).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ..errors import CircuitError

#: Maximal-length Fibonacci tap positions (1-based, from the standard
#: primitive-polynomial tables) for register widths 2..24.  An LFSR with
#: these taps cycles through all 2^n - 1 nonzero states.
_MAXIMAL_TAPS = {
    2: (2, 1), 3: (3, 2), 4: (4, 3), 5: (5, 3), 6: (6, 5), 7: (7, 6),
    8: (8, 6, 5, 4), 9: (9, 5), 10: (10, 7), 11: (11, 9),
    12: (12, 11, 10, 4), 13: (13, 12, 11, 8), 14: (14, 13, 12, 2),
    15: (15, 14), 16: (16, 15, 13, 4), 17: (17, 14), 18: (18, 11),
    19: (19, 18, 17, 14), 20: (20, 17), 21: (21, 19), 22: (22, 21),
    23: (23, 18), 24: (24, 23, 22, 17),
}


class LFSRPatternGenerator:
    """A Fibonacci LFSR producing deterministic stimulus vectors.

    Parameters
    ----------
    width:
        Bits per stimulus vector (= register length).  Must have an
        entry in the maximal-tap table (2..24).
    seed:
        Nonzero initial register state (an all-zero LFSR never leaves
        zero).
    """

    def __init__(self, width: int, seed: int = 0b1011):
        if width not in _MAXIMAL_TAPS:
            raise CircuitError(
                f"no maximal-length taps for LFSR width {width} "
                f"(supported: 2..{max(_MAXIMAL_TAPS)})"
            )
        mask = (1 << width) - 1
        if seed & mask == 0:
            raise CircuitError("LFSR seed must be nonzero (mod 2^width)")
        self.width = width
        self.seed = seed & mask
        self.taps = _MAXIMAL_TAPS[width]
        self._mask = mask
        self._state = self.seed

    @property
    def period(self) -> int:
        """Cycle length: every nonzero state, once."""
        return (1 << self.width) - 1

    @property
    def state(self) -> int:
        return self._state

    def reset(self) -> None:
        self._state = self.seed

    def step(self) -> int:
        """Advance one beat; returns the new register state."""
        s = self._state
        fb = 0
        for t in self.taps:
            fb ^= (s >> (t - 1)) & 1
        self._state = ((s << 1) | fb) & self._mask
        return self._state

    def bits(self) -> Tuple[int, ...]:
        """The current state as a bit tuple, LSB first."""
        s = self._state
        return tuple((s >> i) & 1 for i in range(self.width))

    def vectors(self, count: int) -> Iterator[Tuple[int, ...]]:
        """Yield *count* stimulus vectors, stepping between each."""
        for _ in range(count):
            yield self.bits()
            self.step()


class MISR:
    """Multiple-input signature register (Galois form).

    ``observe(word)`` folds one response word into the state:
    rotate-with-feedback, then XOR the parallel inputs in.  ``signature``
    is the state after the last observation.
    """

    #: CRC-32 polynomial, a dense, well-studied feedback mask.
    DEFAULT_POLY = 0x04C11DB7

    def __init__(self, width: int = 32, poly: int = DEFAULT_POLY,
                 init: int = 0):
        if width < 8:
            raise CircuitError("MISR narrower than 8 bits aliases too easily")
        self.width = width
        self._mask = (1 << width) - 1
        self.poly = poly & self._mask
        self.init = init & self._mask
        self._state = self.init
        self.n_observed = 0

    def reset(self) -> None:
        self._state = self.init
        self.n_observed = 0

    def observe(self, word: int) -> int:
        """Fold one response word (any width; wide words wrap) in."""
        s = self._state
        top = (s >> (self.width - 1)) & 1
        s = ((s << 1) & self._mask) ^ (self.poly if top else 0)
        # Fold over-wide inputs so every observed bit lands in-state.
        w = word
        while w:
            s ^= w & self._mask
            w >>= self.width
        self._state = s
        self.n_observed += 1
        return s

    def observe_bits(self, bits: List[int]) -> int:
        """Pack a bit list (LSB first) into a word and observe it."""
        word = 0
        for i, b in enumerate(bits):
            if b:
                word |= 1 << i
        return self.observe(word)

    @property
    def signature(self) -> int:
        return self._state
