"""Multi-chip cascades (Figure 3-7).

"The inputs to each chip ... are taken from the outputs of its
neighbors, so that the cells on all of the chips form a single linear
array.  The pattern is fed to the inputs of the leftmost chip, and the
text string is input to the rightmost chip.  The result output is taken
from the leftmost chip.  A cascade of k chips with n cells each can
match patterns of up to kn characters."
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..alphabet import Alphabet, PatternChar, parse_pattern
from ..errors import ChipError, PatternError
from ..core.array import MATCHER_CHANNELS, SystolicMatcherArray, TextToken
from ..core.cells import MatcherCellKernel, ResultToken
from ..streams import RecirculatingPattern
from ..systolic.cell import is_bubble
from ..systolic.engine import LinearArray
from ..systolic.topology import ChainedArrays
from .chip import ChipSpec


class ChipCascade:
    """``k`` chips wired pin to pin as one long pattern matcher."""

    def __init__(self, spec: ChipSpec, n_chips: int, alphabet: Alphabet):
        if n_chips <= 0:
            raise ChipError("cascade needs at least one chip")
        if alphabet.bits > spec.char_bits:
            raise ChipError("alphabet wider than the chip datapath")
        self.spec = spec
        self.n_chips = n_chips
        self.alphabet = alphabet
        self.chain = ChainedArrays(
            [
                LinearArray(
                    spec.n_cells,
                    MATCHER_CHANNELS,
                    lambda i: MatcherCellKernel(),
                    ("p", "s"),
                    name=f"{spec.name}[{c}]",
                )
                for c in range(n_chips)
            ]
        )
        self._pattern: List[PatternChar] = []
        self.obs = None

    def attach_obs(self, obs) -> None:
        """Attach/detach an Observability bundle on every chip in the
        chain (per-stage ``array.*`` metrics) and record ``cascade.match``
        spans around runs."""
        self.obs = obs
        for stage in self.chain.stages:
            stage.attach_obs(obs)

    @property
    def capacity(self) -> int:
        """kn character cells (the Figure 3-7 headline)."""
        return self.spec.n_cells * self.n_chips

    def load_pattern(self, pattern, wildcard_symbol: str = "X") -> None:
        if pattern and all(isinstance(pc, PatternChar) for pc in pattern):
            parsed = list(pattern)
        else:
            parsed = parse_pattern(pattern, self.alphabet, wildcard_symbol)
        if len(parsed) > self.capacity:
            raise PatternError(
                f"pattern of length {len(parsed)} exceeds cascade capacity "
                f"{self.capacity}"
            )
        self._pattern = parsed

    def match(self, text: Sequence[str]) -> List[bool]:
        """Stream text through the cascade; result from the leftmost chip.

        Uses the same host feeding discipline as a single chip of
        ``capacity`` cells -- which is the Figure 3-7 claim: the cascade
        *is* that bigger chip.
        """
        if not self._pattern:
            raise ChipError("no pattern loaded")
        chars = self.alphabet.validate_text(text)
        # Borrow the single-array schedule generator for the full length.
        reference = SystolicMatcherArray(self.capacity)
        tokens = [TextToken(c, i) for i, c in enumerate(chars)]
        items = RecirculatingPattern(self._pattern).items
        n_beats = reference.beats_needed(len(tokens))
        schedule = reference.input_schedule(items, tokens, n_beats)
        self.chain.reset()
        span = None
        if self.obs is not None:
            span = self.obs.tracer.begin(
                "cascade.match", t0=0.0, unit="beats",
                chips=self.n_chips, capacity=self.capacity, chars=len(chars),
            )
        raw: Dict[int, object] = {}
        for beat_in in schedule:
            out = self.chain.step(beat_in)
            s_out = out["s"]
            if not is_bubble(s_out):
                r_out = out["r"]
                if isinstance(r_out, ResultToken):
                    raw[s_out.index] = r_out.value
        if span is not None:
            self.obs.tracer.end(span, t1=float(self.chain.beat))
        k = len(self._pattern) - 1
        return [
            bool(raw.get(i, False)) if i >= k else False
            for i in range(len(chars))
        ]

    def beats_for_text(self, n_text: int) -> int:
        """Beats to stream *n_text* characters (fill + stream + drain)."""
        reference = SystolicMatcherArray(self.capacity)
        return reference.beats_needed(n_text)

    def data_rate_chars_per_s(self) -> float:
        """Cascading leaves the beat clock -- and thus the rate -- unchanged."""
        return 1e9 / self.spec.beat_ns
