"""Chip- and board-level packaging (Figure 3-7, Plate 2).

* :mod:`repro.chip.chip` -- :class:`PatternMatchingChip`, one chip with a
  fixed number of character cells and the extensibility pins of
  Section 3.4;
* :mod:`repro.chip.cascade` -- :class:`ChipCascade`, several chips wired
  as a single longer array (Figure 3-7);
* :mod:`repro.chip.prototype` -- the fabricated prototype configuration
  (8 cells, two-bit characters, 250 ns per character).
"""

from .cascade import ChipCascade
from .chip import PatternMatchingChip
from .prototype import PROTOTYPE, PrototypeChip

__all__ = ["ChipCascade", "PatternMatchingChip", "PROTOTYPE", "PrototypeChip"]
