"""One pattern-matching chip: capacity, pins, and timing.

A :class:`PatternMatchingChip` is the packaged article: a fixed number of
character cells (set at fabrication time), the chip-edge pins that make
cascading possible ("an input for the result stream and outputs for the
pattern and text streams must be available", Section 3.4), and a beat
clock.  The data path is the verified behavioural array of
:mod:`repro.core.array`; gate-level fidelity is established separately by
the cross-level tests of :mod:`repro.circuit.chipnet`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..alphabet import Alphabet, PatternChar, parse_pattern
from ..errors import ChipError, PatternError
from ..core.array import SystolicMatcherArray
from ..core.fastpath import FastMatcher
from ..core.matcher import MatchReport
from ..core.multipass import multipass_match
from ..streams import RecirculatingPattern


@dataclass(frozen=True)
class ChipSpec:
    """Fabrication-time parameters of a chip."""

    n_cells: int
    char_bits: int
    beat_ns: float = 250.0
    name: str = "pattern-matcher"

    def __post_init__(self):
        if self.n_cells <= 0:
            raise ChipError("a chip needs at least one character cell")
        if self.char_bits <= 0:
            raise ChipError("characters need at least one bit")
        if self.beat_ns <= 0:
            raise ChipError("beat time must be positive")

    @property
    def pins(self) -> List[str]:
        """The package pins (Section 3.4 extensibility set)."""
        pins = ["VDD", "GND", "PHI1", "PHI2",
                "LAM_IN", "X_IN", "LAM_OUT", "X_OUT", "R_IN", "R_OUT"]
        for j in range(self.char_bits):
            pins += [f"P_IN{j}", f"P_OUT{j}", f"S_IN{j}", f"S_OUT{j}"]
        return pins

    @property
    def pin_count(self) -> int:
        return len(self.pins)

    def characters_per_second(self) -> float:
        """Bus data rate in characters per second.

        One character (pattern or text, alternating) crosses the bus per
        beat; the paper quotes exactly this stream rate: "a data rate of
        one character every 250 ns".
        """
        return 1e9 / self.beat_ns


class PatternMatchingChip:
    """A packaged chip that can be loaded with any pattern that fits."""

    def __init__(self, spec: ChipSpec, alphabet: Alphabet):
        if alphabet.bits > spec.char_bits:
            raise ChipError(
                f"alphabet needs {alphabet.bits}-bit characters but the chip "
                f"datapath is {spec.char_bits} bits wide"
            )
        self.spec = spec
        self.alphabet = alphabet
        self.array = SystolicMatcherArray(spec.n_cells, name=spec.name)
        self._pattern: Optional[List[PatternChar]] = None
        self._stream: Optional[RecirculatingPattern] = None
        self._fast: Optional[FastMatcher] = None
        self.obs = None

    def attach_obs(self, obs) -> None:
        """Attach/detach an Observability bundle.

        The chip's array publishes beat/fire counters labelled with the
        spec name; :meth:`report` runs wrap in a ``chip.report`` span.
        """
        self.obs = obs
        self.array.attach_obs(obs)

    # -- pattern loading ------------------------------------------------------

    def load_pattern(self, pattern, wildcard_symbol: str = "X") -> None:
        """Set the pattern the host will stream (no cell storage needed --
        the pattern recirculates, which is why loading takes zero beats;
        cf. the rejected static design of Section 3.3.1)."""
        if pattern and all(isinstance(pc, PatternChar) for pc in pattern):
            parsed = list(pattern)
        else:
            parsed = parse_pattern(pattern, self.alphabet, wildcard_symbol)
        if len(parsed) > self.spec.n_cells:
            raise PatternError(
                f"pattern of length {len(parsed)} exceeds chip capacity "
                f"{self.spec.n_cells}; cascade chips (Figure 3-7) or use "
                f"multipass matching"
            )
        self._pattern = parsed
        self._stream = RecirculatingPattern(parsed)
        self._fast = FastMatcher(parsed, self.alphabet)

    @property
    def pattern(self) -> List[PatternChar]:
        if self._pattern is None:
            raise ChipError("no pattern loaded")
        return list(self._pattern)

    # -- operation ----------------------------------------------------------------

    def match(self, text: Sequence[str]) -> List[bool]:
        """Stream *text* through the chip; one result bit per character.

        Runs on the bit-parallel fast path (equivalent to the stepwise
        array; see :mod:`repro.core.fastpath`); :meth:`report` runs the
        beat-accurate array when timing figures are needed.
        """
        if self._fast is None:
            raise ChipError("no pattern loaded")
        return self._fast.match(text)

    def report(self, text: Sequence[str]) -> MatchReport:
        if self._stream is None:
            raise ChipError("no pattern loaded")
        chars = self.alphabet.validate_text(text)
        span = None
        if self.obs is not None:
            span = self.obs.tracer.begin(
                "chip.report", t0=0.0, unit="beats", chip=self.spec.name,
                chars=len(chars), pattern_len=len(self._pattern),
            )
        raw = self.array.run(self._stream.items, chars)
        k = len(self._pattern) - 1
        results = [
            bool(raw.get(i, False)) if i >= k else False
            for i in range(len(chars))
        ]
        rep = MatchReport(
            results=results,
            beats=self.array.array.beat,
            utilization=self.array.utilization(),
        )
        if span is not None:
            self.obs.tracer.end(
                span, t1=float(rep.beats),
                matches=len(rep.match_positions),
                utilization=rep.utilization,
            )
        return rep

    def match_long_pattern(self, pattern, text: Sequence[str]) -> List[bool]:
        """Section 3.4 multipass operation for patterns beyond capacity."""
        parsed = parse_pattern(pattern, self.alphabet) if not (
            pattern and all(isinstance(pc, PatternChar) for pc in pattern)
        ) else list(pattern)
        return multipass_match(parsed, list(text), self.spec.n_cells,
                               obs=self.obs)

    # -- timing ----------------------------------------------------------------------

    def elapsed_ns(self, report: MatchReport) -> float:
        """Wall-clock time of a run under the chip's beat clock."""
        return report.beats * self.spec.beat_ns

    def text_rate_chars_per_s(self) -> float:
        """Steady-state text throughput: one text char per two beats."""
        return 1e9 / (2 * self.spec.beat_ns)
