"""The fabricated prototype (Plate 2).

"Plate 2 is a photograph of a prototype pattern matching chip that can
handle patterns containing up to eight two-bit characters."  and
"Preliminary results show that the chip can achieve a data rate of one
character every 250 ns, which is higher than the memory bandwidth of most
conventional computers."

:class:`PrototypeChip` is that exact configuration; its companion
constants carry the fabrication context (XEROX PARC multi-project run,
Spring 1979; Mead & Conway NMOS at lambda = 2.5 um; ~two man-months of
design effort) used by the economics bench.
"""

from __future__ import annotations

from ..alphabet import PROTOTYPE_ALPHABET
from .chip import ChipSpec, PatternMatchingChip

#: The published prototype parameters.
PROTOTYPE = ChipSpec(
    n_cells=8,
    char_bits=2,
    beat_ns=250.0,
    name="CMU pattern matcher (Spring 1979)",
)

#: Design effort reported in Section 5.
DESIGN_EFFORT_MAN_MONTHS = 2.0

#: Process assumed throughout: Mead & Conway NMOS, lambda = 2.5 um.
LAMBDA_MICRONS = 2.5


class PrototypeChip(PatternMatchingChip):
    """The Plate 2 chip: 8 character cells, 2-bit characters, 250 ns beat."""

    def __init__(self):
        super().__init__(PROTOTYPE, PROTOTYPE_ALPHABET)

    @property
    def max_pattern_length(self) -> int:
        return PROTOTYPE.n_cells

    def data_rate_mchars_per_s(self) -> float:
        """4 Mchars/s: one character per 250 ns."""
        return self.spec.characters_per_second() / 1e6
