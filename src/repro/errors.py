"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the layer that failed (algorithm, circuit, layout,
chip packaging, methodology).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class AlphabetError(ReproError):
    """A character is not a member of the alphabet in use."""


class PatternError(ReproError):
    """A pattern is malformed (empty, too long for a chip, bad wildcard)."""


class StreamError(ReproError):
    """A beat stream was used out of protocol (wrong phase, exhausted)."""


class SimulationError(ReproError):
    """A systolic simulation violated an internal invariant."""


class CircuitError(ReproError):
    """Netlist construction or switch-level simulation failure."""


class ClockError(CircuitError):
    """Two-phase clock discipline violated (overlapping phases, etc.)."""


class ChargeDecayError(CircuitError):
    """A dynamic storage node was read after its retention time expired."""


class LayoutError(ReproError):
    """Stick-diagram or mask-layout construction failure."""


class DesignRuleViolation(LayoutError):
    """A lambda design rule was violated.

    Attributes
    ----------
    rule:
        Short rule identifier, e.g. ``"metal-width"``.
    detail:
        Human-readable description including coordinates.
    """

    def __init__(self, rule: str, detail: str):
        super().__init__(f"{rule}: {detail}")
        self.rule = rule
        self.detail = detail


class CIFError(LayoutError):
    """Malformed CIF text encountered while parsing."""


class ChipError(ReproError):
    """Chip- or cascade-level configuration error."""


class ProvisionError(ChipError):
    """A replacement worker could not be provisioned (wafer supply
    exhausted, or every candidate harvest failed its incoming BIST)."""


class HostError(ReproError):
    """Host-system / bus protocol error."""


class MethodologyError(ReproError):
    """Design-task graph is inconsistent (cycle, missing input)."""


class SignoffError(ReproError):
    """Signoff pipeline misuse or internal inconsistency."""


class ExtractionError(SignoffError):
    """Layout geometry could not be interpreted as a transistor netlist."""


class ObservabilityError(ReproError):
    """Metrics/tracing/VCD misuse (kind mismatch, undeclared signal...)."""


class ServiceError(ReproError):
    """Matcher-farm service layer misuse or internal inconsistency."""


class BackpressureError(ServiceError):
    """A bounded job queue refused a submission (queue at capacity)."""


class OverloadError(ServiceError):
    """The concurrent runtime shed a job (admission control overload)."""


class DeadlineError(ServiceError):
    """A job's deadline expired before it could be served."""
