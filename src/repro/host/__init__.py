"""The Figure 1-1 system: special-purpose chips on a general-purpose host.

"Special-purpose VLSI chips can be used as peripheral devices attached to
a conventional host computer.  The resulting system can be considered as
an efficient general-purpose computer, if many types of chips are
attached" -- the figure shows a pattern matcher, an FFT device and a
sorter.  This subpackage models that system: a beat-synchronous bus with
a host memory-bandwidth budget, an attached-device protocol, and the
three devices of the figure.
"""

from .bus import HostBus, HostSpec
from .device import AttachedDevice
from .system import HostSystem

__all__ = ["AttachedDevice", "HostBus", "HostSpec", "HostSystem"]
