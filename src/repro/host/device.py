"""The attached-device protocol of Figure 1-1."""

from __future__ import annotations

from typing import List, Sequence


class AttachedDevice:
    """Base class for special-purpose chips hanging off the host bus.

    A device declares its beat time (how fast it consumes/produces stream
    items) and implements :meth:`process`, the streaming computation.
    ``beats_for(n)`` reports total beats including pipeline fill/drain so
    the host can account elapsed time.
    """

    name: str = "device"
    beat_ns: float = 250.0

    def process(self, stream: Sequence[object]) -> List[object]:
        """Consume an input stream, produce the output stream."""
        raise NotImplementedError

    def beats_for(self, n_items: int) -> int:
        """Beats to process *n_items* (default: streaming rate 1/beat)."""
        return n_items

    def elapsed_ns(self, n_items: int) -> float:
        return self.beats_for(n_items) * self.beat_ns
