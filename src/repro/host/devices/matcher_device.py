"""The pattern matcher as a Figure 1-1 peripheral."""

from __future__ import annotations

from typing import List, Sequence

from ...alphabet import Alphabet
from ...chip.chip import ChipSpec, PatternMatchingChip
from ...errors import HostError
from ..device import AttachedDevice


class PatternMatcherDevice(AttachedDevice):
    """Wraps a :class:`~repro.chip.chip.PatternMatchingChip` for the bus.

    The host writes the pattern once, then streams text; the device
    returns the result bit stream.  Beat accounting matches the chip:
    pattern and text alternate on the bus, so n text characters cost
    about 2n beats plus fill/drain.
    """

    name = "pattern-matcher"

    def __init__(self, spec: ChipSpec, alphabet: Alphabet):
        self.chip = PatternMatchingChip(spec, alphabet)
        self.beat_ns = spec.beat_ns
        self._loaded = False

    def load_pattern(self, pattern) -> None:
        self.chip.load_pattern(pattern)
        self._loaded = True

    def process(self, stream: Sequence[str]) -> List[bool]:
        if not self._loaded:
            raise HostError("load a pattern before streaming text")
        return self.chip.match(stream)

    def beats_for(self, n_items: int) -> int:
        return self.chip.array.beats_needed(n_items)
