"""A systolic sorter device (the "sorter" box of Figure 1-1).

Implemented as the classic linear-array priority queue (Leiserson-style):
``n`` cells each holding one key.  During the *insert* phase one new key
enters cell 0 per beat; every cell keeps the smaller of (held, incoming)
and passes the larger right -- a beat-synchronous bubble of displaced
keys.  During the *extract* phase the minimum leaves cell 0 each beat and
the remaining keys shift left.  Sorting N keys therefore streams in N
beats in and N beats out, with all comparisons done in the array --
another instance of the paper's thesis that a regular cell array turns an
O(N log N) software task into an O(N)-beat streaming task.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ...errors import HostError
from ..device import AttachedDevice


class _SorterCell:
    """One priority-queue cell: holds at most one key."""

    __slots__ = ("held",)

    def __init__(self) -> None:
        self.held: Optional[float] = None

    def insert(self, incoming: Optional[float]) -> Optional[float]:
        """Keep the smaller key, pass the larger to the right neighbour."""
        if incoming is None:
            return None
        if self.held is None:
            self.held = incoming
            return None
        if incoming < self.held:
            self.held, incoming = incoming, self.held
        return incoming


class SystolicSorterDevice(AttachedDevice):
    """Sorts a stream of keys via the systolic priority queue."""

    name = "sorter"

    def __init__(self, n_cells: int = 64, beat_ns: float = 250.0):
        if n_cells <= 0:
            raise HostError("sorter needs at least one cell")
        self.n_cells = n_cells
        self.beat_ns = beat_ns
        self.beats_run = 0

    def process(self, stream: Sequence[float]) -> List[float]:
        """Return the keys in ascending order.

        Raises if the stream exceeds the array capacity (a real device
        would sort runs and merge on the host).
        """
        keys = [float(v) for v in stream]
        if len(keys) > self.n_cells:
            raise HostError(
                f"{len(keys)} keys exceed sorter capacity {self.n_cells}; "
                f"sort in runs and merge"
            )
        cells = [_SorterCell() for _ in range(self.n_cells)]
        # Insert phase: one key per beat; displaced keys ripple right, one
        # cell per beat (modelled by sweeping the insert down the array).
        for key in keys:
            moving: Optional[float] = key
            for cell in cells:
                moving = cell.insert(moving)
                if moving is None:
                    break
            self.beats_run += 1
        # Extract phase: minimum leaves cell 0 each beat; others shift left.
        out: List[float] = []
        for _ in range(len(keys)):
            out.append(cells[0].held)
            for i in range(self.n_cells - 1):
                cells[i].held = cells[i + 1].held
            cells[-1].held = None
            self.beats_run += 1
        return out

    def beats_for(self, n_items: int) -> int:
        """N beats in plus N beats out."""
        return 2 * n_items
