"""The three devices Figure 1-1 attaches to the host: pattern matcher,
sorter, and FFT device."""

from .fft import FFTDevice
from .matcher_device import PatternMatcherDevice
from .sorter import SystolicSorterDevice

__all__ = ["FFTDevice", "PatternMatcherDevice", "SystolicSorterDevice"]
