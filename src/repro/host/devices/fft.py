"""A pipelined FFT device (the "FFT device" box of Figure 1-1).

Modelled as the standard radix-2 decimation-in-time pipeline:
``log2(N)`` butterfly stages, each a rank of N/2 butterfly units that a
hardware pipeline would evaluate in parallel while streaming blocks.  The
implementation computes stage by stage over explicit butterfly units (no
library FFT in the datapath) and is verified against ``numpy.fft.fft``;
beat accounting assumes one block of N samples enters per N beats with
log2(N) stages of pipeline latency.
"""

from __future__ import annotations

import cmath
import math
from typing import List, Sequence

from ...errors import HostError
from ..device import AttachedDevice


def _bit_reverse_permute(values: List[complex]) -> List[complex]:
    n = len(values)
    bits = n.bit_length() - 1
    out = [0j] * n
    for i, v in enumerate(values):
        j = int(format(i, f"0{bits}b")[::-1], 2) if bits else 0
        out[j] = v
    return out


class _ButterflyUnit:
    """One hardware butterfly: (a, b, w) -> (a + w*b, a - w*b)."""

    def compute(self, a: complex, b: complex, w: complex):
        t = w * b
        return a + t, a - t


class FFTDevice(AttachedDevice):
    """Streaming radix-2 FFT over blocks of ``block_size`` samples."""

    name = "fft"

    def __init__(self, block_size: int = 64, beat_ns: float = 250.0):
        if block_size < 2 or block_size & (block_size - 1):
            raise HostError("block size must be a power of two >= 2")
        self.block_size = block_size
        self.beat_ns = beat_ns
        self.n_stages = int(math.log2(block_size))
        # One rank of butterfly units per stage, N/2 units each -- the
        # hardware inventory a pipeline implementation replicates.
        self.butterflies = [
            [_ButterflyUnit() for _ in range(block_size // 2)]
            for _ in range(self.n_stages)
        ]

    def process(self, stream: Sequence[complex]) -> List[complex]:
        """Transform the stream block by block (zero-pads the last block)."""
        data = [complex(v) for v in stream]
        if not data:
            return []
        n = self.block_size
        while len(data) % n:
            data.append(0j)
        out: List[complex] = []
        for start in range(0, len(data), n):
            out.extend(self._transform_block(data[start : start + n]))
        return out

    def _transform_block(self, block: List[complex]) -> List[complex]:
        n = self.block_size
        values = _bit_reverse_permute(block)
        size = 2
        for stage in range(self.n_stages):
            half = size // 2
            w_step = cmath.exp(-2j * cmath.pi / size)
            unit_iter = iter(self.butterflies[stage])
            for base in range(0, n, size):
                w = 1 + 0j
                for k in range(half):
                    unit = next(unit_iter)
                    a, b = values[base + k], values[base + k + half]
                    values[base + k], values[base + k + half] = unit.compute(a, b, w)
                    w *= w_step
            size *= 2
        return values

    def beats_for(self, n_items: int) -> int:
        """One sample per beat plus per-block pipeline latency."""
        if n_items == 0:
            return 0
        blocks = -(-n_items // self.block_size)
        return blocks * self.block_size + self.n_stages
