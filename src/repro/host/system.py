"""The assembled Figure 1-1 system."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..errors import HostError
from .bus import HostBus, HostSpec
from .device import AttachedDevice


@dataclass
class JobRecord:
    """Accounting for one offloaded job."""

    device: str
    n_items: int
    transfer_ns: float
    device_ns: float

    @property
    def total_ns(self) -> float:
        # Streaming devices overlap transfer with computation; the job
        # takes whichever is longer plus nothing extra.
        return max(self.transfer_ns, self.device_ns)


class HostSystem:
    """A general-purpose computer with special-purpose chips attached.

    >>> sys = HostSystem(HostSpec())
    >>> sys.attach(SystolicSorterDevice())            # doctest: +SKIP
    >>> sys.run("sorter", [3, 1, 2])                  # doctest: +SKIP
    [1.0, 2.0, 3.0]
    """

    def __init__(self, host: Optional[HostSpec] = None):
        self.host = host or HostSpec()
        self.bus = HostBus(self.host)
        self.devices: Dict[str, AttachedDevice] = {}
        self.jobs: List[JobRecord] = []

    def attach(self, device: AttachedDevice) -> None:
        if device.name in self.devices:
            raise HostError(f"device slot {device.name!r} already occupied")
        self.devices[device.name] = device

    def detach(self, name: str) -> None:
        if name not in self.devices:
            raise HostError(f"no device named {name!r}")
        del self.devices[name]

    def run(self, device_name: str, stream: Sequence[object]) -> List[object]:
        """Offload a stream to a device, with bus/time accounting."""
        if not self.devices:
            raise HostError(
                "no devices attached; attach() a device before run()"
            )
        try:
            device = self.devices[device_name]
        except KeyError:
            raise HostError(
                f"no device named {device_name!r}; attached: "
                f"{sorted(self.devices)}"
            ) from None
        result = device.process(stream)
        transfer = self.bus.transfer(
            len(stream) + len(result), device.beat_ns
        )
        self.jobs.append(
            JobRecord(
                device=device_name,
                n_items=len(stream),
                transfer_ns=transfer,
                device_ns=device.elapsed_ns(len(stream)),
            )
        )
        return result

    def total_device_time_ns(self) -> float:
        return sum(j.total_ns for j in self.jobs)
