"""The host bus and the 1979-vintage host model.

The chip's claim to fame is that its 250 ns/character appetite exceeds
"the memory bandwidth of most conventional computers".  The
:class:`HostSpec` captures the host parameters that claim is judged
against: memory cycle time, word width, and the per-character instruction
cost of doing the same work in software.  :class:`HostBus` meters stream
transfers against the memory bandwidth and accumulates transfer time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from ..errors import HostError


@dataclass(frozen=True)
class HostSpec:
    """A conventional-computer model (defaults: a late-70s minicomputer).

    ``memory_cycle_ns``: time per memory word access (~600 ns for a
    PDP-11/45-class machine; fast 1979 mainframes reached ~100 ns).
    ``bytes_per_word``: memory word width.
    ``cpu_ops_per_char_match``: instructions a software matcher spends per
    text character per pattern position (inner-loop cost).
    ``cpu_op_ns``: average instruction time.
    """

    name: str = "minicomputer-1979"
    memory_cycle_ns: float = 600.0
    bytes_per_word: int = 2
    cpu_ops_per_char_match: float = 4.0
    cpu_op_ns: float = 900.0

    def memory_bandwidth_chars_per_s(self) -> float:
        """Peak character (byte) bandwidth of the memory system."""
        return self.bytes_per_word / (self.memory_cycle_ns * 1e-9)

    def software_match_time_ns(self, n_text: int, pattern_len: int) -> float:
        """Naive software wildcard matching time on this host."""
        return n_text * pattern_len * self.cpu_ops_per_char_match * self.cpu_op_ns


class HostBus:
    """A beat-synchronous DMA channel between host memory and devices.

    Transfers are limited by whichever is slower: the device's beat rate
    or the host's memory bandwidth -- the comparison at the heart of the
    paper's introduction.
    """

    def __init__(self, host: HostSpec, obs=None):
        self.host = host
        self.busy_ns: float = 0.0
        self.chars_moved: int = 0
        self.obs = None
        self._m_transfers = None
        self._m_chars = None
        if obs is not None:
            self.attach_obs(obs)

    def attach_obs(self, obs) -> None:
        """Attach/detach an Observability bundle; transfers count into
        ``host.bus.transfers`` / ``host.bus.chars``."""
        self.obs = obs
        if obs is None:
            self._m_transfers = self._m_chars = None
            return
        self._m_transfers = obs.registry.counter("host.bus.transfers")
        self._m_chars = obs.registry.counter("host.bus.chars")

    def transfer(self, n_chars: int, device_beat_ns: float) -> float:
        """Move *n_chars* stream characters; returns elapsed ns.

        Each character needs one device beat and 1/bytes_per_word of a
        memory cycle; the slower side paces the stream.
        """
        if n_chars < 0:
            raise HostError("cannot transfer a negative number of characters")
        per_char_mem = self.host.memory_cycle_ns / self.host.bytes_per_word
        per_char = max(device_beat_ns, per_char_mem)
        elapsed = n_chars * per_char
        self.busy_ns += elapsed
        self.chars_moved += n_chars
        if self._m_transfers is not None:
            self._m_transfers.inc()
            self._m_chars.inc(n_chars)
        return elapsed

    def is_device_starved(self, device_beat_ns: float) -> bool:
        """True when the device could consume faster than memory supplies.

        For the prototype (250 ns/char) against a 600 ns/2-byte-word
        memory this is True -- the paper's "higher than the memory
        bandwidth of most conventional computers".
        """
        per_char_mem = self.host.memory_cycle_ns / self.host.bytes_per_word
        return device_beat_ns < per_char_mem
