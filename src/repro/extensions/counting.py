"""The match-counting machine of Section 3.4.

"For example, we might wish to count how many characters in each substring
match the corresponding characters in the pattern.  This problem can be
solved by replacing the result bit stream by a stream of integers, and
replacing the accumulator cell by a counting cell."

Per-active-beat counting-cell semantics (the paper's listing, with the
evident OCR slip ``r_out <- 1`` read as ``r_out <- t``, consistent with
the accumulator's ``r_out <- t; t <- ...`` discipline):

    lambda_out <- lambda_in ; x_out <- x_in
    t' = t + 1  if (x_in OR d_in)  else  t
    if lambda_in:  r_out <- t' ; t <- 0
    else:          r_out <- r_in ; t <- t'

Usage -- one integer per text position, 0 before the first full window:

>>> from repro.alphabet import Alphabet
>>> systolic_match_counts("AB", "ABBB", Alphabet("AB"))
[0, 2, 1, 1]

The fast twin is :class:`repro.core.fastpath.FastCounter`; the direct
definition is :func:`repro.core.reference.count_oracle`; the farm serves
this as ``submit(workload="count")``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from ..alphabet import Alphabet, PatternChar, parse_pattern
from ..errors import PatternError
from ..streams import PatternStreamItem, RecirculatingPattern
from ..core.array import SystolicMatcherArray
from ..core.cells import ComparatorCell, ResultToken


class CountingCell:
    """Counting replacement for the accumulator (state: integer ``t``)."""

    def __init__(self) -> None:
        self.t: int = 0

    def reset(self) -> None:
        self.t = 0

    def absorb(self, d: bool, x_in: bool, lambda_in: bool):
        t_updated = self.t + (1 if (x_in or d) else 0)
        if lambda_in:
            self.t = 0
            return ResultToken(t_updated)
        self.t = t_updated
        return None


class CountingCellKernel:
    """Comparator stacked on a counting cell; same channels as the matcher."""

    def __init__(self) -> None:
        self.comparator = ComparatorCell()
        self.counter = CountingCell()

    def reset(self) -> None:
        self.counter.reset()

    def fire(self, inputs: Mapping[str, object]) -> Dict[str, object]:
        p: PatternStreamItem = inputs["p"]
        s = inputs["s"]
        d = self.comparator.compare(p.char, s.char)
        emitted = self.counter.absorb(d, p.is_wild, p.is_last)
        out: Dict[str, object] = {"p": p, "s": s}
        if emitted is not None:
            out["r"] = emitted
        return out

    def state_snapshot(self) -> Dict[str, object]:
        return {"t": self.counter.t}


class CountingMachine:
    """A chip-like machine reporting per-window match counts.

    Same host interface as :class:`~repro.core.matcher.PatternMatcher`,
    but each output is the integer number of matching positions in the
    window ending at that text index (0 for incomplete windows).
    """

    def __init__(self, pattern, alphabet: Alphabet, n_cells: int = None,
                 wildcard_symbol: str = "X"):
        self.alphabet = alphabet
        if pattern and all(isinstance(pc, PatternChar) for pc in pattern):
            self.pattern: List[PatternChar] = list(pattern)
        else:
            self.pattern = parse_pattern(pattern, alphabet, wildcard_symbol)
        if n_cells is None:
            n_cells = len(self.pattern)
        if n_cells < len(self.pattern):
            raise PatternError("pattern does not fit in the array")
        self.array = SystolicMatcherArray(
            n_cells, kernel_factory=lambda i: CountingCellKernel()
        )
        self._items = RecirculatingPattern(self.pattern).items

    def counts(self, text: Sequence[str]) -> List[int]:
        chars = self.alphabet.validate_text(text)
        raw = self.array.run(self._items, chars)
        k = len(self.pattern) - 1
        return [
            int(raw.get(i, 0)) if i >= k else 0 for i in range(len(chars))
        ]


def systolic_match_counts(
    pattern, text: Sequence[str], alphabet: Alphabet, n_cells: int = None
) -> List[int]:
    """Functional convenience wrapper around :class:`CountingMachine`."""
    return CountingMachine(pattern, alphabet, n_cells).counts(text)
