"""Systolic convolution via sliding inner products (Section 3.4).

"Many other problems, such as convolutions and FIR filtering, have
algorithms that use the same data flow."  The convolution of a kernel
``h`` (length L) with a signal ``x`` (length N) is

    y_i = sum_j h_j * x_{i-j},   i = 0 .. N+L-2.

On the matcher's data flow the natural primitive is the *sliding inner
product* ending at each stream position,

    ip_i = sum_j p_j * s_{i-k+j},

so convolution is the inner product against the **reversed** kernel over
the zero-padded signal.  Both entry points below run on the actual
systolic array (via :class:`~repro.extensions.linear_products.LinearProductMachine`);
results agree with ``numpy.convolve`` to floating-point accuracy.

>>> systolic_inner_products([1.0, 2.0], [1.0, 1.0, 1.0])
[0.0, 3.0, 3.0]
>>> systolic_convolution([1.0, 2.0], [1.0, 1.0, 1.0])
[1.0, 3.0, 3.0, 2.0]

The fast twin is :func:`repro.core.fastpath.fast_inner_products`; the
farm serves these as ``submit(workload="inner-product")`` and
``submit(workload="convolution")``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import PatternError
from .linear_products import INNER_PRODUCT, LinearProductMachine


def systolic_inner_products(
    weights: Sequence[float],
    signal: Sequence[float],
    n_cells: Optional[int] = None,
) -> List[float]:
    """Sliding inner products ``sum_j w_j * x_{i-k+j}`` for each i >= k.

    Returns one value per signal sample; incomplete windows report 0.0.
    """
    machine = LinearProductMachine(
        [float(w) for w in weights], INNER_PRODUCT, n_cells=n_cells, incomplete=0.0
    )
    return [float(v) for v in machine.run([float(x) for x in signal])]


def systolic_convolution(
    kernel: Sequence[float],
    signal: Sequence[float],
    n_cells: Optional[int] = None,
) -> List[float]:
    """Full convolution of *kernel* with *signal* (length N + L - 1).

    Equivalent to ``numpy.convolve(kernel, signal)``, computed by the
    systolic array: the signal is zero-padded by L-1 on both sides and
    slid against the reversed kernel.
    """
    h = [float(v) for v in kernel]
    x = [float(v) for v in signal]
    if not h:
        raise PatternError("convolution kernel must be non-empty")
    if not x:
        return []
    L = len(h)
    padded = [0.0] * (L - 1) + x + [0.0] * (L - 1)
    ips = systolic_inner_products(list(reversed(h)), padded, n_cells=n_cells)
    # Window ending at padded index i covers x positions i-2(L-1) .. i-(L-1);
    # the convolution output y_m corresponds to ending index m + L - 1.
    k = L - 1
    return [ips[m + k] for m in range(len(x) + L - 1)]
