"""FIR filtering on the matcher's data flow (Section 3.4).

A causal FIR filter with taps ``b_0 .. b_k`` computes

    y_i = sum_j b_j * x_{i-j},   i = 0 .. N-1

(with x_m = 0 for m < 0).  This is the sliding inner product of the
reversed tap vector against the signal zero-padded with k leading samples,
so the systolic array computes it directly -- the paper's point that the
pattern matcher, the correlator and a digital filter are one machine with
different cells.

>>> systolic_fir([0.5, 0.5], [2.0, 4.0, 6.0])   # two-tap moving average
[1.0, 3.0, 5.0]

The farm serves this as ``submit(workload="fir")``; the prepared
reversed-and-padded stream it runs is built by
:mod:`repro.workloads.registry`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import PatternError
from .convolution import systolic_inner_products


def systolic_fir(
    taps: Sequence[float],
    signal: Sequence[float],
    n_cells: Optional[int] = None,
) -> List[float]:
    """Apply a causal FIR filter; returns one output per input sample."""
    b = [float(v) for v in taps]
    x = [float(v) for v in signal]
    if not b:
        raise PatternError("FIR filter needs at least one tap")
    if not x:
        return []
    k = len(b) - 1
    padded = [0.0] * k + x
    ips = systolic_inner_products(list(reversed(b)), padded, n_cells=n_cells)
    # Padded window ending at index k + i covers x_{i-k} .. x_i.
    return [ips[k + i] for i in range(len(x))]


def fir_oracle(taps: Sequence[float], signal: Sequence[float]) -> List[float]:
    """Direct evaluation of the FIR definition, for testing."""
    b = [float(v) for v in taps]
    x = [float(v) for v in signal]
    out: List[float] = []
    for i in range(len(x)):
        out.append(
            sum(b[j] * x[i - j] for j in range(len(b)) if 0 <= i - j)
        )
    return out
