"""The correlation machine of Section 3.4.

"A problem of more practical interest is the computation of correlations.
In this problem pattern, string, and result are all numbers.  The result
r_i of a correlation is defined as:

    r_i = (s_{i-k} - p_0)^2 + (s_{i+1-k} - p_1)^2 + ... + (s_i - p_k)^2

Correlations can be computed by a machine with identical data flow to the
string matching chip ... The comparator is replaced by a difference cell
that computes d_out <- s_in - p_in ...  An adder cell replaces the
accumulator."

Adder-cell semantics per the paper (with the end-of-pattern emission
including the current term, consistent with the accumulator discipline):

    if lambda_in:  r_out <- t + d_in^2 ; t <- 0
    else:          r_out <- r_in ; t <- t + d_in^2

Usage -- one squared distance per sample, 0.0 before the first full
window, and a *small* value means a good match:

>>> systolic_correlation([1.0, 3.0], [1.0, 3.0, 5.0])
[0.0, 0.0, 8.0]

The fast twin is :func:`repro.core.fastpath.fast_squared_distances`; the
direct definition is :func:`repro.core.reference.correlation_oracle`; the
farm serves this as ``submit(workload="correlation")``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from ..errors import PatternError
from ..core.array import SystolicMatcherArray
from ..core.cells import ResultToken


@dataclass(frozen=True)
class NumericPatternItem:
    """A number travelling in the pattern stream, with the lambda bit."""

    value: float
    is_last: bool

    def __str__(self) -> str:
        return f"{self.value}{'$' if self.is_last else ''}"


def numeric_pattern_cycle(values: Sequence[float]) -> List[NumericPatternItem]:
    """One recirculation period of a numeric pattern stream."""
    if len(values) == 0:
        raise PatternError("numeric pattern must be non-empty")
    n = len(values)
    return [NumericPatternItem(float(v), i == n - 1) for i, v in enumerate(values)]


class DifferenceCell:
    """``d_out <- s_in - p_in`` (replaces the comparator)."""

    def compute(self, p_value: float, s_value: float) -> float:
        return s_value - p_value


class AdderCell:
    """Accumulates squared differences (replaces the accumulator)."""

    def __init__(self) -> None:
        self.t: float = 0.0

    def reset(self) -> None:
        self.t = 0.0

    def absorb(self, d: float, lambda_in: bool):
        t_updated = self.t + d * d
        if lambda_in:
            self.t = 0.0
            return ResultToken(t_updated)
        self.t = t_updated
        return None


class CorrelationCellKernel:
    """Difference cell stacked on adder cell; matcher channel protocol."""

    def __init__(self) -> None:
        self.difference = DifferenceCell()
        self.adder = AdderCell()

    def reset(self) -> None:
        self.adder.reset()

    def fire(self, inputs: Mapping[str, object]) -> Dict[str, object]:
        p: NumericPatternItem = inputs["p"]
        s = inputs["s"]
        d = self.difference.compute(p.value, float(s.char))
        emitted = self.adder.absorb(d, p.is_last)
        out: Dict[str, object] = {"p": p, "s": s}
        if emitted is not None:
            out["r"] = emitted
        return out

    def state_snapshot(self) -> Dict[str, object]:
        return {"t": self.adder.t}


class CorrelationMachine:
    """Squared-distance correlator with the matcher's data flow.

    ``correlate(signal)`` returns one number per signal sample: the sum of
    squared differences between the pattern and the window ending at that
    sample (0.0 for incomplete windows).  Small values mean good matches.
    """

    def __init__(self, pattern: Sequence[float], n_cells: int = None):
        values = [float(v) for v in pattern]
        if not values:
            raise PatternError("pattern must be non-empty")
        if n_cells is None:
            n_cells = len(values)
        if n_cells < len(values):
            raise PatternError("pattern does not fit in the array")
        self.pattern = values
        self.array = SystolicMatcherArray(
            n_cells, kernel_factory=lambda i: CorrelationCellKernel()
        )
        self._items = numeric_pattern_cycle(values)

    def correlate(self, signal: Sequence[float]) -> List[float]:
        samples = [float(v) for v in signal]
        raw = self.array.run(self._items, samples)
        k = len(self.pattern) - 1
        return [
            float(raw.get(i, 0.0)) if i >= k else 0.0
            for i in range(len(samples))
        ]


def systolic_correlation(
    pattern: Sequence[float], signal: Sequence[float], n_cells: int = None
) -> List[float]:
    """Functional convenience wrapper around :class:`CorrelationMachine`."""
    return CorrelationMachine(pattern, n_cells).correlate(signal)
