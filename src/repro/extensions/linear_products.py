"""The Fischer-Paterson linear-product family on the systolic data flow.

Section 3.1 observes that "all of the linear product problems discussed in
[Fischer and Paterson 74] are similar in form to string matching", and
Section 3.4 shows two instances (counting, correlation).  A linear product
over operators (\\otimes, \\oplus) is

    r_i = \\oplus_{j=0..k}  (p_j \\otimes s_{i-k+j})

String matching is the instance (\\otimes = matches, \\oplus = AND);
counting is (matches-as-0/1, +); correlation is (squared difference, +);
polynomial multiplication / convolution is (*, +); the min-plus product
used in shortest-path computations is (+, min).

:class:`LinearProductMachine` runs *any* instance on the matcher's data
flow, demonstrating the paper's claim that the data flow is the reusable
design and the cell function the variation point:

>>> LinearProductMachine([1, 2], MIN_PLUS).run([4, 3, 0])
[inf, 5, 2]

(window [4, 3]: min(4+1, 3+2) = 5; window [3, 0]: min(3+1, 0+2) = 2.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..errors import PatternError
from ..core.array import SystolicMatcherArray
from ..core.cells import ResultToken
from .correlation import NumericPatternItem, numeric_pattern_cycle


@dataclass(frozen=True)
class Semiring:
    """The cell algebra of a linear product.

    ``combine``    -- the \\otimes applied where pattern meets stream.
    ``accumulate`` -- the \\oplus folding combine-results into ``t``.
    ``identity``   -- the \\oplus identity used to (re)initialise ``t``.
    """

    name: str
    combine: Callable[[object, object], object]
    accumulate: Callable[[object, object], object]
    identity: object


#: Boolean AND of equalities: plain string matching (no wild cards).
MATCHING = Semiring(
    "matching",
    combine=lambda p, s: p == s,
    accumulate=lambda t, d: t and d,
    identity=True,
)

#: Count of equal positions.
COUNTING = Semiring(
    "counting",
    combine=lambda p, s: 1 if p == s else 0,
    accumulate=lambda t, d: t + d,
    identity=0,
)

#: Sum of squared differences (the Section 3.4 correlation).
SQUARED_DISTANCE = Semiring(
    "squared-distance",
    combine=lambda p, s: (s - p) * (s - p),
    accumulate=lambda t, d: t + d,
    identity=0.0,
)

#: Sliding inner products (convolution / polynomial product core).
INNER_PRODUCT = Semiring(
    "inner-product",
    combine=lambda p, s: p * s,
    accumulate=lambda t, d: t + d,
    identity=0.0,
)

#: Min-plus (tropical) product.
MIN_PLUS = Semiring(
    "min-plus",
    combine=lambda p, s: p + s,
    accumulate=min,
    identity=float("inf"),
)


class LinearProductCellKernel:
    """Generic cell: ``t <- accumulate(t, combine(p, s))`` with lambda reset."""

    def __init__(self, semiring: Semiring):
        self.semiring = semiring
        self.t = semiring.identity

    def reset(self) -> None:
        self.t = self.semiring.identity

    def fire(self, inputs: Mapping[str, object]) -> Dict[str, object]:
        p: NumericPatternItem = inputs["p"]
        s = inputs["s"]
        d = self.semiring.combine(p.value, s.char)
        t_updated = self.semiring.accumulate(self.t, d)
        out: Dict[str, object] = {"p": p, "s": s}
        if p.is_last:
            out["r"] = ResultToken(t_updated)
            self.t = self.semiring.identity
        else:
            self.t = t_updated
        return out

    def state_snapshot(self) -> Dict[str, object]:
        return {"t": self.t}


class LinearProductMachine:
    """Compute any linear product with the matcher's data flow.

    >>> m = LinearProductMachine([1, 2, 3], INNER_PRODUCT)
    >>> m.run([1, 1, 1, 1])          # windows [1,1,1]: 1+2+3
    [0.0, 0.0, 6.0, 6.0]
    """

    def __init__(
        self,
        pattern: Sequence[object],
        semiring: Semiring,
        n_cells: Optional[int] = None,
        incomplete: object = None,
    ):
        values = list(pattern)
        if not values:
            raise PatternError("pattern must be non-empty")
        if n_cells is None:
            n_cells = len(values)
        if n_cells < len(values):
            raise PatternError("pattern does not fit in the array")
        self.pattern = values
        self.semiring = semiring
        self.incomplete = (
            incomplete if incomplete is not None else semiring.identity
        )
        self.array = SystolicMatcherArray(
            n_cells, kernel_factory=lambda i: LinearProductCellKernel(semiring)
        )
        n = len(values)
        self._items = [
            NumericPatternItem(v, i == n - 1) for i, v in enumerate(values)
        ]

    def run(self, stream: Sequence[object]) -> List[object]:
        """One linear-product result per stream element."""
        samples = list(stream)
        raw = self.array.run(self._items, samples)
        k = len(self.pattern) - 1
        return [
            raw.get(i, self.incomplete) if i >= k else self.incomplete
            for i in range(len(samples))
        ]


def linear_product_oracle(
    pattern: Sequence[object],
    stream: Sequence[object],
    semiring: Semiring,
    incomplete: object = None,
) -> List[object]:
    """Direct evaluation of the linear-product definition, for testing."""
    if not pattern:
        raise PatternError("pattern must be non-empty")
    k = len(pattern) - 1
    if incomplete is None:
        incomplete = semiring.identity
    out: List[object] = []
    for i in range(len(stream)):
        if i < k:
            out.append(incomplete)
            continue
        t = semiring.identity
        for j in range(len(pattern)):
            t = semiring.accumulate(t, semiring.combine(pattern[j], stream[i - k + j]))
        out.append(t)
    return out
