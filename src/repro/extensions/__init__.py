"""The Section 3.4 extension machines.

"Many problems other than string matching can be solved by similar
algorithms."  Each module here keeps the matcher's data flow -- pattern
stream rightward, signal stream leftward, results leaving with the signal
-- and swaps only the cell function, exactly as the paper prescribes:

* :mod:`repro.extensions.counting` -- accumulator replaced by a counting
  cell: how many positions of each window match the pattern.
* :mod:`repro.extensions.correlation` -- comparator replaced by a
  difference cell and accumulator by an adder: squared-distance
  correlation.
* :mod:`repro.extensions.convolution` -- multiplier/adder cells:
  inner-product windows, convolution.
* :mod:`repro.extensions.fir` -- FIR filtering on the same array.
* :mod:`repro.extensions.linear_products` -- the Fischer-Paterson
  linear-product family as a generic cell algebra, of which all the
  machines above are instances.

These are the *behavioral* cell-by-cell machines -- the executable spec.
Their production twins live in :mod:`repro.core.fastpath` (packed/strided
kernels, differentially tested against these cells) and are served at
farm scale through ``MatcherService.submit(workload=...)`` via the
:mod:`repro.workloads` registry:

>>> from repro.workloads import run_workload
>>> run_workload("correlation", [1.0, 3.0], [1.0, 3.0, 5.0])
[0.0, 0.0, 8.0]
"""

from .convolution import systolic_convolution, systolic_inner_products
from .correlation import CorrelationMachine, systolic_correlation
from .counting import CountingMachine, systolic_match_counts
from .fir import systolic_fir
from .linear_products import LinearProductMachine, Semiring

__all__ = [
    "CorrelationMachine",
    "CountingMachine",
    "LinearProductMachine",
    "Semiring",
    "systolic_convolution",
    "systolic_correlation",
    "systolic_fir",
    "systolic_inner_products",
    "systolic_match_counts",
]
