"""Yield economics: why reconfiguration is the only road to wafer scale.

A monolithic device needs *every* cell functional, so its yield decays
geometrically with cell count; a reconfigurable wafer keeps the expected
fraction of functional cells regardless of size.  These two curves --
collapsing vs flat -- are the quantitative form of the paper's Section 5
argument, and the wafer bench plots them.
"""

from __future__ import annotations

import math

from ..errors import ChipError


def monolithic_yield(n_cells: int, defect_rate: float) -> float:
    """P(all n cells functional) = (1 - d)^n."""
    if n_cells <= 0:
        raise ChipError("need a positive cell count")
    if not 0.0 <= defect_rate < 1.0:
        raise ChipError("defect rate must be in [0, 1)")
    return (1.0 - defect_rate) ** n_cells


def expected_harvest_fraction(defect_rate: float) -> float:
    """Expected fraction of sites a reconfigurable wafer keeps: 1 - d."""
    if not 0.0 <= defect_rate < 1.0:
        raise ChipError("defect rate must be in [0, 1)")
    return 1.0 - defect_rate


def long_run_probability(n_sites: int, defect_rate: float, run: int) -> float:
    """Upper bound on P(some defect run longer than *run*).

    Union bound: at most ``n_sites`` starting positions, each a run of
    ``run + 1`` consecutive defects with probability d^(run+1).  Used to
    size the bypass budget so harvest failure is negligible.
    """
    if run < 0:
        raise ChipError("run must be non-negative")
    return min(1.0, n_sites * defect_rate ** (run + 1))


def cells_per_wafer(rows: int, cols: int, defect_rate: float) -> float:
    """Expected harvested cells from a rows x cols wafer."""
    return rows * cols * expected_harvest_fraction(defect_rate)


def break_even_size(defect_rate: float, overhead_fraction: float = 0.1) -> int:
    """Cell count where monolithic yield drops below the reconfigurable
    wafer's effective yield (1 - d) * (1 - overhead).

    The bypass switches cost area (*overhead_fraction*); beyond the
    returned size, reconfiguration wins outright.
    """
    target = (1.0 - defect_rate) * (1.0 - overhead_fraction)
    n = 1
    while monolithic_yield(n, defect_rate) > target:
        n += 1
        if n > 10**7:
            raise ChipError("no break-even below 10^7 cells; defect rate ~ 0?")
    return n
