"""Re-provisioning: the wafer lot behind the fleet's healing loop.

The paper's Section 5 economics assume a defective unit is cheap to
replace: wafers keep coming off the line, each yields a harvestable
array with probability set by the defect process, and the farm swaps a
quarantined part for a freshly harvested one.  :class:`WaferSupply` is
that lot -- a finite, seeded stream of :class:`~repro.wafer.wafer.Wafer`
instances -- and the health loop (:mod:`repro.service.health`) draws
from it until either the fleet is back to capacity or the supply is
exhausted, at which point :class:`~repro.errors.ProvisionError` reports
the exhaustion cleanly instead of spinning.
"""

from __future__ import annotations

import random
from typing import Optional

from ..errors import ChipError, ProvisionError
from .wafer import Wafer
from .yield_model import cells_per_wafer


class WaferSupply:
    """A finite, seeded lot of wafers to provision replacements from.

    Every wafer in the lot shares one geometry and defect rate; each
    ``draw`` consumes one wafer with its own derived seed, so the whole
    lot is reproducible from the supply's seed alone (the determinism
    the soak tests rely on).
    """

    def __init__(
        self,
        n_wafers: int,
        rows: int,
        cols: int,
        defect_rate: float = 0.0,
        seed: Optional[int] = None,
    ):
        if n_wafers < 0:
            raise ChipError("wafer supply cannot hold a negative lot")
        if rows <= 0 or cols <= 0:
            raise ChipError("wafer supply needs a positive grid")
        if not 0.0 <= defect_rate < 1.0:
            raise ChipError("defect rate must be in [0, 1)")
        self.n_wafers = n_wafers
        self.rows = rows
        self.cols = cols
        self.defect_rate = defect_rate
        self._rng = random.Random(seed)
        self._drawn = 0

    @property
    def remaining(self) -> int:
        return self.n_wafers - self._drawn

    @property
    def drawn(self) -> int:
        return self._drawn

    def expected_cells_per_wafer(self) -> float:
        """Expected harvest of one draw (the Section 2 yield model)."""
        return cells_per_wafer(self.rows, self.cols, self.defect_rate)

    def draw(self) -> Wafer:
        """Consume and return the lot's next wafer.

        Raises :class:`~repro.errors.ProvisionError` once the lot is
        empty -- exhaustion is an explicit, catchable condition, never a
        hang or a silent repeat of an old wafer.
        """
        if self.remaining <= 0:
            raise ProvisionError(
                f"wafer supply exhausted after {self._drawn} draws "
                f"({self.n_wafers}-wafer lot)"
            )
        self._drawn += 1
        return Wafer(
            self.rows,
            self.cols,
            self.defect_rate,
            seed=self._rng.randrange(2**32),
        )

    def __repr__(self) -> str:
        return (
            f"WaferSupply({self.remaining}/{self.n_wafers} wafers, "
            f"{self.rows}x{self.cols}, d={self.defect_rate})"
        )
