"""Interconnect reconfiguration: harvesting a linear array from a
defective wafer.

The wafer routes its cells in a serpentine (boustrophedon) order --
left-to-right along row 0, right-to-left along row 1, and so on -- with a
programmable bypass switch at every site.  A defective site's switch
routes the three data channels (pattern/control rightward, string/result
leftward) straight through, so the functional sites form one contiguous
linear array, exactly the property the paper attributes to "a few types
of circuits with regular interconnections".

Bypass switches are not free: each bypassed site adds wire delay, so the
harvest enforces a bound on *consecutive* bypasses (a long dead stretch
would break the beat budget).  The result reports the harvested chain and
the worst bypass run, and :func:`matcher_from_harvest` builds a working
pattern matcher on the surviving cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.array import MATCHER_CHANNELS, SystolicMatcherArray
from ..core.cells import MatcherCellKernel
from ..errors import ChipError
from .wafer import Wafer, WaferSite


@dataclass
class HarvestResult:
    """Outcome of a reconfiguration pass."""

    chain: List[Tuple[int, int]]
    bypassed: List[Tuple[int, int]]
    worst_bypass_run: int

    @property
    def n_cells(self) -> int:
        return len(self.chain)

    @property
    def harvest_fraction_of_sites(self) -> float:
        total = len(self.chain) + len(self.bypassed)
        return len(self.chain) / total if total else 0.0


def serpentine_order(wafer: Wafer) -> List[WaferSite]:
    """The fixed physical routing order of the wafer's sites."""
    order: List[WaferSite] = []
    for r in range(wafer.rows):
        row = wafer.sites[r]
        order.extend(row if r % 2 == 0 else reversed(row))
    return order


def harvest_linear_array(
    wafer: Wafer, max_bypass_run: int = 4
) -> HarvestResult:
    """Programme the bypass switches; returns the harvested chain.

    Raises :class:`ChipError` if any stretch of consecutive defects
    exceeds *max_bypass_run* (the wafer is then unusable as one array --
    it would be diced into smaller arrays instead).
    """
    chain: List[Tuple[int, int]] = []
    bypassed: List[Tuple[int, int]] = []
    run = 0
    worst = 0
    for site in serpentine_order(wafer):
        if site.functional:
            chain.append(site.position)
            run = 0
        else:
            bypassed.append(site.position)
            run += 1
            worst = max(worst, run)
            if run > max_bypass_run:
                raise ChipError(
                    f"defect run of {run} consecutive sites exceeds the "
                    f"bypass budget of {max_bypass_run} at {site.position}"
                )
    return HarvestResult(chain=chain, bypassed=bypassed, worst_bypass_run=worst)


def matcher_from_harvest(
    harvest: HarvestResult, n_cells: Optional[int] = None
) -> SystolicMatcherArray:
    """A matcher array running on the harvested cells.

    ``n_cells`` trims the chain (a pattern shorter than the harvest needs
    fewer cells); defaults to the whole harvest.
    """
    usable = harvest.n_cells if n_cells is None else n_cells
    if usable <= 0:
        raise ChipError("harvest yielded no usable cells")
    if usable > harvest.n_cells:
        raise ChipError(
            f"requested {usable} cells but the harvest has {harvest.n_cells}"
        )
    return SystolicMatcherArray(usable)
