"""Wafer-scale integration (the Section 5 outlook, built).

"The prospect of wafer-scale integration will increase the power of
special purpose devices.  Modularity of algorithms is especially
important in wafer-scale integration ... Manufacturing defects make it
essential to be able to modify the interconnections so that a defective
circuit is replaced by a functioning one on the same wafer.  This can be
done easily if there are only a few types of circuits with regular
interconnections."

This subpackage builds that claim: a wafer of matcher cell sites with
randomly placed manufacturing defects, a reconfiguration pass that
harvests the functional sites into one long linear array by programming
bypass switches, a Poisson yield model quantifying why monolithic chips
cannot scale while reconfigurable wafers can, and a pattern matcher that
runs -- verified against the oracle -- on the harvested array.
"""

from .provision import WaferSupply
from .reconfigure import HarvestResult, harvest_linear_array
from .wafer import Wafer, WaferSite
from .yield_model import expected_harvest_fraction, monolithic_yield

__all__ = [
    "HarvestResult",
    "Wafer",
    "WaferSite",
    "WaferSupply",
    "expected_harvest_fraction",
    "harvest_linear_array",
    "monolithic_yield",
]
