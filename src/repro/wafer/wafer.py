"""A wafer of replicated cell sites with manufacturing defects."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from ..errors import ChipError


@dataclass
class WaferSite:
    """One fabricated copy of the character cell on the wafer."""

    row: int
    col: int
    functional: bool = True

    @property
    def position(self) -> Tuple[int, int]:
        return (self.row, self.col)


class Wafer:
    """A rows x cols grid of identical cell sites.

    Defects are drawn independently per site with probability
    ``defect_rate`` -- the spatially uncorrelated approximation of a
    Poisson defect process at one-defect-kills-one-cell granularity,
    which is the regime the paper's argument addresses (a few circuit
    types, regular interconnect, bypassable units).
    """

    def __init__(self, rows: int, cols: int, defect_rate: float = 0.0,
                 seed: Optional[int] = None):
        if rows <= 0 or cols <= 0:
            raise ChipError("wafer needs a positive grid")
        if not 0.0 <= defect_rate < 1.0:
            raise ChipError("defect rate must be in [0, 1)")
        self.rows = rows
        self.cols = cols
        self.defect_rate = defect_rate
        rng = random.Random(seed)
        self.sites: List[List[WaferSite]] = [
            [
                WaferSite(r, c, functional=(rng.random() >= defect_rate))
                for c in range(cols)
            ]
            for r in range(rows)
        ]

    def __iter__(self) -> Iterator[WaferSite]:
        for row in self.sites:
            yield from row

    @property
    def n_sites(self) -> int:
        return self.rows * self.cols

    @property
    def n_functional(self) -> int:
        return sum(1 for s in self if s.functional)

    def site(self, row: int, col: int) -> WaferSite:
        return self.sites[row][col]

    def mark_defective(self, row: int, col: int) -> None:
        """Inject a defect (for targeted tests)."""
        self.sites[row][col].functional = False

    def defect_map(self) -> str:
        """ASCII map: '.' functional, 'X' defective."""
        return "\n".join(
            "".join("." if s.functional else "X" for s in row)
            for row in self.sites
        )
