"""Dynamic and static shift registers (Figure 3-5 and Section 3.3.3).

The dynamic register is the paper's Figure 3-5 exactly: "a shift register
is composed of a chain of inverters separated by pass transistors ...
The inputs to the inverters can store charge ... Adjacent transistors are
turned on by opposite phases of the clock, so that there is never a closed
path between inverters that are separated by two transistors.  Alternate
inverters can therefore store independent data bits."

The static register is the rejected alternative of Section 3.3.3: every
stage carries regeneration circuitry (a feedback inverter pair refreshed
on the opposite phase) and a third control signal, SHIFT, is needed to
command movement; in exchange it holds data indefinitely.  Device counts
are exposed so the benches can reproduce the cost comparison.  (One
deviation: the paper notes static registers "do not invert data between
stages"; for comparability both registers here use single-inverter stages
and so both invert per stage -- the retention, control-signal and device-
count comparisons are unaffected.)
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import CircuitError
from .clocks import TwoPhaseClock
from .gates import inverter, pass_transistor
from .netlist import Circuit
from .signals import HIGH, LOW, UNKNOWN, LogicValue


class DynamicShiftRegister:
    """The Figure 3-5 dynamic shift register, at switch level.

    Each *stage* is one pass transistor plus one inverter; even stages are
    clocked by phi1, odd stages by phi2, so one clock phase advances data
    one stage and valid bits occupy alternate stages.  Data is inverted at
    every stage; :meth:`shift` compensates when reporting the output.
    """

    def __init__(self, n_stages: int, name: str = "dsr",
                 retention_ns: float = 1e6,
                 phase_high_ns: float = 100.0, gap_ns: float = 25.0):
        if n_stages <= 0:
            raise CircuitError("need at least one stage")
        self.n_stages = n_stages
        self.circuit = Circuit(name, retention_ns=retention_ns)
        self.clock = TwoPhaseClock(
            self.circuit, phase_high_ns=phase_high_ns, gap_ns=gap_ns
        )
        self.input_node = f"{name}.in"
        self.storage_nodes: List[str] = []
        self.output_nodes: List[str] = []
        prev = self.input_node
        for i in range(n_stages):
            st = f"{name}.st{i}"
            out = f"{name}.out{i}"
            phase = self.clock.phi1 if i % 2 == 0 else self.clock.phi2
            pass_transistor(self.circuit, phase, prev, st, label=f"{name}.pass{i}")
            inverter(self.circuit, st, out, label=f"{name}.inv{i}")
            self.storage_nodes.append(st)
            self.output_nodes.append(out)
            prev = out
        self.circuit.set_input(self.input_node, LOW)
        self.circuit.settle()
        self._shifts = 0

    @property
    def output_node(self) -> str:
        return self.output_nodes[-1]

    def _output_value(self) -> LogicValue:
        v = self.circuit.read(self.output_node)
        if v is UNKNOWN:
            return UNKNOWN
        # n_stages inversions: odd stage count complements the data.
        if self.n_stages % 2 == 1:
            return LOW if v is HIGH else HIGH
        return v

    def shift(self, bit: Optional[bool]) -> LogicValue:
        """Advance one stage (one clock phase); returns the (de-inverted)
        value at the register output after the shift."""
        if bit is not None:
            self.circuit.set_input(self.input_node, HIGH if bit else LOW)
        phase_is_1 = self._shifts % 2 == 0
        if phase_is_1:
            self.clock.tick_phi1()
        else:
            self.clock.tick_phi2()
        self._shifts += 1
        return self._output_value()

    def shift_sequence(self, bits: List[bool]) -> List[LogicValue]:
        """Shift a bit in on every *even* phase (valid slots alternate)."""
        out: List[LogicValue] = []
        for b in bits:
            out.append(self.shift(b))
            out.append(self.shift(None))
        return out

    def hold(self, duration_ns: float) -> None:
        """Stop the clock for *duration_ns* (dynamic storage decays)."""
        self.clock.idle(duration_ns)

    def read_storage(self) -> List[LogicValue]:
        """Raw stored values on the inverter inputs."""
        return [self.circuit.read(n) for n in self.storage_nodes]

    @property
    def devices_per_stage(self) -> int:
        """1 pass transistor + 1 pullup + 1 pulldown."""
        return 3

    @property
    def control_signals(self) -> int:
        """phi1, phi2."""
        return 2


class StaticShiftRegister:
    """The Section 3.3.3 static alternative, with per-stage regeneration.

    Stage i writes through (phase, SHIFT) series passes and refreshes
    through (other phase, SHIFT_BAR) series passes from a feedback
    inverter, so with SHIFT low the data is re-driven every cycle and
    survives indefinitely.
    """

    def __init__(self, n_stages: int, name: str = "ssr",
                 retention_ns: float = 1e6,
                 phase_high_ns: float = 100.0, gap_ns: float = 25.0):
        if n_stages <= 0:
            raise CircuitError("need at least one stage")
        self.n_stages = n_stages
        self.circuit = Circuit(name, retention_ns=retention_ns)
        self.clock = TwoPhaseClock(
            self.circuit, phase_high_ns=phase_high_ns, gap_ns=gap_ns
        )
        self.shift_node = f"{name}.SHIFT"
        self.shift_bar_node = f"{name}.SHIFTB"
        self.input_node = f"{name}.in"
        self.storage_nodes: List[str] = []
        self.output_nodes: List[str] = []
        c = self.circuit
        prev = self.input_node
        for i in range(n_stages):
            st, out, fb = f"{name}.st{i}", f"{name}.out{i}", f"{name}.fb{i}"
            mid_w, mid_r = f"{name}.mw{i}", f"{name}.mr{i}"
            w_phase = self.clock.phi1 if i % 2 == 0 else self.clock.phi2
            r_phase = self.clock.phi2 if i % 2 == 0 else self.clock.phi1
            # write path: prev -> [w_phase] -> [SHIFT] -> st
            pass_transistor(c, w_phase, prev, mid_w, label=f"{name}.wp{i}")
            pass_transistor(c, self.shift_node, mid_w, st, label=f"{name}.ws{i}")
            inverter(c, st, out, label=f"{name}.inv{i}")
            inverter(c, out, fb, label=f"{name}.fbinv{i}")
            # refresh path: fb -> [r_phase] -> [SHIFT_BAR] -> st
            pass_transistor(c, r_phase, fb, mid_r, label=f"{name}.rp{i}")
            pass_transistor(c, self.shift_bar_node, mid_r, st, label=f"{name}.rs{i}")
            self.storage_nodes.append(st)
            self.output_nodes.append(out)
            prev = out
        c.set_input(self.input_node, LOW)
        self.set_shifting(True)
        c.settle()
        self._shifts = 0

    @property
    def output_node(self) -> str:
        return self.output_nodes[-1]

    def set_shifting(self, shifting: bool) -> None:
        """Drive the third control signal pair."""
        self.circuit.set_input(self.shift_node, HIGH if shifting else LOW)
        self.circuit.set_input(self.shift_bar_node, LOW if shifting else HIGH)

    def _output_value(self) -> LogicValue:
        v = self.circuit.read(self.output_node)
        if v is UNKNOWN:
            return UNKNOWN
        if self.n_stages % 2 == 1:
            return LOW if v is HIGH else HIGH
        return v

    def shift(self, bit: Optional[bool]) -> LogicValue:
        """Advance one stage with SHIFT asserted."""
        self.set_shifting(True)
        if bit is not None:
            self.circuit.set_input(self.input_node, HIGH if bit else LOW)
        if self._shifts % 2 == 0:
            self.clock.tick_phi1()
        else:
            self.clock.tick_phi2()
        self._shifts += 1
        return self._output_value()

    def hold(self, duration_ns: float) -> None:
        """Hold data with SHIFT deasserted; the clock keeps refreshing."""
        self.set_shifting(False)
        beats = max(1, int(duration_ns / self.clock.beat_time_ns))
        for i in range(beats):
            if i % 2 == 0:
                self.clock.tick_phi1()
            else:
                self.clock.tick_phi2()

    def read_storage(self) -> List[LogicValue]:
        return [self.circuit.read(n) for n in self.storage_nodes]

    @property
    def devices_per_stage(self) -> int:
        """4 pass transistors + 2 pullups + 2 pulldowns."""
        return 8

    @property
    def control_signals(self) -> int:
        """phi1, phi2, SHIFT (and its complement)."""
        return 3
