"""Netlist construction: nodes, transistors, and the Circuit container.

A :class:`Circuit` owns a set of named nodes and transistor elements and
delegates evaluation to the relaxation solver in
:mod:`repro.circuit.simulator`.  Two element kinds exist, matching the
NMOS process of the paper:

* **enhancement** transistors: bidirectional switches; the channel
  conducts iff the gate is HIGH ("If no ion implantation is present, the
  channel conducts current only when the gate is at Vdd").
* **depletion loads**: the ion-implanted pullups; modelled as a weak
  (LOAD-strength) tie of their output node toward VDD, the standard
  switch-level treatment of ratioed NMOS loads.

The two supply rails are the distinguished nodes :data:`VDD` and
:data:`GND`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from ..errors import CircuitError
from .signals import HIGH, LOW, UNKNOWN, LogicValue, Strength

#: Distinguished rail node names.
VDD = "VDD!"
GND = "GND!"


@dataclass
class Node:
    """One electrical node.

    ``value`` is the solved logic level; ``strength`` how it is currently
    sustained; ``last_refresh`` the simulation time (ns) the node was last
    actively driven, used for dynamic charge decay.
    """

    name: str
    value: LogicValue = UNKNOWN
    strength: Strength = Strength.NONE
    last_refresh: float = 0.0

    def __repr__(self) -> str:
        return f"Node({self.name}={self.value})"


@dataclass(frozen=True)
class Enhancement:
    """An enhancement-mode transistor: ``a``-``b`` channel gated by ``gate``."""

    gate: str
    a: str
    b: str
    label: str = ""


@dataclass(frozen=True)
class DepletionLoad:
    """A depletion-mode pullup on ``node`` (gate tied to source)."""

    node: str
    label: str = ""


class Circuit:
    """A switch-level NMOS circuit.

    Parameters
    ----------
    name:
        For diagnostics.
    retention_ns:
        How long an undriven node retains charge; the paper's dynamic
        registers hold data "for no more than about 1 ms" (1e6 ns).
    """

    def __init__(self, name: str = "circuit", retention_ns: float = 1e6):
        self.name = name
        self.retention_ns = retention_ns
        self.nodes: Dict[str, Node] = {}
        self.transistors: List[Enhancement] = []
        self.loads: List[DepletionLoad] = []
        self.inputs: Dict[str, LogicValue] = {}
        self.time_ns: float = 0.0
        self._adjacency_dirty = True
        self._adjacency: Dict[str, List[Enhancement]] = {}
        # Event-engine bookkeeping: the topology version invalidates the
        # engine's static index; _dirty_ext collects externally-perturbed
        # node names (pins toggled between settles).
        self._topo_version = 0
        self._dirty_ext: Set[str] = set()
        self._event_engine = None
        # Observability: attach_obs caches metric handles; probes (VCD
        # samplers) fire after every settle.  Both default empty, so the
        # settle hot path pays two cheap checks when observability is off.
        self.obs = None
        self._probes: List[object] = []
        self._m_settle = None
        self._m_passes = None
        self._g_comps = None
        self._g_nodes = None
        self.node(VDD).value = HIGH
        self.node(VDD).strength = Strength.FORCED
        self.node(GND).value = LOW
        self.node(GND).strength = Strength.FORCED

    # -- construction --------------------------------------------------------

    def node(self, name: str) -> Node:
        """Get or create a node."""
        n = self.nodes.get(name)
        if n is None:
            n = Node(name)
            self.nodes[name] = n
            self._adjacency_dirty = True
            self._topo_version += 1
        return n

    def add_enhancement(self, gate: str, a: str, b: str, label: str = "") -> Enhancement:
        """Add an enhancement transistor (pass transistor or pulldown)."""
        for t in (gate, a, b):
            self.node(t)
        e = Enhancement(gate, a, b, label)
        self.transistors.append(e)
        self._adjacency_dirty = True
        self._topo_version += 1
        return e

    def remove_enhancement(self, label: str) -> Enhancement:
        """Remove the first enhancement transistor whose label matches.

        Models an *open* -- a device disconnected from its net (a missing
        contact, a broken channel).  The nodes stay; only the switch goes.
        """
        for i, t in enumerate(self.transistors):
            if t.label == label:
                del self.transistors[i]
                self._adjacency_dirty = True
                self._topo_version += 1
                self._dirty_ext.update((t.a, t.b))
                return t
        raise CircuitError(f"no enhancement transistor labelled {label!r}")

    def add_depletion_load(self, node: str, label: str = "") -> DepletionLoad:
        """Add a depletion pullup on *node*."""
        self.node(node)
        d = DepletionLoad(node, label)
        self.loads.append(d)
        self._topo_version += 1
        return d

    def merge(self, other: "Circuit", prefix: str = "",
              connections: Optional[Dict[str, str]] = None) -> Dict[str, str]:
        """Instantiate *other* into this circuit.

        Every node of *other* (except rails) is renamed ``prefix + name``
        unless remapped by *connections* (sub-node -> this-circuit node).
        Returns the complete sub-name -> new-name mapping, so callers can
        locate internal nodes of the instance.
        """
        connections = connections or {}
        mapping: Dict[str, str] = {VDD: VDD, GND: GND}
        for name in other.nodes:
            if name in (VDD, GND):
                continue
            mapping[name] = connections.get(name, prefix + name)
            self.node(mapping[name])
        for t in other.transistors:
            self.add_enhancement(mapping[t.gate], mapping[t.a], mapping[t.b], t.label)
        for d in other.loads:
            self.add_depletion_load(mapping[d.node], d.label)
        return mapping

    # -- stimulus --------------------------------------------------------------

    def set_input(self, name: str, value) -> None:
        """Force a node from outside (a pin or a clock)."""
        if isinstance(value, bool) or value in (0, 1):
            value = HIGH if value in (True, 1) else LOW
        if not isinstance(value, LogicValue):
            raise CircuitError(f"bad input value {value!r}")
        self.node(name)
        self.inputs[name] = value
        self._dirty_ext.add(name)

    def release_input(self, name: str) -> None:
        """Stop forcing a node; it keeps charge until re-driven or decayed."""
        if self.inputs.pop(name, None) is not None:
            self._dirty_ext.add(name)

    # -- observability -------------------------------------------------------

    def attach_obs(self, obs) -> None:
        """Attach (or detach, with None) an Observability bundle.

        Settle calls and passes publish as ``circuit.settle.calls`` /
        ``circuit.settle.passes`` counters labelled by circuit name; the
        event engine's cumulative work counters mirror into gauges.  When
        the bundle's ``trace_circuit`` flag is set, each settle also
        records a ``circuit.settle`` span at the current ``time_ns``.
        """
        self.obs = obs
        if obs is None:
            self._m_settle = self._m_passes = None
            self._g_comps = self._g_nodes = None
            return
        reg = obs.registry
        self._m_settle = reg.counter("circuit.settle.calls", circuit=self.name)
        self._m_passes = reg.counter("circuit.settle.passes", circuit=self.name)
        self._g_comps = reg.gauge(
            "circuit.engine.comps_resolved", circuit=self.name
        )
        self._g_nodes = reg.gauge(
            "circuit.engine.nodes_changed", circuit=self.name
        )

    def add_probe(self, probe) -> None:
        """Register a sampler called after every settle (VCD capture)."""
        self._probes.append(probe)

    def engine_stats(self) -> Dict[str, int]:
        """Cumulative event-engine work counters (zeros before first use;
        reset whenever the topology changes and the engine rebuilds)."""
        eng = self._event_engine
        if eng is None:
            return {"passes": 0, "comps_resolved": 0, "nodes_changed": 0}
        return {
            "passes": eng.stat_passes,
            "comps_resolved": eng.stat_comps_resolved,
            "nodes_changed": eng.stat_nodes_changed,
        }

    # -- evaluation ---------------------------------------------------------------

    def settle(self, max_iterations: int = 60,
               strict_decay: bool = False) -> int:
        """Relax the circuit to a stable state (see simulator module).

        Returns the number of passes taken; ``strict_decay=True`` raises
        :class:`~repro.errors.ChargeDecayError` instead of reading decayed
        charge as UNKNOWN.
        """
        from .simulator import settle as _settle

        n = _settle(self, max_iterations, strict_decay=strict_decay)
        if self.obs is not None:
            self._m_settle.inc()
            self._m_passes.inc(n)
            eng = self._event_engine
            if eng is not None:
                self._g_comps.set(eng.stat_comps_resolved)
                self._g_nodes.set(eng.stat_nodes_changed)
            if self.obs.trace_circuit:
                self.obs.tracer.record(
                    "circuit.settle", t0=self.time_ns, t1=self.time_ns,
                    unit="ns", circuit=self.name, passes=n,
                )
        if self._probes:
            for probe in self._probes:
                probe.sample()
        return n

    def advance_time(self, dt_ns: float) -> None:
        """Advance simulated time (charge on undriven nodes ages)."""
        if dt_ns < 0:
            raise CircuitError("time cannot run backwards")
        self.time_ns += dt_ns

    def read(self, name: str) -> LogicValue:
        """The solved value of a node."""
        try:
            return self.nodes[name].value
        except KeyError:
            raise CircuitError(f"no node named {name!r}") from None

    def read_bool(self, name: str) -> bool:
        """The solved value as a boolean; raises on UNKNOWN."""
        v = self.read(name)
        if v is UNKNOWN:
            raise CircuitError(f"node {name!r} is UNKNOWN")
        return v is HIGH

    # -- stats ---------------------------------------------------------------------

    @property
    def n_transistors(self) -> int:
        """Enhancement + depletion device count (the paper-era size metric)."""
        return len(self.transistors) + len(self.loads)

    def adjacency(self) -> Dict[str, List[Enhancement]]:
        """Node -> channel-connected transistors (cached)."""
        if self._adjacency_dirty:
            adj: Dict[str, List[Enhancement]] = {n: [] for n in self.nodes}
            for t in self.transistors:
                adj[t.a].append(t)
                adj[t.b].append(t)
            self._adjacency = adj
            self._adjacency_dirty = False
        return self._adjacency
