"""Whole-array netlists: the pattern matcher at switch level.

This module performs the paper's "Cell Boundary Layouts" wiring at the
electrical level: it instantiates the comparator and accumulator twins in
the Figure 3-3/3-4 arrangement -- ``w`` rows of one-bit comparators over
one accumulator row, ``m`` columns -- with

* polarity alternating along every data path ("two versions of each cell
  must be constructed"): cell (column i, row j) is the positive twin when
  ``(i + j)`` is even;
* the two-phase clock doing "double duty as a data flow control signal":
  the same parity selects the phase that activates the cell, so active
  cells form the Figure 3-4 checkerboard;
* row 0's ``d_in`` tied to the appropriate rail, chip-edge pins for the
  pattern/string bit rows and the control/result streams.

:class:`GateLevelMatcher` wraps the netlist in the host feeding discipline
shared (via :func:`repro.core.bit_level.bit_feed_schedule`) with the
behavioural bit-level model, and the test suite checks the two agree
bit for bit -- the cross-level verification the paper's methodology
implies between "cell logic circuits" and "algorithm".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..alphabet import Alphabet, PatternChar, parse_pattern
from ..core.bit_level import bit_feed_schedule
from ..errors import CircuitError, PatternError
from ..streams import RecirculatingPattern
from ..systolic.cell import is_bubble
from .cells.accumulator import build_accumulator
from .cells.comparator import build_comparator
from .netlist import GND, VDD, Circuit
from .signals import HIGH, LOW, UNKNOWN


class MatcherArrayNetlist:
    """The m-column, w-row matcher array as one switch-level circuit."""

    def __init__(self, m: int, w: int, name: str = "chip",
                 retention_ns: float = 1e6):
        if m <= 0 or w <= 0:
            raise CircuitError("array needs at least one column and one row")
        self.m, self.w = m, w
        self.circuit = Circuit(name, retention_ns=retention_ns)
        c = self.circuit
        self.phi = ("phi1", "phi2")
        c.set_input("phi1", LOW)
        c.set_input("phi2", LOW)

        self.comparators: List[List[Dict[str, str]]] = []
        self.accumulators: List[Dict[str, str]] = []

        # Edge pin names.
        self.p_edge = [f"pin.p{j}" for j in range(w)]      # left, per row
        self.s_edge = [f"pin.s{j}" for j in range(w)]      # right, per row
        self.lam_edge = "pin.lam"                          # left, accumulator
        self.x_edge = "pin.x"                              # left, accumulator
        self.r_edge = "pin.r"                              # right, accumulator

        for j in range(w):
            row: List[Dict[str, str]] = []
            for i in range(m):
                pos = self.is_positive(i, j)
                clk = self.phase_of(i, j)
                ports = build_comparator(
                    c, f"c{i}_{j}.", clk, positive=pos
                )
                row.append(ports)
            self.comparators.append(row)
        for i in range(m):
            pos = self.is_positive(i, w)
            clk = self.phase_of(i, w)
            other = self.phi[1 - self.phi.index(clk)]
            self.accumulators.append(
                build_accumulator(c, f"a{i}.", clk, other, positive=pos)
            )

        self._wire()

    # -- placement helpers -------------------------------------------------

    def is_positive(self, i: int, j: int) -> bool:
        """Polarity of cell at column *i*, row *j* (row w = accumulator)."""
        return (i + j) % 2 == 0

    def phase_of(self, i: int, j: int) -> str:
        """Clock phase activating cell (i, j): parity-matched to beats."""
        return self.phi[(i + j) % 2]

    # -- wiring ---------------------------------------------------------------

    def _tie(self, node: str, value) -> None:
        self.circuit.set_input(node, value)

    def _alias(self, a: str, b: str) -> None:
        """Join two nodes with a permanent wire (always-on channel)."""
        # A wire is an enhancement transistor whose gate is VDD.
        self.circuit.add_enhancement(VDD, a, b, label=f"wire:{a}={b}")

    def _wire(self) -> None:
        m, w = self.m, self.w
        for j in range(w):
            for i in range(m):
                ports = self.comparators[j][i]
                # pattern: left neighbour's p_out, or the edge pin.
                if i == 0:
                    self._alias(self.p_edge[j], ports["p_in"])
                else:
                    self._alias(self.comparators[j][i - 1]["p_out"], ports["p_in"])
                # string: right neighbour's s_out, or the edge pin.
                if i == m - 1:
                    self._alias(self.s_edge[j], ports["s_in"])
                else:
                    self._alias(self.comparators[j][i + 1]["s_out"], ports["s_in"])
                # d: from the row above, or the TRUE rail at row 0
                # (positive cells see VDD, negative cells see its complement).
                if j == 0:
                    rail = VDD if self.is_positive(i, 0) else GND
                    self._alias(rail, ports["d_in"])
                else:
                    self._alias(self.comparators[j - 1][i]["d_out"], ports["d_in"])
        for i in range(m):
            acc = self.accumulators[i]
            self._alias(self.comparators[w - 1][i]["d_out"], acc["d_in"])
            if i == 0:
                self._alias(self.lam_edge, acc["lam_in"])
                self._alias(self.x_edge, acc["x_in"])
            else:
                self._alias(self.accumulators[i - 1]["lam_out"], acc["lam_in"])
                self._alias(self.accumulators[i - 1]["x_out"], acc["x_in"])
            if i == m - 1:
                self._alias(self.r_edge, acc["r_in"])
            else:
                self._alias(self.accumulators[i + 1]["r_out"], acc["r_in"])
        # The result edge pin carries "no result yet"; its logic value per
        # polarity of the rightmost accumulator.
        self._tie(self.r_edge, LOW if self.is_positive(m - 1, w) else HIGH)

    # -- clocking --------------------------------------------------------------

    def pulse(self, beat: int, phase_high_ns: float = 100.0,
              gap_ns: float = 25.0) -> None:
        """One beat: raise the beat's phase, settle, lower it."""
        c = self.circuit
        phase = self.phi[beat % 2]
        c.set_input(phase, HIGH)
        c.settle()
        c.advance_time(phase_high_ns)
        c.set_input(phase, LOW)
        c.settle()
        c.advance_time(gap_ns)

    @property
    def n_transistors(self) -> int:
        return self.circuit.n_transistors

    def vcd_probe(self, signals=None, writer=None):
        """A :class:`~repro.obs.vcd.CircuitProbe` over the interesting
        nets, sampled at every clock phase of :meth:`pulse`.

        The default signal set follows the VCD naming scheme
        ``chip.<what>``: both clock phases, every edge pin, and the
        result output of accumulator column 0 (the chip's R_OUT).
        Pass an explicit display-name -> node-name mapping for anything
        else (internal comparator stores, per-cell ``eq``...).
        """
        from ..obs.vcd import CircuitProbe  # local: obs is optional here

        if signals is None:
            signals = {"phi1": "phi1", "phi2": "phi2"}
            for j in range(self.w):
                signals[f"pin.p{j}"] = self.p_edge[j]
                signals[f"pin.s{j}"] = self.s_edge[j]
            signals["pin.lam"] = self.lam_edge
            signals["pin.x"] = self.x_edge
            signals["pin.r"] = self.r_edge
            signals["r_out"] = self.accumulators[0]["r_out"]
        return CircuitProbe(self.circuit, signals, writer=writer)


class GateLevelMatcher:
    """The pattern matcher simulated transistor by transistor.

    Functionally identical to :class:`~repro.core.matcher.PatternMatcher`
    (the tests assert it), about four orders of magnitude slower -- which
    is the point: it demonstrates that the paper's circuits implement the
    paper's algorithm.
    """

    def __init__(
        self,
        pattern,
        alphabet: Alphabet,
        n_cells: Optional[int] = None,
        wildcard_symbol: str = "X",
        retention_ns: float = 1e9,
    ):
        self.alphabet = alphabet
        if pattern and all(isinstance(pc, PatternChar) for pc in pattern):
            self.pattern: List[PatternChar] = list(pattern)
        else:
            self.pattern = parse_pattern(pattern, alphabet, wildcard_symbol)
        if n_cells is None:
            n_cells = len(self.pattern)
        if n_cells < len(self.pattern):
            raise PatternError("pattern does not fit in the array")
        self.m = n_cells
        self.w = alphabet.bits
        self.net = MatcherArrayNetlist(self.m, self.w, retention_ns=retention_ns)
        self._items = RecirculatingPattern(self.pattern).items
        self.obs = None

    def attach_obs(self, obs) -> None:
        """Attach an Observability bundle (propagates to the netlist's
        circuit, so settle metrics/spans and probes follow)."""
        self.obs = obs
        self.net.circuit.attach_obs(obs)

    def _set_edge(self, node: str, bit, invert: bool) -> None:
        """Drive an edge pin, honouring the edge cell's polarity."""
        if is_bubble(bit):
            bit = 0  # idle slots carry arbitrary garbage; drive low
        v = bool(bit)
        if invert:
            v = not v
        self.net.circuit.set_input(node, HIGH if v else LOW)

    def match(self, text: Sequence[str]) -> List[bool]:
        """One result bit per text character (oracle convention)."""
        if self.obs is not None:
            circuit = self.net.circuit
            with self.obs.tracer.span(
                "gate.match", clock=lambda: circuit.time_ns, unit="ns",
                chars=len(text), cells=self.m,
                transistors=self.n_transistors,
            ):
                return self._match(text)
        return self._match(text)

    def _match(self, text: Sequence[str]) -> List[bool]:
        chars = self.alphabet.validate_text(text)
        m, w = self.m, self.w
        net = self.net
        e_s = m + 1
        n_beats = e_s + 2 * max(0, len(chars) - 1) + w + m + 2
        schedule = bit_feed_schedule(
            self.alphabet, self._items, chars, m, w, e_s, n_beats
        )
        # Result for text position q exits the accumulator row at
        # behavioural beat e_s + 2q + w + m, i.e. is sampled after the
        # netlist pulse for beat (that - 1).
        exit_beat = {e_s + 2 * q + w + m: q for q in range(len(chars))}
        out_invert = net.is_positive(0, w)  # positive twin emits r_bar
        # Edge-pin polarities.
        p_inv = [not net.is_positive(0, j) for j in range(w)]
        s_inv = [not net.is_positive(m - 1, j) for j in range(w)]
        acc_in_inv = not net.is_positive(0, w)

        results: Dict[int, bool] = {}
        r_out_node = net.accumulators[0]["r_out"]
        for b, beat in enumerate(schedule):
            for j in range(w):
                self._set_edge(net.p_edge[j], beat.p_row_in[j], p_inv[j])
                self._set_edge(net.s_edge[j], beat.s_row_in[j], s_inv[j])
            lam_bit = 0 if is_bubble(beat.lam_in) else int(beat.lam_in.is_last)
            x_bit = 0 if is_bubble(beat.lam_in) else int(beat.lam_in.is_wild)
            self._set_edge(net.lam_edge, lam_bit, acc_in_inv)
            self._set_edge(net.x_edge, x_bit, acc_in_inv)
            net.pulse(b)
            q = exit_beat.get(b + 1)
            if q is not None:
                v = net.circuit.read(r_out_node)
                if v is not UNKNOWN:
                    bit = v is HIGH
                    results[q] = (not bit) if out_invert else bit
        k = len(self.pattern) - 1
        return [
            bool(results.get(i, False)) if i >= k else False
            for i in range(len(chars))
        ]

    @property
    def n_transistors(self) -> int:
        return self.net.n_transistors
