"""Gate macros built from NMOS transistors.

Every gate is ratioed NMOS: a depletion pullup on the output plus an
enhancement pulldown network to GND.  The macros add devices to an
existing :class:`~repro.circuit.netlist.Circuit` and return the output
node name, so cells compose them freely.

The exclusive-NOR gate follows the structure available inside the
comparator cell: both polarities of each operand exist (the stored input
and its inverter output), so equality is a two-path pulldown --
``out`` is pulled low when ``a AND NOT b`` or ``NOT a AND b``.
"""

from __future__ import annotations

from .netlist import GND, VDD, Circuit


def inverter(c: Circuit, inp: str, out: str, label: str = "inv") -> str:
    """Depletion-load inverter: ``out = NOT inp``."""
    c.add_depletion_load(out, label=f"{label}.pullup")
    c.add_enhancement(inp, out, GND, label=f"{label}.pulldown")
    return out


def pass_transistor(c: Circuit, gate: str, a: str, b: str, label: str = "pass") -> None:
    """Bidirectional switch between *a* and *b* controlled by *gate*."""
    c.add_enhancement(gate, a, b, label=label)


def nand2(c: Circuit, a: str, b: str, out: str, label: str = "nand") -> str:
    """Two-input NAND: series pulldown."""
    mid = f"{out}.n"
    c.add_depletion_load(out, label=f"{label}.pullup")
    c.add_enhancement(a, out, mid, label=f"{label}.a")
    c.add_enhancement(b, mid, GND, label=f"{label}.b")
    return out


def nand3(c: Circuit, a: str, b: str, d: str, out: str, label: str = "nand3") -> str:
    """Three-input NAND: series pulldown stack."""
    m1, m2 = f"{out}.n1", f"{out}.n2"
    c.add_depletion_load(out, label=f"{label}.pullup")
    c.add_enhancement(a, out, m1, label=f"{label}.a")
    c.add_enhancement(b, m1, m2, label=f"{label}.b")
    c.add_enhancement(d, m2, GND, label=f"{label}.c")
    return out


def nor2(c: Circuit, a: str, b: str, out: str, label: str = "nor") -> str:
    """Two-input NOR: parallel pulldown."""
    c.add_depletion_load(out, label=f"{label}.pullup")
    c.add_enhancement(a, out, GND, label=f"{label}.a")
    c.add_enhancement(b, out, GND, label=f"{label}.b")
    return out


def xnor_from_rails(
    c: Circuit, a: str, a_bar: str, b: str, b_bar: str, out: str,
    label: str = "xnor",
) -> str:
    """Equality gate given both polarities of both operands.

    ``out`` is pulled low when the operands differ: pulldown paths
    ``a & b_bar`` and ``a_bar & b``.
    """
    c.add_depletion_load(out, label=f"{label}.pullup")
    m1, m2 = f"{out}.m1", f"{out}.m2"
    c.add_enhancement(a, out, m1, label=f"{label}.p1a")
    c.add_enhancement(b_bar, m1, GND, label=f"{label}.p1b")
    c.add_enhancement(a_bar, out, m2, label=f"{label}.p2a")
    c.add_enhancement(b, m2, GND, label=f"{label}.p2b")
    return out


def xor_from_rails(
    c: Circuit, a: str, a_bar: str, b: str, b_bar: str, out: str,
    label: str = "xor",
) -> str:
    """Difference gate: pulled low when operands are equal."""
    return xnor_from_rails(c, a, a_bar, b_bar, b, out, label=label)


def aoi_pairs(c: Circuit, pairs, out: str, label: str = "aoi") -> str:
    """AND-OR-INVERT: ``out = NOR of two-input ANDs``.

    Each ``(a, b)`` pair becomes a two-high series pulldown path, so the
    gate keeps the 4:1 pullup/pulldown ratio that the ERC demands of
    every restoring stage (a three-high NAND stack would not).  The
    majority gate of a full adder is the canonical use:
    ``maj(a, b, cin)`` inverted is ``aoi_pairs([(a,b), (a,cin), (b,cin)])``.
    """
    c.add_depletion_load(out, label=f"{label}.pullup")
    for k, (a, b) in enumerate(pairs):
        mid = f"{out}.m{k}"
        c.add_enhancement(a, out, mid, label=f"{label}.p{k}a")
        c.add_enhancement(b, mid, GND, label=f"{label}.p{k}b")
    return out
