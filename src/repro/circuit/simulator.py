"""The relaxation switch-level solver.

Evaluation follows the classic switch-level discipline (Bryant's MOSSIM,
specialised to ratioed NMOS):

1. classify every enhancement channel as ON / OFF / MAYBE from its gate
   value;
2. group nodes into channel-connected components over the ON edges;
3. resolve each component's value from its strongest contributions --
   forced pins, rails reached through channels (PULL), depletion loads
   (LOAD), stored charge (CHARGE); equal-strength disagreement gives X.
   A pulldown path to GND therefore overpowers a depletion load, which is
   exactly the ratioed-logic design rule the paper's gates depend on;
4. propagate pessimism across MAYBE channels: a component whose
   maybe-neighbour is at least as strong and disagrees becomes X;
5. write back node values and repeat until a fixed point (gate values feed
   step 1), with an iteration cap that flags oscillating circuits.

Charge decay: a component resolved at CHARGE strength keeps its nodes'
``last_refresh`` timestamps; when simulated time has advanced more than
the retention window since a node was last driven, its stored value reads
as UNKNOWN.  This is the "dynamic shift registers ... are incapable of
holding data for more than about 1 ms without shifting" of Section 3.3.3,
and the strict mode raises :class:`~repro.errors.ChargeDecayError` so
tests can assert the failure mode.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ChargeDecayError, CircuitError
from .netlist import GND, VDD, Circuit
from .signals import HIGH, LOW, UNKNOWN, LogicValue, Strength, resolve


class _UnionFind:
    """Plain union-find over node names."""

    def __init__(self, names):
        self.parent = {n: n for n in names}

    def find(self, x: str) -> str:
        p = self.parent
        root = x
        while p[root] != root:
            root = p[root]
        while p[x] != root:
            p[x], x = root, p[x]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb


def settle(circuit: Circuit, max_iterations: int = 60,
           strict_decay: bool = False) -> int:
    """Relax *circuit* to a fixed point; returns the iteration count."""
    for iteration in range(max_iterations):
        changed = _one_pass(circuit, strict_decay)
        if not changed:
            return iteration + 1
    raise CircuitError(
        f"{circuit.name}: did not settle in {max_iterations} iterations "
        f"(oscillating or ill-formed circuit)"
    )


def _one_pass(circuit: Circuit, strict_decay: bool) -> bool:
    """One relaxation pass; returns True if any node value changed."""
    nodes = circuit.nodes
    now = circuit.time_ns
    retention = circuit.retention_ns

    on_edges: List[Tuple[str, str]] = []
    maybe_edges: List[Tuple[str, str]] = []
    for t in circuit.transistors:
        g = nodes[t.gate].value
        if g is HIGH:
            on_edges.append((t.a, t.b))
        elif g is UNKNOWN:
            maybe_edges.append((t.a, t.b))

    uf = _UnionFind(nodes.keys())
    for a, b in on_edges:
        uf.union(a, b)

    members: Dict[str, List[str]] = {}
    for name in nodes:
        members.setdefault(uf.find(name), []).append(name)

    loads_by_node: Dict[str, bool] = {d.node: True for d in circuit.loads}

    resolved: Dict[str, Tuple[LogicValue, Strength]] = {}
    for root, group in members.items():
        value, strength = UNKNOWN, Strength.NONE
        for name in group:
            node = nodes[name]
            # Rails are infinite sources: a path to VDD/GND dominates any
            # other driver in the component (ratioed-logic pulldowns win;
            # a forced pin cannot out-drive the ground network it shorts
            # to).  Two rails in one component still fight to X.
            if name == VDD:
                value, strength = resolve(value, strength, HIGH, Strength.FORCED)
            elif name == GND:
                value, strength = resolve(value, strength, LOW, Strength.FORCED)
            if name in circuit.inputs:
                # Through channels a forced pin drives at PULL strength,
                # like the rails: a pass-transistor chain attenuates, so an
                # external driver must not overpower an active pulldown
                # deep inside the circuit (that mis-modelling lets power-on
                # garbage lock itself in via conducting multiplexer paths).
                # The pin node itself is re-pinned FORCED at writeback.
                value, strength = resolve(
                    value, strength, circuit.inputs[name], Strength.PULL
                )
            if name in loads_by_node:
                value, strength = resolve(value, strength, HIGH, Strength.LOAD)
        if strength <= Strength.CHARGE:
            # Undriven component: retained charge (with decay).
            for name in group:
                node = nodes[name]
                stored = node.value
                if (
                    node.strength <= Strength.CHARGE
                    and now - node.last_refresh > retention
                    and stored is not UNKNOWN
                ):
                    if strict_decay:
                        raise ChargeDecayError(
                            f"{circuit.name}: node {name} read "
                            f"{now - node.last_refresh:.0f} ns after last "
                            f"refresh (retention {retention:.0f} ns)"
                        )
                    stored = UNKNOWN
                value, strength = resolve(value, strength, stored, Strength.CHARGE)
        resolved[root] = (value, strength)

    # Pessimism across MAYBE channels, applied to the transistor's own
    # terminal nodes rather than whole components: an unknown gate may
    # connect its two terminals, so a terminal whose side is no stronger
    # than the other side might take the other side's value -- mark it X.
    # (Component-wide downgrade would smear X across the entire GND/VDD
    # networks, wiping out every active pulldown in the circuit.)
    maybe_x: set = set()
    for a, b in maybe_edges:
        ra, rb = uf.find(a), uf.find(b)
        if ra == rb:
            continue
        va, sa = resolved[ra]
        vb, sb = resolved[rb]
        if va == vb and va is not UNKNOWN:
            continue
        if sb >= sa:
            maybe_x.add(a)
        if sa >= sb:
            maybe_x.add(b)

    changed = False
    for root, group in members.items():
        value, strength = resolved[root]
        driven = strength >= Strength.LOAD
        for name in group:
            node = nodes[name]
            if name == VDD or name == GND:
                continue
            if name in circuit.inputs:
                value_n, strength_n = circuit.inputs[name], Strength.FORCED
            elif name in maybe_x:
                value_n, strength_n = UNKNOWN, strength
            else:
                value_n, strength_n = value, strength
            if node.value != value_n:
                changed = True
            node.value = value_n
            node.strength = strength_n
            if driven or name in circuit.inputs:
                node.last_refresh = now
    return changed
