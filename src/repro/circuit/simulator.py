"""The switch-level solver: event-driven engine plus the reference relaxer.

Evaluation follows the classic switch-level discipline (Bryant's MOSSIM,
specialised to ratioed NMOS):

1. classify every enhancement channel as ON / OFF / MAYBE from its gate
   value;
2. group nodes into channel-connected components over the ON edges;
3. resolve each component's value from its strongest contributions --
   forced pins, rails reached through channels (PULL), depletion loads
   (LOAD), stored charge (CHARGE); equal-strength disagreement gives X.
   A pulldown path to GND therefore overpowers a depletion load, which is
   exactly the ratioed-logic design rule the paper's gates depend on;
4. propagate pessimism across MAYBE channels: a component whose
   maybe-neighbour is at least as strong and disagrees becomes X;
5. write back node values and repeat until a fixed point (gate values feed
   step 1), with an iteration cap that flags oscillating circuits.

Two engines implement those semantics:

* :func:`settle_reference` -- the original whole-netlist relaxer: every
  pass re-partitions and re-resolves every node.  Kept as the executable
  specification; the differential tests in
  ``tests/test_circuit_settle_equivalence.py`` hold the fast engine to it
  bit for bit.

* :func:`settle` (the default, used by :meth:`Circuit.settle`) -- the
  event-driven engine.  It decomposes the netlist once per topology into
  *static* channel-connected components (maximal groups of nodes joined
  by transistor channels, with the supply rails treated as terminals
  rather than connectors -- the classic switch-level preprocessing step),
  memoises each component's dynamic partition keyed by its few local gate
  values (the two-phase clock cycles every component through a handful of
  configurations, so steady-state beats skip partitioning entirely), and
  each pass only re-resolves components reachable from nodes that
  actually changed -- toggled inputs, rewritten gate nodes, or charge
  whose retention deadline has passed.  Components away from the activity
  are never touched, which is what makes whole-array netlists clockable
  at speed.

Rails as terminals: the reference engine merges components *through* a
rail, so every node with a conducting path to GND shares one component
with GND itself, and a single VDD-GND short anywhere drives that entire
merged blob to X at FORCED strength.  The event engine reproduces this
exactly without ever materialising the blob: a sub-component touching one
rail resolves to that rail's value at FORCED, and a global ``shorted``
flag (any sub-component bridging both rails, or a direct rail-rail
channel turned on) switches every rail-touching sub-component to X,
re-dirtying them all the moment the flag flips.

Charge decay: a component resolved at CHARGE strength keeps its nodes'
``last_refresh`` timestamps; when simulated time has advanced more than
the retention window since a node was last driven, its stored value reads
as UNKNOWN.  This is the "dynamic shift registers ... are incapable of
holding data for more than about 1 ms without shifting" of Section 3.3.3,
and the strict mode raises :class:`~repro.errors.ChargeDecayError` so
tests can assert the failure mode.  The event engine tracks the earliest
retention deadline over all charge-holding nodes, so clock beats that
cannot have decayed anything pay nothing for the check.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..errors import ChargeDecayError, CircuitError
from .netlist import GND, VDD, Circuit
from .signals import HIGH, LOW, UNKNOWN, LogicValue, Strength, resolve

#: Per-component partition-memo capacity; past this the cache is cleared
#: (the working set of a clocked component is a handful of gate vectors,
#: so eviction only triggers on pathological data-dependent components).
_PARTITION_CACHE_MAX = 128

_NONE = Strength.NONE
_CHARGE = Strength.CHARGE
_LOAD = Strength.LOAD
_PULL = Strength.PULL
_FORCED = Strength.FORCED

_VDD_BIT = 1
_GND_BIT = 2


class _UnionFind:
    """Plain union-find over node names (reference engine only)."""

    def __init__(self, names):
        self.parent = {n: n for n in names}

    def find(self, x: str) -> str:
        p = self.parent
        root = x
        while p[root] != root:
            root = p[root]
        while p[x] != root:
            p[x], x = root, p[x]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb


# ---------------------------------------------------------------------------
# Reference engine: the original whole-netlist relaxation pass.
# ---------------------------------------------------------------------------

def settle_reference(circuit: Circuit, max_iterations: int = 60,
                     strict_decay: bool = False) -> int:
    """Relax *circuit* to a fixed point with the reference engine.

    Semantically identical to :func:`settle` (the differential tests
    assert it), re-partitioning and re-resolving the whole netlist every
    pass.  Use it as the ground truth when validating engine changes.
    """
    # The reference engine writes node state behind the event engine's
    # back; drop any cached engine so a later settle() rebuilds cleanly.
    circuit._event_engine = None
    for iteration in range(max_iterations):
        changed = _reference_pass(circuit, strict_decay)
        if not changed:
            return iteration + 1
    raise CircuitError(
        f"{circuit.name}: did not settle in {max_iterations} iterations "
        f"(oscillating or ill-formed circuit)"
    )


def _reference_pass(circuit: Circuit, strict_decay: bool) -> bool:
    """One relaxation pass; returns True if any node value changed."""
    nodes = circuit.nodes
    now = circuit.time_ns
    retention = circuit.retention_ns

    on_edges: List[Tuple[str, str]] = []
    maybe_edges: List[Tuple[str, str]] = []
    for t in circuit.transistors:
        g = nodes[t.gate].value
        if g is HIGH:
            on_edges.append((t.a, t.b))
        elif g is UNKNOWN:
            maybe_edges.append((t.a, t.b))

    uf = _UnionFind(nodes.keys())
    for a, b in on_edges:
        uf.union(a, b)

    members: Dict[str, List[str]] = {}
    for name in nodes:
        members.setdefault(uf.find(name), []).append(name)

    loads_by_node: Dict[str, bool] = {d.node: True for d in circuit.loads}

    resolved: Dict[str, Tuple[LogicValue, Strength]] = {}
    for root, group in members.items():
        value, strength = UNKNOWN, Strength.NONE
        for name in group:
            node = nodes[name]
            # Rails are infinite sources: a path to VDD/GND dominates any
            # other driver in the component (ratioed-logic pulldowns win;
            # a forced pin cannot out-drive the ground network it shorts
            # to).  Two rails in one component still fight to X.
            if name == VDD:
                value, strength = resolve(value, strength, HIGH, Strength.FORCED)
            elif name == GND:
                value, strength = resolve(value, strength, LOW, Strength.FORCED)
            if name in circuit.inputs:
                # Through channels a forced pin drives at PULL strength,
                # like the rails: a pass-transistor chain attenuates, so an
                # external driver must not overpower an active pulldown
                # deep inside the circuit (that mis-modelling lets power-on
                # garbage lock itself in via conducting multiplexer paths).
                # The pin node itself is re-pinned FORCED at writeback.
                value, strength = resolve(
                    value, strength, circuit.inputs[name], Strength.PULL
                )
            if name in loads_by_node:
                value, strength = resolve(value, strength, HIGH, Strength.LOAD)
        if strength <= Strength.CHARGE:
            # Undriven component: retained charge (with decay).
            for name in group:
                node = nodes[name]
                stored = node.value
                if (
                    node.strength <= Strength.CHARGE
                    and now - node.last_refresh > retention
                    and stored is not UNKNOWN
                ):
                    if strict_decay:
                        raise ChargeDecayError(
                            f"{circuit.name}: node {name} read "
                            f"{now - node.last_refresh:.0f} ns after last "
                            f"refresh (retention {retention:.0f} ns)"
                        )
                    stored = UNKNOWN
                value, strength = resolve(value, strength, stored, Strength.CHARGE)
        resolved[root] = (value, strength)

    # Pessimism across MAYBE channels, applied to the transistor's own
    # terminal nodes rather than whole components: an unknown gate may
    # connect its two terminals, so a terminal whose side is no stronger
    # than the other side might take the other side's value -- mark it X.
    # (Component-wide downgrade would smear X across the entire GND/VDD
    # networks, wiping out every active pulldown in the circuit.)
    maybe_x: set = set()
    for a, b in maybe_edges:
        ra, rb = uf.find(a), uf.find(b)
        if ra == rb:
            continue
        va, sa = resolved[ra]
        vb, sb = resolved[rb]
        if va == vb and va is not UNKNOWN:
            continue
        if sb >= sa:
            maybe_x.add(a)
        if sa >= sb:
            maybe_x.add(b)

    changed = False
    for root, group in members.items():
        value, strength = resolved[root]
        driven = strength >= Strength.LOAD
        for name in group:
            node = nodes[name]
            if name == VDD or name == GND:
                continue
            if name in circuit.inputs:
                value_n, strength_n = circuit.inputs[name], Strength.FORCED
            elif name in maybe_x:
                value_n, strength_n = UNKNOWN, strength
            else:
                value_n, strength_n = value, strength
            if node.value != value_n:
                changed = True
            node.value = value_n
            node.strength = strength_n
            if driven or name in circuit.inputs:
                node.last_refresh = now
    return changed


# ---------------------------------------------------------------------------
# Event-driven engine.
# ---------------------------------------------------------------------------

class _Comp:
    """One static channel-connected component (rails excluded).

    Fixed per topology: the member nodes, the channel edges internal to
    the component, the edges to a rail terminal, the depletion loads, and
    the gate nodes whose values shape the component's dynamic partition.
    """

    __slots__ = ("members", "internal", "rail_edges", "loads", "gates",
                 "cache", "current")

    def __init__(self):
        self.members: List[int] = []
        #: (gate_id, a_id, b_id) channel edges with both terminals here
        self.internal: List[Tuple[int, int, int]] = []
        #: (node_id, rail_bit, gate_id) channel edges to VDD/GND
        self.rail_edges: List[Tuple[int, int, int]] = []
        self.loads: List[int] = []
        #: sorted gate ids -> the component's partition-cache key layout
        self.gates: Tuple[int, ...] = ()
        self.cache: Dict[bytes, "_LocalPart"] = {}
        #: partition for the component's current gate vector, valid until
        #: one of its gate values changes (then the pass re-keys it)
        self.current: Optional["_LocalPart"] = None


class _LocalPart:
    """One component's dynamic partition for a fixed local gate vector."""

    __slots__ = ("root", "subs", "base", "rails", "maybe_int", "maybe_rail",
                 "mask", "short", "has_maybe")

    def __init__(self, root, subs, base, rails, maybe_int, maybe_rail):
        #: member id -> sub-component root id (a member id; globally unique)
        self.root: Dict[int, int] = root
        #: sub root -> member ids
        self.subs: Dict[int, List[int]] = subs
        #: sub root -> (value, strength) from depletion loads
        self.base: Dict[int, Tuple[LogicValue, Strength]] = base
        #: sub root -> rail bitmask (_VDD_BIT | _GND_BIT) over ON edges
        self.rails: Dict[int, int] = rails
        #: (a, b) per MAYBE channel internal to the component
        self.maybe_int: List[Tuple[int, int]] = maybe_int
        #: (node_id, rail_bit) per MAYBE channel to a rail
        self.maybe_rail: List[Tuple[int, int]] = maybe_rail
        #: union of all sub masks / does any sub bridge both rails
        self.mask: int = 0
        self.short: bool = False
        for m in rails.values():
            self.mask |= m
            if m == (_VDD_BIT | _GND_BIT):
                self.short = True
        self.has_maybe: bool = bool(maybe_int or maybe_rail)


class _EventEngine:
    """Event-driven settler bound to one Circuit topology.

    Invariants between passes (and between settle calls):

    * every node's ``value``/``strength`` equals what a full reference
      pass would compute, for every node not in the pending dirty set;
    * ``_comp_mask``/``_short_comps`` reflect each component's partition
      at its current gate vector, and ``_shorted`` whether any VDD-GND
      bridge exists anywhere;
    * ``_watch`` is exactly the set of nodes holding known charge
      (strength <= CHARGE), and ``_deadline`` the earliest instant any of
      them could decay.
    """

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.topo_version = circuit._topo_version

        names = list(circuit.nodes.keys())
        self.names = names
        self.iid: Dict[str, int] = {n: i for i, n in enumerate(names)}
        self.node_objs = [circuit.nodes[n] for n in names]
        self.n = len(names)
        vdd = self.iid[VDD]
        gnd = self.iid[GND]
        rails = (vdd, gnd)

        # Static components: union-find over channel edges between
        # non-rail terminals; rails are terminals, not connectors.
        parent = list(range(self.n))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        iid = self.iid
        edges = [
            (iid[t.gate], iid[t.a], iid[t.b]) for t in circuit.transistors
        ]
        for _, a, b in edges:
            if a not in rails and b not in rails:
                ra, rb = find(a), find(b)
                if ra != rb:
                    parent[ra] = rb

        self.comp_of: List[int] = [-1] * self.n
        self.comps: List[_Comp] = []
        for i in range(self.n):
            if i in rails:
                continue
            r = find(i)
            c = self.comp_of[r]
            if c < 0:
                c = len(self.comps)
                self.comps.append(_Comp())
                self.comp_of[r] = c
            self.comp_of[i] = c
            self.comps[c].members.append(i)

        #: gates of direct rail-rail channels (a VDD-GND transistor)
        self.rr_gates: Set[int] = set()
        comp_gates: List[Set[int]] = [set() for _ in self.comps]
        for g, a, b in edges:
            a_rail, b_rail = a in rails, b in rails
            if a_rail and b_rail:
                self.rr_gates.add(g)
                continue
            if a_rail or b_rail:
                node_id, rail = (b, a) if a_rail else (a, b)
                bit = _VDD_BIT if rail == vdd else _GND_BIT
                c = self.comp_of[node_id]
                self.comps[c].rail_edges.append((node_id, bit, g))
            else:
                c = self.comp_of[a]
                self.comps[c].internal.append((g, a, b))
            comp_gates[c].add(g)
        for c, comp in enumerate(self.comps):
            comp.gates = tuple(sorted(comp_gates[c]))
        for d in circuit.loads:
            li = iid[d.node]
            if li not in rails:
                self.comps[self.comp_of[li]].loads.append(li)

        #: gate id -> components whose partition depends on it
        self.gate_comps: Dict[int, Tuple[int, ...]] = {}
        gc: Dict[int, Set[int]] = {}
        for c, comp in enumerate(self.comps):
            for g in comp.gates:
                gc.setdefault(g, set()).add(c)
        self.gate_comps = {g: tuple(cs) for g, cs in gc.items()}

        #: current rail mask / short state per component (valid once the
        #: initial all-dirty pass has visited every component)
        self._comp_mask: List[int] = [0] * len(self.comps)
        #: components whose current partition reaches a rail only through
        #: a MAYBE channel; they too must re-resolve on a short transition
        self._comp_maybe_rail: List[bool] = [False] * len(self.comps)
        self._short_comps: Set[int] = set()
        self._shorted = False
        self._rr_on = False
        self._rr_stale = bool(self.rr_gates)

        #: nodes to re-examine on the next pass (carried across settles
        #: when a settle raised mid-way)
        self._pending: Set[int] = set(range(self.n))
        #: nodes currently holding known charge, for decay tracking
        self._watch: Set[int] = set()
        self._deadline: Optional[float] = None  # None = recompute lazily
        #: time of the previous completed settle().  The reference engine
        #: refreshes every driven node on every settle; we skip untouched
        #: components, so when a node transitions driven -> undriven we
        #: backfill last_refresh to this instant (the latest settle during
        #: which it was provably still driven).
        self._prev_now: float = circuit.time_ns

        #: cumulative work counters, exposed through
        #: ``Circuit.engine_stats()`` and published into the metrics
        #: registry when an Observability bundle is attached to the
        #: circuit.  Reset with the engine (any topology change).
        self.stat_passes = 0
        self.stat_comps_resolved = 0
        self.stat_nodes_changed = 0

    # -- local partitions --------------------------------------------------

    def _local(self, c: int) -> _LocalPart:
        comp = self.comps[c]
        nodes = self.node_objs
        key = bytes(int(nodes[g].value) for g in comp.gates)
        part = comp.cache.get(key)
        if part is None:
            if len(comp.cache) >= _PARTITION_CACHE_MAX:
                comp.cache.clear()
            part = self._build_local(comp)
            comp.cache[key] = part
        comp.current = part
        self._comp_mask[c] = part.mask
        self._comp_maybe_rail[c] = bool(part.maybe_rail)
        if part.short:
            self._short_comps.add(c)
        else:
            self._short_comps.discard(c)
        return part

    def _build_local(self, comp: _Comp) -> _LocalPart:
        nodes = self.node_objs
        parent = {i: i for i in comp.members}

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        maybe_int: List[Tuple[int, int]] = []
        for g, a, b in comp.internal:
            gv = nodes[g].value
            if gv is HIGH:
                ra, rb = find(a), find(b)
                if ra != rb:
                    parent[ra] = rb
            elif gv is UNKNOWN:
                maybe_int.append((a, b))

        root = {i: find(i) for i in comp.members}
        subs: Dict[int, List[int]] = {}
        for i in comp.members:
            subs.setdefault(root[i], []).append(i)

        rails: Dict[int, int] = {}
        maybe_rail: List[Tuple[int, int]] = []
        for node_id, bit, g in comp.rail_edges:
            gv = nodes[g].value
            if gv is HIGH:
                r = root[node_id]
                rails[r] = rails.get(r, 0) | bit
            elif gv is UNKNOWN:
                maybe_rail.append((node_id, bit))

        base: Dict[int, Tuple[LogicValue, Strength]] = {}
        for li in comp.loads:
            r = root[li]
            v, s = base.get(r, (UNKNOWN, _NONE))
            base[r] = resolve(v, s, HIGH, _LOAD)

        return _LocalPart(root, subs, base, rails, maybe_int, maybe_rail)

    # -- decay tracking ----------------------------------------------------

    def _decay_deadline(self) -> float:
        if self._deadline is None:
            nodes = self.node_objs
            self._deadline = (
                min(nodes[i].last_refresh for i in self._watch)
                + self.circuit.retention_ns
            )
        return self._deadline

    # -- settling ----------------------------------------------------------

    def settle(self, max_iterations: int, strict_decay: bool) -> int:
        circuit = self.circuit
        iid = self.iid
        changed = self._pending
        self._pending = set()
        # Externally-perturbed nodes (pins toggled, charge past its
        # deadline): their components need re-resolving, but their values
        # have not changed yet, so no gate fanout to chase this pass.
        extra: Set[int] = set()
        ext = circuit._dirty_ext
        if ext:
            for name in ext:
                i = iid.get(name)
                if i is not None:
                    extra.add(i)
            ext.clear()
        if self._watch and circuit.time_ns > self._decay_deadline():
            extra |= self._watch
        pinned_ids: Dict[int, LogicValue] = {}
        for name, pinned in circuit.inputs.items():
            i = iid.get(name)
            if i is not None:
                pinned_ids[i] = pinned
        try:
            for iteration in range(max_iterations):
                if not changed and not extra:
                    self._prev_now = circuit.time_ns
                    return iteration + 1
                changed = self._pass(changed, extra, pinned_ids, strict_decay,
                                     first_pass=iteration == 0)
                extra = ()
                if not changed:
                    self._prev_now = circuit.time_ns
                    return iteration + 1
        except ChargeDecayError:
            # Leave the worklist intact so the next settle retries.
            self._pending = changed | set(extra)
            raise
        self._pending = changed
        raise CircuitError(
            f"{circuit.name}: did not settle in {max_iterations} iterations "
            f"(oscillating or ill-formed circuit)"
        )

    def _pass(self, changed_in, extra_in, pinned_ids, strict_decay,
              first_pass: bool = True) -> Set[int]:
        """One event pass over the components touching the dirty nodes.

        *changed_in* holds nodes whose value changed (their gate fanout is
        chased and their components re-keyed); *extra_in* holds externally
        perturbed nodes (component re-resolution only).  Returns the set
        of nodes whose value changed (the next worklist).

        *first_pass* selects the driven->undriven backfill timestamp: the
        reference engine refreshes every driven node on every iteration,
        so a node released on iteration 1 keeps the *previous* settle's
        stamp, while one released by a later-iteration cascade (a gate
        flipping mid-settle) was still refreshed at ``now`` by the
        iterations before the cascade reached it.
        """
        circuit = self.circuit
        nodes = self.node_objs
        comp_of = self.comp_of
        gate_comps = self.gate_comps
        rr_gates = self.rr_gates
        comps = self.comps

        rekey: Set[int] = set()
        dirty_comps: Set[int] = set()
        for d in changed_in:
            c = comp_of[d]
            if c >= 0:
                dirty_comps.add(c)
            gated = gate_comps.get(d)
            if gated:
                rekey.update(gated)
            if d in rr_gates:
                self._rr_stale = True
        for d in extra_in:
            c = comp_of[d]
            if c >= 0:
                dirty_comps.add(c)
        if self._rr_stale:
            self._rr_on = any(nodes[g].value is HIGH for g in rr_gates)
            self._rr_stale = False

        parts: Dict[int, _LocalPart] = {}
        have_maybe = False
        for c in rekey:
            part = parts[c] = self._local(c)
            if part.has_maybe:
                have_maybe = True
        for c in dirty_comps:
            if c not in parts:
                part = comps[c].current
                if part is None:
                    part = self._local(c)
                parts[c] = part
                if part.has_maybe:
                    have_maybe = True

        shorted = self._rr_on or bool(self._short_comps)
        if shorted != self._shorted:
            # A VDD-GND bridge appeared or cleared: the merged rail blob
            # changes value chip-wide, so every rail-touching component
            # must re-resolve this very pass -- including components whose
            # only rail contact is a MAYBE channel, since the rail value
            # their pessimism step compares against just changed.
            self._shorted = shorted
            for c, mask in enumerate(self._comp_mask):
                if (mask or self._comp_maybe_rail[c]) and c not in parts:
                    part = parts[c] = self._local(c)
                    if part.has_maybe:
                        have_maybe = True

        # Forced pins, bucketed per sub-component root up front.  Several
        # pins on one sub fold among themselves first (equal PULLs agree,
        # disagreement fights to X at PULL), which matches the reference's
        # order-independent resolve() chain.
        pin_root: Dict[int, LogicValue] = {}
        for i, pinned in pinned_ids.items():
            c = comp_of[i]
            if c in parts:
                r = parts[c].root[i]
                v = pin_root.get(r)
                if v is None:
                    pin_root[r] = pinned
                elif v != pinned:
                    pin_root[r] = UNKNOWN

        now = circuit.time_ns
        retention = circuit.retention_ns

        # Resolution per sub-component, with the strength lattice inlined:
        # a rail path wins at FORCED outright (only another rail could tie,
        # and rail-vs-rail is the shorted case already folded in); a pin at
        # PULL beats any load; retained charge only matters when nothing at
        # all drives the sub.  Sub-components are independent except for
        # the MAYBE pessimism step, so when no MAYBE channels are live
        # (every steady-state pass) the writeback is fused into the sweep.
        res: Dict[int, Tuple[LogicValue, Strength]] = {}
        changed: Set[int] = set()
        watch = self._watch
        backfill = self._prev_now if first_pass else now
        for part in parts.values():
            base = part.base
            rails = part.rails
            for sub, mem in part.subs.items():
                m = rails.get(sub, 0)
                if m:
                    if shorted:
                        v = UNKNOWN
                    elif m == _VDD_BIT:
                        v = HIGH
                    else:
                        v = LOW
                    s = _FORCED
                else:
                    pv = pin_root.get(sub)
                    if pv is not None:
                        v, s = pv, _PULL
                    else:
                        b = base.get(sub)
                        if b is not None:
                            v, s = b
                        else:
                            v, s = UNKNOWN, _NONE
                            for i in mem:
                                node = nodes[i]
                                stored = node.value
                                if (
                                    node.strength <= _CHARGE
                                    and now - node.last_refresh > retention
                                    and stored is not UNKNOWN
                                ):
                                    if strict_decay:
                                        raise ChargeDecayError(
                                            f"{circuit.name}: node "
                                            f"{node.name} read "
                                            f"{now - node.last_refresh:.0f} ns"
                                            f" after last refresh (retention "
                                            f"{retention:.0f} ns)"
                                        )
                                    stored = UNKNOWN
                                if s is _NONE:
                                    v, s = stored, _CHARGE
                                elif v != stored:
                                    v = UNKNOWN
                if have_maybe:
                    res[sub] = (v, s)
                    continue
                # Fused writeback (no MAYBE pessimism this pass).
                driven = s >= _LOAD
                for i in mem:
                    node = nodes[i]
                    pinned = pinned_ids.get(i)
                    if pinned is not None:
                        value_n, strength_n = pinned, _FORCED
                    else:
                        value_n, strength_n = v, s
                    if node.value != value_n:
                        changed.add(i)
                        node.value = value_n
                    was_driven = node.strength >= _LOAD
                    node.strength = strength_n
                    if driven or pinned is not None:
                        node.last_refresh = now
                    elif was_driven and node.last_refresh != now:
                        # Driven until this pass: the retention window
                        # starts at the previous settle when released on
                        # the first pass, at this settle's `now` when a
                        # later-pass cascade cut the drive (the reference
                        # engine refreshes driven nodes every iteration,
                        # we only touch dirty ones).
                        node.last_refresh = backfill
                    if strength_n <= _CHARGE and value_n is not UNKNOWN:
                        if i not in watch:
                            watch.add(i)
                            self._deadline = None
                    elif i in watch:
                        watch.discard(i)
                        self._deadline = None
        self.stat_passes += 1
        self.stat_comps_resolved += len(parts)
        if not have_maybe:
            self.stat_nodes_changed += len(changed)
            return changed

        maybe_x: Set[int] = set()
        for part in parts.values():
            root = part.root
            for a, b in part.maybe_int:
                ra, rb = root[a], root[b]
                if ra == rb:
                    continue
                va, sa = res[ra]
                vb, sb = res[rb]
                if va == vb and va is not UNKNOWN:
                    continue
                if sb >= sa:
                    maybe_x.add(a)
                if sa >= sb:
                    maybe_x.add(b)
            for node_id, bit in part.maybe_rail:
                r = root[node_id]
                m = part.rails.get(r, 0)
                if m and (shorted or m == bit):
                    continue  # same blob as the rail: reference skips too
                va, sa = res[r]
                vb = UNKNOWN if shorted else (HIGH if bit == _VDD_BIT else LOW)
                if va == vb and va is not UNKNOWN:
                    continue
                # The rail side is FORCED, so it is always >= this side;
                # the rail node itself is never written back.
                maybe_x.add(node_id)

        for part in parts.values():
            for sub, mem in part.subs.items():
                value, strength = res[sub]
                driven = strength >= _LOAD
                for i in mem:
                    node = nodes[i]
                    pinned = pinned_ids.get(i)
                    if pinned is not None:
                        value_n, strength_n = pinned, _FORCED
                    elif i in maybe_x:
                        value_n, strength_n = UNKNOWN, strength
                    else:
                        value_n, strength_n = value, strength
                    if node.value != value_n:
                        changed.add(i)
                        node.value = value_n
                    was_driven = node.strength >= _LOAD
                    node.strength = strength_n
                    if driven or pinned is not None:
                        node.last_refresh = now
                    elif was_driven and node.last_refresh != now:
                        node.last_refresh = backfill
                    if strength_n <= _CHARGE and value_n is not UNKNOWN:
                        if i not in watch:
                            watch.add(i)
                            self._deadline = None
                    elif i in watch:
                        watch.discard(i)
                        self._deadline = None
        self.stat_nodes_changed += len(changed)
        return changed


def _engine_for(circuit: Circuit) -> _EventEngine:
    engine = circuit._event_engine
    if engine is None or engine.topo_version != circuit._topo_version:
        engine = _EventEngine(circuit)
        circuit._event_engine = engine
    return engine


def settle(circuit: Circuit, max_iterations: int = 60,
           strict_decay: bool = False) -> int:
    """Settle *circuit* to a fixed point; returns the iteration count.

    Uses the event-driven engine; bit-identical to
    :func:`settle_reference` (asserted by the differential test suite).
    """
    return _engine_for(circuit).settle(max_iterations, strict_decay)
