"""Switch-level NMOS circuit substrate (Section 3.2.2).

The paper implements its cells in silicon-gate NMOS: chains of inverters
separated by pass transistors form dynamic shift registers (Figure 3-5),
and the comparator is an inverter pair, an exclusive-NOR gate and a NAND
gate latched by a two-phase non-overlapping clock (Figure 3-6).  This
subpackage reproduces that technology level:

* :mod:`repro.circuit.signals` -- ternary logic values and drive strengths;
* :mod:`repro.circuit.netlist` -- nodes, enhancement/depletion transistors,
  and the :class:`Circuit` container;
* :mod:`repro.circuit.simulator` -- the relaxation switch-level solver with
  ratioed-logic strength resolution, charge storage and decay;
* :mod:`repro.circuit.clocks` -- two-phase non-overlapping clock driver;
* :mod:`repro.circuit.gates` -- gate macros (inverter, NAND, NOR, XNOR)
  built from transistors;
* :mod:`repro.circuit.shift_register` -- dynamic (Figure 3-5) and static
  shift registers for the Section 3.3.3 comparison;
* :mod:`repro.circuit.cells` -- the positive and negative comparator and
  accumulator cells;
* :mod:`repro.circuit.chipnet` -- whole-array netlists and the gate-level
  matcher checked against the behavioural model;
* :mod:`repro.circuit.vectorsettle` -- the batch tier's vectorized settle:
  many identical instances stepped as one array program.
"""

from .clocks import TwoPhaseClock
from .netlist import Circuit, GND, VDD
from .signals import HIGH, LOW, UNKNOWN, LogicValue
from .vectorsettle import VectorizedCircuits

__all__ = [
    "Circuit",
    "GND",
    "HIGH",
    "LOW",
    "LogicValue",
    "TwoPhaseClock",
    "UNKNOWN",
    "VDD",
    "VectorizedCircuits",
]
