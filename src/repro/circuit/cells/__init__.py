"""Switch-level implementations of the array's cell types.

"Since each cell inverts its inputs before sending them to its neighbors,
two versions of each cell must be constructed.  One version operates on
positive inputs to produce inverted outputs, while the other computes
positive outputs from inverted inputs." (Section 3.2.2)

Each builder adds one cell instance to a :class:`~repro.circuit.netlist.Circuit`
and returns the port-name mapping used for wiring by
:mod:`repro.circuit.chipnet`.
"""

from .accumulator import build_accumulator
from .comparator import build_comparator
from .counter import build_counter, counter_devices
from .mac import build_mac, mac_devices

__all__ = [
    "build_accumulator",
    "build_comparator",
    "build_counter",
    "build_mac",
    "counter_devices",
    "mac_devices",
]
