"""The counting cell of Section 3.4 at switch level.

"This problem can be solved by replacing the result bit stream by a
stream of integers, and replacing the accumulator cell by a counting
cell."  This module builds that counting cell as a real NMOS circuit:
the accumulator's control plumbing (clocked input latches, the
lambda-steered result multiplexer, the master/slave ``t`` discipline)
kept intact, but ``t`` widened from one bit to a ``result_bits``-wide
ripple-carry counter:

    w  = x_in OR d_in                     (count wildcards as matches)
    t' = t + w                            (ripple increment)
    if lambda_in:  r_out <- t' ; t <- 0
    else:          r_out <- r_in ; t <- t'

Each result bit gets the same machinery as the accumulator's single
result bit -- a lambda multiplexer, a clocked output latch, and a
master/slave pair refreshed on the opposite phase -- so the cell obeys
the two-phase discipline the ERC enforces (no same-phase feedback, every
storage node clock-refreshed).  The increment is a half-adder chain:
``sum_i = t_i XOR c_i``, ``c_{i+1} = t_i AND c_i``, ``c_0 = w``, built
from the rails-style XOR gate (both operand polarities exist already)
and two-high NAND stacks, keeping every restoring stage at the 4:1
ratio.

Like every cell of the chip, the counter exists in positive and negative
twins: the negative twin takes complemented stream inputs and produces
true outputs (its output inverters un-complement), so twins alternate
along every data path exactly as the comparator/accumulator pair does.
The internal counter value is kept in true polarity in both twins.
"""

from __future__ import annotations

from typing import Dict

from ...errors import CircuitError
from ..gates import inverter, nand2, nor2, pass_transistor, xor_from_rails
from ..netlist import GND, Circuit


def build_counter(
    c: Circuit,
    prefix: str,
    clk: str,
    clk_other: str,
    result_bits: int,
    positive: bool = True,
) -> Dict[str, str]:
    """Add one counting cell; returns its port map.

    Ports: ``lam_in``, ``x_in``, ``d_in``, ``r_in0..r_in{R-1}`` (data
    inputs; complemented for the negative twin), ``lam_out``, ``x_out``,
    ``r_out0..r_out{R-1}`` (complemented by the cell), plus the
    white-box counter nodes ``t_slave0..``/``t_master0..``.
    """
    if not prefix or not prefix.endswith("."):
        raise CircuitError("prefix must be non-empty and end with '.'")
    if result_bits < 1:
        raise CircuitError("counter needs at least one result bit")
    n = lambda s: prefix + s

    # Input latches (clocked pass transistors), as in the accumulator.
    for port in ("lam", "x", "d"):
        pass_transistor(c, clk, n(f"{port}_in"), n(f"{port}_store"),
                        label=n(f"pass_{port}"))
    for i in range(result_bits):
        pass_transistor(c, clk, n(f"r_in{i}"), n(f"r_store{i}"),
                        label=n(f"pass_r{i}"))

    # lambda and x continue rightward through shift-register inverters.
    inverter(c, n("lam_store"), n("lam_out"), label=n("inv_lam"))
    inverter(c, n("x_store"), n("x_out"), label=n("inv_x"))

    if positive:
        # w = x OR d:  w_bar = NOR(x, d), w = NOT w_bar.
        nor2(c, n("x_store"), n("d_store"), n("w_bar"), label=n("nor_w"))
        inverter(c, n("w_bar"), n("w"), label=n("inv_w"))
        lam, lam_bar = n("lam_store"), n("lam_out")
    else:
        # Stored inputs are complements: w = x OR d = NAND(x_bar, d_bar).
        nand2(c, n("x_store"), n("d_store"), n("w"), label=n("nand_w"))
        inverter(c, n("w"), n("w_bar"), label=n("inv_wb"))
        lam_bar, lam = n("lam_store"), n("lam_out")

    # Ripple increment: sum_i = t_i XOR c_i, c_{i+1} = t_i AND c_i,
    # seeded with c_0 = w.  Both polarities of every operand exist (the
    # slave pair below provides t_i and t_bar_i), so the XOR is the same
    # rails-style gate the comparator uses.
    carry, carry_bar = n("w"), n("w_bar")
    for i in range(result_bits):
        t, t_bar = n(f"t_slave{i}"), n(f"t_slave_bar{i}")
        s, s_bar = n(f"sum{i}"), n(f"sum_bar{i}")
        xor_from_rails(c, t, t_bar, carry, carry_bar, s, label=n(f"xor{i}"))
        inverter(c, s, s_bar, label=n(f"inv_sum{i}"))
        if i < result_bits - 1:
            nc_bar = n(f"carry_bar{i + 1}")
            nand2(c, t, carry, nc_bar, label=n(f"nand_c{i + 1}"))
            inverter(c, nc_bar, n(f"carry{i + 1}"), label=n(f"inv_c{i + 1}"))
            carry, carry_bar = n(f"carry{i + 1}"), nc_bar

        # Result multiplexer + clocked output latch, one per bit: the
        # positive twin selects the true sum (its inverter emits the
        # complement), the negative twin the complemented sum.
        sel = n(f"r_sel{i}")
        pass_transistor(c, lam, s if positive else s_bar, sel,
                        label=n(f"mux_t{i}"))
        pass_transistor(c, lam_bar, n(f"r_store{i}"), sel,
                        label=n(f"mux_r{i}"))
        pass_transistor(c, clk, sel, n(f"r_hold{i}"),
                        label=n(f"r_hold_pass{i}"))
        inverter(c, n(f"r_hold{i}"), n(f"r_out{i}"), label=n(f"inv_r{i}"))

        # t master write: on lambda the counter clears (t <- 0, the
        # accumulator's t <- TRUE with the identity element swapped),
        # otherwise t <- sum.  Slave refresh on the opposite phase.
        pass_transistor(c, clk, n(f"t_wr{i}"), n(f"t_master{i}"),
                        label=n(f"t_wr_pass{i}"))
        pass_transistor(c, lam, GND, n(f"t_wr{i}"), label=n(f"t_clr{i}"))
        pass_transistor(c, lam_bar, s, n(f"t_wr{i}"), label=n(f"t_keep{i}"))
        inverter(c, n(f"t_master{i}"), n(f"t_master_bar{i}"),
                 label=n(f"inv_tm{i}"))
        pass_transistor(c, clk_other, n(f"t_master_bar{i}"), t_bar,
                        label=n(f"t_xfer{i}"))
        inverter(c, t_bar, t, label=n(f"inv_ts{i}"))

    ports = {
        "lam_in": n("lam_in"), "x_in": n("x_in"), "d_in": n("d_in"),
        "lam_out": n("lam_out"), "x_out": n("x_out"),
    }
    for i in range(result_bits):
        ports[f"r_in{i}"] = n(f"r_in{i}")
        ports[f"r_out{i}"] = n(f"r_out{i}")
        ports[f"t_slave{i}"] = n(f"t_slave{i}")
        ports[f"t_master{i}"] = n(f"t_master{i}")
    return ports


def counter_devices(result_bits: int, positive: bool = True) -> int:
    """Device count of one counting-cell twin (for census tests)."""
    c = Circuit("census")
    build_counter(c, "u.", "clkA", "clkB", result_bits, positive=positive)
    return c.n_transistors
