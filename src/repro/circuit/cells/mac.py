"""The inner-product (multiply-accumulate) cell at switch level.

Section 3.4's last generalization replaces the comparator/accumulator
pair with a cell that multiplies the meeting pattern and string values
and accumulates the products: "many other problems, such as convolutions
and FIR filtering, have algorithms that use the same data flow."  This
module builds that cell for small unsigned operands:

    d  = p * s                              (B x B array multiplier)
    t' = t + d                              (R-bit ripple accumulate)
    if lambda_in:  r_out <- t' ; t <- 0
    else:          r_out <- r_in ; t <- t'

The data plumbing is the accumulator's, widened to buses: the tap value
``p`` (``data_bits`` wide) and stream value ``s`` travel through clocked
input latches and shift-register inverters exactly like the matcher's
bit rows, the result bus ``r`` (``result_bits`` wide) flows leftward
through a lambda multiplexer and clocked output latch per bit, and the
accumulator ``t`` lives in per-bit master/slave pairs refreshed on the
opposite clock phase.

Arithmetic is combinational ratioed NMOS between the latches: partial
products from NAND+inverter pairs, half adders from the rails-style XOR,
full adders whose carry is a majority gate built as an AND-OR-INVERT of
two-high pulldown pairs (:func:`repro.circuit.gates.aoi_pairs`) so every
restoring stage keeps the 4:1 ratio.  ``result_bits`` is chosen by the
compiler so the window sum never wraps, making the cell bit-exact
against the :data:`~repro.extensions.linear_products.INNER_PRODUCT`
semiring on integer streams.

Twins: the negative twin takes complemented bus inputs and emits true
outputs, alternating along rows like every other cell; the multiplier
and accumulator work in true polarity internally for both twins (the
input inverters supply true rails either way).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...errors import CircuitError
from ..gates import aoi_pairs, inverter, nand2, pass_transistor, xor_from_rails
from ..netlist import GND, Circuit

#: A combinational signal: (true node, complement node).
_Sig = Tuple[str, str]


def _half_adder(c: Circuit, pre: str, a: _Sig, b: _Sig) -> Tuple[_Sig, _Sig]:
    """sum = a XOR b, carry = a AND b; returns ((s, s_bar), (co, co_bar))."""
    s, s_bar = pre + "s", pre + "sb"
    xor_from_rails(c, a[0], a[1], b[0], b[1], s, label=pre + "xs")
    inverter(c, s, s_bar, label=pre + "xsb")
    co_bar, co = pre + "cb", pre + "co"
    nand2(c, a[0], b[0], co_bar, label=pre + "nand")
    inverter(c, co_bar, co, label=pre + "co")
    return (s, s_bar), (co, co_bar)


def _full_adder(
    c: Circuit, pre: str, a: _Sig, b: _Sig, cin: _Sig
) -> Tuple[_Sig, _Sig]:
    """Full adder; carry out is a majority gate (AOI of two-high pairs)."""
    x1, x1_bar = pre + "x1", pre + "x1b"
    xor_from_rails(c, a[0], a[1], b[0], b[1], x1, label=pre + "x1")
    inverter(c, x1, x1_bar, label=pre + "x1b")
    s, s_bar = pre + "s", pre + "sb"
    xor_from_rails(c, x1, x1_bar, cin[0], cin[1], s, label=pre + "xs")
    inverter(c, s, s_bar, label=pre + "xsb")
    co_bar, co = pre + "cb", pre + "co"
    aoi_pairs(
        c,
        [(a[0], b[0]), (a[0], cin[0]), (b[0], cin[0])],
        co_bar,
        label=pre + "maj",
    )
    inverter(c, co_bar, co, label=pre + "co")
    return (s, s_bar), (co, co_bar)


def _add_vectors(
    c: Circuit, pre: str, xs: List[Optional[_Sig]], ys: List[Optional[_Sig]],
    width: int,
) -> List[Optional[_Sig]]:
    """Ripple-add two bit vectors (None = constant 0), truncated to *width*."""
    out: List[Optional[_Sig]] = []
    carry: Optional[_Sig] = None
    for i in range(width):
        a = xs[i] if i < len(xs) else None
        b = ys[i] if i < len(ys) else None
        ops = [o for o in (a, b, carry) if o is not None]
        if not ops:
            out.append(None)
            carry = None
        elif len(ops) == 1:
            out.append(ops[0])
            carry = None
        elif len(ops) == 2:
            s, carry = _half_adder(c, f"{pre}{i}.", ops[0], ops[1])
            out.append(s)
        else:
            s, carry = _full_adder(c, f"{pre}{i}.", ops[0], ops[1], ops[2])
            out.append(s)
    return out


def build_mac(
    c: Circuit,
    prefix: str,
    clk: str,
    clk_other: str,
    data_bits: int,
    result_bits: int,
    positive: bool = True,
) -> Dict[str, str]:
    """Add one multiply-accumulate cell; returns its port map.

    Ports: ``lam_in``, ``p_in0..``, ``s_in0..`` (``data_bits`` wide),
    ``r_in0..`` (``result_bits`` wide) as inputs (complemented for the
    negative twin); ``lam_out``, ``p_out0..``, ``s_out0..``,
    ``r_out0..`` as outputs (complemented by the cell); white-box
    accumulator nodes ``t_slave0..``/``t_master0..``.
    """
    if not prefix or not prefix.endswith("."):
        raise CircuitError("prefix must be non-empty and end with '.'")
    if data_bits < 1 or result_bits < 2 * data_bits:
        raise CircuitError(
            "mac needs data_bits >= 1 and result_bits >= 2 * data_bits"
        )
    n = lambda s: prefix + s

    # Input latches and shift-register inverters, bus-wide.
    pass_transistor(c, clk, n("lam_in"), n("lam_store"), label=n("pass_lam"))
    inverter(c, n("lam_store"), n("lam_out"), label=n("inv_lam"))
    for b in range(data_bits):
        for port in ("p", "s"):
            pass_transistor(c, clk, n(f"{port}_in{b}"), n(f"{port}_store{b}"),
                            label=n(f"pass_{port}{b}"))
            inverter(c, n(f"{port}_store{b}"), n(f"{port}_out{b}"),
                     label=n(f"inv_{port}{b}"))
    for i in range(result_bits):
        pass_transistor(c, clk, n(f"r_in{i}"), n(f"r_store{i}"),
                        label=n(f"pass_r{i}"))

    # True/complement rails per twin: the positive twin stores true
    # values (inverters emit complements), the negative twin the reverse.
    if positive:
        lam, lam_bar = n("lam_store"), n("lam_out")
        p_sig = [(n(f"p_store{b}"), n(f"p_out{b}")) for b in range(data_bits)]
        s_sig = [(n(f"s_store{b}"), n(f"s_out{b}")) for b in range(data_bits)]
    else:
        lam_bar, lam = n("lam_store"), n("lam_out")
        p_sig = [(n(f"p_out{b}"), n(f"p_store{b}")) for b in range(data_bits)]
        s_sig = [(n(f"s_out{b}"), n(f"s_store{b}")) for b in range(data_bits)]

    # B x B array multiplier: partial products, then shifted ripple adds.
    rows: List[List[Optional[_Sig]]] = []
    for j in range(data_bits):
        row: List[Optional[_Sig]] = [None] * j
        for b in range(data_bits):
            pp_bar, pp = n(f"pp_bar{b}_{j}"), n(f"pp{b}_{j}")
            nand2(c, p_sig[b][0], s_sig[j][0], pp_bar, label=n(f"ppn{b}_{j}"))
            inverter(c, pp_bar, pp, label=n(f"ppi{b}_{j}"))
            row.append((pp, pp_bar))
        rows.append(row)
    prod = rows[0]
    for j in range(1, data_bits):
        prod = _add_vectors(c, n(f"mul{j}."), prod, rows[j], 2 * data_bits)

    # Accumulate: t' = t + product over the full result width.
    t_sig: List[Optional[_Sig]] = [
        (n(f"t_slave{i}"), n(f"t_slave_bar{i}")) for i in range(result_bits)
    ]
    total = _add_vectors(c, n("acc."), t_sig, prod, result_bits)

    # Per result bit: lambda multiplexer + clocked output latch, and the
    # master/slave t write (clear on lambda, else keep the new sum).
    for i in range(result_bits):
        s, s_bar = total[i]
        sel = n(f"r_sel{i}")
        pass_transistor(c, lam, s if positive else s_bar, sel,
                        label=n(f"mux_t{i}"))
        pass_transistor(c, lam_bar, n(f"r_store{i}"), sel,
                        label=n(f"mux_r{i}"))
        pass_transistor(c, clk, sel, n(f"r_hold{i}"),
                        label=n(f"r_hold_pass{i}"))
        inverter(c, n(f"r_hold{i}"), n(f"r_out{i}"), label=n(f"inv_r{i}"))

        pass_transistor(c, clk, n(f"t_wr{i}"), n(f"t_master{i}"),
                        label=n(f"t_wr_pass{i}"))
        pass_transistor(c, lam, GND, n(f"t_wr{i}"), label=n(f"t_clr{i}"))
        pass_transistor(c, lam_bar, s, n(f"t_wr{i}"), label=n(f"t_keep{i}"))
        inverter(c, n(f"t_master{i}"), n(f"t_master_bar{i}"),
                 label=n(f"inv_tm{i}"))
        pass_transistor(c, clk_other, n(f"t_master_bar{i}"),
                        n(f"t_slave_bar{i}"), label=n(f"t_xfer{i}"))
        inverter(c, n(f"t_slave_bar{i}"), n(f"t_slave{i}"),
                 label=n(f"inv_ts{i}"))

    ports = {"lam_in": n("lam_in"), "lam_out": n("lam_out")}
    for b in range(data_bits):
        ports[f"p_in{b}"] = n(f"p_in{b}")
        ports[f"p_out{b}"] = n(f"p_out{b}")
        ports[f"s_in{b}"] = n(f"s_in{b}")
        ports[f"s_out{b}"] = n(f"s_out{b}")
    for i in range(result_bits):
        ports[f"r_in{i}"] = n(f"r_in{i}")
        ports[f"r_out{i}"] = n(f"r_out{i}")
        ports[f"t_slave{i}"] = n(f"t_slave{i}")
        ports[f"t_master{i}"] = n(f"t_master{i}")
    return ports


def mac_devices(data_bits: int, result_bits: int, positive: bool = True) -> int:
    """Device count of one MAC twin (for census tests)."""
    c = Circuit("census")
    build_mac(c, "u.", "clkA", "clkB", data_bits, result_bits,
              positive=positive)
    return c.n_transistors
