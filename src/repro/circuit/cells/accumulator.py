"""The accumulator cell at switch level.

Realises the Section 3.2.1 accumulator algorithm

    t' = t AND (x_in OR d_in)
    if lambda_in:  r_out <- t' ; t <- TRUE
    else:          r_out <- r_in ; t <- t'

with two-phase discipline for the temporary result ``t`` (the paper's
"Cell Timing Signals" note that ``r_out <- t; t <- TRUE`` must sequence
correctly): ``t`` lives in a master/slave pair -- the master is written
through passes gated by the cell's own clock phase, the slave is
refreshed from the master on the *opposite* phase and feeds the logic.
That breaks the combinational loop t -> t' -> t within a phase, which is
precisely what the two-phase clock is for.

The end-of-pattern selection is a pass-transistor multiplexer steered by
the stored ``lambda`` bit and its complement, and the whole cell exists in
positive and negative twins like the comparator.
"""

from __future__ import annotations

from typing import Dict

from ...errors import CircuitError
from ..gates import inverter, nand2, nor2, pass_transistor
from ..netlist import VDD, Circuit


def build_accumulator(
    c: Circuit, prefix: str, clk: str, clk_other: str, positive: bool = True
) -> Dict[str, str]:
    """Add one accumulator cell; returns its port map.

    Ports: ``lam_in``, ``x_in``, ``d_in``, ``r_in`` (data inputs;
    complemented signals for the negative twin), ``lam_out``, ``x_out``,
    ``r_out`` (complemented by the cell), and white-box nodes ``t_master``
    / ``t_slave``.

    ``d_in`` comes from the comparator above; because vertical neighbours
    alternate polarity, a positive accumulator receives positive ``d``
    and a negative one receives ``d_bar``.
    """
    if not prefix or not prefix.endswith("."):
        raise CircuitError("prefix must be non-empty and end with '.'")
    n = lambda s: prefix + s

    # Input latches (clocked pass transistors).
    for port in ("lam", "x", "d", "r"):
        pass_transistor(c, clk, n(f"{port}_in"), n(f"{port}_store"),
                        label=n(f"pass_{port}"))

    # lambda and x continue rightward through shift-register inverters.
    inverter(c, n("lam_store"), n("lam_out"), label=n("inv_lam"))
    inverter(c, n("x_store"), n("x_out"), label=n("inv_x"))

    if positive:
        # w = x OR d:  w_bar = NOR(x, d), w = NOT w_bar.
        nor2(c, n("x_store"), n("d_store"), n("w_bar"), label=n("nor_w"))
        inverter(c, n("w_bar"), n("w"), label=n("inv_w"))
        lam, lam_bar = n("lam_store"), n("lam_out")
        r_stored = n("r_store")          # positive r_in, stored
    else:
        # Inputs are complements: w = x OR d = NAND(x_bar, d_bar).
        nand2(c, n("x_store"), n("d_store"), n("w"), label=n("nand_w"))
        lam_bar, lam = n("lam_store"), n("lam_out")
        r_stored = n("r_store")          # r_in_bar, stored

    # t' = t_slave AND w  (both polarities available).
    nand2(c, n("t_slave"), n("w"), n("t_new_bar"), label=n("nand_t"))
    inverter(c, n("t_new_bar"), n("t_new"), label=n("inv_t"))

    # Result multiplexer, then the output inverter (shift-register stage).
    #   positive twin: select t' on lambda, else stored r;   out = NOT(sel)
    #   negative twin: select t'_bar on lambda (so the final inversion
    #                  yields positive t'), else stored r_bar.
    # The selected value is latched through a clocked pass before the
    # output inverter: without it r_out would track t' when the slave
    # refreshes on the opposite phase, corrupting the neighbour's input.
    # (This is the paper's "Cell Timing Signals" point -- the r_out <- t /
    # t <- TRUE sequence needs the clock discipline, discovered here the
    # hard way when the unlatched version failed against the behavioural
    # model.)
    sel = n("r_sel")
    if positive:
        pass_transistor(c, lam, n("t_new"), sel, label=n("mux_t"))
    else:
        pass_transistor(c, lam, n("t_new_bar"), sel, label=n("mux_t"))
    pass_transistor(c, lam_bar, r_stored, sel, label=n("mux_r"))
    pass_transistor(c, clk, sel, n("r_hold"), label=n("r_hold_pass"))
    inverter(c, n("r_hold"), n("r_out"), label=n("inv_r"))

    # t master write (gated by this cell's phase so the slave transfer on
    # the other phase sees a quiet master):
    #   on lambda: t <- TRUE;  otherwise t <- t'.
    pass_transistor(c, clk, n("t_wr"), n("t_master"), label=n("t_wr_pass"))
    pass_transistor(c, lam, VDD, n("t_wr"), label=n("t_set"))
    pass_transistor(c, lam_bar, n("t_new"), n("t_wr"), label=n("t_keep"))

    # Slave refresh on the opposite phase, buffered by an inverter pair so
    # charge is never shared between two storage nodes directly.
    inverter(c, n("t_master"), n("t_master_bar"), label=n("inv_tm"))
    pass_transistor(c, clk_other, n("t_master_bar"), n("t_slave_bar"),
                    label=n("t_xfer"))
    inverter(c, n("t_slave_bar"), n("t_slave"), label=n("inv_ts"))

    return {
        "lam_in": n("lam_in"), "x_in": n("x_in"),
        "d_in": n("d_in"), "r_in": n("r_in"),
        "lam_out": n("lam_out"), "x_out": n("x_out"), "r_out": n("r_out"),
        "t_master": n("t_master"), "t_slave": n("t_slave"),
        "r_store": n("r_store"),
    }


#: Device count of one accumulator twin (positive): 4 clocked passes,
#: 5 inverters, NOR+inverter or NAND for w, NAND for t', 4 mux/write
#: passes, 1 transfer pass.
ACCUMULATOR_DEVICES = 4 + 5 * 2 + 3 + 2 + 3 + 4 + 1
