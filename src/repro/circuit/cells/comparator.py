"""The one-bit comparator cell at switch level (Figure 3-6).

Positive version, exactly the paper's circuit: "When the clock input goes
from ground to Vdd, all three pass transistors turn on.  The pattern and
string inputs are then stored on the inverters, and the d input is stored
on one input to the NAND gate.  The exclusive NOR gate outputs TRUE if
the two inputs are equal ... The output of this equality test goes to the
other input of the NAND gate, which computes d_out."

Cell algorithm realised (positive twin, inverted outputs):

    p_out_bar <- NOT p_in
    s_out_bar <- NOT s_in
    d_out_bar <- d_in NAND (p_in == s_in)

and the negative twin (inverted inputs, positive outputs):

    p_out <- NOT p_in_bar
    s_out <- NOT s_in_bar
    d_out <- NOR(d_in_bar, (p == s)_bar)     # = d_in AND (p == s)

Both twins use four gates (two inverters, an equality gate, and a
NAND/NOR), matching the paper's "only four gates each".
"""

from __future__ import annotations

from typing import Dict

from ...errors import CircuitError
from ..gates import inverter, nand2, nor2, pass_transistor, xnor_from_rails, xor_from_rails
from ..netlist import Circuit


def build_comparator(
    c: Circuit, prefix: str, clk: str, positive: bool = True
) -> Dict[str, str]:
    """Add one comparator cell; returns its port map.

    Ports (node names): ``p_in``, ``s_in``, ``d_in`` (data inputs; for the
    negative twin these carry the complemented signals), ``p_out``,
    ``s_out``, ``d_out`` (complemented by the cell), plus the internal
    storage nodes ``p_store``, ``s_store``, ``d_store`` and the equality
    node ``eq`` for white-box tests.
    """
    if not prefix or not prefix.endswith("."):
        raise CircuitError("prefix must be non-empty and end with '.'")
    p_in, s_in, d_in = prefix + "p_in", prefix + "s_in", prefix + "d_in"
    p_st, s_st, d_st = prefix + "p_store", prefix + "s_store", prefix + "d_store"
    p_out, s_out, d_out = prefix + "p_out", prefix + "s_out", prefix + "d_out"
    eq = prefix + "eq"

    # The three clocked pass transistors of Figure 3-6.
    pass_transistor(c, clk, p_in, p_st, label=prefix + "pass_p")
    pass_transistor(c, clk, s_in, s_st, label=prefix + "pass_s")
    pass_transistor(c, clk, d_in, d_st, label=prefix + "pass_d")

    # The two inverters: shift-register stages for p and s.
    inverter(c, p_st, p_out, label=prefix + "inv_p")
    inverter(c, s_st, s_out, label=prefix + "inv_s")

    if positive:
        # Equality of the stored (positive) operands; complements come
        # free from the inverter outputs.
        xnor_from_rails(c, p_st, p_out, s_st, s_out, eq, label=prefix + "xnor")
        nand2(c, d_st, eq, d_out, label=prefix + "nand")
    else:
        # Stored operands are complements; their equality equals the
        # originals' equality, and we need its COMPLEMENT for the NOR:
        # d_out = NOR(d_bar_stored, xor) = d AND (p == s).
        xor_from_rails(c, p_st, p_out, s_st, s_out, eq, label=prefix + "xor")
        nor2(c, d_st, eq, d_out, label=prefix + "nor")

    return {
        "p_in": p_in, "s_in": s_in, "d_in": d_in,
        "p_out": p_out, "s_out": s_out, "d_out": d_out,
        "p_store": p_st, "s_store": s_st, "d_store": d_st,
        "eq": eq,
    }


#: Device count of one comparator twin: 3 clocked passes, 2 inverters
#: (2 devices each), equality gate (5 devices), NAND/NOR (3 devices).
COMPARATOR_DEVICES = 3 + 2 * 2 + 5 + 3
