"""Two-phase non-overlapping clock discipline (Figure 3-5).

"A clock with two non-overlapping phases controls the pass transistors.
Adjacent transistors are turned on by opposite phases of the clock, so
that there is never a closed path between inverters that are separated by
two transistors."

:class:`TwoPhaseClock` drives two circuit nodes (phi1, phi2) through the
four-step sequence per beat-pair and *enforces* the non-overlap invariant:
it is impossible to reach a state with both phases high, and a
:class:`~repro.errors.ClockError` is raised if client code forces one.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import ClockError
from .netlist import Circuit
from .signals import HIGH, LOW


class TwoPhaseClock:
    """Driver for a two-phase non-overlapping clock.

    Parameters
    ----------
    circuit:
        The circuit whose *phi1* / *phi2* nodes the clock forces.
    phi1, phi2:
        Node names.
    phase_high_ns:
        Time a phase stays high (data transfer + logic settle).
    gap_ns:
        Dead time between phases (the non-overlap margin).
    """

    def __init__(
        self,
        circuit: Circuit,
        phi1: str = "phi1",
        phi2: str = "phi2",
        phase_high_ns: float = 100.0,
        gap_ns: float = 25.0,
    ):
        if phase_high_ns <= 0 or gap_ns < 0:
            raise ClockError("phase times must be positive")
        self.circuit = circuit
        self.phi1 = phi1
        self.phi2 = phi2
        self.phase_high_ns = phase_high_ns
        self.gap_ns = gap_ns
        self.ticks = 0
        circuit.set_input(phi1, LOW)
        circuit.set_input(phi2, LOW)

    # -- invariants -------------------------------------------------------------

    def _check_nonoverlap(self) -> None:
        if (
            self.circuit.inputs.get(self.phi1) is HIGH
            and self.circuit.inputs.get(self.phi2) is HIGH
        ):
            raise ClockError("both clock phases high: non-overlap violated")

    @property
    def beat_time_ns(self) -> float:
        """One beat = one phase high plus one gap."""
        return self.phase_high_ns + self.gap_ns

    # -- stepping ----------------------------------------------------------------

    def _pulse(self, phase: str, on_high: Optional[Callable[[], None]] = None) -> None:
        """Raise one phase, settle, optionally sample, then lower it."""
        c = self.circuit
        c.set_input(phase, HIGH)
        self._check_nonoverlap()
        c.settle()
        if on_high is not None:
            on_high()
        c.advance_time(self.phase_high_ns)
        c.set_input(phase, LOW)
        c.settle()
        c.advance_time(self.gap_ns)
        self.ticks += 1

    def tick_phi1(self, on_high: Optional[Callable[[], None]] = None) -> None:
        """One phi1 pulse (transfers data into phi1-clocked stages)."""
        self._pulse(self.phi1, on_high)

    def tick_phi2(self, on_high: Optional[Callable[[], None]] = None) -> None:
        """One phi2 pulse."""
        self._pulse(self.phi2, on_high)

    def beat_pair(self) -> None:
        """A full clock cycle: phi1 pulse then phi2 pulse."""
        self.tick_phi1()
        self.tick_phi2()

    def run_beats(self, n: int) -> None:
        """Alternate phases for *n* beats, starting with phi1."""
        for i in range(n):
            if i % 2 == 0:
                self.tick_phi1()
            else:
                self.tick_phi2()

    def idle(self, duration_ns: float) -> None:
        """Let time pass with both phases low (dynamic nodes age)."""
        self.circuit.advance_time(duration_ns)
        self.circuit.settle()
