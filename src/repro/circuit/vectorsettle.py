"""Vectorized settle: step many identical netlists as one array program.

The batch tier runs fleets of identical switch-level instances -- every
worker in a farm simulates the same cell netlist, a wafer-map sweep
settles hundreds of copies of one comparator under different stimuli.
Settling them one Circuit at a time pays the full Python relaxation loop
per instance; :class:`VectorizedCircuits` instead snapshots the shared
topology once and runs the *reference* relaxation semantics of
:func:`repro.circuit.simulator.settle_reference` across all instances
simultaneously, as numpy array passes:

1. gate values gathered per instance -> ON / MAYBE channel masks,
   ``(batch, n_transistors)`` at a time;
2. channel-connected components by min-label propagation with pointer
   jumping (the classic data-parallel connected-components step), rails
   included as connectors exactly like the reference union-find;
3. strength resolution per (instance, component) with scatter reductions
   over flattened segment ids -- rails at FORCED, pins at PULL, depletion
   loads at LOAD, retained charge (with decay) only for undriven
   components; equal-strength disagreement resolves to X;
4. MAYBE pessimism applied to channel terminal nodes, vectorized over the
   ``(batch, n_maybe)`` edge masks;
5. writeback with per-instance change detection; an instance's iteration
   count is the pass at which it stopped changing, so the returned counts
   match per-instance :func:`settle_reference` calls.  Converged
   instances are sliced out of later passes.

Differential tests (``tests/test_circuit_vector_settle.py``) hold every
instance's node values, strengths and refresh clocks bit-identical to a
per-instance reference settle across random netlists, stimuli, charge
decay and VDD-GND shorts.

Without numpy the class degrades to a thin loop over per-instance
:func:`settle_reference` calls -- same results, none of the speed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import ChargeDecayError, CircuitError
from .netlist import GND, VDD, Circuit
from .signals import HIGH, LOW, LogicValue, Strength
from .simulator import settle_reference

try:  # pragma: no cover - exercised through both branches in CI images
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["VectorizedCircuits"]

_LOW, _HIGH, _X = 0, 1, 2
_S_NONE, _S_CHARGE, _S_LOAD, _S_PULL, _S_FORCED = 0, 1, 2, 3, 4


def _coerce_value(value) -> LogicValue:
    if isinstance(value, LogicValue):
        return value
    if isinstance(value, bool) or value in (0, 1):
        return HIGH if value in (True, 1) else LOW
    raise CircuitError(f"bad input value {value!r}")


def _check_same_topology(circuits: Sequence[Circuit]) -> None:
    proto = circuits[0]
    names = list(proto.nodes)
    edges = [(t.gate, t.a, t.b) for t in proto.transistors]
    loads = [d.node for d in proto.loads]
    for c in circuits[1:]:
        if (
            list(c.nodes) != names
            or [(t.gate, t.a, t.b) for t in c.transistors] != edges
            or [d.node for d in c.loads] != loads
            or c.retention_ns != proto.retention_ns
        ):
            raise CircuitError(
                f"{c.name}: topology differs from {proto.name}; "
                "VectorizedCircuits needs structurally identical instances"
            )


class VectorizedCircuits:
    """A batch of structurally identical circuits settled together.

    Construct from existing :class:`Circuit` instances (their current
    node state, pinned inputs and simulated time are imported); drive the
    batch with :meth:`set_input` / :meth:`advance_time` / :meth:`settle`,
    read results with :meth:`read`, and push state back into the original
    Circuit objects with :meth:`sync` when per-instance tooling (VCD
    probes, the event engine) needs to take over again.

    >>> from repro.circuit.gates import inverter
    >>> def make():
    ...     c = Circuit("inv")
    ...     _ = inverter(c, "a", "y")
    ...     return c
    >>> batch = VectorizedCircuits([make() for _ in range(3)])
    >>> batch.set_input("a", [LOW, HIGH, LOW])
    >>> _ = batch.settle()
    >>> [str(v) for v in batch.read("y")]
    ['1', '0', '1']
    """

    def __init__(self, circuits: Sequence[Circuit]):
        if not circuits:
            raise CircuitError("VectorizedCircuits needs at least one instance")
        _check_same_topology(circuits)
        self.circuits = list(circuits)
        self._vector = _np is not None
        if not self._vector:
            return  # degrade: every method loops over self.circuits
        proto = self.circuits[0]
        names = list(proto.nodes)
        self.names = names
        self._iid: Dict[str, int] = {n: i for i, n in enumerate(names)}
        B, N = len(self.circuits), len(names)
        self._B, self._N = B, N
        self._vdd = self._iid[VDD]
        self._gnd = self._iid[GND]
        self._gates = _np.array(
            [self._iid[t.gate] for t in proto.transistors], dtype=_np.int64
        )
        self._ea = _np.array(
            [self._iid[t.a] for t in proto.transistors], dtype=_np.int64
        )
        self._eb = _np.array(
            [self._iid[t.b] for t in proto.transistors], dtype=_np.int64
        )
        self._load_ids = _np.array(
            sorted({self._iid[d.node] for d in proto.loads}), dtype=_np.int64
        )
        self.retention_ns = proto.retention_ns
        # Per-instance state planes.
        self._values = _np.empty((B, N), dtype=_np.int8)
        self._strengths = _np.empty((B, N), dtype=_np.int8)
        self._refresh = _np.empty((B, N), dtype=_np.float64)
        self._pin_mask = _np.zeros((B, N), dtype=bool)
        self._pin_vals = _np.zeros((B, N), dtype=_np.int8)
        self._now = _np.empty(B, dtype=_np.float64)
        for i, c in enumerate(self.circuits):
            for j, n in enumerate(names):
                node = c.nodes[n]
                self._values[i, j] = int(node.value)
                self._strengths[i, j] = int(node.strength)
                self._refresh[i, j] = node.last_refresh
            for n, v in c.inputs.items():
                self._pin_mask[i, self._iid[n]] = True
                self._pin_vals[i, self._iid[n]] = int(v)
            self._now[i] = c.time_ns

    def __len__(self) -> int:
        return len(self.circuits)

    # -- stimulus ----------------------------------------------------------

    def set_input(self, name: str, value) -> None:
        """Pin *name* in every instance: one value broadcast to all, or a
        per-instance sequence."""
        if not self._vector:
            if isinstance(value, (list, tuple)):
                for c, v in zip(self.circuits, value):
                    c.set_input(name, v)
            else:
                for c in self.circuits:
                    c.set_input(name, value)
            return
        if name not in self._iid:
            raise CircuitError(f"no node named {name!r}")
        i = self._iid[name]
        if isinstance(value, (list, tuple)):
            if len(value) != self._B:
                raise CircuitError(
                    f"need {self._B} values for input {name!r}, "
                    f"got {len(value)}"
                )
            vals = [int(_coerce_value(v)) for v in value]
        else:
            vals = [int(_coerce_value(value))] * self._B
        self._pin_mask[:, i] = True
        self._pin_vals[:, i] = vals

    def release_input(self, name: str) -> None:
        """Stop forcing *name* everywhere; charge is retained per node."""
        if not self._vector:
            for c in self.circuits:
                c.release_input(name)
            return
        if name not in self._iid:
            raise CircuitError(f"no node named {name!r}")
        self._pin_mask[:, self._iid[name]] = False

    def advance_time(self, dt_ns: float) -> None:
        """Advance every instance's simulated time."""
        if dt_ns < 0:
            raise CircuitError("time cannot run backwards")
        if not self._vector:
            for c in self.circuits:
                c.advance_time(dt_ns)
            return
        self._now += dt_ns

    # -- reading -----------------------------------------------------------

    def read(self, name: str) -> List[LogicValue]:
        """The solved value of *name* in every instance."""
        if not self._vector:
            return [c.read(name) for c in self.circuits]
        try:
            i = self._iid[name]
        except KeyError:
            raise CircuitError(f"no node named {name!r}") from None
        return [LogicValue(int(v)) for v in self._values[:, i]]

    def read_bool(self, name: str) -> List[bool]:
        """The solved values as booleans; raises on any UNKNOWN."""
        out = []
        for i, v in enumerate(self.read(name)):
            if v is LogicValue.UNKNOWN:
                raise CircuitError(
                    f"{self.circuits[i].name}: node {name!r} is UNKNOWN"
                )
            out.append(v is HIGH)
        return out

    # -- settling ----------------------------------------------------------

    def settle(self, max_iterations: int = 60,
               strict_decay: bool = False) -> List[int]:
        """Relax every instance to a fixed point; returns per-instance
        pass counts (each equal to what ``settle_reference`` on that
        instance alone would report)."""
        if not self._vector:
            return [
                settle_reference(c, max_iterations, strict_decay=strict_decay)
                for c in self.circuits
            ]
        B = self._B
        iters = [0] * B
        active = _np.arange(B)
        for iteration in range(max_iterations):
            changed = self._pass(active, strict_decay)
            for k in _np.flatnonzero(~changed):
                iters[int(active[k])] = iteration + 1
            active = active[changed]
            if active.size == 0:
                return iters
        names = ", ".join(self.circuits[int(i)].name for i in active[:4])
        raise CircuitError(
            f"{names}: did not settle in {max_iterations} iterations "
            f"(oscillating or ill-formed circuit)"
        )

    def _pass(self, active, strict_decay: bool):
        """One vectorized reference pass over the *active* instances.

        Returns a boolean vector (one per active instance): did any node
        value change.  Mirrors ``simulator._reference_pass`` step for
        step; comments there are the specification.
        """
        np = _np
        N = self._N
        values = self._values[active]
        strengths = self._strengths[active]
        refresh = self._refresh[active]
        pin_mask = self._pin_mask[active]
        pin_vals = self._pin_vals[active]
        now = self._now[active]
        b = active.size
        rows_n = np.arange(b)[:, None] * N

        E = self._gates.size
        if E:
            gv = values[:, self._gates]
            on = gv == _HIGH
            maybe = gv == _X
            idx_a = rows_n + self._ea[None, :]
            idx_b = rows_n + self._eb[None, :]

        # Connected components: min-label propagation + pointer jumping.
        labels = np.tile(np.arange(N, dtype=np.int64), (b, 1))
        if E:
            while True:
                prev = labels
                labels = np.minimum(
                    labels, np.take_along_axis(labels, labels, axis=1)
                )
                la = labels[:, self._ea]
                lb = labels[:, self._eb]
                m = np.minimum(la, lb)
                flat = labels.ravel()
                sel = on & (m < la)
                if sel.any():
                    np.minimum.at(flat, idx_a[sel], m[sel])
                sel = on & (m < lb)
                if sel.any():
                    np.minimum.at(flat, idx_b[sel], m[sel])
                labels = flat.reshape(b, N)
                if labels is not prev and np.array_equal(labels, prev):
                    break

        seg = labels + rows_n  # flat (instance, component) segment ids
        F = b * N

        # Strength-level contributions, scatter-reduced per segment.
        f_hi = np.zeros(F, dtype=bool)
        f_lo = np.zeros(F, dtype=bool)
        f_hi[seg[:, self._vdd]] = True
        f_lo[seg[:, self._gnd]] = True
        p_hi = np.zeros(F, dtype=bool)
        p_lo = np.zeros(F, dtype=bool)
        p_x = np.zeros(F, dtype=bool)
        if pin_mask.any():
            p_hi[seg[pin_mask & (pin_vals == _HIGH)]] = True
            p_lo[seg[pin_mask & (pin_vals == _LOW)]] = True
            p_x[seg[pin_mask & (pin_vals == _X)]] = True
        l_hi = np.zeros(F, dtype=bool)
        if self._load_ids.size:
            l_hi[seg[:, self._load_ids].ravel()] = True

        any_f = f_hi | f_lo
        any_p = p_hi | p_lo | p_x
        comp_s = np.where(
            any_f, _S_FORCED,
            np.where(any_p, _S_PULL, np.where(l_hi, _S_LOAD, _S_NONE)),
        ).astype(np.int8)
        v_f = np.where(f_hi & f_lo, _X, np.where(f_hi, _HIGH, _LOW))
        v_p = np.where(
            p_x | (p_hi & p_lo), _X, np.where(p_hi, _HIGH, _LOW)
        )
        comp_v = np.where(
            any_f, v_f, np.where(any_p, v_p, np.where(l_hi, _HIGH, _X))
        ).astype(np.int8)

        # Retained charge, undriven components only, with decay.
        undriven = comp_s[seg] == _S_NONE  # (b, N) per member node
        expired = (
            (strengths <= _S_CHARGE)
            & ((now[:, None] - refresh) > self.retention_ns)
            & (values != _X)
        )
        if strict_decay:
            bad = expired & undriven
            if bad.any():
                i, j = np.argwhere(bad)[0]
                inst = self.circuits[int(active[i])]
                age = float(now[i] - refresh[i, j])
                raise ChargeDecayError(
                    f"{inst.name}: node {self.names[int(j)]} read "
                    f"{age:.0f} ns after last refresh (retention "
                    f"{self.retention_ns:.0f} ns)"
                )
        stored = np.where(expired, _X, values)
        c_hi = np.zeros(F, dtype=bool)
        c_lo = np.zeros(F, dtype=bool)
        c_x = np.zeros(F, dtype=bool)
        c_hi[seg[undriven & (stored == _HIGH)]] = True
        c_lo[seg[undriven & (stored == _LOW)]] = True
        c_x[seg[undriven & (stored == _X)]] = True
        any_c = c_hi | c_lo | c_x
        ch_v = np.where(
            c_x | (c_hi & c_lo), _X, np.where(c_hi, _HIGH, _LOW)
        )
        charge = (comp_s == _S_NONE) & any_c
        comp_v = np.where(charge, ch_v, comp_v).astype(np.int8)
        comp_s = np.where(charge, _S_CHARGE, comp_s).astype(np.int8)

        new_v = comp_v[seg]
        new_s = comp_s[seg]
        driven = new_s >= _S_LOAD

        # MAYBE pessimism on channel terminal nodes.
        if E and maybe.any():
            ra = labels[:, self._ea] + rows_n
            rb = labels[:, self._eb] + rows_n
            va, sa = comp_v[ra], comp_s[ra]
            vb, sb = comp_v[rb], comp_s[rb]
            live = maybe & (ra != rb) & ~((va == vb) & (va != _X))
            maybe_x = np.zeros(b * N, dtype=bool)
            sel = live & (sb >= sa)
            if sel.any():
                maybe_x[idx_a[sel]] = True
            sel = live & (sa >= sb)
            if sel.any():
                maybe_x[idx_b[sel]] = True
            maybe_x = maybe_x.reshape(b, N)
            new_v = np.where(maybe_x & ~pin_mask, _X, new_v)

        new_v = np.where(pin_mask, pin_vals, new_v)
        new_s = np.where(pin_mask, _S_FORCED, new_s).astype(np.int8)
        # Rails are never written back.
        new_v[:, self._vdd] = _HIGH
        new_s[:, self._vdd] = _S_FORCED
        new_v[:, self._gnd] = _LOW
        new_s[:, self._gnd] = _S_FORCED

        delta = new_v != values
        touch = driven | pin_mask
        touch[:, self._vdd] = False
        touch[:, self._gnd] = False
        refresh = np.where(touch, now[:, None], refresh)

        self._values[active] = new_v
        self._strengths[active] = new_s
        self._refresh[active] = refresh
        return delta.any(axis=1)

    # -- interop -----------------------------------------------------------

    def sync(self) -> None:
        """Write the batch state back into the original Circuit objects
        (values, strengths, refresh clocks, pins, time), so per-instance
        tooling can resume; each instance's event engine is dropped
        because its state was rewritten behind its back."""
        if not self._vector:
            return
        for i, c in enumerate(self.circuits):
            for j, n in enumerate(self.names):
                node = c.nodes[n]
                node.value = LogicValue(int(self._values[i, j]))
                node.strength = Strength(int(self._strengths[i, j]))
                node.last_refresh = float(self._refresh[i, j])
            c.inputs = {
                self.names[int(j)]: LogicValue(int(self._pin_vals[i, j]))
                for j in _np.flatnonzero(self._pin_mask[i])
            }
            c.time_ns = float(self._now[i])
            c._event_engine = None
            c._dirty_ext.clear()
