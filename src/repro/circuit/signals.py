"""Ternary logic values and drive strengths for the switch-level model.

Signal values are LOW / HIGH / UNKNOWN; UNKNOWN (``X``) models power-on
state, charge-sharing conflicts and decayed dynamic storage.

Strengths order the possible sources of a node's value, following the
usual switch-level (MOSSIM-style) discipline specialised to ratioed NMOS:

``FORCED``
    External input pins and the supply rails.
``PULL``
    A path of conducting enhancement channels to a rail.  A pulldown path
    to GND and the depletion load "fight" in ratioed logic; the geometry
    is chosen so the pulldown wins, which is why the pulldown path is
    ranked above ``LOAD``.
``LOAD``
    The depletion-mode pullup that ties a gate output toward VDD.
``CHARGE``
    No conducting path to any driver: the node keeps its stored charge
    (the dynamic storage of Figure 3-5, valid for ~1 ms).
``NONE``
    Never-driven, never-charged (power-on).
"""

from __future__ import annotations

from enum import IntEnum


class LogicValue(IntEnum):
    """Ternary signal value."""

    LOW = 0
    HIGH = 1
    UNKNOWN = 2

    def __str__(self) -> str:
        return {0: "0", 1: "1", 2: "X"}[int(self)]

    @property
    def is_known(self) -> bool:
        return self is not LogicValue.UNKNOWN


LOW = LogicValue.LOW
HIGH = LogicValue.HIGH
UNKNOWN = LogicValue.UNKNOWN


def from_bool(b: bool) -> LogicValue:
    """Convert a Python boolean to a logic value."""
    return HIGH if b else LOW


def to_bool(v: LogicValue) -> bool:
    """Convert a *known* logic value to a boolean (raises on UNKNOWN)."""
    if v is UNKNOWN:
        raise ValueError("cannot convert UNKNOWN logic value to bool")
    return v is HIGH


class Strength(IntEnum):
    """Drive strength, strongest last so ``max`` picks the winner."""

    NONE = 0
    CHARGE = 1
    LOAD = 2
    PULL = 3
    FORCED = 4


def resolve(value_a: LogicValue, strength_a: Strength,
            value_b: LogicValue, strength_b: Strength):
    """Combine two contributions to one node; returns (value, strength).

    Higher strength wins outright; equal strengths with different values
    yield UNKNOWN at that strength (a fight).
    """
    if strength_a > strength_b:
        return value_a, strength_a
    if strength_b > strength_a:
        return value_b, strength_b
    if value_a == value_b:
        return value_a, strength_a
    return UNKNOWN, strength_a
