"""LVS: layout-versus-schematic netlist comparison.

Proves the extracted circuit and the drawn circuit are the same graph.
The matcher is classic partition refinement: nets and devices are
iteratively coloured by their neighbourhoods (a net's colour folds in
the colours and pin roles of every device touching it; a device's colour
folds in its kind, gate colour, and channel colours) until the partition
stabilises.  Boundary ports and the rails anchor the initial colouring.
Colour classes left ambiguous by symmetry are resolved by backtracking
individuation; a final edge-consistency pass re-verifies every device
under the produced net map, so a wrong match cannot survive.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.netlist import GND, VDD, Circuit

#: Device tuple: (kind, label, gate-or-None, channel-net-tuple).
_Dev = Tuple[str, str, Optional[str], Tuple[str, ...]]


@dataclass
class LVSResult:
    """Outcome of one comparison. ``ok`` iff the netlists are isomorphic
    under the anchor-respecting net map."""

    ok: bool
    net_map: Dict[str, str] = field(default_factory=dict)
    diffs: List[str] = field(default_factory=list)
    left_devices: int = 0
    right_devices: int = 0


def _devices(c: Circuit) -> List[_Dev]:
    devs: List[_Dev] = []
    for t in c.transistors:
        devs.append(("enh", t.label, t.gate, (t.a, t.b)))
    for d in c.loads:
        devs.append(("load", d.label, None, (d.node,)))
    return devs


def _relevant_nets(c: Circuit, devs: Sequence[_Dev], anchors) -> List[str]:
    """Nets that matter for matching: device pins plus anchored nets.

    Isolated, unanchored nets (a floating sliver extracted from the
    layout, say) carry no connectivity and are ignored -- they are DRC /
    ERC business, not graph identity.
    """
    nets = set(anchors) | {VDD, GND}
    for kind, _label, gate, chans in devs:
        if gate is not None:
            nets.add(gate)
        nets.update(chans)
    return sorted(nets)


def _refine(
    nets_l: Sequence[str], devs_l: Sequence[_Dev], colors_l: Dict[str, int],
    nets_r: Sequence[str], devs_r: Sequence[_Dev], colors_r: Dict[str, int],
    rounds: int = 0,
) -> None:
    """Refine both colourings in lockstep until the partition is stable.

    Classes only ever split, so ``len(nets)`` rounds suffice; colours are
    canonicalised through one shared table per round, keeping them
    comparable across the two sides.
    """
    rounds = rounds or (len(nets_l) + len(nets_r) + 2)
    for _ in range(rounds):
        canon: Dict[tuple, int] = {}

        def pass_one(nets, devs, colors):
            pins: Dict[str, List[tuple]] = {n: [] for n in nets}
            for kind, _label, gate, chans in devs:
                g = colors.get(gate, -1) if gate is not None else -1
                sig = (kind, g, tuple(sorted(colors.get(c, -1) for c in chans)))
                if gate is not None and gate in pins:
                    pins[gate].append((sig, "g"))
                for c in chans:
                    if c in pins:
                        pins[c].append((sig, "c"))
            return {n: (colors[n], tuple(sorted(pins[n]))) for n in nets}

        sigs_l = pass_one(nets_l, devs_l, colors_l)
        sigs_r = pass_one(nets_r, devs_r, colors_r)
        new_l = {n: canon.setdefault(sigs_l[n], len(canon)) for n in nets_l}
        new_r = {n: canon.setdefault(sigs_r[n], len(canon)) for n in nets_r}
        stable = len(set(new_l.values()) | set(new_r.values())) == len(
            set(colors_l.values()) | set(colors_r.values())
        )
        colors_l.update(new_l)
        colors_r.update(new_r)
        if stable:
            return


def _classes(
    nets_l: Sequence[str], colors_l: Dict[str, int],
    nets_r: Sequence[str], colors_r: Dict[str, int],
) -> Dict[int, Tuple[List[str], List[str]]]:
    out: Dict[int, Tuple[List[str], List[str]]] = {}
    for n in nets_l:
        out.setdefault(colors_l[n], ([], []))[0].append(n)
    for n in nets_r:
        out.setdefault(colors_r[n], ([], []))[1].append(n)
    return out


def _individuate(
    nets_l, devs_l, colors_l, nets_r, devs_r, colors_r, budget: List[int]
) -> Optional[Dict[str, str]]:
    """Resolve symmetric colour classes by trial pairing + re-refinement."""
    _refine(nets_l, devs_l, colors_l, nets_r, devs_r, colors_r)
    classes = _classes(nets_l, colors_l, nets_r, colors_r)
    for left, right in classes.values():
        if len(left) != len(right):
            return None
    multi = sorted(
        (c for c, (l, _r) in classes.items() if len(l) > 1),
        key=lambda c: len(classes[c][0]),
    )
    if not multi:
        return {l: classes[colors_l[l]][1][0] for l in nets_l}
    left, right = classes[multi[0]]
    pivot = min(left)
    fresh = max(max(colors_l.values(), default=0),
                max(colors_r.values(), default=0)) + 1
    for candidate in sorted(right):
        if budget[0] <= 0:
            return None
        budget[0] -= 1
        trial_l = dict(colors_l)
        trial_r = dict(colors_r)
        trial_l[pivot] = fresh
        trial_r[candidate] = fresh
        result = _individuate(
            nets_l, devs_l, trial_l, nets_r, devs_r, trial_r, budget
        )
        if result is not None:
            return result
    return None


def compare(
    left: Circuit,
    right: Circuit,
    anchors: Optional[Dict[str, str]] = None,
    max_trials: int = 4000,
) -> LVSResult:
    """Match *left* (drawn) against *right* (extracted).

    *anchors* maps left net names to right net names for the boundary
    ports; the rails anchor themselves.  Diffs are reported at net
    granularity: which equivalence classes failed to pair, and which
    devices have no counterpart under the final map.
    """
    anchors = dict(anchors or {})
    anchors.setdefault(VDD, VDD)
    anchors.setdefault(GND, GND)
    devs_l, devs_r = _devices(left), _devices(right)
    nets_l = _relevant_nets(left, devs_l, anchors)
    nets_r = _relevant_nets(right, devs_r, anchors.values())
    result = LVSResult(
        ok=False, left_devices=len(devs_l), right_devices=len(devs_r)
    )
    if len(devs_l) != len(devs_r):
        result.diffs.append(
            f"device count mismatch: {len(devs_l)} drawn vs "
            f"{len(devs_r)} extracted"
        )
    kinds_l = Counter(d[0] for d in devs_l)
    kinds_r = Counter(d[0] for d in devs_r)
    if kinds_l != kinds_r:
        result.diffs.append(
            f"device kind mismatch: drawn {dict(kinds_l)} vs "
            f"extracted {dict(kinds_r)}"
        )

    # Initial colours: anchored nets get a shared colour per anchor pair.
    colors_l = {n: 0 for n in nets_l}
    colors_r = {n: 0 for n in nets_r}
    for i, (l, r) in enumerate(sorted(anchors.items()), start=1):
        if l in colors_l:
            colors_l[l] = i
        if r in colors_r:
            colors_r[r] = i
    _refine(nets_l, devs_l, colors_l, nets_r, devs_r, colors_r)

    classes = _classes(nets_l, colors_l, nets_r, colors_r)
    mismatched = {
        c: (l, r) for c, (l, r) in classes.items() if len(l) != len(r)
    }
    if mismatched:

        def degree(n: str, devs: Sequence[_Dev]) -> int:
            return sum(
                (1 if gate == n else 0) + chans.count(n)
                for _k, _lab, gate, chans in devs
            )

        for _c, (lns, rns) in sorted(mismatched.items()):
            result.diffs.append(
                "net class mismatch: drawn "
                f"{[(n, degree(n, devs_l)) for n in sorted(lns)]} vs extracted "
                f"{[(n, degree(n, devs_r)) for n in sorted(rns)]} "
                "(name, pin count)"
            )
        return result

    net_map = _individuate(
        nets_l, devs_l, dict(colors_l), nets_r, devs_r, dict(colors_r),
        [max_trials],
    )
    if net_map is None:
        result.diffs.append(
            "no consistent net pairing found for the symmetric classes"
        )
        return result

    # Edge-consistency verification: every device must exist on both
    # sides under the map, as a multiset.
    def edge_set(devs, rename) -> Counter:
        return Counter(
            (
                kind,
                rename(gate) if gate is not None else None,
                tuple(sorted(rename(c) for c in chans)),
            )
            for kind, _label, gate, chans in devs
        )

    left_edges = edge_set(devs_l, lambda n: net_map.get(n, n))
    right_edges = edge_set(devs_r, lambda n: n)
    for edge, count in (left_edges - right_edges).items():
        result.diffs.append(
            f"drawn device {edge} (x{count}) has no extracted counterpart"
        )
    for edge, count in (right_edges - left_edges).items():
        result.diffs.append(
            f"extracted device {edge} (x{count}) has no drawn counterpart"
        )
    # Anchors must have survived refinement verbatim.
    for l, r in anchors.items():
        if l in net_map and net_map[l] != r:
            result.diffs.append(
                f"anchor violated: port net {l} mapped to {net_map[l]}, "
                f"expected {r}"
            )
    result.net_map = net_map
    result.ok = not result.diffs
    return result
