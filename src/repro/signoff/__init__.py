"""Signoff: the static verification pipeline.

"Design systems should provide individual checking programs for
verifying efficiently that certain relationships hold between adjacent
levels of the design hierarchy."  This package is that set of checking
programs for the matcher chip: layout extraction (geometry back to a
transistor netlist), LVS (extracted vs drawn netlist equivalence),
electrical-rule lint (floating gates, unrefreshed dynamic nodes,
two-phase discipline, NMOS ratios, sneak paths), and timing closure
(worst RC path per phase against the 250 ns beat budget), composed with
the design-rule checker into one :class:`~repro.signoff.pipeline.Signoff`
driver that emits a machine-readable report.
"""

from .erc import ALL_RULES, ERCContext, run_erc
from .extract import ChannelGeom, Extraction, extract
from .lvs import LVSResult, compare
from .pipeline import Signoff
from .report import Finding, SignoffReport, StageReport
from .timing import TimingParams, worst_paths

__all__ = [
    "ALL_RULES",
    "ChannelGeom",
    "ERCContext",
    "Extraction",
    "Finding",
    "LVSResult",
    "Signoff",
    "SignoffReport",
    "StageReport",
    "TimingParams",
    "compare",
    "extract",
    "run_erc",
    "worst_paths",
]
