"""Timing closure: worst-case RC paths per clock phase vs the beat.

"the chip can achieve a data rate of one character every 250 ns" -- each
phase of the two-phase clock gets half a beat minus the non-overlap gap
to propagate through every pass-transistor chain it turns on.  The check
is an Elmore-delay estimate: a signal leaving a driven net (a gate
output, a pad, a rail) and rippling through the conducting switches of
the phase accumulates ``sum(R_cumulative * C_node)`` along the chain.
Channel resistance scales with the extracted Z = L/W when geometry is
available (a pass chain of n minimum devices is the classic O(n^2)
delay the paper's cells avoid by re-buffering every stage)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.netlist import GND, VDD, Circuit
from ..timing.model import TimingModel
from .extract import ChannelGeom
from .report import Finding


@dataclass(frozen=True)
class TimingParams:
    """Electrical constants for the estimate (5-micron NMOS ballpark)."""

    r_on_ohm: float = 10_000.0   # channel on-resistance of a square device
    c_node_pf: float = 0.05      # lumped node capacitance
    elmore_factor: float = 0.7   # step-response 50% point scaling
    nonoverlap_ns: float = 25.0  # two-phase clock dead time per half-beat

    def budget_ns(self, model: TimingModel) -> float:
        """Settling budget per phase: half a beat minus the dead time."""
        return model.beat_ns / 2 - self.nonoverlap_ns


@dataclass
class PathDelay:
    """The worst chain found for one phase."""

    phase: str
    delay_ns: float
    budget_ns: float
    path: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.delay_ns <= self.budget_ns

    def to_finding(self) -> Finding:
        route = " - ".join(self.path)
        detail = (
            f"phase {self.phase}: worst path {self.delay_ns:.1f} ns vs "
            f"{self.budget_ns:.1f} ns budget ({route})"
        )
        severity = "info" if self.ok else "error"
        return Finding("timing", "phase-budget", severity, detail, self.phase)


def worst_paths(
    circuit: Circuit,
    clocks: Sequence[str],
    ports: Sequence[str] = (),
    device_geom: Optional[Dict[str, ChannelGeom]] = None,
    model: Optional[TimingModel] = None,
    params: TimingParams = TimingParams(),
    max_depth: int = 64,
) -> List[PathDelay]:
    """One :class:`PathDelay` per phase: the slowest settling chain.

    Sources are driven nets (load outputs, ports, clocks, rails); a
    chain runs through every switch that might conduct during the phase
    (gated by the phase, by VDD, or by data -- only the opposite phase is
    known off) and ends where it meets another driven net or runs out of
    conducting channels."""

    model = model or TimingModel()
    geom = device_geom or {}
    budget = params.budget_ns(model)
    sources = (
        {d.node for d in circuit.loads}
        | set(ports)
        | set(clocks)
        | {VDD, GND}
    )

    def resistance(label: str) -> float:
        g = geom.get(label)
        z = g.z if g is not None else 1.0
        return params.r_on_ohm * z

    out: List[PathDelay] = []
    for phase in clocks:
        others = set(clocks) - {phase}
        adj: Dict[str, List] = {}
        for t in circuit.transistors:
            if t.gate in others or t.gate == GND:
                continue
            adj.setdefault(t.a, []).append(t)
            adj.setdefault(t.b, []).append(t)

        best = PathDelay(phase, 0.0, budget)

        def walk(net: str, r_cum: float, delay: float,
                 path: Tuple[str, ...], used: frozenset) -> None:
            nonlocal best
            if delay > best.delay_ns:
                best = PathDelay(phase, delay, budget, path)
            if len(path) > max_depth:
                return
            for t in adj.get(net, ()):
                if t in used:
                    continue
                other = t.b if t.a == net else t.a
                if other in path:
                    continue
                r = r_cum + resistance(t.label)
                d = delay + (
                    params.elmore_factor * r * params.c_node_pf * 1e-3
                )  # ohm * pF = 1e-12 s = 1e-3 ns
                if other in sources:
                    if d > best.delay_ns:
                        best = PathDelay(phase, d, budget, path + (other,))
                    continue
                walk(other, r, d, path + (other,), used | {t})

        for src in sorted(sources):
            walk(src, 0.0, 0.0, (src,), frozenset())
        out.append(best)
    return out


def timing_findings(
    circuit: Circuit,
    clocks: Sequence[str],
    ports: Sequence[str] = (),
    device_geom: Optional[Dict[str, ChannelGeom]] = None,
    model: Optional[TimingModel] = None,
    params: TimingParams = TimingParams(),
) -> List[Finding]:
    """Findings form of :func:`worst_paths` for the pipeline."""
    return [
        p.to_finding()
        for p in worst_paths(
            circuit, clocks, ports=ports, device_geom=device_geom,
            model=model, params=params,
        )
    ]
