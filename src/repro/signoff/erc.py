"""Electrical-rule lint: static checks on a switch-level netlist.

Each rule is a pass over an :class:`ERCContext`; the set encodes the
failure modes the paper's design style is exposed to:

* ``floating-gate`` -- a gate net nothing can ever drive;
* ``dynamic-refresh`` -- a dynamic storage node (it feeds a gate, has no
  pullup) that no clock phase ever refreshes, so it holds data only
  until the charge decays ("for no more than about 1 ms");
* ``clock-discipline`` -- same-phase feedback: storage written and read
  in one phase, the loop the two-phase scheme exists to break;
* ``ratio`` -- a pullup/pulldown impedance ratio below the Mead & Conway
  minimum of 4 for restoring logic;
* ``sneak-path`` -- a pure-pass conduction path from VDD to GND that is
  not a gate's pulldown network: a standing short.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..circuit.netlist import GND, VDD, Circuit, Enhancement
from .extract import ChannelGeom
from .report import Finding

_RAILS = (VDD, GND)


@dataclass
class ERCContext:
    """Everything a rule may consult.

    ``clocks`` are the clock net names; ``ports`` the externally driven
    or observed nets; ``device_geom`` (by device label) enables the
    geometric ratio check and is empty for drawn netlists.
    """

    circuit: Circuit
    clocks: Tuple[str, ...] = ()
    ports: FrozenSet[str] = frozenset()
    device_geom: Dict[str, ChannelGeom] = field(default_factory=dict)
    required_ratio: float = 4.0

    def __post_init__(self):
        self.ports = frozenset(self.ports)

    # -- shared topology helpers ----------------------------------------

    @property
    def load_nodes(self) -> Set[str]:
        return {d.node for d in self.circuit.loads}

    @property
    def gate_nets(self) -> Set[str]:
        return {t.gate for t in self.circuit.transistors}

    @property
    def channel_nets(self) -> Set[str]:
        out: Set[str] = set()
        for t in self.circuit.transistors:
            out.add(t.a)
            out.add(t.b)
        return out

    def channel_adjacency(self) -> Dict[str, List[Enhancement]]:
        adj: Dict[str, List[Enhancement]] = {}
        for t in self.circuit.transistors:
            adj.setdefault(t.a, []).append(t)
            adj.setdefault(t.b, []).append(t)
        return adj

    def pulldown_paths(self, max_depth: int = 8) -> Dict[str, List[List[Enhancement]]]:
        """Per load node: simple channel paths to GND.

        A pulldown path may not cross a rail, a port, a clock, or another
        load's output -- those nets are all independently driven, so
        conduction through them is not this gate's pulldown network.
        """
        adj = self.channel_adjacency()
        stop = (set(_RAILS) | self.ports | set(self.clocks) | self.load_nodes)
        out: Dict[str, List[List[Enhancement]]] = {}
        for node in sorted(self.load_nodes):
            paths: List[List[Enhancement]] = []

            def walk(net: str, path: List[Enhancement], seen: Set[str]) -> None:
                if len(path) > max_depth:
                    return
                for t in adj.get(net, ()):
                    if t in path:
                        continue
                    other = t.b if t.a == net else t.a
                    if other == GND:
                        paths.append(path + [t])
                        continue
                    if other in stop or other in seen:
                        continue
                    walk(other, path + [t], seen | {other})

            walk(node, [], {node})
            out[node] = paths
        return out

    def pulldown_devices(self) -> Set[Enhancement]:
        """Devices that belong to some gate's pulldown network."""
        return {
            t
            for paths in self.pulldown_paths().values()
            for path in paths
            for t in path
        }


class Rule:
    """Base class: subclasses set ``name`` and implement ``run``."""

    name = "rule"

    def run(self, ctx: ERCContext) -> List[Finding]:
        raise NotImplementedError

    def finding(self, severity: str, detail: str, where: str = "") -> Finding:
        return Finding("erc", self.name, severity, detail, where)


class FloatingGateRule(Rule):
    """A gate net that is not a rail, port, clock, load output, or any
    device's channel terminal can never be driven: the transistor it
    gates is permanently indeterminate."""

    name = "floating-gate"

    def run(self, ctx: ERCContext) -> List[Finding]:
        driven = (
            set(_RAILS) | ctx.ports | set(ctx.clocks)
            | ctx.load_nodes | ctx.channel_nets
        )
        out = []
        for g in sorted(ctx.gate_nets - driven):
            labels = [t.label for t in ctx.circuit.transistors if t.gate == g]
            out.append(
                self.finding(
                    "error",
                    f"gate net {g!r} has no driver of any kind "
                    f"(gates: {labels})",
                    where=g,
                )
            )
        return out


class DynamicRefreshRule(Rule):
    """Dynamic storage must be refreshed by a clock phase.

    A net that feeds a gate, has no static pullup, and is not a boundary
    net holds its value as charge; at least one adjacent pass transistor
    gated by a clock (or by VDD -- a hard wire to somewhere refreshed)
    must exist to rewrite it every beat."""

    name = "dynamic-refresh"

    def run(self, ctx: ERCContext) -> List[Finding]:
        storage = (
            ctx.gate_nets
            - ctx.load_nodes
            - ctx.ports
            - set(ctx.clocks)
            - set(_RAILS)
        )
        adj = ctx.channel_adjacency()
        refreshing = set(ctx.clocks) | {VDD}
        out = []
        for s in sorted(storage):
            if any(t.gate in refreshing for t in adj.get(s, ())):
                continue
            out.append(
                self.finding(
                    "error",
                    f"storage node {s!r} feeds a gate but is never "
                    "refreshed by either clock phase",
                    where=s,
                )
            )
        return out


class ClockDisciplineRule(Rule):
    """No same-phase feedback through storage.

    Per phase, build the signal-flow graph of that phase: bidirectional
    channel edges for conducting switches (gated by the phase itself or
    by VDD), directed gate-influence edges from every potentially-on
    device's gate to its channel terminals (rails excluded).  A strongly
    connected component spanning >= 2 nets that contains a gate edge is a
    loop closed within one phase -- exactly what the two-phase clock is
    supposed to make impossible."""

    name = "clock-discipline"

    def run(self, ctx: ERCContext) -> List[Finding]:
        out = []
        for phase in ctx.clocks:
            others = set(ctx.clocks) - {phase}
            edges: Set[Tuple[str, str]] = set()
            gate_edges: Set[Tuple[str, str]] = set()
            for t in ctx.circuit.transistors:
                if t.gate in others or t.gate == GND:
                    continue  # off this phase
                pins = [p for p in (t.a, t.b) if p not in _RAILS]
                if t.gate == phase or t.gate == VDD:
                    if len(pins) == 2:
                        edges.add((pins[0], pins[1]))
                        edges.add((pins[1], pins[0]))
                else:
                    # Data-gated: channel may conduct, and the gate value
                    # influences the channel nets combinationally.
                    if len(pins) == 2:
                        edges.add((pins[0], pins[1]))
                        edges.add((pins[1], pins[0]))
                    for p in pins:
                        gate_edges.add((t.gate, p))
            for scc in _sccs(edges | gate_edges):
                if len(scc) < 2:
                    continue
                internal_gate = [
                    e for e in gate_edges if e[0] in scc and e[1] in scc
                ]
                if internal_gate:
                    out.append(
                        self.finding(
                            "error",
                            f"phase {phase}: same-phase feedback loop "
                            f"through {sorted(scc)} (gate edges "
                            f"{sorted(internal_gate)})",
                            where=phase,
                        )
                    )
        return out


class RatioRule(Rule):
    """Ratioed-logic sizing: Z_pullup / Z_pulldown >= required_ratio.

    Needs extracted geometry; the worst case over a gate's pulldown
    paths is the weakest path (largest summed Z).  Skipped with an info
    finding when no geometry is available (drawn netlists)."""

    name = "ratio"

    def run(self, ctx: ERCContext) -> List[Finding]:
        if not ctx.device_geom:
            return [
                self.finding(
                    "info", "skipped: no channel geometry (drawn netlist)"
                )
            ]
        geom = ctx.device_geom
        z_load = {
            d.node: geom[d.label].z
            for d in ctx.circuit.loads
            if d.label in geom
        }
        out = []
        for node, paths in sorted(ctx.pulldown_paths().items()):
            if node not in z_load:
                continue
            for path in paths:
                if any(t.label not in geom for t in path):
                    continue
                z_pd = sum(geom[t.label].z for t in path)
                ratio = z_load[node] / z_pd if z_pd else float("inf")
                if ratio + 1e-9 < ctx.required_ratio:
                    out.append(
                        self.finding(
                            "error",
                            f"pullup on {node!r} (Z={z_load[node]:g}) vs "
                            f"pulldown {[t.label for t in path]} "
                            f"(Z={z_pd:g}): ratio {ratio:.2f} < "
                            f"{ctx.required_ratio:g}",
                            where=node,
                        )
                    )
        return out


class SneakPathRule(Rule):
    """No standing conduction path from VDD to GND.

    Pulldown-network devices are excluded (every gate output has a legal
    ratioed path); what remains conducting between the rails -- a single
    bridging device or a chain of passes -- would be a DC short no clock
    phase turns off."""

    name = "sneak-path"

    def run(self, ctx: ERCContext) -> List[Finding]:
        out = []
        for t in ctx.circuit.transistors:
            if {t.a, t.b} == {VDD, GND}:
                out.append(
                    self.finding(
                        "error",
                        f"device {t.label or t} bridges VDD and GND directly",
                        where=t.label,
                    )
                )
        pulldowns = ctx.pulldown_devices()
        adj = ctx.channel_adjacency()
        # DFS from VDD over non-pulldown channels.
        parent: Dict[str, Tuple[str, Enhancement]] = {}
        stack = [VDD]
        seen = {VDD}
        hit = None
        while stack and hit is None:
            net = stack.pop()
            for t in adj.get(net, ()):
                if t in pulldowns or t.gate == GND:
                    continue
                other = t.b if t.a == net else t.a
                if other == GND:
                    parent[GND] = (net, t)
                    hit = t
                    break
                if other in seen or other == VDD:
                    continue
                seen.add(other)
                parent[other] = (net, t)
                stack.append(other)
        if hit is not None:
            path = [GND]
            while path[-1] != VDD:
                path.append(parent[path[-1]][0])
            out.append(
                self.finding(
                    "error",
                    "conduction path from VDD to GND outside any pulldown "
                    f"network: {' - '.join(reversed(path))}",
                    where=path[1] if len(path) > 1 else "",
                )
            )
        return out


def _sccs(edges: Iterable[Tuple[str, str]]) -> List[Set[str]]:
    """Strongly connected components (iterative Tarjan)."""
    graph: Dict[str, List[str]] = {}
    for u, v in edges:
        graph.setdefault(u, []).append(v)
        graph.setdefault(v, [])
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[Set[str]] = []
    counter = [0]

    for root in graph:
        if root in index:
            continue
        work = [(root, iter(graph[root]))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for child in it:
                if child not in index:
                    index[child] = low[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(graph[child])))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                comp: Set[str] = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.add(w)
                    if w == node:
                        break
                sccs.append(comp)
    return sccs


#: The default rule battery, in reporting order.
ALL_RULES: Tuple[Rule, ...] = (
    FloatingGateRule(),
    DynamicRefreshRule(),
    ClockDisciplineRule(),
    RatioRule(),
    SneakPathRule(),
)


def run_erc(ctx: ERCContext, rules: Sequence[Rule] = ALL_RULES) -> List[Finding]:
    """Run every rule; returns the concatenated findings."""
    out: List[Finding] = []
    for rule in rules:
        out.extend(rule.run(ctx))
    return out
