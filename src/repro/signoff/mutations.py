"""Seeded defects: one mutation per pipeline stage, for mutation tests.

Each mutation plants a known physical or electrical defect in a copy of
a clean cell -- a sliver of metal, a shorted pair of tracks, a missing
contact, an undersized pullup, a mis-phased transfer gate, an unbuffered
pass chain -- chosen so exactly one stage of the pipeline is responsible
for catching it.  The test suite asserts that the responsible stage
reports an error naming the defect while the stages upstream of it stay
clean, and that the unmutated cells pass everything.

Every factory takes an optional ``bundle``: by default it mutates the
prototype cell it was written for, but any bundle produced by the
mechanical layout generator can be passed instead -- which is how
compiler-generated cells get their mutation coverage
(:func:`repro.compiler.verify.run_design_mutants`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from ..circuit.netlist import VDD, Circuit
from ..errors import SignoffError
from ..layout.cells import (
    PULLUP_L,
    TRACK_PITCH,
    CellBundle,
    CellLayout,
    accumulator_bundle,
    comparator_bundle,
)
from ..layout.geometry import Point, Rect
from ..layout.layers import Layer
from .pipeline import Signoff
from .report import SignoffReport


@dataclass(frozen=True)
class Mutation:
    """What was planted and which stage must catch it."""

    name: str
    stage: str           # the responsible pipeline stage
    rule: str            # substring expected in the finding's rule
    description: str


def _copy_layout(layout: CellLayout) -> CellLayout:
    return CellLayout(
        layout.name + ".mutant",
        {layer: list(rects) for layer, rects in layout.rects.items()},
        dict(layout.ports),
        layout.width,
        layout.height,
    )


def _copy_circuit(c: Circuit) -> Circuit:
    out = Circuit(c.name + ".mutant", retention_ns=c.retention_ns)
    for t in c.transistors:
        out.add_enhancement(t.gate, t.a, t.b, t.label)
    for d in c.loads:
        out.add_depletion_load(d.node, d.label)
    return out


def _with_layout(bundle: CellBundle, layout: CellLayout) -> CellBundle:
    return CellBundle(
        layout.name, bundle.circuit, bundle.ports, bundle.clocks,
        bundle.sticks, layout,
    )


# -- the mutants ------------------------------------------------------------

def drc_metal_sliver(bundle: CellBundle = None) -> Tuple[Mutation, CellBundle]:
    """An isolated 1-lambda metal sliver: a width violation, nothing else."""
    b = bundle or comparator_bundle(True)
    layout = _copy_layout(b.layout)
    # Far enough above the VDD rail to violate no spacing rule, touching
    # nothing -- electrically inert, geometrically illegal.
    y = layout.height + 5
    layout.add(Layer.METAL, Rect(4, y, 5, y + 3))
    return (
        Mutation(
            "drc-metal-sliver", "drc", "metal-width",
            "isolated 1-lambda-wide metal sliver above the cell",
        ),
        _with_layout(b, layout),
    )


def lvs_shorted_tracks(bundle: CellBundle = None) -> Tuple[Mutation, CellBundle]:
    """A poly bridge shorting two signal-port tracks together."""
    b = bundle or comparator_bundle(True)
    layout = _copy_layout(b.layout)
    # The two lowest full-width signal tracks (port nets span the cell, so
    # both exist at x=8..10, left of the first device column).  A
    # legal-width vertical poly strap bridges them; DRC cannot object
    # (touching poly merges), but the extracted netlist now has one net
    # where the schematic has two.
    ys = sorted({
        p.y for p, layer in layout.ports.values() if layer is Layer.POLY
    })
    if len(ys) < 2:
        raise SignoffError("need two signal-port tracks to short")
    layout.add(Layer.POLY, Rect(8, ys[0], 10, ys[1] + 1))
    return (
        Mutation(
            "lvs-shorted-tracks", "lvs", "mismatch",
            "poly bridge merging two adjacent signal-port tracks",
        ),
        _with_layout(b, layout),
    )


def lvs_missing_contact(bundle: CellBundle = None) -> Tuple[Mutation, CellBundle]:
    """Drop the diffusion-metal contact on the first device's source."""
    b = bundle or comparator_bundle(True)
    layout = _copy_layout(b.layout)
    probe = Point(18, 6)  # source stub contact of device 0
    cuts = layout.rects.get(Layer.CONTACT, [])
    keep = [c for c in cuts if not c.contains_point(probe)]
    if len(keep) != len(cuts) - 1:
        raise SignoffError(
            f"expected exactly one contact at {probe}; layout changed?"
        )
    layout.rects[Layer.CONTACT] = keep
    return (
        Mutation(
            "lvs-missing-contact", "lvs", "mismatch",
            "source contact of the first pass transistor removed "
            "(an open: the device floats off its net)",
        ),
        _with_layout(b, layout),
    )


def erc_undersized_pullup(bundle: CellBundle = None) -> Tuple[Mutation, CellBundle]:
    """Shrink the first depletion gate from L=8 to L=2: ratio collapses."""
    b = bundle or comparator_bundle(True)
    layout = _copy_layout(b.layout)
    site = next(p for p, dep in b.sticks.transistor_sites() if dep)
    half = PULLUP_L // 2
    long_gate = Rect(site.x - 1, site.y - half, site.x + 1, site.y + half)
    poly = layout.rects[Layer.POLY]
    if long_gate not in poly:
        raise SignoffError("elongated pullup gate not found; layout changed?")
    poly[poly.index(long_gate)] = Rect(
        site.x - 1, site.y - 1, site.x + 1, site.y + 1
    )
    return (
        Mutation(
            "erc-undersized-pullup", "erc", "ratio",
            "depletion pullup gate shortened to a square: Z drops from 4 "
            "to 1, the inverter ratio from 8:1 to 2:1",
        ),
        _with_layout(b, layout),
    )


def erc_misphased_transfer(
    bundle: CellBundle = None,
) -> Tuple[Mutation, Tuple[Circuit, Tuple[str, ...], Tuple[str, ...]]]:
    """Regate a result cell's t_xfer onto the master's own phase.

    The master/slave separation of ``t`` collapses: master write, slave
    refresh, and the t' logic all fire in one phase -- the same-phase
    feedback loop the clock-discipline rule hunts."""
    b = bundle or accumulator_bundle(True)
    circuit = _copy_circuit(b.circuit)
    idx = [
        i for i, t in enumerate(circuit.transistors)
        if "t_xfer" in t.label
    ]
    if not idx:
        raise SignoffError("cell has no t_xfer transistor to regate")
    t = circuit.transistors[idx[0]]
    circuit.transistors[idx[0]] = replace(t, gate=b.clocks[0])
    ports = tuple(sorted(set(b.ports.values()) - set(b.clocks)))
    return (
        Mutation(
            "erc-misphased-transfer", "erc", "clock-discipline",
            "t_xfer regated from clkB to clkA: the t master/slave loop "
            "closes within one phase",
        ),
        (circuit, b.clocks, ports),
    )


def timing_unbuffered_chain(
    bundle: CellBundle = None, port: str = "d_out",
) -> Tuple[Mutation, Tuple[Circuit, Tuple[str, ...], Tuple[str, ...]]]:
    """Hang a 50-stage unbuffered pass chain off a cell output."""
    b = bundle or comparator_bundle(True)
    circuit = _copy_circuit(b.circuit)
    prev = b.ports[port]
    for i in range(50):
        nxt = f"chain{i}"
        circuit.add_enhancement(VDD, prev, nxt, label=f"chain.{i}")
        prev = nxt
    ports = tuple(sorted(set(b.ports.values()) - set(b.clocks)))
    return (
        Mutation(
            "timing-unbuffered-chain", "timing", "phase-budget",
            "50 series pass transistors with no restoring stage: Elmore "
            "delay grows as the square of the chain length and blows the "
            "100 ns phase budget",
        ),
        (circuit, b.clocks, ports),
    )


#: name -> factory; layout mutants return a CellBundle, netlist mutants a
#: (circuit, clocks, ports) triple.
LAYOUT_MUTANTS = {
    "drc-metal-sliver": drc_metal_sliver,
    "lvs-shorted-tracks": lvs_shorted_tracks,
    "lvs-missing-contact": lvs_missing_contact,
    "erc-undersized-pullup": erc_undersized_pullup,
}
NETLIST_MUTANTS = {
    "erc-misphased-transfer": erc_misphased_transfer,
    "timing-unbuffered-chain": timing_unbuffered_chain,
}


def mutant_names() -> List[str]:
    return list(LAYOUT_MUTANTS) + list(NETLIST_MUTANTS)


def run_mutant(name: str, signoff: Signoff = None) -> Tuple[Mutation, SignoffReport]:
    """Build the mutant and push it through the pipeline."""
    signoff = signoff or Signoff()
    if name in LAYOUT_MUTANTS:
        mutation, bundle = LAYOUT_MUTANTS[name]()
        return mutation, signoff.run_cell(bundle=bundle)
    if name in NETLIST_MUTANTS:
        mutation, (circuit, clocks, ports) = NETLIST_MUTANTS[name]()
        return mutation, signoff.run_netlist(
            circuit, clocks, ports, name=mutation.name
        )
    raise SignoffError(f"unknown mutant {name!r}")
