"""The signoff driver: DRC + extraction + LVS + ERC + timing, one report.

``Signoff.run_cell`` verifies one cell bundle end to end: the layout is
design-rule checked, extracted back to a netlist, proven equivalent to
the drawn circuit (LVS), then the *extracted* circuit -- geometry and
all -- is linted (ERC) and timed.  ``Signoff.run_chip`` does the same
for every cell twin and adds the assembly-level audits: floorplan
consistency, a flat device census of the emitted CIF, supply-rail
isolation, and ERC + timing over the whole-array netlist.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..circuit.chipnet import MatcherArrayNetlist
from ..circuit.netlist import Circuit
from ..layout.assembly import ChipAssembler
from ..layout.cells import CellBundle, cell_bundle
from ..layout.cif import parse_cif
from ..layout.design_rules import DesignRuleChecker, gate_channels
from ..layout.geometry import Point, Rect, RectIndex
from ..layout.layers import Layer
from ..timing.model import TimingModel
from .erc import ERCContext, run_erc
from .extract import ConductorNets, Extraction, extract_cell
from .lvs import compare
from .report import SignoffReport, StageReport
from .timing import TimingParams, timing_findings

#: The four cell twins of the chip.
CELL_KINDS: Tuple[Tuple[str, bool], ...] = (
    ("comparator", True),
    ("comparator", False),
    ("accumulator", True),
    ("accumulator", False),
)


class Signoff:
    """Configured pipeline: run cells, netlists, or the whole chip."""

    def __init__(
        self,
        timing_model: Optional[TimingModel] = None,
        timing_params: TimingParams = TimingParams(),
        required_ratio: float = 4.0,
    ):
        self.timing_model = timing_model or TimingModel()
        self.timing_params = timing_params
        self.required_ratio = required_ratio
        self.drc = DesignRuleChecker()

    # -- stage helpers (each returns a StageReport) ------------------------

    def drc_stage(self, bundle: CellBundle) -> StageReport:
        stage = StageReport("drc")
        for v in self.drc.check(bundle.layout.rects):
            stage.add(v.rule, "error", v.detail, where=bundle.name)
        return stage

    def extraction_stage(
        self, bundle: CellBundle
    ) -> Tuple[StageReport, Extraction]:
        stage = StageReport("extraction")
        ex = extract_cell(bundle.layout)
        for w in ex.warnings:
            stage.add("extract", "warning", w, where=bundle.name)
        stage.add(
            "census",
            "info",
            f"{ex.n_devices} devices ({ex.n_loads} depletion loads), "
            f"{ex.n_nets} nets",
            where=bundle.name,
        )
        return stage, ex

    def lvs_stage(self, bundle: CellBundle, ex: Extraction) -> StageReport:
        stage = StageReport("lvs")
        anchors = {
            drawn_node: ex.net_of_port[ext]
            for ext, drawn_node in bundle.ports.items()
            if ext in ex.net_of_port
        }
        result = compare(bundle.circuit, ex.circuit, anchors)
        for diff in result.diffs:
            stage.add("mismatch", "error", diff, where=bundle.name)
        if result.ok:
            stage.add(
                "match",
                "info",
                f"{result.left_devices} drawn devices == "
                f"{result.right_devices} extracted, "
                f"{len(result.net_map)} nets mapped",
                where=bundle.name,
            )
        return stage

    def erc_stage(
        self,
        circuit: Circuit,
        clocks: Sequence[str],
        ports: Sequence[str],
        device_geom: Optional[Dict] = None,
        where: str = "",
    ) -> StageReport:
        stage = StageReport("erc")
        ctx = ERCContext(
            circuit,
            clocks=tuple(clocks),
            ports=frozenset(ports),
            device_geom=dict(device_geom or {}),
            required_ratio=self.required_ratio,
        )
        for f in run_erc(ctx):
            stage.findings.append(
                f if not where or f.where else
                type(f)(f.stage, f.rule, f.severity, f.detail, where)
            )
        return stage

    def timing_stage(
        self,
        circuit: Circuit,
        clocks: Sequence[str],
        ports: Sequence[str],
        device_geom: Optional[Dict] = None,
    ) -> StageReport:
        stage = StageReport("timing")
        stage.extend(
            timing_findings(
                circuit,
                clocks,
                ports=ports,
                device_geom=device_geom,
                model=self.timing_model,
                params=self.timing_params,
            )
        )
        return stage

    # -- drivers -----------------------------------------------------------

    def run_cell(
        self,
        kind: str = "comparator",
        positive: bool = True,
        bundle: Optional[CellBundle] = None,
    ) -> SignoffReport:
        """Full pipeline on one cell (or a supplied, possibly mutated,
        bundle)."""
        b = bundle or cell_bundle(kind, positive)
        report = SignoffReport(b.name)
        report.stages.append(self.drc_stage(b))
        ex_stage, ex = self.extraction_stage(b)
        report.stages.append(ex_stage)
        report.stages.append(self.lvs_stage(b, ex))
        clocks = [ex.net_of_port.get(c, c) for c in b.clocks]
        ports = sorted(set(ex.net_of_port.values()))
        report.stages.append(
            self.erc_stage(ex.circuit, clocks, ports, ex.device_geom)
        )
        report.stages.append(
            self.timing_stage(ex.circuit, clocks, ports, ex.device_geom)
        )
        return report

    def run_netlist(
        self,
        circuit: Circuit,
        clocks: Sequence[str],
        ports: Sequence[str],
        name: str = "netlist",
    ) -> SignoffReport:
        """ERC + timing on a drawn netlist (no geometry stages)."""
        report = SignoffReport(name)
        report.stages.append(self.erc_stage(circuit, clocks, ports))
        report.stages.append(self.timing_stage(circuit, clocks, ports))
        return report

    def run_chip(self, columns: int = 8, char_bits: int = 2) -> SignoffReport:
        """Signoff of the assembled prototype chip.

        Cell-level DRC/extraction/LVS for all four twins, the assembly
        audits, and whole-array ERC + timing on the drawn chip netlist
        (the assembly routes power and abutment only, so electrical
        chip-level checks run on the reference netlist the cells were
        proven equivalent to)."""
        report = SignoffReport(f"chip_{columns}x{char_bits}")
        drc = StageReport("drc")
        extraction = StageReport("extraction")
        lvs = StageReport("lvs")
        for kind, positive in CELL_KINDS:
            b = cell_bundle(kind, positive)
            drc.extend(self.drc_stage(b).findings)
            ex_stage, ex = self.extraction_stage(b)
            extraction.extend(ex_stage.findings)
            lvs.extend(self.lvs_stage(b, ex).findings)
        report.stages.append(drc)
        report.stages.append(extraction)
        report.stages.append(lvs)

        net = MatcherArrayNetlist(columns, char_bits)
        ports = (
            list(net.p_edge) + list(net.s_edge)
            + [net.lam_edge, net.x_edge, net.r_edge]
        )
        report.stages.append(
            self.erc_stage(net.circuit, net.phi, ports)
        )
        report.stages.append(
            self.timing_stage(net.circuit, net.phi, ports)
        )
        report.stages.append(self.assembly_stage(columns, char_bits))
        return report

    def run_design(self, compiled) -> SignoffReport:
        """Full signoff of a compiler-generated design.

        The same gauntlet as :meth:`run_chip`, but over whatever cells,
        netlist, and floorplan the compiler emitted: DRC / extraction /
        LVS for every generated cell twin, ERC + timing on the generated
        whole-chip transistor netlist, and the assembly audits on the
        generated floorplan and CIF.  ``compiled`` is a
        :class:`~repro.compiler.flow.CompiledChip`.
        """
        report = SignoffReport(compiled.spec.name)
        drc = StageReport("drc")
        extraction = StageReport("extraction")
        lvs = StageReport("lvs")
        for name in sorted(compiled.bundles):
            b = compiled.bundles[name]
            drc.extend(self.drc_stage(b).findings)
            ex_stage, ex = self.extraction_stage(b)
            extraction.extend(ex_stage.findings)
            lvs.extend(self.lvs_stage(b, ex).findings)
        report.stages.append(drc)
        report.stages.append(extraction)
        report.stages.append(lvs)

        net = compiled.netlist
        ports = sorted(net.pins.values())
        report.stages.append(self.erc_stage(net.circuit, net.phi, ports))
        report.stages.append(self.timing_stage(net.circuit, net.phi, ports))
        report.stages.append(self.assembly_stage_for(compiled.assembler))
        return report

    # -- assembly audits ---------------------------------------------------

    def assembly_stage(self, columns: int, char_bits: int) -> StageReport:
        """Assembly audits of the hand-built prototype chip."""
        return self.assembly_stage_for(ChipAssembler(columns, char_bits))

    def assembly_stage_for(self, asm) -> StageReport:
        """Assembly audits of any :class:`~repro.layout.assembly.ArrayAssembler`."""
        stage = StageReport("assembly")
        fp = asm.floorplan()

        # Floorplan: instances must not overlap, pads must sit on the die
        # and match the pin inventory.
        boxes = []
        for cname, x, y in fp.cell_instances:
            cell = asm._cells[cname]
            boxes.append(Rect(x, y, x + cell.width, y + cell.height))
        index = RectIndex(boxes)
        overlaps = 0
        for i, r in enumerate(boxes):
            for j in index.near(r):
                if j > i and r.intersects(boxes[j]):
                    overlaps += 1
                    stage.add(
                        "floorplan-overlap",
                        "error",
                        f"instances {fp.cell_instances[i]} and "
                        f"{fp.cell_instances[j]} overlap",
                    )
        die = Rect(0, 0, fp.die_width, fp.die_height)
        for pin, rect in fp.pads:
            if not die.contains(rect):
                stage.add(
                    "floorplan-pad",
                    "error",
                    f"pad {pin} at {rect} falls outside the die {die}",
                    where=pin,
                )
        if fp.n_pads != len(asm.pin_names()):
            stage.add(
                "floorplan-pad",
                "error",
                f"{fp.n_pads} pads placed for {len(asm.pin_names())} pins",
            )
        else:
            stage.add(
                "floorplan",
                "info",
                f"{fp.n_cells} cells, {fp.n_pads} pads, no overlaps"
                if not overlaps
                else f"{fp.n_cells} cells, {fp.n_pads} pads",
            )

        # Flat CIF: parse what the assembler emits, recover lambda
        # geometry, and census the transistors.
        parsed = parse_cif(asm.to_cif())
        flat_half = parsed.flatten()
        flat: Dict[Layer, list] = {}
        odd = False
        for layer, rects in flat_half.items():
            halved = []
            for r in rects:
                if any(v % 2 for v in (r.x0, r.y0, r.x1, r.y1)):
                    odd = True
                    continue
                halved.append(Rect(r.x0 // 2, r.y0 // 2, r.x1 // 2, r.y1 // 2))
            flat[layer] = halved
        if odd:
            stage.add(
                "cif-grid",
                "error",
                "flattened CIF geometry is off the half-lambda grid",
            )
        expected = 0
        for cname, _x, _y in fp.cell_instances:
            cell = asm._cells[cname]
            expected += len(
                gate_channels(
                    cell.rects.get(Layer.POLY, []),
                    cell.rects.get(Layer.DIFFUSION, []),
                    cell.rects.get(Layer.CONTACT, []),
                )
            )
        found = len(
            gate_channels(
                flat.get(Layer.POLY, []),
                flat.get(Layer.DIFFUSION, []),
                flat.get(Layer.CONTACT, []),
            )
        )
        if found != expected:
            stage.add(
                "cif-census",
                "error",
                f"flat CIF has {found} transistor channels; the floorplan "
                f"promises {expected}",
            )
        else:
            stage.add(
                "cif-census", "info", f"{found} transistor channels on the die"
            )

        # Supply isolation: the VDD and GND rails of every placed cell
        # must never share a net (rows may legally share rails among
        # themselves through abutment).
        nets = ConductorNets(flat)
        margin_x = (fp.die_width - fp.core_width) // 2
        margin_y = (fp.die_height - fp.core_height) // 2
        vdd_nets, gnd_nets = set(), set()
        open_rails = 0
        for cname, x, y in fp.cell_instances:
            cell = asm._cells[cname]
            for pname, bucket in (("VDD", vdd_nets), ("GND", gnd_nets)):
                point, layer = cell.ports[pname]
                nid = nets.net_at(
                    Point(point.x + x + margin_x, point.y + y + margin_y),
                    layer,
                )
                if nid is None:
                    open_rails += 1
                    stage.add(
                        "rail-open",
                        "error",
                        f"{pname} rail probe of {cname} at ({x},{y}) hits "
                        "no metal",
                        where=cname,
                    )
                else:
                    bucket.add(nid)
        shorted = vdd_nets & gnd_nets
        if shorted:
            stage.add(
                "rail-short",
                "error",
                f"VDD and GND rails share {len(shorted)} net(s): the "
                "assembly shorts the supplies",
            )
        elif not open_rails:
            stage.add(
                "rail-isolation",
                "info",
                f"{len(vdd_nets)} VDD rail net(s), {len(gnd_nets)} GND rail "
                "net(s), disjoint",
            )
        return stage
