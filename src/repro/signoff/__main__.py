"""Command-line signoff: ``python -m repro.signoff``.

Runs the full pipeline on the prototype chip (or one cell with
``--cell``), prints the stage summary, optionally writes the JSON report,
and exits non-zero when any error-severity finding exists -- the CI
gate."""

from __future__ import annotations

import argparse
import sys

from .mutations import mutant_names, run_mutant
from .pipeline import Signoff


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.signoff",
        description="Run the signoff pipeline (DRC, extraction, LVS, ERC, "
        "timing) on the prototype chip or a single cell.",
    )
    parser.add_argument(
        "--columns", type=int, default=8,
        help="pattern columns of the prototype (default 8)",
    )
    parser.add_argument(
        "--char-bits", type=int, default=2,
        help="bits per character / comparator rows (default 2)",
    )
    parser.add_argument(
        "--cell", choices=["comparator", "accumulator"],
        help="verify a single cell instead of the whole chip",
    )
    parser.add_argument(
        "--negative", action="store_true",
        help="with --cell: verify the negative twin",
    )
    parser.add_argument(
        "--mutant", choices=mutant_names(),
        help="run a seeded-defect mutant instead (demonstration)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="also write the machine-readable report to PATH",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the text summary"
    )
    args = parser.parse_args(argv)

    signoff = Signoff()
    if args.mutant:
        mutation, report = run_mutant(args.mutant, signoff)
        if not args.quiet:
            print(f"mutant: {mutation.name} -- {mutation.description}")
    elif args.cell:
        report = signoff.run_cell(args.cell, positive=not args.negative)
    else:
        report = signoff.run_chip(args.columns, args.char_bits)

    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json() + "\n")
    if not args.quiet:
        print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
