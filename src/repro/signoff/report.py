"""Findings, stage reports, and the machine-readable signoff report.

Every check in the pipeline reduces to :class:`Finding` records with a
severity; a chip "passes signoff" exactly when no finding of severity
``error`` exists.  The report serialises to JSON so CI can archive it and
gate merges on it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import SignoffError

#: Recognised severities, mildest first.
SEVERITIES = ("info", "warning", "error")

#: Pipeline stages in execution order.
STAGES = ("drc", "extraction", "lvs", "erc", "timing", "assembly")


@dataclass(frozen=True)
class Finding:
    """One observation from one pipeline stage.

    ``stage`` names the pipeline stage, ``rule`` the specific check
    (e.g. ``"metal-width"`` or ``"clock-discipline"``), ``where`` the
    cell/net/device the finding anchors to.
    """

    stage: str
    rule: str
    severity: str
    detail: str
    where: str = ""

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise SignoffError(f"unknown severity {self.severity!r}")

    def to_dict(self) -> Dict[str, str]:
        return {
            "stage": self.stage,
            "rule": self.rule,
            "severity": self.severity,
            "detail": self.detail,
            "where": self.where,
        }

    def __str__(self) -> str:
        loc = f" [{self.where}]" if self.where else ""
        return f"{self.severity.upper():7s} {self.stage}/{self.rule}{loc}: {self.detail}"


@dataclass
class StageReport:
    """All findings of one stage, plus whether the stage ran at all."""

    stage: str
    findings: List[Finding] = field(default_factory=list)
    ran: bool = True

    def add(self, rule: str, severity: str, detail: str, where: str = "") -> Finding:
        f = Finding(self.stage, rule, severity, detail, where)
        self.findings.append(f)
        return f

    def extend(self, findings: List[Finding]) -> None:
        self.findings.extend(findings)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        return self.ran and not self.errors

    def to_dict(self) -> Dict[str, object]:
        return {
            "stage": self.stage,
            "ran": self.ran,
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [f.to_dict() for f in self.findings],
        }


@dataclass
class SignoffReport:
    """The whole pipeline's verdict on one design (a cell or the chip)."""

    name: str
    stages: List[StageReport] = field(default_factory=list)

    def stage(self, name: str) -> StageReport:
        """The report of stage *name* (raises if the stage never ran)."""
        for s in self.stages:
            if s.stage == name:
                return s
        raise SignoffError(f"no stage {name!r} in report {self.name!r}")

    def has_stage(self, name: str) -> bool:
        return any(s.stage == name for s in self.stages)

    @property
    def findings(self) -> List[Finding]:
        return [f for s in self.stages for f in s.findings]

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        """Signoff verdict: every stage ran clean of errors."""
        return all(s.ok for s in self.stages)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "stages": [s.to_dict() for s in self.stages],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def summary(self) -> str:
        """A terminal-friendly digest: one line per stage, then findings."""
        lines = [f"signoff: {self.name}  --  {'PASS' if self.ok else 'FAIL'}"]
        for s in self.stages:
            verdict = "ok" if s.ok else "FAIL"
            lines.append(
                f"  {s.stage:10s} {verdict:4s}  "
                f"{len(s.errors)} error(s), {len(s.warnings)} warning(s)"
            )
        shown = [f for f in self.findings if f.severity != "info"]
        for f in shown:
            lines.append(f"  {f}")
        return "\n".join(lines)
