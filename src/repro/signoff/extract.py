"""Layout extraction: mask geometry back to a transistor netlist.

The inverse of the layout generator, and deliberately independent of it:
extraction believes only the rectangles.  Following the NMOS reading of
Section 3.2.2 --

* a transistor exists wherever polysilicon crosses diffusion (unless a
  contact cut sits on the crossing, which butts the layers instead);
* the crossing interrupts the diffusion: source and drain are the
  diffusion fragments left after subtracting the channel;
* conductors of one layer that touch are one net, and a contact cut
  joins the nets of every conduction layer covering it;
* ion implant over a channel makes the device depletion mode.

The result is a :class:`~repro.circuit.netlist.Circuit` (depletion
devices whose channel reaches the VDD net become
:class:`~repro.circuit.netlist.DepletionLoad` pullups) plus per-device
channel geometry -- length along the current path, width across it -- so
the electrical-rule check can verify the ratioed-logic sizing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.netlist import GND, VDD, Circuit
from ..layout.design_rules import gate_channels
from ..layout.geometry import Point, Rect, RectIndex, _UnionFind, subtract_all
from ..layout.layers import Layer

#: Rail port names recognised on a cell boundary.
RAIL_PORTS = {"VDD": VDD, "GND": GND}


@dataclass(frozen=True)
class ChannelGeom:
    """Drawn channel dimensions of one extracted device (lambda)."""

    length: int          # along the current path (gate crossing)
    width: int           # across the current path
    depletion: bool
    bbox: Rect

    @property
    def z(self) -> float:
        """Channel impedance ratio Z = L/W (Mead & Conway convention)."""
        return self.length / self.width


@dataclass
class Extraction:
    """Extraction result: the recovered circuit plus geometry metadata."""

    circuit: Circuit
    net_of_port: Dict[str, str] = field(default_factory=dict)
    device_geom: Dict[str, ChannelGeom] = field(default_factory=dict)
    warnings: List[str] = field(default_factory=list)
    n_nets: int = 0

    @property
    def n_devices(self) -> int:
        return self.circuit.n_transistors

    @property
    def n_loads(self) -> int:
        return len(self.circuit.loads)


class ConductorNets:
    """Net extraction over flat geometry: conductors, contacts, channels.

    Shared between full cell extraction and the chip-assembly audit
    (which only needs net identity and the device census, not a circuit).
    """

    def __init__(self, rects_by_layer: Dict[Layer, Sequence[Rect]]):
        self.poly = list(rects_by_layer.get(Layer.POLY, []))
        self.diff = list(rects_by_layer.get(Layer.DIFFUSION, []))
        self.metal = list(rects_by_layer.get(Layer.METAL, []))
        self.implants = list(rects_by_layer.get(Layer.IMPLANT, []))
        self.contacts = list(rects_by_layer.get(Layer.CONTACT, []))
        self.warnings: List[str] = []

        self.channels = gate_channels(self.poly, self.diff, self.contacts)

        # Source/drain regions: diffusion with the channels cut out.
        ch_index = RectIndex(self.channels)
        self.frags: List[Rect] = []
        for d in self.diff:
            cuts = [
                self.channels[k]
                for k in ch_index.near(d)
                if self.channels[k].intersects(d)
            ]
            self.frags.extend(subtract_all(d, cuts))

        # One conductor per rectangle; same-layer touching rectangles and
        # contact-joined stacks merge into nets via union-find.
        self.conductors: List[Tuple[Layer, Rect]] = (
            [(Layer.DIFFUSION, r) for r in self.frags]
            + [(Layer.POLY, r) for r in self.poly]
            + [(Layer.METAL, r) for r in self.metal]
        )
        self._uf = _UnionFind(len(self.conductors))
        base = 0
        for layer_rects in (self.frags, self.poly, self.metal):
            index = RectIndex(layer_rects)
            for i, r in enumerate(layer_rects):
                for j in index.near(r):
                    if j > i and r.touches_or_intersects(layer_rects[j]):
                        self._uf.union(base + i, base + j)
            base += len(layer_rects)
        self._cond_index = RectIndex([r for _, r in self.conductors])
        for cut in self.contacts:
            covering = [
                k
                for k in self._cond_index.near(cut)
                if self.conductors[k][1].contains(cut)
            ]
            layers_hit = {self.conductors[k][0] for k in covering}
            if len(layers_hit) < 2:
                self.warnings.append(
                    f"contact {cut} joins {len(layers_hit)} conduction "
                    "layer(s); expected 2"
                )
            for k in covering[1:]:
                self._uf.union(covering[0], k)

    # -- net identity ------------------------------------------------------

    def net_id(self, conductor_index: int) -> int:
        return self._uf.find(conductor_index)

    def net_at(self, p: Point, layer: Layer) -> Optional[int]:
        """Net id of the *layer* shape covering point *p* (None if open)."""
        probe = Rect(p.x - 1, p.y - 1, p.x + 1, p.y + 1)
        for k in self._cond_index.near(probe):
            lay, r = self.conductors[k]
            if lay is layer and r.contains_point(p):
                return self.net_id(k)
        return None

    def nets_touching(self, box: Rect, layer: Layer,
                      overlapping: bool = False) -> List[int]:
        """Distinct net ids of *layer* conductors touching *box*."""
        out: List[int] = []
        for k in self._cond_index.near(box, pad=1):
            lay, r = self.conductors[k]
            if lay is not layer:
                continue
            hit = r.intersects(box) if overlapping else r.touches_or_intersects(box)
            if hit:
                nid = self.net_id(k)
                if nid not in out:
                    out.append(nid)
        return out


def _channel_orientation(nets: ConductorNets, ch: Rect) -> Tuple[int, int, List[int]]:
    """(length, width, terminal net ids) for channel *ch*.

    Terminals are the diffusion fragments abutting the channel; the
    current direction follows the side they abut on (fragments above and
    below mean vertical current flow, so length is the channel height).
    """
    vertical = horizontal = 0
    term_nets: List[int] = []
    for k in nets._cond_index.near(ch, pad=1):
        lay, r = nets.conductors[k]
        if lay is not Layer.DIFFUSION or not r.touches_or_intersects(ch):
            continue
        if r.intersects(ch):
            continue  # overlap would mean a mis-subtracted fragment
        if r.y1 <= ch.y0 or r.y0 >= ch.y1:
            vertical += 1
        else:
            horizontal += 1
        nid = nets.net_id(k)
        if nid not in term_nets:
            term_nets.append(nid)
    if vertical >= horizontal:
        return ch.height, ch.width, term_nets
    return ch.width, ch.height, term_nets


def extract(
    rects_by_layer: Dict[Layer, Sequence[Rect]],
    ports: Optional[Dict[str, Tuple[Point, Layer]]] = None,
    name: str = "extracted",
) -> Extraction:
    """Extract a switch-level netlist from flat mask geometry.

    *ports* maps boundary port names to (point, layer) probes, exactly
    the :attr:`~repro.layout.cells.CellLayout.ports` convention; the nets
    under them take the port's name (``VDD``/``GND`` become the rails).
    Anything unnameable becomes ``n<i>``.
    """
    ports = ports or {}
    nets = ConductorNets(rects_by_layer)
    warnings = list(nets.warnings)

    # -- name the nets -----------------------------------------------------
    net_name: Dict[int, str] = {}
    net_of_port: Dict[str, str] = {}
    # Rails first, then plain names, then the "_r" twins of boundary ports
    # (same net as their left-edge partner, so they never win the name).
    order = sorted(
        ports,
        key=lambda p: (p not in RAIL_PORTS, p.endswith("_r"), p),
    )
    for pname in order:
        point, layer = ports[pname]
        nid = nets.net_at(point, layer)
        if nid is None:
            warnings.append(f"port {pname!r} is not on any {layer.value} shape")
            continue
        if pname in RAIL_PORTS:
            net_name.setdefault(nid, RAIL_PORTS[pname])
        else:
            net_name.setdefault(nid, pname)
        net_of_port[pname] = net_name[nid]
    fresh = 0

    def name_of(nid: int) -> str:
        nonlocal fresh
        if nid not in net_name:
            net_name[nid] = f"n{fresh}"
            fresh += 1
        return net_name[nid]

    # -- build the devices -------------------------------------------------
    circuit = Circuit(name)
    device_geom: Dict[str, ChannelGeom] = {}
    implant_index = RectIndex(nets.implants)
    for i, ch in enumerate(nets.channels):
        label = f"M{i}"
        length, width, term_ids = _channel_orientation(nets, ch)
        gate_ids = nets.nets_touching(ch, Layer.POLY, overlapping=True)
        if len(gate_ids) != 1:
            warnings.append(
                f"device {label} at {ch} has {len(gate_ids)} gate nets"
            )
            if not gate_ids:
                continue
        gate = name_of(gate_ids[0])
        if len(term_ids) != 2:
            warnings.append(
                f"device {label} at {ch} has {len(term_ids)} "
                "channel terminals; expected 2"
            )
            if len(term_ids) < 2:
                continue
        a, b = name_of(term_ids[0]), name_of(term_ids[1])
        depletion = any(
            nets.implants[k].contains(ch) for k in implant_index.near(ch)
        )
        if depletion and VDD in (a, b):
            node = b if a == VDD else a
            circuit.add_depletion_load(node, label=label)
            if gate != node:
                warnings.append(
                    f"depletion load {label}: gate net {gate} is not tied "
                    f"to its output {node}"
                )
        else:
            if depletion:
                warnings.append(
                    f"depletion device {label} at {ch} has no VDD terminal; "
                    "treating as a switch"
                )
            circuit.add_enhancement(gate, a, b, label=label)
        device_geom[label] = ChannelGeom(length, width, depletion, ch)

    # Port nets exist even if no device touches them.
    for pname, node in net_of_port.items():
        circuit.node(node)

    return Extraction(
        circuit=circuit,
        net_of_port=net_of_port,
        device_geom=device_geom,
        warnings=warnings,
        n_nets=len({nets.net_id(k) for k in range(len(nets.conductors))}),
    )


def extract_cell(layout) -> Extraction:
    """Extract a :class:`~repro.layout.cells.CellLayout` via its ports."""
    return extract(layout.rects, layout.ports, name=f"{layout.name}.extracted")
