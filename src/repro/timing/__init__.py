"""Quantitative models behind the paper's performance and cost claims.

* :mod:`repro.timing.model` -- beat timing, data rates, cascade and
  multipass scaling (the 250 ns/char claim and Figure 3-7 scaling);
* :mod:`repro.timing.power` -- broadcast vs local-communication drive
  cost (the Section 3.3.1 argument against Mukhopadhyay's machine);
* :mod:`repro.timing.economics` -- design-effort accounting (the
  Section 2/5 argument that systolic regularity collapses design cost).
"""

from .economics import DesignEffortModel
from .model import TimingModel
from .power import broadcast_cycle_time, local_cycle_time

__all__ = [
    "DesignEffortModel",
    "TimingModel",
    "broadcast_cycle_time",
    "local_cycle_time",
]
