"""Drive cost of broadcast vs local communication (Section 3.3.1).

"Each cell requires a connection to the broadcast channel, which either
increases the power requirements of the system as a whole or decreases
its speed."  The model: driving a wire with n gate loads takes either

* an *unbuffered* driver -- delay grows linearly in n (RC of the lumped
  load), power ~ total switched capacitance; or
* a *fanout tree* of buffers -- delay grows as log n, but every level
  adds switching power and area.

Local (neighbour-only) communication drives a constant load, so both its
delay and per-wire power are constant in n.  These functions are
deliberately simple first-order models; the benches use them for shapes,
not absolute numbers.
"""

from __future__ import annotations

import math

from ..errors import ReproError


def local_cycle_time(t_logic_ns: float = 200.0, t_wire_ns: float = 50.0) -> float:
    """Cycle time with nearest-neighbour wiring: constant in array size."""
    return t_logic_ns + t_wire_ns


def broadcast_cycle_time(
    n_cells: int,
    t_logic_ns: float = 200.0,
    t_load_ns: float = 10.0,
    buffered: bool = False,
    fanout: int = 4,
) -> float:
    """Cycle time with one driver feeding *n_cells* loads."""
    if n_cells <= 0:
        raise ReproError("n_cells must be positive")
    if not buffered:
        return t_logic_ns + t_load_ns * n_cells
    levels = max(1, math.ceil(math.log(n_cells, fanout)))
    return t_logic_ns + t_load_ns * fanout * levels


def broadcast_drive_power(n_cells: int, cap_per_cell: float = 1.0) -> float:
    """Relative bus power: proportional to total switched load."""
    if n_cells <= 0:
        raise ReproError("n_cells must be positive")
    return cap_per_cell * n_cells


def local_drive_power(cap_per_wire: float = 1.0) -> float:
    """Per-wire power of neighbour links: constant."""
    return cap_per_wire


def crossover_cells(
    t_logic_ns: float = 200.0,
    t_wire_ns: float = 50.0,
    t_load_ns: float = 10.0,
) -> int:
    """Array size beyond which unbuffered broadcast is slower than local."""
    n = 1
    while broadcast_cycle_time(n, t_logic_ns, t_load_ns) <= local_cycle_time(
        t_logic_ns, t_wire_ns
    ):
        n += 1
        if n > 10_000:
            raise ReproError("no crossover below 10000 cells; check parameters")
    return n
