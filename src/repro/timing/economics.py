"""Design-effort accounting (the Section 2 / Section 5 economic claim).

"Most special-purpose chips will be made in relatively small quantities,
so the design cost must be kept low. ... One has to design and test only
a few different, simple cells, as most of the cells on a chip are copies
of a few basic ones."  And Section 5: "The design of the pattern matching
chip ... took only about two man-months."

The model: design effort is dominated by the number of *distinct* cell
types (each must be designed, laid out, and verified) plus a fixed
system-level overhead; replicated instances are nearly free.  An
irregular design pays per *instance*.  The bench sweeps chip size and
shows the regular design's effort staying flat while the irregular
design's grows linearly -- which is the paper's whole argument in one
plot.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError


@dataclass(frozen=True)
class DesignEffortModel:
    """Effort in man-weeks; defaults calibrated so the prototype's
    4 distinct cell types + overhead land at the paper's two man-months.

    ``weeks_per_cell_type``: design + layout + test of one cell type.
    ``weeks_system_overhead``: data-flow control, pads, assembly, docs.
    ``weeks_per_irregular_instance``: cost per cell when nothing is
    reused (the hypothetical irregular design).
    ``replication_overhead``: marginal cost of each additional *copy* of
    an already-designed cell (near zero: step-and-repeat).
    """

    weeks_per_cell_type: float = 1.5
    weeks_system_overhead: float = 2.0
    weeks_per_irregular_instance: float = 1.5
    replication_overhead: float = 0.01

    def regular_design_weeks(self, n_cell_types: int, n_instances: int) -> float:
        """Effort of a systolic (replicated-cell) design."""
        if n_cell_types <= 0 or n_instances < n_cell_types:
            raise ReproError("need at least one instance per cell type")
        return (
            self.weeks_system_overhead
            + n_cell_types * self.weeks_per_cell_type
            + (n_instances - n_cell_types) * self.replication_overhead
        )

    def irregular_design_weeks(self, n_instances: int) -> float:
        """Effort when every cell is bespoke."""
        if n_instances <= 0:
            raise ReproError("need at least one instance")
        return self.weeks_system_overhead + n_instances * self.weeks_per_irregular_instance

    def prototype_weeks(self) -> float:
        """The fabricated chip: 4 cell types (two twins of two cells),
        8 columns x 3 rows = 24 cell instances."""
        return self.regular_design_weeks(n_cell_types=4, n_instances=24)
