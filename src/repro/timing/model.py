"""Beat timing and throughput scaling.

The performance claims this model reproduces:

1. *Rate*: "the chip can achieve a data rate of one character every
   250 ns" -- one bus character per beat, one text character per two
   beats, independent of pattern length.
2. *Scaling*: cascading chips (Figure 3-7) multiplies pattern capacity
   without touching the rate; the multipass scheme (Section 3.4) trades
   rate for capacity linearly.
3. *Comparison*: a software matcher's per-character time grows with the
   pattern length; the chip's does not.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError


@dataclass(frozen=True)
class TimingModel:
    """All timing in nanoseconds; one beat = one bus character."""

    beat_ns: float = 250.0

    def __post_init__(self):
        if self.beat_ns <= 0:
            raise ReproError("beat time must be positive")

    # -- headline rates ----------------------------------------------------

    def bus_rate_chars_per_s(self) -> float:
        """One character (pattern or text) per beat."""
        return 1e9 / self.beat_ns

    def text_rate_chars_per_s(self) -> float:
        """Text characters: every other bus slot."""
        return self.bus_rate_chars_per_s() / 2

    # -- end-to-end times ----------------------------------------------------------

    def single_chip_run_ns(self, n_text: int, n_cells: int) -> float:
        """Fill + stream + drain for one run (matches the array driver)."""
        e_s = n_cells + 1
        beats = e_s + 2 * max(0, n_text - 1) + n_cells + 1
        return beats * self.beat_ns

    def cascade_run_ns(self, n_text: int, n_cells: int, n_chips: int) -> float:
        """A cascade is a longer chip: same rate, longer fill/drain."""
        return self.single_chip_run_ns(n_text, n_cells * n_chips)

    def multipass_run_ns(self, n_text: int, n_cells: int, pattern_len: int) -> float:
        """Section 3.4 multipass: runs = ceil((N - k)/n), each a full pass."""
        k = pattern_len - 1
        covered = max(0, n_text - k)
        runs = -(-covered // n_cells) if covered else 0
        total = 0.0
        for r in range(runs):
            offset = (r + 1) * n_cells
            e_s = n_cells + 1
            beats = max(
                e_s + 2 * max(0, n_text - 1),
                2 * (offset + pattern_len - 1),
            ) + n_cells + 1
            total += beats * self.beat_ns
        return total

    def per_text_char_ns(self, pattern_len: int) -> float:
        """Steady-state cost per text character: INDEPENDENT of pattern
        length -- the claim the comparison benches plot."""
        return 2 * self.beat_ns

    def software_per_text_char_ns(
        self, pattern_len: int, op_ns: float = 900.0, ops_per_compare: float = 4.0
    ) -> float:
        """Naive software: grows linearly with pattern length."""
        return pattern_len * ops_per_compare * op_ns
