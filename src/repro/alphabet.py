"""Alphabets, the wild-card character, and binary character encodings.

Section 3.1 of the paper defines the matching problem over an alphabet
``Sigma`` with a distinguished wild-card character ``x`` that may appear in
the *pattern* only and matches any text character.  The fabricated prototype
(Plate 2) used two-bit characters, i.e. ``|Sigma| = 4``; the bit-pipelined
comparator array (Figure 3-4) operates on the binary encoding of characters,
high-order bit first.

This module provides:

* :class:`Alphabet` -- a finite, ordered character set with a stable binary
  encoding of configurable width,
* :data:`WILDCARD` -- the canonical wild-card marker used throughout the
  library,
* :class:`PatternChar` -- one pattern position (character + ``x`` bit),
* :func:`parse_pattern` -- turn a user string such as ``"AXC"`` (where the
  wildcard letter is configurable) into a list of :class:`PatternChar`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from .errors import AlphabetError, PatternError

#: The canonical wild-card object.  It is intentionally *not* a plain string
#: so that it can never collide with a legitimate alphabet character.
WILDCARD = object()


def is_wildcard(ch: object) -> bool:
    """Return True if *ch* is the canonical wild-card marker."""
    return ch is WILDCARD


class Alphabet:
    """A finite ordered alphabet with a fixed-width binary encoding.

    Parameters
    ----------
    symbols:
        The characters of the alphabet, in encoding order.  Symbol *i*
        encodes to the ``bits``-wide big-endian binary representation of
        ``i``.
    bits:
        Width of the binary encoding.  Defaults to the minimum width that
        can represent every symbol.  The prototype chip used ``bits=2``.

    Examples
    --------
    >>> ab = Alphabet("ABCD")
    >>> ab.bits
    2
    >>> ab.encode("C")
    (1, 0)
    >>> ab.decode((1, 0))
    'C'
    """

    def __init__(self, symbols: Sequence[str], bits: int = None):
        symbols = list(symbols)
        if not symbols:
            raise AlphabetError("alphabet must contain at least one symbol")
        if len(set(symbols)) != len(symbols):
            raise AlphabetError("alphabet symbols must be distinct")
        for s in symbols:
            if not isinstance(s, str) or len(s) != 1:
                raise AlphabetError(
                    f"alphabet symbols must be single characters, got {s!r}"
                )
        min_bits = max(1, (len(symbols) - 1).bit_length())
        if bits is None:
            bits = min_bits
        if bits < min_bits:
            raise AlphabetError(
                f"{bits} bits cannot encode {len(symbols)} symbols "
                f"(need at least {min_bits})"
            )
        self._symbols: Tuple[str, ...] = tuple(symbols)
        self._bits = bits
        self._index = {s: i for i, s in enumerate(self._symbols)}

    # -- basic queries ----------------------------------------------------

    @property
    def symbols(self) -> Tuple[str, ...]:
        """The alphabet symbols in encoding order."""
        return self._symbols

    @property
    def bits(self) -> int:
        """Width of the binary character encoding, in bits."""
        return self._bits

    def __len__(self) -> int:
        return len(self._symbols)

    def __contains__(self, ch: object) -> bool:
        return ch in self._index

    def __iter__(self):
        return iter(self._symbols)

    def __repr__(self) -> str:
        return f"Alphabet({''.join(self._symbols)!r}, bits={self._bits})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Alphabet):
            return NotImplemented
        return self._symbols == other._symbols and self._bits == other._bits

    def __hash__(self) -> int:
        return hash((self._symbols, self._bits))

    def index(self, ch: str) -> int:
        """Return the encoding index of *ch*.

        Raises :class:`AlphabetError` if *ch* is not in the alphabet.
        """
        try:
            return self._index[ch]
        except KeyError:
            raise AlphabetError(f"{ch!r} is not in alphabet {self!r}") from None

    def require(self, ch: str) -> str:
        """Validate that *ch* is a member and return it unchanged."""
        self.index(ch)
        return ch

    def validate_text(self, text: Iterable[str]) -> List[str]:
        """Validate every character of *text*; return it as a list.

        Membership is checked as one set difference (C speed) rather
        than a per-character Python loop; the loop only runs to locate
        the first stray character for the error message.
        """
        chars = list(text)
        stray = set(chars) - self._index.keys()
        if stray:
            for c in chars:
                if c in stray:
                    raise AlphabetError(
                        f"{c!r} is not in alphabet {self!r}"
                    ) from None
        return chars

    # -- binary encoding (Figure 3-4: high-order bit enters first) --------

    def encode(self, ch: str) -> Tuple[int, ...]:
        """Encode *ch* as a big-endian tuple of bits (MSB first)."""
        i = self.index(ch)
        return tuple((i >> (self._bits - 1 - b)) & 1 for b in range(self._bits))

    def decode(self, bits: Sequence[int]) -> str:
        """Decode a big-endian bit tuple back into a character."""
        if len(bits) != self._bits:
            raise AlphabetError(
                f"expected {self._bits} bits, got {len(bits)}"
            )
        value = 0
        for b in bits:
            if b not in (0, 1):
                raise AlphabetError(f"bit values must be 0 or 1, got {b!r}")
            value = (value << 1) | b
        if value >= len(self._symbols):
            raise AlphabetError(
                f"bit pattern {tuple(bits)} does not decode to a symbol "
                f"of {self!r}"
            )
        return self._symbols[value]


#: The alphabet of the fabricated prototype chip (Plate 2): four symbols,
#: two-bit characters.
PROTOTYPE_ALPHABET = Alphabet("ABCD", bits=2)

#: A convenient upper-case ASCII alphabet for text-search examples.
ASCII_UPPER = Alphabet("ABCDEFGHIJKLMNOPQRSTUVWXYZ ", bits=5)


@dataclass(frozen=True)
class PatternChar:
    """One position of a pattern: a character plus the don't-care bit.

    In the chip the pattern stream carries, alongside each character, an
    ``x`` bit marking wildcard positions and a ``lambda`` bit marking the
    end of the pattern (Section 3.2.1).  ``lambda`` is positional so it is
    attached when the pattern is loaded into an array, not here.
    """

    char: str
    is_wild: bool = False

    def matches(self, text_char: str) -> bool:
        """Does this pattern position match *text_char*?"""
        return self.is_wild or self.char == text_char

    def __str__(self) -> str:
        return "X*" if self.is_wild else self.char


def parse_pattern(
    pattern: Sequence[object],
    alphabet: Alphabet,
    wildcard_symbol: str = "X",
) -> List[PatternChar]:
    """Parse a user-supplied pattern into :class:`PatternChar` objects.

    *pattern* may mix alphabet characters, the *wildcard_symbol* string
    (by default ``"X"``; pass ``None`` to disable), and the canonical
    :data:`WILDCARD` object.  The wildcard symbol is only treated as a
    wildcard when it is **not** itself a member of the alphabet, matching
    the paper's requirement that ``x`` be outside ``Sigma``; to use a
    wildcard with an alphabet that contains the letter X, pass
    :data:`WILDCARD` objects explicitly.

    >>> parse_pattern("AXC", Alphabet("ABCD"))
    [PatternChar(char='A', is_wild=False), PatternChar(char='A', is_wild=True), PatternChar(char='C', is_wild=False)]
    """
    if pattern is None or len(pattern) == 0:
        raise PatternError("pattern must contain at least one character")
    out: List[PatternChar] = []
    wildcard_is_symbolic = (
        wildcard_symbol is not None and wildcard_symbol not in alphabet
    )
    for ch in pattern:
        if is_wildcard(ch) or (wildcard_is_symbolic and ch == wildcard_symbol):
            # The stored character is arbitrary for a wildcard position; use
            # the first alphabet symbol so downstream binary encodings are
            # well defined (the comparator output is ignored anyway).
            out.append(PatternChar(alphabet.symbols[0], is_wild=True))
        else:
            if not isinstance(ch, str):
                raise PatternError(f"pattern element {ch!r} is not a character")
            alphabet.require(ch)
            out.append(PatternChar(ch, is_wild=False))
    return out


def pattern_to_string(pattern: Sequence[PatternChar], wildcard_symbol: str = "X") -> str:
    """Render a parsed pattern back to a display string."""
    return "".join(wildcard_symbol if pc.is_wild else pc.char for pc in pattern)
