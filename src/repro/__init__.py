"""repro: a full-stack reproduction of Foster & Kung (ISCA 1980),
"Design of Special-Purpose VLSI Chips: Example and Opinions".

The package models the paper's systolic pattern-matching chip at every
level the paper describes -- behavioural algorithm, bit-pipelined array,
switch-level NMOS circuit, stick diagram / mask layout / CIF -- together
with the host system of Figure 1-1, the rejected design alternatives of
Section 3.3, the extension machines of Section 3.4, and the Section 4
design methodology as an executable task graph.

Quick start::

    from repro import Alphabet, PatternMatcher

    matcher = PatternMatcher("AXC", Alphabet("ABCD"))
    matcher.match("ABCAACACCAB")

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-figure reproductions.
"""

from .alphabet import (
    ASCII_UPPER,
    PROTOTYPE_ALPHABET,
    WILDCARD,
    Alphabet,
    PatternChar,
    parse_pattern,
    pattern_to_string,
)
from .core import (
    BitLevelMatcher,
    FastMatcher,
    MatchReport,
    PatternMatcher,
    SystolicMatcherArray,
    count_oracle,
    match_oracle,
    multipass_match,
)
from .core.fastpath import FastCounter
from .errors import ReproError
from .obs import MetricsRegistry, Observability, Tracer
from .workloads import WorkloadSpec, get_workload, list_workloads, run_workload

__version__ = "1.0.0"

__all__ = [
    "ASCII_UPPER",
    "Alphabet",
    "BitLevelMatcher",
    "FastCounter",
    "FastMatcher",
    "MatchReport",
    "MetricsRegistry",
    "Observability",
    "PROTOTYPE_ALPHABET",
    "PatternChar",
    "PatternMatcher",
    "ReproError",
    "Tracer",
    "SystolicMatcherArray",
    "WILDCARD",
    "WorkloadSpec",
    "count_oracle",
    "get_workload",
    "list_workloads",
    "match_oracle",
    "multipass_match",
    "parse_pattern",
    "pattern_to_string",
    "run_workload",
    "__version__",
]
