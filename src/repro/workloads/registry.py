"""The Section 3.4 workload registry: one contract, many kernels.

The paper's closing argument for the matcher design is that its data flow
is *reusable*: "replacing the result bit stream by a stream of integers"
gives a match counter, swapping the comparator for a difference cell gives
a correlator, and "many other problems, such as convolutions and FIR
filtering, have algorithms that use the same data flow."  This module
turns that observation into an executable interface.  Every Section 3.4
machine is described by a :class:`WorkloadSpec` that knows how to

* parse and validate its parameters (a character pattern or numeric taps)
  and its input stream,
* ``prepare`` the stream for sliding-window evaluation (convolution and
  FIR are inner products against a reversed tap vector over a padded
  stream),
* evaluate the windowed kernel three ways -- ``fast`` (the packed/strided
  kernels in :mod:`repro.core.fastpath`), ``oracle`` (the direct
  definition), and ``stepwise`` (the behavioral cell-by-cell machines in
  :mod:`repro.extensions`) -- and
* ``finalize`` windowed results back into the workload's native output.

The farm (:mod:`repro.service`) schedules any registered workload with
halo-overlap sharding and oracle fallback; :func:`run_workload` is the
single-call entry point.

>>> from repro.alphabet import Alphabet
>>> run_workload("count", "AB", "ABBB", Alphabet("AB"))
[0, 2, 1, 1]
>>> run_workload("correlation", [1.0, 3.0], [1.0, 3.0, 5.0])
[0.0, 0.0, 8.0]
>>> run_workload("fir", [0.5, 0.5], [2.0, 4.0, 6.0])
[1.0, 3.0, 5.0]
>>> run_workload("convolution", [1.0, 2.0], [1.0, 1.0, 1.0])
[1.0, 3.0, 3.0, 2.0]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..alphabet import Alphabet, PatternChar, parse_pattern
from ..errors import PatternError
from ..core.fastpath import (
    FastCounter,
    FastMatcher,
    fast_counts_many,
    fast_inner_products,
    fast_inner_products_many,
    fast_match_many,
    fast_squared_distances,
    fast_squared_distances_many,
)
from ..core.reference import correlation_oracle, count_oracle, match_oracle
from ..extensions.counting import systolic_match_counts
from ..extensions.correlation import systolic_correlation
from ..extensions.convolution import systolic_convolution, systolic_inner_products
from ..extensions.fir import systolic_fir
from ..extensions.linear_products import INNER_PRODUCT, linear_product_oracle

__all__ = [
    "WorkloadSpec",
    "WorkloadError",
    "get_workload",
    "list_workloads",
    "run_workload",
    "run_workload_many",
    "WORKLOADS",
]


class WorkloadError(PatternError):
    """Unknown workload name or invalid workload parameters."""


def _require_alphabet(alphabet: Optional[Alphabet], name: str) -> Alphabet:
    if alphabet is None:
        raise WorkloadError(f"workload {name!r} needs an alphabet")
    return alphabet


def _parse_char_pattern(params, alphabet, name):
    alphabet = _require_alphabet(alphabet, name)
    if params and all(isinstance(pc, PatternChar) for pc in params):
        return list(params)
    return parse_pattern(params, alphabet)


def _parse_taps(params, _alphabet, name):
    taps = [float(v) for v in params]
    if not taps:
        raise WorkloadError(f"workload {name!r} needs at least one tap")
    return taps


def _identity_prepare(taps, feed):
    return taps, feed


def _identity_finalize(_taps, _orig_len, merged):
    return merged


def _conv_prepare(taps, feed):
    pad = [0.0] * (len(taps) - 1)
    return list(reversed(taps)), pad + feed + pad


def _conv_finalize(taps, orig_len, merged):
    if orig_len == 0:
        return []
    k = len(taps) - 1
    return [merged[m + k] for m in range(orig_len + len(taps) - 1)]


def _fir_prepare(taps, feed):
    return list(reversed(taps)), [0.0] * (len(taps) - 1) + feed


def _fir_finalize(taps, _orig_len, merged):
    return merged[len(taps) - 1:]


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything the farm needs to serve one Section 3.4 kernel.

    ``fast``/``oracle`` operate in *window space*: they take the prepared
    taps and stream and emit one value per prepared-stream position, with
    ``incomplete`` for positions before the first full window.  That is
    exactly the matcher's result-stream shape, which is why the farm's
    halo-overlap text sharding applies to every workload unchanged.
    ``stepwise`` runs the whole workload end to end on the behavioral
    :mod:`repro.extensions` machine -- the differential-testing target.
    """

    name: str
    section: str
    summary: str
    numeric: bool
    incomplete: object
    parse_params: Callable[[object, Optional[Alphabet]], list]
    fast: Callable[[list, list, Optional[Alphabet]], list]
    oracle: Callable[[list, list, Optional[Alphabet]], list]
    stepwise: Callable[[object, Sequence, Optional[Alphabet]], list]
    prepare: Callable[[list, list], Tuple[list, list]] = _identity_prepare
    finalize: Callable[[list, int, list], list] = _identity_finalize
    #: Window-space batch evaluator: (prepared taps, list of prepared
    #: feeds, alphabet) -> one merged result list per feed.  None means
    #: "no batched kernel" and run_many falls back to a per-feed ``fast``
    #: loop, so every spec accepts ``engine="batched"``.
    batched: Optional[Callable[[list, List[list], Optional[Alphabet]], List[list]]] = None

    def window_length(self, taps: Sequence) -> int:
        """Sliding-window width: the halo the shard planner must overlap."""
        return len(taps)

    def validate_stream(self, stream: Sequence, alphabet: Optional[Alphabet]) -> list:
        if self.numeric:
            return [float(v) for v in stream]
        return _require_alphabet(alphabet, self.name).validate_text(stream)

    def run(
        self,
        params,
        stream: Sequence,
        alphabet: Optional[Alphabet] = None,
        engine: str = "fast",
    ) -> list:
        """Uniform entry point: parse, prepare, evaluate, finalize.

        ``engine`` selects the evaluator: ``"fast"`` (default),
        ``"oracle"`` (direct definition), ``"stepwise"`` (the
        cell-by-cell :mod:`repro.extensions` machine), or ``"batched"``
        (the vectorized batch kernel, via a one-element batch).
        """
        if engine == "batched":
            return self.run_many(params, [stream], alphabet=alphabet)[0]
        if engine == "stepwise":
            return self.stepwise(params, stream, alphabet)
        taps = self.parse_params(params, alphabet)
        validated = self.validate_stream(stream, alphabet)
        ktaps, feed = self.prepare(taps, validated)
        if engine == "fast":
            merged = self.fast(ktaps, feed, alphabet)
        elif engine == "oracle":
            merged = self.oracle(ktaps, feed, alphabet)
        else:
            raise WorkloadError(f"unknown engine {engine!r}")
        return self.finalize(ktaps, len(validated), merged)

    def run_many(
        self,
        params,
        streams: Sequence[Sequence],
        alphabet: Optional[Alphabet] = None,
        engine: str = "batched",
    ) -> List[list]:
        """Run one parameter set over many streams; one result per stream.

        Parameters are parsed and prepared **once** for the whole batch.
        ``engine="batched"`` (default) evaluates every prepared stream in
        a single call to the spec's vectorized batch kernel (or a
        per-stream ``fast`` loop when the spec has none); ``"fast"``,
        ``"oracle"`` and ``"stepwise"`` loop the per-job engines, which
        is what the differential tests compare against.  An empty batch
        returns ``[]``.
        """
        if engine == "stepwise":
            return [self.stepwise(params, s, alphabet) for s in streams]
        if engine not in ("batched", "fast", "oracle"):
            raise WorkloadError(f"unknown engine {engine!r}")
        if not streams:
            return []
        taps = self.parse_params(params, alphabet)
        validated = [self.validate_stream(s, alphabet) for s in streams]
        prepared = [self.prepare(taps, v) for v in validated]
        ktaps = prepared[0][0]
        feeds = [feed for _ktaps, feed in prepared]
        if engine == "batched" and self.batched is not None:
            merged_all = self.batched(ktaps, feeds, alphabet)
        elif engine == "oracle":
            merged_all = [self.oracle(ktaps, f, alphabet) for f in feeds]
        else:  # "fast", or "batched" on a spec without a batch kernel
            merged_all = [self.fast(ktaps, f, alphabet) for f in feeds]
        return [
            self.finalize(ktaps, len(v), m)
            for v, m in zip(validated, merged_all)
        ]

    def compile_chip(self, cells: int, char_bits: int = 2, data_bits: int = 2):
        """Compile this workload to silicon (see :mod:`repro.compiler`).

        Only the kernels with a cell library -- ``match``, ``count`` and
        ``inner-product`` -- are compilable; the rest raise
        :class:`~repro.errors.WorkloadError`.

        >>> WORKLOADS["match"].compile_chip(4).spec.name
        'match_4x2'
        >>> WORKLOADS["fir"].compile_chip(4)  # doctest: +IGNORE_EXCEPTION_DETAIL
        Traceback (most recent call last):
            ...
        WorkloadError: workload 'fir' has no chip compiler backend ...
        """
        from ..compiler import KERNELS, compile_workload

        if self.name not in KERNELS:
            raise WorkloadError(
                f"workload {self.name!r} has no chip compiler backend "
                f"(compilable: {', '.join(KERNELS)})"
            )
        return compile_workload(
            self.name, cells, char_bits=char_bits, data_bits=data_bits
        )


WORKLOADS: Dict[str, WorkloadSpec] = {}


def _register(spec: WorkloadSpec) -> WorkloadSpec:
    WORKLOADS[spec.name] = spec
    return spec


MATCH = _register(WorkloadSpec(
    name="match",
    section="3.1",
    summary="wildcard substring matching (the chip's native workload)",
    numeric=False,
    incomplete=False,
    parse_params=lambda params, al: _parse_char_pattern(params, al, "match"),
    fast=lambda taps, feed, al: FastMatcher(taps, al).match(feed),
    oracle=lambda taps, feed, al: match_oracle(taps, feed),
    stepwise=lambda params, stream, al: _stepwise_match(params, stream, al),
    batched=lambda taps, feeds, al: fast_match_many(taps, feeds, al),
))

COUNT = _register(WorkloadSpec(
    name="count",
    section="3.4",
    summary="per-window count of matching pattern positions",
    numeric=False,
    incomplete=0,
    parse_params=lambda params, al: _parse_char_pattern(params, al, "count"),
    fast=lambda taps, feed, al: FastCounter(taps, al).counts(feed),
    oracle=lambda taps, feed, al: count_oracle(taps, feed),
    stepwise=lambda params, stream, al: systolic_match_counts(
        params, stream, _require_alphabet(al, "count")
    ),
    batched=lambda taps, feeds, al: fast_counts_many(taps, feeds, al),
))

CORRELATION = _register(WorkloadSpec(
    name="correlation",
    section="3.4",
    summary="per-window sum of squared differences (small = good match)",
    numeric=True,
    incomplete=0.0,
    parse_params=lambda params, al: _parse_taps(params, al, "correlation"),
    fast=lambda taps, feed, al: fast_squared_distances(taps, feed),
    oracle=lambda taps, feed, al: correlation_oracle(taps, feed),
    stepwise=lambda params, stream, al: systolic_correlation(
        [float(v) for v in params], [float(v) for v in stream]
    ),
    batched=lambda taps, feeds, al: fast_squared_distances_many(taps, feeds),
))

INNER = _register(WorkloadSpec(
    name="inner-product",
    section="3.4",
    summary="sliding inner products of the tap vector against the stream",
    numeric=True,
    incomplete=0.0,
    parse_params=lambda params, al: _parse_taps(params, al, "inner-product"),
    fast=lambda taps, feed, al: fast_inner_products(taps, feed),
    oracle=lambda taps, feed, al: linear_product_oracle(
        taps, feed, INNER_PRODUCT, 0.0
    ),
    stepwise=lambda params, stream, al: systolic_inner_products(
        [float(v) for v in params], [float(v) for v in stream]
    ),
    batched=lambda taps, feeds, al: fast_inner_products_many(taps, feeds),
))

CONVOLUTION = _register(WorkloadSpec(
    name="convolution",
    section="3.4",
    summary="full convolution (numpy.convolve semantics) via padded inner products",
    numeric=True,
    incomplete=0.0,
    parse_params=lambda params, al: _parse_taps(params, al, "convolution"),
    fast=lambda taps, feed, al: fast_inner_products(taps, feed),
    oracle=lambda taps, feed, al: linear_product_oracle(
        taps, feed, INNER_PRODUCT, 0.0
    ),
    stepwise=lambda params, stream, al: systolic_convolution(
        [float(v) for v in params], [float(v) for v in stream]
    ),
    prepare=_conv_prepare,
    finalize=_conv_finalize,
    batched=lambda taps, feeds, al: fast_inner_products_many(taps, feeds),
))

FIR = _register(WorkloadSpec(
    name="fir",
    section="3.4",
    summary="causal FIR filtering, one output per input sample",
    numeric=True,
    incomplete=0.0,
    parse_params=lambda params, al: _parse_taps(params, al, "fir"),
    fast=lambda taps, feed, al: fast_inner_products(taps, feed),
    oracle=lambda taps, feed, al: linear_product_oracle(
        taps, feed, INNER_PRODUCT, 0.0
    ),
    stepwise=lambda params, stream, al: systolic_fir(
        [float(v) for v in params], [float(v) for v in stream]
    ),
    prepare=_fir_prepare,
    finalize=_fir_finalize,
    batched=lambda taps, feeds, al: fast_inner_products_many(taps, feeds),
))


def _stepwise_match(params, stream, alphabet):
    from ..core.matcher import PatternMatcher

    matcher = PatternMatcher(
        params, _require_alphabet(alphabet, "match"), use_fast_path=False
    )
    return matcher.match(stream)


def get_workload(name: str) -> WorkloadSpec:
    """Look up a registered workload.

    >>> get_workload("fir").section
    '3.4'
    >>> get_workload("sorting")  # doctest: +IGNORE_EXCEPTION_DETAIL
    Traceback (most recent call last):
        ...
    WorkloadError: unknown workload 'sorting' (known: ...)
    """
    try:
        return WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise WorkloadError(f"unknown workload {name!r} (known: {known})") from None


def list_workloads() -> List[str]:
    """Registered workload names, alphabetically.

    >>> list_workloads()
    ['convolution', 'correlation', 'count', 'fir', 'inner-product', 'match']
    """
    return sorted(WORKLOADS)


def run_workload(
    name: str,
    params,
    stream: Sequence,
    alphabet: Optional[Alphabet] = None,
    engine: str = "fast",
) -> list:
    """Run one workload end to end (see :meth:`WorkloadSpec.run`)."""
    return get_workload(name).run(params, stream, alphabet=alphabet, engine=engine)


def run_workload_many(
    name: str,
    params,
    streams: Sequence[Sequence],
    alphabet: Optional[Alphabet] = None,
    engine: str = "batched",
) -> List[list]:
    """Run one workload over many streams (see :meth:`WorkloadSpec.run_many`).

    >>> from repro.alphabet import Alphabet
    >>> run_workload_many("match", "AB", ["ABC", "BA"], Alphabet("ABCD"))
    [[False, True, False], [False, False]]
    >>> run_workload_many("fir", [0.5, 0.5], [[2.0, 4.0], [6.0]])
    [[1.0, 3.0], [3.0]]
    """
    return get_workload(name).run_many(
        params, streams, alphabet=alphabet, engine=engine
    )
