"""Section 3.4 workloads as first-class farm kernels.

One systolic data flow, many cell functions: this package registers every
workload the paper derives from the pattern matcher -- match counting,
correlation (squared distance), sliding inner products, convolution and
FIR filtering -- behind a uniform contract, so the same scheduling,
sharding, fault-retry and telemetry machinery in :mod:`repro.service`
serves all of them.

>>> from repro.workloads import run_workload
>>> run_workload("fir", [0.5, 0.5], [2.0, 4.0, 6.0])
[1.0, 3.0, 5.0]
"""

from .registry import (
    WORKLOADS,
    WorkloadError,
    WorkloadSpec,
    get_workload,
    list_workloads,
    run_workload,
    run_workload_many,
)

__all__ = [
    "WORKLOADS",
    "WorkloadError",
    "WorkloadSpec",
    "get_workload",
    "list_workloads",
    "run_workload",
    "run_workload_many",
]
