"""The concurrent runtime's fleet-health loop: probe, quarantine, heal.

The async twin of :class:`repro.service.health.FleetHealth`.  Here the
"chips" are real worker processes behind CSP channels, so every step
crosses the process boundary:

* **probe** -- a :class:`~repro.runtime.channels.JobRequest` carrying a
  ``bist`` directive is dispatched *to a specific idle worker* (the
  pool's targeted ``submit_to``, never the EDF heap); the worker runs
  the gate-level self-test in-process against its latent defect and
  replies with the full BIST report.  A busy worker is simply skipped
  -- probes never preempt traffic.
* **quarantine** -- a failing worker leaves the pool's idle list
  permanently (``WorkerPool.quarantine``); in-flight work still drains,
  and the verdict (which cell, which defect) lands in an
  ``health.quarantine`` span.
* **heal** -- a replacement die is harvested from the
  :class:`~repro.wafer.provision.WaferSupply` (exhaustion raises
  :class:`~repro.errors.ProvisionError`, cleanly), the quarantined
  process is respawned on the same channels, its latent-defect
  directive is cleared (fresh silicon), and a verification probe must
  pass before the heal is recorded.

Latent defects are *directives*: the host decides, via the fault
injector's dedicated defect RNG, which worker is currently carrying
which :class:`~repro.service.reliability.CellDefect`, and ships it in
the probe request.  Execution requests never carry it, so a defective
worker computes correct results until caught -- which is exactly why
the byte-identical-results property under churn is worth a test.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional

from ..errors import ProvisionError
from ..service.health import HealthConfig, HealthEvent
from ..service.reliability import CellDefect, FaultInjector
from ..wafer.provision import WaferSupply
from ..wafer.reconfigure import harvest_linear_array
from .channels import JobReply, JobRequest
from .pool import WorkerPool


class RuntimeHealth:
    """Background BIST over a :class:`~repro.runtime.pool.WorkerPool`."""

    def __init__(
        self,
        pool: WorkerPool,
        supply: Optional[WaferSupply] = None,
        injector: Optional[FaultInjector] = None,
        config: Optional[HealthConfig] = None,
        obs=None,
    ):
        self.pool = pool
        self.supply = supply
        self.injector = injector
        self.config = config or HealthConfig()
        self.obs = obs
        #: name -> the latent defect that worker is currently carrying.
        self.directives: Dict[str, CellDefect] = {}
        self.events: List[HealthEvent] = []
        # Probe job ids count down from -1: they can never collide with
        # the service's real job ids, which count up from 0.
        self._probe_id = 0

    def seed_defect(self, name: str, defect: CellDefect) -> None:
        """Declare that worker *name* now carries *defect*."""
        self.directives[name] = defect

    # -- probe -------------------------------------------------------------

    async def probe(self, name: str) -> Optional[dict]:
        """Self-test one worker; the wire-form BIST report, or ``None``
        if the worker was not idle (skip, probe next sweep)."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()

        def on_reply(reply: JobReply) -> None:
            # Collector thread -> event loop.
            loop.call_soon_threadsafe(
                lambda: future.done() or future.set_result(reply)
            )

        self._probe_id -= 1
        cfg = self.config
        defect = self.directives.get(name)
        request = JobRequest(
            job_id=self._probe_id,
            attempt=0,
            workload="bist",
            taps=[],
            stream=[],
            bist={
                "m": cfg.bist_m,
                "w": cfg.bist_w,
                "vectors": cfg.vectors,
                "seed": cfg.seed,
                "characterize": cfg.characterize,
                "defect": defect.to_wire() if defect is not None else None,
            },
        )
        if not await loop.run_in_executor(
            None, self.pool.submit_to, name, request, on_reply
        ):
            return None
        reply = await future
        report = reply.bist
        if self.obs is not None and report is not None:
            self.obs.tracer.record(
                "bist.run", t0=0.0, t1=float(cfg.vectors), unit="beats",
                chip=name, ok=bool(report["ok"]),
                functional_ok=bool(report["functional_ok"]),
                timing_ok=report["timing_ok"],
                cell=(report["diagnosis"] or {}).get("cell", ""),
                defect=defect.describe() if defect is not None else "",
            )
            self.obs.registry.counter(
                "bist.runs",
                verdict="pass" if report["ok"] else "fail",
            ).inc()
        return report

    # -- quarantine --------------------------------------------------------

    def quarantine(self, name: str, report: Optional[dict]) -> HealthEvent:
        self.pool.quarantine(name)
        cell = detail = ""
        diagnosis = (report or {}).get("diagnosis")
        if diagnosis:
            cell = diagnosis["cell"]
            detail = (
                f"{diagnosis['node'] or cell}: got {diagnosis['got']}, "
                f"want {diagnosis['want']}"
            )
        if self.obs is not None:
            defect = self.directives.get(name)
            self.obs.tracer.record(
                "health.quarantine", t0=0.0, t1=0.0, unit="beats",
                worker=name, cell=cell,
                defect=defect.describe() if defect is not None else "",
            )
            self.obs.registry.counter(
                "health.quarantines", worker=name
            ).inc()
        event = HealthEvent(name, "quarantine", cell=cell, detail=detail)
        self.events.append(event)
        return event

    # -- heal --------------------------------------------------------------

    def _harvest_replacement(self) -> int:
        """Draw wafers until one harvests enough cells; its cell count.

        Raises :class:`~repro.errors.ProvisionError` on an exhausted
        supply or when every candidate in the attempt budget fails to
        harvest -- the runtime's healing is gated on the same Section 5
        yield economics as the synchronous farm's.
        """
        assert self.supply is not None
        cfg = self.config
        for _ in range(cfg.max_provision_attempts):
            wafer = self.supply.draw()  # ProvisionError when exhausted
            try:
                harvest = harvest_linear_array(wafer)
            except ProvisionError:
                raise
            except Exception:
                continue  # unharvestable wafer: draw the next one
            if harvest.n_cells >= cfg.min_capacity:
                return harvest.n_cells
        raise ProvisionError(
            f"no provisionable wafer in {cfg.max_provision_attempts} "
            f"candidates ({self.supply.remaining} wafers left)"
        )

    async def heal(self, name: str) -> HealthEvent:
        """Respawn a quarantined worker on freshly harvested silicon.

        The process respawn (join, terminate, drain, spawn) blocks, so
        it runs in the default executor; the replacement must pass a
        verification probe before the heal is recorded.
        """
        loop = asyncio.get_running_loop()
        cells = 0
        if self.supply is not None:
            cells = self._harvest_replacement()
        await loop.run_in_executor(None, self.pool.heal, name)
        self.directives.pop(name, None)  # fresh silicon, no latent fault
        report = await self.probe(name)
        if report is None or not report["ok"]:
            # The replacement failed its incoming test: keep it out.
            self.quarantine(name, report)
            raise ProvisionError(
                f"replacement for worker {name!r} failed verification"
            )
        if self.obs is not None:
            self.obs.registry.counter("health.heals", worker=name).inc()
        event = HealthEvent(
            name, "heal",
            detail=f"{cells} cells harvested" if cells else "respawned",
        )
        self.events.append(event)
        return event

    # -- the loop ----------------------------------------------------------

    async def sweep(self, heal: bool = True) -> List[HealthEvent]:
        """One background pass over every idle worker.

        Seeds latent defects from the injector's defect RNG, probes,
        quarantines failures, and (optionally) heals them in place.
        Returns the actions taken this sweep.
        """
        before = len(self.events)
        for name in self.pool.idle_names():
            if self.injector is not None and name not in self.directives:
                defect = self.injector.sample_defect(
                    self.config.bist_m, self.config.bist_w
                )
                if defect is not None:
                    self.directives[name] = defect
            report = await self.probe(name)
            if report is None:
                continue
            if not report["ok"]:
                self.quarantine(name, report)
                if heal:
                    await self.heal(name)
        return self.events[before:]
