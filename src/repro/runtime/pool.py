"""The process pool: real workers behind bounded channels, EDF dispatch.

:class:`WorkerPool` is the *mechanism* half of the concurrent runtime
(the :class:`~repro.runtime.service.AsyncMatcherService` is the policy
half).  It owns

* N spawn-context worker processes, each running
  :func:`~repro.runtime.worker.worker_main` behind a capacity-1 request
  :class:`~repro.runtime.channels.Channel` (at most one job queued in
  front of a device -- the paper's host never stacks work on the bus)
  and one shared reply channel,
* a dispatcher thread that pops the earliest-deadline pending job and
  sends it to an idle worker (SLO-aware: deadline first, then priority
  class, then admission order), and
* a collector thread that receives replies, frees the worker, and hands
  the reply to the submitter's callback.  Replies whose (job, attempt)
  was cancelled -- the job's deadline fired and the host already served
  it degraded -- are *dropped*: a hung worker can finish late without
  corrupting anything, which is what keeps slow workers from wedging a
  drain.

The pool never retries, degrades, or verifies; it moves messages.  All
reliability policy stays in the service layer, threading the existing
:mod:`repro.service.reliability` machinery.
"""

from __future__ import annotations

import heapq
import math
import multiprocessing as mp
import queue
import threading
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..alphabet import Alphabet
from ..errors import ServiceError
from .channels import SHUTDOWN, Channel, JobReply, JobRequest
from .worker import worker_main

ReplyCallback = Callable[[JobReply], None]


class WorkerPool:
    """N worker processes with deadline-ordered dispatch.

    Parameters
    ----------
    n_workers:
        Process count.  Real parallelism tops out at the machine's core
        count; the pool itself imposes no such limit.
    alphabet:
        Shared :class:`~repro.alphabet.Alphabet` for character
        workloads (may be ``None`` for purely numeric traffic).
    obs:
        Optional :class:`~repro.obs.Observability`; the pool counts
        dispatches, replies, and dropped (stale) replies into it, and
        asks workers to collect per-job metrics/spans for merge-back.
    """

    def __init__(
        self,
        n_workers: int,
        alphabet: Optional[Alphabet] = None,
        obs=None,
        name_prefix: str = "proc",
    ):
        if n_workers <= 0:
            raise ServiceError("worker pool needs at least one process")
        self.n_workers = n_workers
        self.alphabet = alphabet
        self.obs = obs
        self._ctx = mp.get_context("spawn")
        self._names = [f"{name_prefix}-{i}" for i in range(n_workers)]
        self._requests = [Channel(self._ctx, 1) for _ in range(n_workers)]
        self._replies = Channel(self._ctx, 2 * n_workers + 4)
        self._procs: List[mp.process.BaseProcess] = []
        self._cond = threading.Condition()
        # (deadline, priority, seq) orders the pending heap: EDF first,
        # service class second, admission order last.
        self._pending: List[Tuple[float, int, int, JobRequest]] = []
        self._callbacks: Dict[Tuple[int, int], ReplyCallback] = {}
        self._cancelled: Set[Tuple[int, int]] = set()
        self._idle: List[int] = []
        # Workers pulled from dispatch by the health loop: never in
        # _idle, never dispatched to, until heal() respawns them.
        self._quarantined: Set[int] = set()
        self._index = {name: i for i, name in enumerate(self._names)}
        self._seq = 0
        self._started = False
        self._closing = False
        self._dispatcher: Optional[threading.Thread] = None
        self._collector: Optional[threading.Thread] = None
        self.dispatched = 0
        self.replies = 0
        self.dropped_replies = 0

    # -- lifecycle ---------------------------------------------------------

    def _spawn(self, widx: int) -> mp.process.BaseProcess:
        """One worker process on worker *widx*'s channels."""
        symbols = bits = None
        if self.alphabet is not None:
            symbols = "".join(self.alphabet.symbols)
            bits = self.alphabet.bits
        proc = self._ctx.Process(
            target=worker_main,
            args=(
                self._names[widx], symbols, bits,
                self._requests[widx], self._replies,
            ),
            name=f"repro-runtime-{self._names[widx]}",
            daemon=True,
        )
        proc.start()
        return proc

    def start(self) -> "WorkerPool":
        """Spawn the workers and the dispatcher/collector threads."""
        if self._started:
            return self
        for i in range(self.n_workers):
            self._procs.append(self._spawn(i))
        self._idle = list(range(self.n_workers))
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-runtime-dispatch",
            daemon=True,
        )
        self._collector = threading.Thread(
            target=self._collect_loop, name="repro-runtime-collect",
            daemon=True,
        )
        self._started = True
        self._dispatcher.start()
        self._collector.start()
        return self

    def shutdown(self, timeout: float = 10.0) -> None:
        """Graceful stop: drain nothing, just stop cleanly.

        Pending (undispatched) jobs are discarded -- the service layer
        drains before shutting down.  Workers get a SHUTDOWN sentinel;
        any that are hung past *timeout* are terminated.
        """
        if not self._started or self._closing:
            self._closing = True
            return
        with self._cond:
            self._closing = True
            self._cond.notify_all()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=timeout)
        for ch in self._requests:
            ch.try_send(SHUTDOWN)
        for proc in self._procs:
            proc.join(timeout=timeout)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        if self._collector is not None:
            self._collector.join(timeout=timeout)
        for ch in self._requests:
            ch.close()
        self._replies.close()

    @property
    def alive(self) -> bool:
        return self._started and not self._closing

    @property
    def n_idle(self) -> int:
        with self._cond:
            return len(self._idle)

    @property
    def n_pending(self) -> int:
        with self._cond:
            return len(self._pending)

    # -- submission --------------------------------------------------------

    def submit(
        self,
        request: JobRequest,
        callback: ReplyCallback,
        deadline: Optional[float] = None,
        priority: int = 1,
    ) -> None:
        """Queue one request for dispatch.

        *deadline* is a ``time.monotonic``-domain instant (None = no
        SLO); *callback* runs on the collector thread and must be cheap
        and thread-safe (the async service bridges it onto the event
        loop).
        """
        if not self._started:
            raise ServiceError("worker pool is not started")
        key = (request.job_id, request.attempt)
        with self._cond:
            if self._closing:
                raise ServiceError("worker pool is shutting down")
            self._seq += 1
            heapq.heappush(
                self._pending,
                (
                    deadline if deadline is not None else math.inf,
                    priority,
                    self._seq,
                    request,
                ),
            )
            self._callbacks[key] = callback
            self._cond.notify_all()

    def cancel(self, job_id: int, attempt: int) -> None:
        """Forget one (job, attempt): skip it if undispatched, drop its
        reply if it is already running."""
        key = (job_id, attempt)
        with self._cond:
            self._callbacks.pop(key, None)
            self._cancelled.add(key)

    # -- fleet health ------------------------------------------------------

    def idle_names(self) -> List[str]:
        """Names of the workers currently idle (probe candidates)."""
        with self._cond:
            return [self._names[i] for i in sorted(self._idle)]

    def quarantined_names(self) -> List[str]:
        with self._cond:
            return [self._names[i] for i in sorted(self._quarantined)]

    def submit_to(
        self, name: str, request: JobRequest, callback: ReplyCallback
    ) -> bool:
        """Targeted dispatch: send *request* to one specific worker,
        only if it is idle right now.

        The health loop uses this for BIST probes -- a probe must land
        on the worker being probed (the EDF heap would route it
        anywhere) and must never preempt real traffic, so a busy or
        quarantined worker just returns ``False`` (probe it next
        sweep).
        """
        widx = self._index.get(name)
        if widx is None:
            raise ServiceError(f"no pool worker named {name!r}")
        if not self._started:
            raise ServiceError("worker pool is not started")
        key = (request.job_id, request.attempt)
        with self._cond:
            if (
                self._closing
                or widx in self._quarantined
                or widx not in self._idle
            ):
                return False
            self._idle.remove(widx)
            self._callbacks[key] = callback
            self.dispatched += 1
        self._requests[widx].send(request)
        if self.obs is not None:
            self.obs.registry.counter(
                "runtime.pool.dispatched", worker=name
            ).inc()
        return True

    def quarantine(self, name: str) -> None:
        """Remove one worker from dispatch until :meth:`heal`.

        Idempotent.  A busy worker finishes (or hangs on) its current
        job, but its reply no longer returns it to the idle list, so no
        further work ever reaches it.
        """
        widx = self._index.get(name)
        if widx is None:
            raise ServiceError(f"no pool worker named {name!r}")
        with self._cond:
            self._quarantined.add(widx)
            if widx in self._idle:
                self._idle.remove(widx)
            self._cond.notify_all()
        if self.obs is not None:
            self.obs.registry.counter(
                "runtime.pool.quarantines", worker=name
            ).inc()

    def heal(self, name: str, timeout: float = 10.0) -> None:
        """Replace a quarantined worker's process with a fresh one.

        The old process gets a SHUTDOWN sentinel and a grace period,
        then is terminated; its request channel is drained so the
        replacement inherits clean channels; the fresh process rejoins
        the idle list.  Only a quarantined worker can be healed --
        healing a live one would drop its in-flight job.
        """
        widx = self._index.get(name)
        if widx is None:
            raise ServiceError(f"no pool worker named {name!r}")
        with self._cond:
            if widx not in self._quarantined:
                raise ServiceError(
                    f"worker {name!r} is not quarantined; only a "
                    "quarantined worker can be healed"
                )
        proc = self._procs[widx]
        ch = self._requests[widx]
        ch.try_send(SHUTDOWN)
        proc.join(timeout=timeout)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=1.0)
        while True:
            got, _ = ch.try_recv()
            if not got:
                break
        self._procs[widx] = self._spawn(widx)
        with self._cond:
            self._quarantined.discard(widx)
            if widx not in self._idle:
                self._idle.append(widx)
            self._cond.notify_all()
        if self.obs is not None:
            self.obs.registry.counter(
                "runtime.pool.heals", worker=name
            ).inc()

    # -- threads -----------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while not self._closing and not (
                    self._pending and self._idle
                ):
                    self._cond.wait()
                if self._closing:
                    return
                _, _, _, request = heapq.heappop(self._pending)
                key = (request.job_id, request.attempt)
                if key in self._cancelled:
                    self._cancelled.discard(key)
                    continue
                widx = self._idle.pop(0)
                self.dispatched += 1
            # Send outside the lock: the worker is idle, so its
            # capacity-1 channel is empty and this cannot block long.
            self._requests[widx].send(request)
            if self.obs is not None:
                self.obs.registry.counter(
                    "runtime.pool.dispatched", worker=self._names[widx]
                ).inc()

    def _collect_loop(self) -> None:
        while True:
            try:
                reply = self._replies.recv(timeout=0.1)
            except queue.Empty:
                if self._closing:
                    return
                continue
            except (EOFError, OSError):
                return
            key = (reply.job_id, reply.attempt)
            with self._cond:
                widx = self._index.get(reply.worker)
                if (
                    widx is not None
                    and widx not in self._idle
                    and widx not in self._quarantined
                ):
                    self._idle.append(widx)
                callback = self._callbacks.pop(key, None)
                stale = key in self._cancelled
                self._cancelled.discard(key)
                self.replies += 1
                self._cond.notify_all()
            if callback is None or stale:
                self.dropped_replies += 1
                if self.obs is not None:
                    self.obs.registry.counter(
                        "runtime.pool.dropped_replies"
                    ).inc()
                continue
            if self.obs is not None:
                self.obs.registry.counter(
                    "runtime.pool.replies", worker=reply.worker
                ).inc()
            callback(reply)
