"""`AsyncMatcherService`: the concurrent front door of the matcher farm.

Where :class:`~repro.service.service.MatcherService` *simulates* a busy
host on a beat clock, this service *is* one: an asyncio front-end admits
jobs (per-tenant rate limits, bounded pending set, per-job deadlines),
a :class:`~repro.runtime.pool.WorkerPool` of real processes executes the
workload kernels in parallel, and completed results stream back to
awaiting clients.  It is the Figure 1-1 host/device split made literal:
the event loop is the host, the pool processes are the attached
special-purpose devices, and the bounded channels between them are the
bus.

The reliability story is the synchronous farm's, threaded through
unchanged: a seeded :class:`~repro.service.reliability.FaultInjector`
decides per dispatch whether the device dies mid-job or stalls;
:class:`~repro.service.reliability.RetryPolicy` bounds reassignment; and
exhausted retries, saturation, and expired deadlines all degrade to
:class:`~repro.service.reliability.SoftwareFallback` -- slower, never
wrong.  Whatever the routing, results are byte-identical to the
synchronous service and to the workload oracle (property-tested in
``tests/test_runtime_async.py``).

Usage::

    async with AsyncMatcherService(4, Alphabet("ABCD")) as svc:
        jid = await svc.submit("AXC", "ABCAACACCAB", tenant="alice")
        result = await svc.result(jid)
        async for r in svc.stream_results():   # completion order
            ...
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import AsyncIterator, Dict, List, Mapping, Optional, Sequence, Tuple

from ..alphabet import Alphabet
from ..errors import BackpressureError, ServiceError
from ..service.reliability import (
    FaultInjector,
    FaultKind,
    RetryPolicy,
    SoftwareFallback,
)
from ..service.scheduler import Priority
from ..workloads.registry import WorkloadSpec, get_workload
from .admission import RateLimiter
from .channels import JobReply, JobRequest
from .pool import WorkerPool


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs of the concurrent runtime.

    ``max_pending``: admitted-but-unfinished bound; beyond it submission
    raises :class:`~repro.errors.BackpressureError` or (default) runs on
    the host oracle, exactly like the farm's ``degrade_when_saturated``.
    ``max_retries``: failed executions per job before degrading.
    ``default_timeout_s``: SLO applied to jobs submitted without an
    explicit ``timeout`` (None = no deadline).
    ``stuck_stall_s``: wall seconds per stuck *beat* when a seeded
    stuck-beats fault is injected (0 disables actual stalling; the
    fault is still counted).
    ``rate_limits``: tenant -> (jobs/s, burst) token-bucket specs;
    ``default_rate_limit`` applies to unlisted tenants.
    """

    max_pending: int = 256
    max_retries: int = 2
    default_timeout_s: Optional[float] = None
    degrade_when_saturated: bool = True
    stuck_stall_s: float = 0.0
    rate_limits: Mapping[str, Tuple[float, float]] = field(
        default_factory=dict
    )
    default_rate_limit: Optional[Tuple[float, float]] = None

    def __post_init__(self):
        if self.max_pending <= 0:
            raise ServiceError("max_pending must be positive")
        if self.max_retries < 0:
            raise ServiceError("max_retries cannot be negative")
        if self.default_timeout_s is not None and self.default_timeout_s <= 0:
            raise ServiceError("default_timeout_s must be positive")
        if self.stuck_stall_s < 0:
            raise ServiceError("stuck_stall_s cannot be negative")


@dataclass(frozen=True)
class RuntimeResult:
    """One completed job: oracle-identical results plus its wall-clock
    latency story (seconds, unlike the simulated farm's beats)."""

    job_id: int
    tenant: str
    priority: Priority
    workload: str
    results: list
    submitted_s: float
    started_s: float
    finished_s: float
    attempts: int
    via_fallback: bool
    timed_out: bool
    worker: Optional[str]
    mode: str

    @property
    def wait_s(self) -> float:
        return self.started_s - self.submitted_s

    @property
    def latency_s(self) -> float:
        return self.finished_s - self.submitted_s


class _Job:
    """In-flight bookkeeping for one admitted job."""

    __slots__ = (
        "job_id", "tenant", "priority", "workload", "spec", "taps",
        "stream", "orig_len", "deadline", "submitted_s", "started_s",
        "attempts", "future", "span", "done", "timed_out", "timer",
    )

    def __init__(
        self, job_id, tenant, priority, workload, spec, taps, stream,
        orig_len, submitted_s, future,
    ):
        self.job_id = job_id
        self.tenant = tenant
        self.priority = priority
        self.workload = workload
        self.spec: WorkloadSpec = spec
        self.taps = taps
        self.stream = stream
        self.orig_len = orig_len
        self.deadline: Optional[float] = None
        self.submitted_s = submitted_s
        self.started_s: Optional[float] = None
        self.attempts = 0
        self.future: asyncio.Future = future
        self.span = None
        self.done = False
        self.timed_out = False
        self.timer: Optional[asyncio.TimerHandle] = None


class AsyncMatcherService:
    """Concurrent submit/stream/drain over a pool of worker processes.

    Construct with a worker count and alphabet (a pool is built for
    you) or pass a prebuilt :class:`~repro.runtime.pool.WorkerPool`.
    The service must be started before submitting -- ``async with`` or
    an explicit ``await start()`` -- and closed when finished so the
    processes join.
    """

    def __init__(
        self,
        n_workers: int = 2,
        alphabet: Optional[Alphabet] = None,
        config: Optional[RuntimeConfig] = None,
        faults: Optional[FaultInjector] = None,
        obs=None,
        pool: Optional[WorkerPool] = None,
    ):
        self.config = config or RuntimeConfig()
        self.pool = pool if pool is not None else WorkerPool(
            n_workers, alphabet, obs=obs
        )
        self.alphabet = self.pool.alphabet
        self.faults = faults or FaultInjector()
        self.retry = RetryPolicy(self.config.max_retries)
        self.fallback = SoftwareFallback()
        self.obs = obs
        if obs is not None:
            self.faults.attach_obs(obs)
        from ..obs.metrics import MetricsRegistry

        self.registry = obs.registry if obs is not None else MetricsRegistry()
        r = self.registry
        self._m_submitted = r.counter("runtime.jobs.submitted")
        self._m_completed = r.counter("runtime.jobs.completed")
        self._m_retries = r.counter("runtime.retries")
        self._m_deaths = r.counter("runtime.deaths")
        self._m_fallbacks = r.counter("runtime.fallbacks")
        self._m_timeouts = r.counter("runtime.timeouts")
        self._m_backpressure = r.counter("runtime.backpressure_hits")
        self._m_stale = r.counter("runtime.stale_replies")
        self._h_latency = r.histogram("runtime.job.latency_s")
        self.limiter = RateLimiter(
            self.config.rate_limits, self.config.default_rate_limit
        )
        self._jobs: Dict[int, _Job] = {}
        self._completed: Dict[int, RuntimeResult] = {}
        self._next_id = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._t0 = time.perf_counter()
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "AsyncMatcherService":
        if self._started:
            return self
        self._loop = asyncio.get_running_loop()
        await self._loop.run_in_executor(None, self.pool.start)
        self._started = True
        return self

    async def close(self, drain: bool = True) -> None:
        """Graceful shutdown: optionally drain, then join the workers."""
        if drain and self._started:
            await self.drain()
        if self._started:
            await self._loop.run_in_executor(None, self.pool.shutdown)
        self._started = False

    async def __aenter__(self) -> "AsyncMatcherService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close(drain=exc_type is None)

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    # -- submission --------------------------------------------------------

    async def submit(
        self,
        params,
        stream: Sequence,
        tenant: str = "default",
        priority: Priority = Priority.BATCH,
        workload: str = "match",
        timeout: Optional[float] = None,
    ) -> int:
        """Admit one job; returns its id (await :meth:`result` for the
        value).

        The submitter is *suspended* while its tenant is over its rate
        limit (CSP backpressure).  When the pending set is at
        ``max_pending`` the job is shed: served immediately from the
        host-side oracle if ``degrade_when_saturated`` (never wrong,
        just slower), else :class:`~repro.errors.BackpressureError`.
        *timeout* (seconds) is the job's SLO: if it expires before a
        worker answers, the job is completed degraded and any late
        worker reply is dropped.
        """
        if not self._started:
            raise ServiceError(
                "service not started (use 'async with' or await start())"
            )
        if timeout is not None and timeout <= 0:
            raise ServiceError("timeout must be positive")
        while True:
            delay = self.limiter.delay(tenant, self._loop.time())
            if delay <= 0.0:
                break
            await asyncio.sleep(delay)
        spec = get_workload(workload)
        taps = spec.parse_params(params, self.alphabet)
        validated = spec.validate_stream(stream, self.alphabet)
        ktaps, feed = spec.prepare(taps, validated)
        job_id = self._next_id
        self._next_id += 1
        self._m_submitted.inc()
        job = _Job(
            job_id, tenant, priority, workload, spec, ktaps, feed,
            len(validated), self._now(), self._loop.create_future(),
        )
        if self.obs is not None:
            job.span = self.obs.tracer.open_span(
                "runtime.job", t0=job.submitted_s, unit="s",
                job_id=job_id, tenant=tenant, priority=priority.name,
                workload=workload,
            )
        if not validated:
            job.started_s = job.submitted_s
            self._jobs[job_id] = job
            self._complete(job, [], mode="empty", worker=None,
                           via_fallback=False)
            return job_id
        if len(self._jobs) >= self.config.max_pending:
            self._m_backpressure.inc()
            if not self.config.degrade_when_saturated:
                if job.span is not None:
                    self.obs.tracer.close(
                        job.span, t1=self._now(), rejected=True
                    )
                raise BackpressureError(
                    f"runtime pending set full ({self.config.max_pending})"
                )
            self._jobs[job_id] = job
            job.started_s = self._now()
            self._serve_fallback(job, reason="saturated")
            return job_id
        self._jobs[job_id] = job
        timeout_s = timeout if timeout is not None \
            else self.config.default_timeout_s
        if timeout_s is not None:
            job.deadline = self._loop.time() + timeout_s
            job.timer = self._loop.call_later(
                timeout_s, self._on_deadline, job
            )
        self._dispatch(job)
        return job_id

    async def submit_many(
        self,
        params,
        streams: Sequence[Sequence],
        tenant: str = "default",
        priority: Priority = Priority.BATCH,
        workload: str = "match",
        timeout: Optional[float] = None,
    ) -> List[int]:
        """Admit one job per stream (rate limits apply per job)."""
        return [
            await self.submit(
                params, s, tenant=tenant, priority=priority,
                workload=workload, timeout=timeout,
            )
            for s in streams
        ]

    # -- dispatch / completion --------------------------------------------

    def _dispatch(self, job: _Job) -> None:
        fault = self.faults.sample()
        fault_kind = None
        stall_s = 0.0
        if fault is not None:
            if fault.kind is FaultKind.WORKER_DEATH:
                fault_kind = "death"
            else:
                stall_s = fault.extra_beats * self.config.stuck_stall_s
        if job.started_s is None:
            job.started_s = self._now()
        # Character streams cross the process boundary as a compact
        # string (picks/unpickles ~10x faster than a char list); the
        # fast engines iterate either form identically.
        wire_stream = job.stream
        if not job.spec.numeric and wire_stream and \
                isinstance(wire_stream[0], str):
            wire_stream = "".join(wire_stream)
        request = JobRequest(
            job_id=job.job_id,
            attempt=job.attempts,
            workload=job.workload,
            taps=job.taps,
            stream=wire_stream,
            collect_obs=self.obs is not None,
            fault=fault_kind,
            stall_s=stall_s,
        )
        self.pool.submit(
            request,
            self._reply_from_thread,
            deadline=job.deadline,
            priority=int(job.priority),
        )

    def _reply_from_thread(self, reply: JobReply) -> None:
        # Collector-thread context: hop onto the event loop.
        self._loop.call_soon_threadsafe(self._handle_reply, reply)

    def _handle_reply(self, reply: JobReply) -> None:
        job = self._jobs.get(reply.job_id)
        if job is None or job.done or reply.attempt != job.attempts:
            self._m_stale.inc()
            return
        if reply.ok:
            if self.obs is not None:
                if reply.metrics:
                    self.obs.registry.merge_snapshot(reply.metrics)
                if reply.spans:
                    self.obs.tracer.adopt(
                        reply.spans, parent=job.span,
                        offset=max(job.started_s, 0.0),
                    )
            results = job.spec.finalize(job.taps, job.orig_len, reply.results)
            self._complete(
                job, results, mode="pool", worker=reply.worker,
                via_fallback=False,
            )
            return
        job.attempts += 1
        if reply.died:
            self._m_deaths.inc()
        if self.retry.should_retry(job.attempts):
            self._m_retries.inc()
            self._dispatch(job)
        else:
            self._serve_fallback(job, reason="retries-exhausted")

    def _on_deadline(self, job: _Job) -> None:
        """The job's SLO expired: shed it from the pool and serve it
        degraded.  A hung worker can no longer wedge this job."""
        if job.done:
            return
        job.timed_out = True
        self._m_timeouts.inc()
        self.pool.cancel(job.job_id, job.attempts)
        job.attempts += 1
        if self.obs is not None:
            self.obs.tracer.event(
                "runtime.job.timeout", t=self._now(), unit="s",
                job_id=job.job_id, attempts=job.attempts,
            )
        self._serve_fallback(job, reason="deadline")

    def _serve_fallback(self, job: _Job, reason: str) -> None:
        """Host-side degraded service: the oracle answer, never wrong."""
        t0 = self._now()
        if job.workload == "match":
            merged = self.fallback.match(job.taps, job.stream)
        else:
            merged = self.fallback.kernel(job.spec, job.taps, job.stream)
        results = job.spec.finalize(job.taps, job.orig_len, merged)
        self._m_fallbacks.inc()
        if self.obs is not None:
            self.obs.tracer.record(
                "runtime.fallback", t0=t0, t1=self._now(), unit="s",
                parent=job.span, reason=reason, samples=len(job.stream),
            )
        self._complete(
            job, results, mode="software", worker=None, via_fallback=True
        )

    def _complete(
        self, job: _Job, results: list, mode: str,
        worker: Optional[str], via_fallback: bool,
    ) -> None:
        job.done = True
        if job.timer is not None:
            job.timer.cancel()
            job.timer = None
        finished = self._now()
        started = job.started_s if job.started_s is not None else finished
        result = RuntimeResult(
            job_id=job.job_id,
            tenant=job.tenant,
            priority=job.priority,
            workload=job.workload,
            results=results,
            submitted_s=job.submitted_s,
            started_s=started,
            finished_s=finished,
            attempts=job.attempts,
            via_fallback=via_fallback,
            timed_out=job.timed_out,
            worker=worker,
            mode=mode,
        )
        del self._jobs[job.job_id]
        self._completed[job.job_id] = result
        self._m_completed.inc()
        self._h_latency.observe(result.latency_s)
        if job.span is not None:
            self.obs.tracer.close(
                job.span, t1=finished, mode=mode, worker=worker,
                attempts=job.attempts, via_fallback=via_fallback,
                timed_out=job.timed_out,
            )
            job.span = None
        if not job.future.done():
            job.future.set_result(result)

    # -- results -----------------------------------------------------------

    async def result(self, job_id: int) -> RuntimeResult:
        """Await one job's completion."""
        done = self._completed.get(job_id)
        if done is not None:
            return done
        job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job id {job_id}")
        return await asyncio.shield(job.future)

    async def stream_results(
        self, job_ids: Optional[Sequence[int]] = None
    ) -> AsyncIterator[RuntimeResult]:
        """Yield results as they complete (already-done first, in
        completion order), for *job_ids* or everything admitted."""
        if job_ids is None:
            wanted = set(self._completed) | set(self._jobs)
        else:
            wanted = set(job_ids)
        for jid, result in list(self._completed.items()):
            if jid in wanted:
                yield result
        pending = {
            job.future for jid, job in self._jobs.items() if jid in wanted
        }
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            for fut in done:
                yield fut.result()

    async def drain(self) -> List[RuntimeResult]:
        """Wait until every admitted job has completed; returns all
        results so far in job-id order (the sync service's contract)."""
        while self._jobs:
            await asyncio.wait([job.future for job in self._jobs.values()])
        return [self._completed[i] for i in sorted(self._completed)]

    def results(self) -> List[RuntimeResult]:
        """Completed results so far (no waiting), job-id order."""
        return [self._completed[i] for i in sorted(self._completed)]

    # -- counters (registry-backed, like ServiceTelemetry) -----------------

    @property
    def submitted(self) -> int:
        return int(self._m_submitted.value)

    @property
    def completed(self) -> int:
        return int(self._m_completed.value)

    @property
    def retries(self) -> int:
        return int(self._m_retries.value)

    @property
    def deaths(self) -> int:
        return int(self._m_deaths.value)

    @property
    def fallbacks(self) -> int:
        return int(self._m_fallbacks.value)

    @property
    def timeouts(self) -> int:
        return int(self._m_timeouts.value)

    @property
    def backpressure_hits(self) -> int:
        return int(self._m_backpressure.value)

    def stats(self) -> Dict[str, float]:
        """A flat snapshot of the runtime's own counters."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "retries": self.retries,
            "deaths": self.deaths,
            "fallbacks": self.fallbacks,
            "timeouts": self.timeouts,
            "backpressure_hits": self.backpressure_hits,
            "rate_limit_waits": self.limiter.waits,
            "pool_dispatched": self.pool.dispatched,
            "pool_replies": self.pool.replies,
            "pool_dropped_replies": self.pool.dropped_replies,
        }
