"""`AsyncMatcherService`: the concurrent front door of the matcher farm.

Where :class:`~repro.service.service.MatcherService` *simulates* a busy
host on a beat clock, this service *is* one: an asyncio front-end admits
jobs (per-tenant rate limits, bounded pending set, per-job deadlines),
a :class:`~repro.runtime.pool.WorkerPool` of real processes executes the
workload kernels in parallel, and completed results stream back to
awaiting clients.  It is the Figure 1-1 host/device split made literal:
the event loop is the host, the pool processes are the attached
special-purpose devices, and the bounded channels between them are the
bus.

The reliability story is the synchronous farm's, threaded through
unchanged: a seeded :class:`~repro.service.reliability.FaultInjector`
decides per dispatch whether the device dies mid-job or stalls;
:class:`~repro.service.reliability.RetryPolicy` bounds reassignment; and
exhausted retries, saturation, and expired deadlines all degrade to
:class:`~repro.service.reliability.SoftwareFallback` -- slower, never
wrong.  Whatever the routing, results are byte-identical to the
synchronous service and to the workload oracle (property-tested in
``tests/test_runtime_async.py``).

Usage::

    async with AsyncMatcherService(4, Alphabet("ABCD")) as svc:
        jid = await svc.submit("AXC", "ABCAACACCAB", tenant="alice")
        result = await svc.result(jid)
        async for r in svc.stream_results():   # completion order
            ...
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import AsyncIterator, Dict, List, Mapping, Optional, Sequence, Tuple

from ..alphabet import Alphabet
from ..errors import BackpressureError, ServiceError
from ..service.cache import ResultCache, canonical_params, result_cache_key
from ..service.reliability import (
    FaultInjector,
    FaultKind,
    RetryPolicy,
    SoftwareFallback,
)
from ..service.scheduler import Priority
from ..workloads.registry import WorkloadSpec, get_workload
from .admission import RateLimiter
from .channels import JobReply, JobRequest
from .pool import WorkerPool


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs of the concurrent runtime.

    ``max_pending``: admitted-but-unfinished bound; beyond it submission
    raises :class:`~repro.errors.BackpressureError` or (default) runs on
    the host oracle, exactly like the farm's ``degrade_when_saturated``.
    ``max_retries``: failed executions per job before degrading.
    ``default_timeout_s``: SLO applied to jobs submitted without an
    explicit ``timeout`` (None = no deadline).
    ``stuck_stall_s``: wall seconds per stuck *beat* when a seeded
    stuck-beats fault is injected (0 disables actual stalling; the
    fault is still counted).
    ``rate_limits``: tenant -> (jobs/s, burst) token-bucket specs;
    ``default_rate_limit`` applies to unlisted tenants.
    ``max_batch_jobs``: the most jobs :meth:`AsyncMatcherService.submit_many`
    coalesces into one wire crossing (one batched-kernel call per chunk).
    """

    max_pending: int = 256
    max_retries: int = 2
    default_timeout_s: Optional[float] = None
    degrade_when_saturated: bool = True
    stuck_stall_s: float = 0.0
    rate_limits: Mapping[str, Tuple[float, float]] = field(
        default_factory=dict
    )
    default_rate_limit: Optional[Tuple[float, float]] = None
    max_batch_jobs: int = 32

    def __post_init__(self):
        if self.max_pending <= 0:
            raise ServiceError("max_pending must be positive")
        if self.max_retries < 0:
            raise ServiceError("max_retries cannot be negative")
        if self.default_timeout_s is not None and self.default_timeout_s <= 0:
            raise ServiceError("default_timeout_s must be positive")
        if self.stuck_stall_s < 0:
            raise ServiceError("stuck_stall_s cannot be negative")
        if self.max_batch_jobs <= 0:
            raise ServiceError("max_batch_jobs must be positive")


@dataclass(frozen=True)
class RuntimeResult:
    """One completed job: oracle-identical results plus its wall-clock
    latency story (seconds, unlike the simulated farm's beats)."""

    job_id: int
    tenant: str
    priority: Priority
    workload: str
    results: list
    submitted_s: float
    started_s: float
    finished_s: float
    attempts: int
    via_fallback: bool
    timed_out: bool
    worker: Optional[str]
    mode: str

    @property
    def wait_s(self) -> float:
        return self.started_s - self.submitted_s

    @property
    def latency_s(self) -> float:
        return self.finished_s - self.submitted_s


class _Job:
    """In-flight bookkeeping for one admitted job."""

    __slots__ = (
        "job_id", "tenant", "priority", "workload", "spec", "taps",
        "stream", "orig_len", "deadline", "submitted_s", "started_s",
        "attempts", "future", "span", "done", "timed_out", "timer",
        "cache_key", "batch",
    )

    def __init__(
        self, job_id, tenant, priority, workload, spec, taps, stream,
        orig_len, submitted_s, future,
    ):
        self.job_id = job_id
        self.tenant = tenant
        self.priority = priority
        self.workload = workload
        self.spec: WorkloadSpec = spec
        self.taps = taps
        self.stream = stream
        self.orig_len = orig_len
        self.deadline: Optional[float] = None
        self.submitted_s = submitted_s
        self.started_s: Optional[float] = None
        self.attempts = 0
        self.future: asyncio.Future = future
        self.span = None
        self.done = False
        self.timed_out = False
        self.timer: Optional[asyncio.TimerHandle] = None
        self.cache_key: Optional[tuple] = None
        self.batch: Optional["_Batch"] = None


class _Batch:
    """One coalesced dispatch unit from :meth:`submit_many`: several
    compatible jobs (same workload + taps), one wire request, one fault
    sample, whole-batch retry."""

    __slots__ = ("batch_id", "workload", "taps", "members", "dispatched",
                 "attempts")

    def __init__(self, batch_id: int, workload: str, taps, members):
        self.batch_id = batch_id
        self.workload = workload
        self.taps = taps
        self.members: List[_Job] = members
        self.dispatched: List[_Job] = members  # stream order, per attempt
        self.attempts = 0


class AsyncMatcherService:
    """Concurrent submit/stream/drain over a pool of worker processes.

    Construct with a worker count and alphabet (a pool is built for
    you) or pass a prebuilt :class:`~repro.runtime.pool.WorkerPool`.
    The service must be started before submitting -- ``async with`` or
    an explicit ``await start()`` -- and closed when finished so the
    processes join.
    """

    def __init__(
        self,
        n_workers: int = 2,
        alphabet: Optional[Alphabet] = None,
        config: Optional[RuntimeConfig] = None,
        faults: Optional[FaultInjector] = None,
        obs=None,
        pool: Optional[WorkerPool] = None,
        cache: Optional[ResultCache] = None,
    ):
        self.config = config or RuntimeConfig()
        self.pool = pool if pool is not None else WorkerPool(
            n_workers, alphabet, obs=obs
        )
        self.alphabet = self.pool.alphabet
        self.faults = faults or FaultInjector()
        self.retry = RetryPolicy(self.config.max_retries)
        self.fallback = SoftwareFallback()
        self.obs = obs
        if obs is not None:
            self.faults.attach_obs(obs)
        from ..obs.metrics import MetricsRegistry

        self.registry = obs.registry if obs is not None else MetricsRegistry()
        r = self.registry
        self._m_submitted = r.counter("runtime.jobs.submitted")
        self._m_completed = r.counter("runtime.jobs.completed")
        self._m_retries = r.counter("runtime.retries")
        self._m_deaths = r.counter("runtime.deaths")
        self._m_fallbacks = r.counter("runtime.fallbacks")
        self._m_timeouts = r.counter("runtime.timeouts")
        self._m_backpressure = r.counter("runtime.backpressure_hits")
        self._m_stale = r.counter("runtime.stale_replies")
        self._m_batches = r.counter("runtime.batches")
        self._m_batched_jobs = r.counter("runtime.jobs.batched")
        self._m_deduped = r.counter("runtime.jobs.deduped")
        self._h_latency = r.histogram("runtime.job.latency_s")
        # Optional cross-tenant result cache (shared with the sync farm's
        # key scheme, so a farm-warmed cache serves runtime traffic and
        # vice versa).  Its ``now`` domain here is runtime seconds.
        self.cache = cache
        self.limiter = RateLimiter(
            self.config.rate_limits, self.config.default_rate_limit
        )
        self._jobs: Dict[int, _Job] = {}
        self._completed: Dict[int, RuntimeResult] = {}
        self._batches: Dict[int, _Batch] = {}
        self._followers: Dict[int, List[_Job]] = {}
        self._next_id = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._t0 = time.perf_counter()
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "AsyncMatcherService":
        if self._started:
            return self
        self._loop = asyncio.get_running_loop()
        await self._loop.run_in_executor(None, self.pool.start)
        self._started = True
        return self

    async def close(self, drain: bool = True) -> None:
        """Graceful shutdown: optionally drain, then join the workers."""
        if drain and self._started:
            await self.drain()
        if self._started:
            await self._loop.run_in_executor(None, self.pool.shutdown)
        self._started = False

    async def __aenter__(self) -> "AsyncMatcherService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close(drain=exc_type is None)

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    # -- submission --------------------------------------------------------

    async def submit(
        self,
        params,
        stream: Sequence,
        tenant: str = "default",
        priority: Priority = Priority.BATCH,
        workload: str = "match",
        timeout: Optional[float] = None,
    ) -> int:
        """Admit one job; returns its id (await :meth:`result` for the
        value).

        The submitter is *suspended* while its tenant is over its rate
        limit (CSP backpressure).  When the pending set is at
        ``max_pending`` the job is shed: served immediately from the
        host-side oracle if ``degrade_when_saturated`` (never wrong,
        just slower), else :class:`~repro.errors.BackpressureError`.
        *timeout* (seconds) is the job's SLO: if it expires before a
        worker answers, the job is completed degraded and any late
        worker reply is dropped.
        """
        if not self._started:
            raise ServiceError(
                "service not started (use 'async with' or await start())"
            )
        if timeout is not None and timeout <= 0:
            raise ServiceError("timeout must be positive")
        while True:
            delay = self.limiter.delay(tenant, self._loop.time())
            if delay <= 0.0:
                break
            await asyncio.sleep(delay)
        spec = get_workload(workload)
        taps = spec.parse_params(params, self.alphabet)
        validated = spec.validate_stream(stream, self.alphabet)
        ktaps, feed = spec.prepare(taps, validated)
        job_id = self._next_id
        self._next_id += 1
        self._m_submitted.inc()
        job = _Job(
            job_id, tenant, priority, workload, spec, ktaps, feed,
            len(validated), self._now(), self._loop.create_future(),
        )
        if self.obs is not None:
            job.span = self.obs.tracer.open_span(
                "runtime.job", t0=job.submitted_s, unit="s",
                job_id=job_id, tenant=tenant, priority=priority.name,
                workload=workload,
            )
        if not validated:
            job.started_s = job.submitted_s
            self._jobs[job_id] = job
            self._complete(job, [], mode="empty", worker=None,
                           via_fallback=False)
            return job_id
        job.cache_key = result_cache_key(
            workload, taps, validated, spec.numeric
        )
        if self.cache is not None:
            hit = self.cache.get(
                job.cache_key, tenant=tenant, now=self._now()
            )
            if hit is not None:
                job.started_s = self._now()
                self._jobs[job_id] = job
                self._complete(job, hit, mode="cached", worker=None,
                               via_fallback=False)
                return job_id
        if len(self._jobs) >= self.config.max_pending:
            self._m_backpressure.inc()
            if not self.config.degrade_when_saturated:
                if job.span is not None:
                    self.obs.tracer.close(
                        job.span, t1=self._now(), rejected=True
                    )
                raise BackpressureError(
                    f"runtime pending set full ({self.config.max_pending})"
                )
            self._jobs[job_id] = job
            job.started_s = self._now()
            self._serve_fallback(job, reason="saturated")
            return job_id
        self._jobs[job_id] = job
        timeout_s = timeout if timeout is not None \
            else self.config.default_timeout_s
        if timeout_s is not None:
            job.deadline = self._loop.time() + timeout_s
            job.timer = self._loop.call_later(
                timeout_s, self._on_deadline, job
            )
        self._dispatch(job)
        return job_id

    async def submit_many(
        self,
        params,
        streams: Sequence[Sequence],
        tenant: str = "default",
        priority: Priority = Priority.BATCH,
        workload: str = "match",
        timeout: Optional[float] = None,
    ) -> List[int]:
        """Admit one job per stream, coalescing compatible work.

        The params are parsed **once**; each stream then takes the
        cheapest route that still yields an oracle-identical result:
        empty streams complete immediately; streams whose canonical
        answer sits in the :class:`~repro.service.cache.ResultCache`
        complete from it (``mode="cached"``); duplicate streams share
        one execution (the first occurrence is the representative,
        later ones complete as followers, ``mode="deduped"``); the rest
        are coalesced into batch plans of at most
        ``config.max_batch_jobs`` jobs, each plan one wire crossing
        answered by the worker's batched kernel (``mode="batched"``).
        Rate limits still apply per job, and each member keeps its own
        SLO deadline: a member that times out is served degraded and
        its slice of any late batch reply is dropped.
        """
        if not self._started:
            raise ServiceError(
                "service not started (use 'async with' or await start())"
            )
        if timeout is not None and timeout <= 0:
            raise ServiceError("timeout must be positive")
        spec = get_workload(workload)
        taps = spec.parse_params(params, self.alphabet)
        timeout_s = timeout if timeout is not None \
            else self.config.default_timeout_s
        job_ids: List[int] = []
        reps: Dict[tuple, _Job] = {}
        batchable: List[_Job] = []

        def flush() -> None:
            step = self.config.max_batch_jobs
            for i in range(0, len(batchable), step):
                chunk = batchable[i:i + step]
                if len(chunk) == 1:
                    self._dispatch(chunk[0])
                    continue
                batch = _Batch(
                    self._next_id, workload, chunk[0].taps, chunk
                )
                self._next_id += 1
                for member in chunk:
                    member.batch = batch
                self._batches[batch.batch_id] = batch
                self._m_batches.inc()
                self._m_batched_jobs.inc(len(chunk))
                self._dispatch_batch(batch)
            batchable.clear()

        params = canonical_params(taps)
        for stream in streams:
            while True:
                delay = self.limiter.delay(tenant, self._loop.time())
                if delay <= 0.0:
                    break
                await asyncio.sleep(delay)
            validated = spec.validate_stream(stream, self.alphabet)
            ktaps, feed = spec.prepare(taps, validated)
            job_id = self._next_id
            self._next_id += 1
            self._m_submitted.inc()
            job = _Job(
                job_id, tenant, priority, workload, spec, ktaps, feed,
                len(validated), self._now(), self._loop.create_future(),
            )
            job_ids.append(job_id)
            if self.obs is not None:
                job.span = self.obs.tracer.open_span(
                    "runtime.job", t0=job.submitted_s, unit="s",
                    job_id=job_id, tenant=tenant, priority=priority.name,
                    workload=workload,
                )
            if not validated:
                job.started_s = job.submitted_s
                self._jobs[job_id] = job
                self._complete(job, [], mode="empty", worker=None,
                               via_fallback=False)
                continue
            job.cache_key = result_cache_key(
                workload, taps, validated, spec.numeric, params=params
            )
            if self.cache is not None:
                hit = self.cache.get(
                    job.cache_key, tenant=tenant, now=self._now()
                )
                if hit is not None:
                    job.started_s = self._now()
                    self._jobs[job_id] = job
                    self._complete(job, hit, mode="cached", worker=None,
                                   via_fallback=False)
                    continue
            if len(self._jobs) >= self.config.max_pending:
                self._m_backpressure.inc()
                if not self.config.degrade_when_saturated:
                    if job.span is not None:
                        self.obs.tracer.close(
                            job.span, t1=self._now(), rejected=True
                        )
                    flush()  # already-admitted work must still run
                    raise BackpressureError(
                        f"runtime pending set full "
                        f"({self.config.max_pending})"
                    )
                self._jobs[job_id] = job
                job.started_s = self._now()
                self._serve_fallback(job, reason="saturated")
                continue
            self._jobs[job_id] = job
            if timeout_s is not None:
                job.deadline = self._loop.time() + timeout_s
                job.timer = self._loop.call_later(
                    timeout_s, self._on_deadline, job
                )
            rep = reps.get(job.cache_key)
            if rep is not None:
                self._m_deduped.inc()
                self._followers.setdefault(rep.job_id, []).append(job)
                continue
            reps[job.cache_key] = job
            batchable.append(job)
        flush()
        return job_ids

    # -- dispatch / completion --------------------------------------------

    def _dispatch(self, job: _Job) -> None:
        fault = self.faults.sample()
        fault_kind = None
        stall_s = 0.0
        if fault is not None:
            if fault.kind is FaultKind.WORKER_DEATH:
                fault_kind = "death"
            else:
                stall_s = fault.extra_beats * self.config.stuck_stall_s
        if job.started_s is None:
            job.started_s = self._now()
        # Character streams cross the process boundary as a compact
        # string (picks/unpickles ~10x faster than a char list); the
        # fast engines iterate either form identically.
        wire_stream = job.stream
        if not job.spec.numeric and wire_stream and \
                isinstance(wire_stream[0], str):
            wire_stream = "".join(wire_stream)
        request = JobRequest(
            job_id=job.job_id,
            attempt=job.attempts,
            workload=job.workload,
            taps=job.taps,
            stream=wire_stream,
            collect_obs=self.obs is not None,
            fault=fault_kind,
            stall_s=stall_s,
        )
        self.pool.submit(
            request,
            self._reply_from_thread,
            deadline=job.deadline,
            priority=int(job.priority),
        )

    def _dispatch_batch(self, batch: _Batch) -> None:
        """Send one batch plan to the pool: the not-yet-done members'
        streams under one request, one shared fault sample."""
        live = [j for j in batch.members if not j.done]
        if not live:
            self._batches.pop(batch.batch_id, None)
            return
        batch.dispatched = live
        fault = self.faults.sample()
        fault_kind = None
        stall_s = 0.0
        if fault is not None:
            if fault.kind is FaultKind.WORKER_DEATH:
                fault_kind = "death"
            else:
                stall_s = fault.extra_beats * self.config.stuck_stall_s
        now = self._now()
        wire_streams = []
        for job in live:
            if job.started_s is None:
                job.started_s = now
            wire = job.stream
            if not job.spec.numeric and wire and isinstance(wire[0], str):
                wire = "".join(wire)
            wire_streams.append(wire)
        deadlines = [j.deadline for j in live if j.deadline is not None]
        request = JobRequest(
            job_id=batch.batch_id,
            attempt=batch.attempts,
            workload=batch.workload,
            taps=batch.taps,
            stream=None,
            collect_obs=self.obs is not None,
            fault=fault_kind,
            stall_s=stall_s,
            streams=wire_streams,
        )
        self.pool.submit(
            request,
            self._reply_from_thread,
            deadline=min(deadlines) if deadlines else None,
            priority=int(min(j.priority for j in live)),
        )

    def _reply_from_thread(self, reply: JobReply) -> None:
        # Collector-thread context: hop onto the event loop.
        self._loop.call_soon_threadsafe(self._handle_reply, reply)

    def _handle_reply(self, reply: JobReply) -> None:
        if reply.job_id in self._batches or reply.results_many is not None:
            self._handle_batch_reply(reply)
            return
        job = self._jobs.get(reply.job_id)
        if job is None or job.done or reply.attempt != job.attempts:
            self._m_stale.inc()
            return
        if reply.ok:
            if self.obs is not None:
                if reply.metrics:
                    self.obs.registry.merge_snapshot(reply.metrics)
                if reply.spans:
                    self.obs.tracer.adopt(
                        reply.spans, parent=job.span,
                        offset=max(job.started_s, 0.0),
                    )
            results = job.spec.finalize(job.taps, job.orig_len, reply.results)
            self._complete(
                job, results, mode="pool", worker=reply.worker,
                via_fallback=False,
            )
            return
        job.attempts += 1
        if reply.died:
            self._m_deaths.inc()
        if self.retry.should_retry(job.attempts):
            self._m_retries.inc()
            self._dispatch(job)
        else:
            self._serve_fallback(job, reason="retries-exhausted")

    def _handle_batch_reply(self, reply: JobReply) -> None:
        batch = self._batches.get(reply.job_id)
        if batch is None or reply.attempt != batch.attempts:
            self._m_stale.inc()
            return
        live = [j for j in batch.dispatched if not j.done]
        if reply.ok:
            self._batches.pop(batch.batch_id, None)
            if self.obs is not None:
                if reply.metrics:
                    self.obs.registry.merge_snapshot(reply.metrics)
                if reply.spans and live:
                    self.obs.tracer.adopt(
                        reply.spans, parent=live[0].span,
                        offset=max(live[0].started_s, 0.0),
                    )
            for job, rows in zip(batch.dispatched, reply.results_many):
                if job.done:
                    continue  # its deadline fired; already served degraded
                results = job.spec.finalize(job.taps, job.orig_len, rows)
                self._complete(
                    job, results, mode="batched", worker=reply.worker,
                    via_fallback=False,
                )
            return
        # Whole-batch failure (death or error): bounded whole-batch retry.
        batch.attempts += 1
        if reply.died:
            self._m_deaths.inc()
        for job in live:
            job.attempts += 1
        if live and self.retry.should_retry(batch.attempts):
            self._m_retries.inc()
            self._dispatch_batch(batch)
        else:
            self._batches.pop(batch.batch_id, None)
            for job in live:
                self._serve_fallback(job, reason="retries-exhausted")

    def _on_deadline(self, job: _Job) -> None:
        """The job's SLO expired: shed it from the pool and serve it
        degraded.  A hung worker can no longer wedge this job."""
        if job.done:
            return
        job.timed_out = True
        self._m_timeouts.inc()
        if job.batch is None:
            self.pool.cancel(job.job_id, job.attempts)
        job.attempts += 1
        if self.obs is not None:
            self.obs.tracer.event(
                "runtime.job.timeout", t=self._now(), unit="s",
                job_id=job.job_id, attempts=job.attempts,
            )
        self._serve_fallback(job, reason="deadline")
        batch = job.batch
        if batch is not None and all(j.done for j in batch.members):
            # Every member has been served; drop the whole plan's reply.
            self.pool.cancel(batch.batch_id, batch.attempts)
            self._batches.pop(batch.batch_id, None)

    def _serve_fallback(self, job: _Job, reason: str) -> None:
        """Host-side degraded service: the oracle answer, never wrong."""
        t0 = self._now()
        if job.workload == "match":
            merged = self.fallback.match(job.taps, job.stream)
        else:
            merged = self.fallback.kernel(job.spec, job.taps, job.stream)
        results = job.spec.finalize(job.taps, job.orig_len, merged)
        self._m_fallbacks.inc()
        if self.obs is not None:
            self.obs.tracer.record(
                "runtime.fallback", t0=t0, t1=self._now(), unit="s",
                parent=job.span, reason=reason, samples=len(job.stream),
            )
        self._complete(
            job, results, mode="software", worker=None, via_fallback=True
        )

    def _complete(
        self, job: _Job, results: list, mode: str,
        worker: Optional[str], via_fallback: bool,
    ) -> None:
        if job.done:
            return
        job.done = True
        if job.timer is not None:
            job.timer.cancel()
            job.timer = None
        finished = self._now()
        started = job.started_s if job.started_s is not None else finished
        result = RuntimeResult(
            job_id=job.job_id,
            tenant=job.tenant,
            priority=job.priority,
            workload=job.workload,
            results=results,
            submitted_s=job.submitted_s,
            started_s=started,
            finished_s=finished,
            attempts=job.attempts,
            via_fallback=via_fallback,
            timed_out=job.timed_out,
            worker=worker,
            mode=mode,
        )
        del self._jobs[job.job_id]
        self._completed[job.job_id] = result
        self._m_completed.inc()
        self._h_latency.observe(result.latency_s)
        if job.span is not None:
            self.obs.tracer.close(
                job.span, t1=finished, mode=mode, worker=worker,
                attempts=job.attempts, via_fallback=via_fallback,
                timed_out=job.timed_out,
            )
            job.span = None
        if not job.future.done():
            job.future.set_result(result)
        if (
            self.cache is not None and job.cache_key is not None
            and mode not in ("cached", "deduped")
        ):
            self.cache.put(job.cache_key, results, now=finished)
        # Fan results out to deduplicated followers: they shared this
        # execution but keep their own identity and latency story.
        for follower in self._followers.pop(job.job_id, []):
            self._complete(
                follower, list(results), mode="deduped", worker=worker,
                via_fallback=via_fallback,
            )

    # -- results -----------------------------------------------------------

    async def result(self, job_id: int) -> RuntimeResult:
        """Await one job's completion."""
        done = self._completed.get(job_id)
        if done is not None:
            return done
        job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job id {job_id}")
        return await asyncio.shield(job.future)

    async def stream_results(
        self, job_ids: Optional[Sequence[int]] = None
    ) -> AsyncIterator[RuntimeResult]:
        """Yield results as they complete (already-done first, in
        completion order), for *job_ids* or everything admitted."""
        if job_ids is None:
            wanted = set(self._completed) | set(self._jobs)
        else:
            wanted = set(job_ids)
        for jid, result in list(self._completed.items()):
            if jid in wanted:
                yield result
        pending = {
            job.future for jid, job in self._jobs.items() if jid in wanted
        }
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            for fut in done:
                yield fut.result()

    async def drain(self) -> List[RuntimeResult]:
        """Wait until every admitted job has completed; returns all
        results so far in job-id order (the sync service's contract)."""
        while self._jobs:
            await asyncio.wait([job.future for job in self._jobs.values()])
        return [self._completed[i] for i in sorted(self._completed)]

    def results(self) -> List[RuntimeResult]:
        """Completed results so far (no waiting), job-id order."""
        return [self._completed[i] for i in sorted(self._completed)]

    # -- counters (registry-backed, like ServiceTelemetry) -----------------

    @property
    def submitted(self) -> int:
        return int(self._m_submitted.value)

    @property
    def completed(self) -> int:
        return int(self._m_completed.value)

    @property
    def retries(self) -> int:
        return int(self._m_retries.value)

    @property
    def deaths(self) -> int:
        return int(self._m_deaths.value)

    @property
    def fallbacks(self) -> int:
        return int(self._m_fallbacks.value)

    @property
    def timeouts(self) -> int:
        return int(self._m_timeouts.value)

    @property
    def backpressure_hits(self) -> int:
        return int(self._m_backpressure.value)

    @property
    def batches(self) -> int:
        return int(self._m_batches.value)

    @property
    def batched_jobs(self) -> int:
        return int(self._m_batched_jobs.value)

    @property
    def deduped(self) -> int:
        return int(self._m_deduped.value)

    def stats(self) -> Dict[str, float]:
        """A flat snapshot of the runtime's own counters."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "retries": self.retries,
            "deaths": self.deaths,
            "fallbacks": self.fallbacks,
            "timeouts": self.timeouts,
            "backpressure_hits": self.backpressure_hits,
            "batches": self.batches,
            "batched_jobs": self.batched_jobs,
            "deduped": self.deduped,
            "rate_limit_waits": self.limiter.waits,
            "pool_dispatched": self.pool.dispatched,
            "pool_replies": self.pool.replies,
            "pool_dropped_replies": self.pool.dropped_replies,
        }
