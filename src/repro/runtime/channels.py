"""CSP-style bounded channels and the host<->worker wire protocol.

The paper's Figure 1-1 host keeps its special-purpose devices busy over
an explicit bus; the ConPro CSP model (arXiv:2302.02959) describes the
same shape as processes joined by bounded channels.  This module is that
bus for the concurrent runtime: a :class:`Channel` is a bounded
multiprocessing queue (a blocked sender *is* backpressure, exactly like
the farm's :class:`~repro.service.scheduler.BoundedQueue` but with real
concurrency to suspend), and :class:`JobRequest`/:class:`JobReply` are
the only two message types that ever cross it.

Everything here must be spawn-safe: requests and replies are plain
dataclasses of picklable fields (pattern characters are the frozen
:class:`~repro.alphabet.PatternChar`), and channels are created from an
explicit ``multiprocessing.get_context("spawn")`` context so the runtime
behaves identically on fork and spawn platforms.
"""

from __future__ import annotations

import queue
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ServiceError

#: Sentinel sent down a request channel to stop a worker loop.
SHUTDOWN = None


class ChannelClosed(ServiceError):
    """The channel was closed while a send/receive was pending."""


class Channel:
    """A bounded, picklable-message channel between host and workers.

    ``capacity`` is the CSP buffer size.  ``send`` blocks (with optional
    timeout) when the buffer is full -- the blocked-sender form of
    backpressure -- and ``recv`` blocks when it is empty.  The request
    side of the pool uses capacity 1 (a near-rendezvous: at most one
    job sits in front of a worker), the reply side a few slots per
    worker so replies never block a worker's next ``recv``.
    """

    def __init__(self, ctx, capacity: int):
        if capacity <= 0:
            raise ServiceError("channel capacity must be positive")
        self.capacity = capacity
        self._q = ctx.Queue(maxsize=capacity)

    def send(self, item, timeout: Optional[float] = None) -> None:
        try:
            self._q.put(item, block=True, timeout=timeout)
        except queue.Full:
            raise ChannelClosed(
                f"channel send timed out after {timeout}s (capacity "
                f"{self.capacity} full)"
            ) from None

    def try_send(self, item) -> bool:
        """Non-blocking send; False if the channel is full."""
        try:
            self._q.put_nowait(item)
            return True
        except queue.Full:
            return False

    def recv(self, timeout: Optional[float] = None):
        """Blocking receive; raises ``queue.Empty`` on timeout."""
        return self._q.get(block=True, timeout=timeout)

    def try_recv(self):
        """Non-blocking receive: ``(True, item)`` or ``(False, None)``.

        Used by the pool's heal path to drain a dead worker's request
        channel (a stale job or SHUTDOWN sentinel must not be inherited
        by the replacement process).
        """
        try:
            return True, self._q.get_nowait()
        except queue.Empty:
            return False, None

    def close(self) -> None:
        self._q.close()
        # Don't block interpreter exit on an unflushed feeder thread.
        self._q.cancel_join_thread()


@dataclass
class JobRequest:
    """One execution order sent to a worker process.

    ``taps`` and ``stream`` are already *prepared* by the host (the
    workload's ``parse_params``/``validate_stream``/``prepare`` ran
    before admission), so the worker only evaluates the windowed kernel
    -- the same division of labour as the synchronous farm's
    :meth:`~repro.service.pool.PoolWorker.run_kernel`.

    ``fault``/``stall_s`` carry host-side seeded fault injection across
    the process boundary: ``"death"`` makes the worker report the chip
    dying mid-job (no results come back), a positive ``stall_s`` makes
    it sit on the job (a stuck/hung worker) before answering.  Faults
    are directives, not randomness, so runs stay deterministic per seed.

    ``bist`` turns the request into a *self-test probe* instead of a
    kernel execution: the dict carries the BIST geometry (``m``, ``w``,
    ``vectors``, ``seed``, ``characterize``) plus an optional wire-form
    :class:`~repro.service.reliability.CellDefect` under ``"defect"``
    (the worker's latent fault, crossing the spawn boundary as a plain
    dict).  The worker runs :class:`~repro.bist.BISTController`
    in-process and answers with the report on ``JobReply.bist``.

    When ``streams`` is set the request is a *batch plan*: one taps
    vector, many prepared streams, answered by the workload's batched
    kernel in a single crossing (``stream`` is ignored).  ``job_id`` is
    then the batch id and the reply comes back in ``results_many``,
    one window-space row list per stream, in order.
    """

    job_id: int
    attempt: int
    workload: str
    taps: list
    stream: object  # list, or a compact str for character workloads
    collect_obs: bool = False
    fault: Optional[str] = None
    stall_s: float = 0.0
    streams: Optional[list] = None  # batch plan: many streams, one taps
    bist: Optional[dict] = None  # self-test probe: geometry + wire defect


@dataclass
class JobReply:
    """A worker's answer: window-space results plus its observations.

    ``metrics`` is the worker-local registry snapshot and ``spans`` the
    worker-local span dump; the host folds them into the run's
    :class:`~repro.obs.Observability` via ``merge_snapshot``/``adopt``.
    """

    job_id: int
    attempt: int
    ok: bool
    worker: str
    pid: int
    wall_s: float
    results: Optional[list] = None
    error: Optional[str] = None
    died: bool = False
    metrics: Optional[Dict[str, List[dict]]] = None
    spans: Optional[List[dict]] = field(default=None)
    results_many: Optional[list] = None  # batch plan answer, stream order
    bist: Optional[dict] = None  # self-test probe answer (report to_wire)
