"""Admission control: per-tenant token buckets and overload shedding.

A farm front-end that accepts everything melts; the runtime admits work
through two gates before it ever reaches the dispatch heap:

* **Per-tenant rate limits** -- a classic token bucket per tenant
  (``rate`` jobs/s sustained, ``burst`` jobs of headroom).  The async
  submit path *suspends the submitter* until a token is available (the
  CSP blocked-sender, now with a real scheduler to suspend into) rather
  than dropping, so a well-behaved client simply slows down.
* **A pending bound** -- at most ``max_pending`` admitted-but-unfinished
  jobs.  Beyond it the service either raises
  :class:`~repro.errors.BackpressureError` or degrades to the host-side
  oracle, mirroring the synchronous farm's ``degrade_when_saturated``.

Time is injected (``now``), never read, so the buckets are trivially
testable and deterministic.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from ..errors import ServiceError


class TokenBucket:
    """One tenant's budget: *rate* tokens/s, capped at *burst*."""

    def __init__(self, rate: float, burst: float):
        if rate <= 0 or burst <= 0:
            raise ServiceError("token bucket rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last: Optional[float] = None

    def _refill(self, now: float) -> None:
        if self._last is not None and now > self._last:
            self.tokens = min(
                self.burst, self.tokens + (now - self._last) * self.rate
            )
        if self._last is None or now > self._last:
            self._last = now

    def acquire_delay(self, now: float) -> float:
        """Take a token if one is available (returns 0.0), else return
        the seconds to wait before retrying."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


class RateLimiter:
    """Per-tenant token buckets, with an optional default for everyone.

    *limits* maps tenant name to ``(rate, burst)``; *default* (if given)
    applies to tenants without an explicit entry.  Tenants with neither
    are unlimited -- admission still bounds them via ``max_pending``.
    """

    def __init__(
        self,
        limits: Optional[Mapping[str, Tuple[float, float]]] = None,
        default: Optional[Tuple[float, float]] = None,
    ):
        self._spec = dict(limits or {})
        self._default = default
        self._buckets: Dict[str, TokenBucket] = {}
        self.waits = 0  # times a submitter was made to wait

    def delay(self, tenant: str, now: float) -> float:
        """0.0 if *tenant* may submit now, else seconds until it may."""
        bucket = self._buckets.get(tenant)
        if bucket is None:
            spec = self._spec.get(tenant, self._default)
            if spec is None:
                return 0.0
            bucket = self._buckets[tenant] = TokenBucket(*spec)
        wait = bucket.acquire_delay(now)
        if wait > 0.0:
            self.waits += 1
        return wait
