"""Concurrent service runtime: async front-end over real worker processes.

This package makes the paper's Figure 1-1 host/device concurrency
literal.  The synchronous :mod:`repro.service` farm *models* time on a
beat clock; here an asyncio host admits jobs through per-tenant rate
limits and a pending bound, a :class:`WorkerPool` of spawn-context
processes runs the workload fast kernels genuinely in parallel, and
CSP-style bounded :class:`Channel` objects carry the only two message
types (:class:`JobRequest` / :class:`JobReply`) between them.

Layering:

* :mod:`~repro.runtime.channels` -- the bus: bounded channels, wire
  messages, spawn-safety rules.
* :mod:`~repro.runtime.worker` -- the device: one process, one loop,
  the same :class:`~repro.workloads.registry.WorkloadSpec` engines as
  everywhere else (results byte-identical by construction).
* :mod:`~repro.runtime.pool` -- the mechanism: EDF dispatch, stale-reply
  dropping, worker lifecycle.
* :mod:`~repro.runtime.admission` -- the gate: token buckets, overload
  shedding.
* :mod:`~repro.runtime.service` -- the policy: submit/stream/drain,
  deadlines, seeded faults, retries, oracle fallback, obs merge-back.
* :mod:`~repro.runtime.health` -- the maintenance crew: background
  gate-level BIST probes on idle workers, quarantine of failing
  processes, wafer-gated respawn healing.
"""

from .admission import RateLimiter, TokenBucket
from .channels import Channel, ChannelClosed, JobReply, JobRequest
from .health import RuntimeHealth
from .pool import WorkerPool
from .service import AsyncMatcherService, RuntimeConfig, RuntimeResult

__all__ = [
    "AsyncMatcherService",
    "Channel",
    "ChannelClosed",
    "JobReply",
    "JobRequest",
    "RateLimiter",
    "RuntimeConfig",
    "RuntimeResult",
    "RuntimeHealth",
    "TokenBucket",
    "WorkerPool",
]
