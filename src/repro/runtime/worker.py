"""The worker-process entry point: one device, one process, one loop.

``worker_main`` is what each :class:`~repro.runtime.pool.WorkerPool`
process runs: receive a :class:`~repro.runtime.channels.JobRequest`,
evaluate the workload's fast kernel (the same
:class:`~repro.workloads.WorkloadSpec` engines the synchronous farm
uses, so results are byte-identical by construction), reply with the
window-space values plus the worker's own metrics snapshot and spans.

The function must be importable by ``multiprocessing`` spawn: it lives
at module top level, takes only picklable arguments, and rebuilds its
:class:`~repro.alphabet.Alphabet` locally from symbols+bits rather than
receiving a live object graph.  Engines are cached per pattern (a farm
typically streams many texts against few patterns), mirroring
:class:`~repro.service.pool.PoolWorker`'s compiled-pattern cache.
"""

from __future__ import annotations

import os
import time
from typing import Optional, Tuple

from ..alphabet import Alphabet
from .channels import Channel, JobReply, JobRequest, SHUTDOWN


def _execute(
    req: JobRequest, name: str, alphabet: Optional[Alphabet], cache: dict
) -> JobReply:
    """Run one request to completion (or to its injected fault)."""
    t0 = time.perf_counter()
    if req.stall_s > 0.0:
        # An injected stuck/hung worker: the host's deadline machinery,
        # not this process, is responsible for routing around it.
        time.sleep(req.stall_s)
    if req.fault == "death":
        return JobReply(
            job_id=req.job_id,
            attempt=req.attempt,
            ok=False,
            worker=name,
            pid=os.getpid(),
            wall_s=time.perf_counter() - t0,
            error="injected worker death",
            died=True,
        )
    try:
        if req.bist is not None:
            return _execute_bist(req, name, t0)
        from ..workloads.registry import get_workload

        spec = get_workload(req.workload)
        if req.streams is not None:
            return _execute_batch(req, spec, name, alphabet, t0)
        key = (req.workload, tuple(req.taps) if not spec.numeric else None)
        engine = cache.get(key)
        if engine is None:
            # For character workloads the fast engine compiles the
            # pattern (FastMatcher/FastCounter); cache one per pattern.
            # Numeric kernels are stateless strided calls; no cache.
            if not spec.numeric:
                engine = _compiled(spec, req.taps, alphabet)
                cache.clear()  # one pattern at a time: bounded memory
                cache[key] = engine
        if engine is not None:
            results = engine(req.stream)
        else:
            results = spec.fast(req.taps, req.stream, alphabet)
        wall = time.perf_counter() - t0
        metrics = spans = None
        if req.collect_obs:
            from ..obs import Observability

            obs = Observability()
            obs.tracer.record(
                "worker.kernel", t0=0.0, t1=wall, unit="s",
                worker=name, pid=os.getpid(), workload=spec.name,
                samples=len(req.stream), window=len(req.taps),
                attempt=req.attempt, engine="fastpath",
            )
            obs.registry.counter(
                "runtime.worker.jobs", worker=name, workload=spec.name
            ).inc()
            obs.registry.counter(
                "runtime.worker.samples", worker=name
            ).inc(len(req.stream))
            obs.registry.histogram(
                "runtime.worker.wall_s", worker=name
            ).observe(wall)
            metrics = obs.registry.snapshot()
            spans = obs.tracer.to_dict()["spans"]
        return JobReply(
            job_id=req.job_id,
            attempt=req.attempt,
            ok=True,
            worker=name,
            pid=os.getpid(),
            wall_s=wall,
            results=results,
            metrics=metrics,
            spans=spans,
        )
    except Exception as exc:  # ship the failure home instead of dying
        return JobReply(
            job_id=req.job_id,
            attempt=req.attempt,
            ok=False,
            worker=name,
            pid=os.getpid(),
            wall_s=time.perf_counter() - t0,
            error=f"{type(exc).__name__}: {exc}",
        )


def _execute_bist(req, name, t0):
    """Answer a self-test probe: run gate-level BIST in this process.

    The imports stay inside the function so ordinary kernel workers
    never pay for the switch-level simulator; only probed processes
    build it.  The golden signature is cached per process after the
    first probe (module-level cache in the controller), so steady-state
    probes cost milliseconds.
    """
    from ..bist.controller import BISTController
    from ..service.reliability import CellDefect

    spec = req.bist
    defect = None
    if spec.get("defect"):
        defect = CellDefect.from_wire(spec["defect"])
    controller = BISTController(
        m=int(spec.get("m", 2)),
        w=int(spec.get("w", 2)),
        vectors=int(spec.get("vectors", 12)),
        seed=int(spec.get("seed", 0b1011)),
        characterize=bool(spec.get("characterize", True)),
    )
    report = controller.run(defect=defect, chip_name=name)
    return JobReply(
        job_id=req.job_id,
        attempt=req.attempt,
        ok=True,
        worker=name,
        pid=os.getpid(),
        wall_s=time.perf_counter() - t0,
        bist=report.to_wire(),
    )


def _execute_batch(req, spec, name, alphabet, t0):
    """Answer a batch plan: every stream through the workload's batched
    kernel in one call (falling back to a per-stream fast loop when the
    spec has no batched evaluator)."""
    feeds = list(req.streams)
    if spec.batched is not None:
        results_many = spec.batched(req.taps, feeds, alphabet)
    else:
        results_many = [spec.fast(req.taps, f, alphabet) for f in feeds]
    wall = time.perf_counter() - t0
    metrics = spans = None
    if req.collect_obs:
        from ..obs import Observability

        obs = Observability()
        samples = sum(len(f) for f in feeds)
        obs.tracer.record(
            "worker.kernel", t0=0.0, t1=wall, unit="s",
            worker=name, pid=os.getpid(), workload=spec.name,
            samples=samples, window=len(req.taps), jobs=len(feeds),
            attempt=req.attempt, engine="batched",
        )
        obs.registry.counter(
            "runtime.worker.batches", worker=name, workload=spec.name
        ).inc()
        obs.registry.counter(
            "runtime.worker.jobs", worker=name, workload=spec.name
        ).inc(len(feeds))
        obs.registry.counter(
            "runtime.worker.samples", worker=name
        ).inc(samples)
        obs.registry.histogram(
            "runtime.worker.wall_s", worker=name
        ).observe(wall)
        metrics = obs.registry.snapshot()
        spans = obs.tracer.to_dict()["spans"]
    return JobReply(
        job_id=req.job_id,
        attempt=req.attempt,
        ok=True,
        worker=name,
        pid=os.getpid(),
        wall_s=wall,
        results_many=results_many,
        metrics=metrics,
        spans=spans,
    )


def _compiled(spec, taps, alphabet):
    """A reusable callable for a character workload's compiled pattern."""
    from ..core.fastpath import FastCounter, FastMatcher

    if spec.name == "match":
        return FastMatcher(list(taps), alphabet).match
    if spec.name == "count":
        return FastCounter(list(taps), alphabet).counts
    fast = spec.fast

    def run(stream, _taps=list(taps), _al=alphabet):
        return fast(_taps, stream, _al)

    return run


def worker_main(
    name: str,
    symbols: Optional[str],
    bits: Optional[int],
    requests: Channel,
    replies: Channel,
) -> None:
    """Process main loop: recv -> execute -> reply, until SHUTDOWN."""
    alphabet = Alphabet(symbols, bits) if symbols else None
    cache: dict = {}
    while True:
        req = requests.recv()
        if req is SHUTDOWN:
            break
        replies.send(_execute(req, name, alphabet, cache))
