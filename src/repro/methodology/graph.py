"""Task dependency graphs: ordering, validation, critical paths.

"The way to avoid this is to carefully construct a task dependency graph
before beginning the design.  This graph should contain all of the
subtasks to be performed, together with the information needed for each
and the precedence relations among them."
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..errors import MethodologyError


class TaskGraph:
    """A DAG of named tasks with per-task effort weights."""

    def __init__(self) -> None:
        self._deps: Dict[str, Set[str]] = {}
        self._effort: Dict[str, float] = {}
        self._blocking: Dict[str, bool] = {}

    def add_task(
        self,
        name: str,
        depends_on: Iterable[str] = (),
        effort: float = 1.0,
        blocking: bool = True,
    ) -> None:
        if name in self._deps:
            raise MethodologyError(f"duplicate task {name!r}")
        self._deps[name] = set(depends_on)
        self._effort[name] = effort
        self._blocking[name] = blocking

    @property
    def tasks(self) -> List[str]:
        return list(self._deps)

    def dependencies(self, name: str) -> Set[str]:
        try:
            return set(self._deps[name])
        except KeyError:
            raise MethodologyError(f"unknown task {name!r}") from None

    def is_blocking(self, name: str) -> bool:
        """Whether a failure of this task must stop the flow (a *blocking*
        verification gate) or merely be recorded (*advisory*)."""
        try:
            return self._blocking[name]
        except KeyError:
            raise MethodologyError(f"unknown task {name!r}") from None

    def validate(self) -> None:
        """Every dependency must exist; the graph must be acyclic."""
        for task, deps in self._deps.items():
            missing = deps - set(self._deps)
            if missing:
                raise MethodologyError(
                    f"task {task!r} depends on undefined tasks {sorted(missing)}"
                )
        self.topological_order()  # raises on cycles

    def topological_order(self) -> List[str]:
        """A dependency-respecting order (stable w.r.t. insertion order)."""
        in_deg = {t: len(d) for t, d in self._deps.items()}
        dependents: Dict[str, List[str]] = {t: [] for t in self._deps}
        for t, deps in self._deps.items():
            for d in deps:
                if d in dependents:
                    dependents[d].append(t)
        ready = [t for t in self._deps if in_deg[t] == 0]
        order: List[str] = []
        while ready:
            t = ready.pop(0)
            order.append(t)
            for u in dependents[t]:
                in_deg[u] -= 1
                if in_deg[u] == 0:
                    ready.append(u)
        if len(order) != len(self._deps):
            cyclic = sorted(set(self._deps) - set(order))
            raise MethodologyError(f"dependency cycle among {cyclic}")
        return order

    def critical_path(self) -> Tuple[List[str], float]:
        """Longest effort-weighted chain: the design's serial bottleneck."""
        order = self.topological_order()
        dist: Dict[str, float] = {}
        prev: Dict[str, str] = {}
        for t in order:
            deps = self._deps[t]
            best, best_d = None, 0.0
            for d in deps:
                if dist[d] > best_d:
                    best, best_d = d, dist[d]
            dist[t] = best_d + self._effort[t]
            if best is not None:
                prev[t] = best
        end = max(dist, key=lambda t: dist[t])
        path = [end]
        while path[-1] in prev:
            path.append(prev[path[-1]])
        return list(reversed(path)), dist[end]

    def parallel_schedule(self) -> List[List[str]]:
        """Tasks grouped into waves that could proceed concurrently
        (division of labour among designers)."""
        level: Dict[str, int] = {}
        for t in self.topological_order():
            deps = self._deps[t]
            level[t] = 1 + max((level[d] for d in deps), default=-1)
        waves: Dict[int, List[str]] = {}
        for t, l in level.items():
            waves.setdefault(l, []).append(t)
        return [waves[l] for l in sorted(waves)]
