"""The Figure 4-1 task set.

The figure's subtasks, each "deal[ing] with only one geometric region,
one circuit function, and one level of the VLSI abstraction hierarchy",
with the information-flow arrows of the text:

    Algorithm
      -> Cell Combinations and Placements
      -> Data Flow Control Circuit
      -> Cell Logic Circuits          (needs cell functions, combinations,
                                       and the data-flow control's stages)
      -> Cell Timing Signals          (after all cell circuits)
      -> Communication Sticks         (data-flow control + timing complete)
      -> Cell Sticks                  (needs communication sticks + circuits)
      -> Cell Layouts                 (from cell sticks)
      -> Cell Boundary Layouts        (cell sizes + communication sticks)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .graph import TaskGraph


@dataclass(frozen=True)
class TaskSpec:
    """One Figure 4-1 subtask."""

    name: str
    description: str
    depends_on: Tuple[str, ...]
    effort_weeks: float
    blocking: bool = True


FIGURE_4_1 = (
    TaskSpec(
        "algorithm",
        "Design the systolic algorithm: data flow pattern plus the "
        "function of each cell type.",
        (),
        3.0,
    ),
    TaskSpec(
        "cell_combinations",
        "Decide cell groupings/sharings and assign locations (skeleton "
        "layout).",
        ("algorithm",),
        0.5,
    ),
    TaskSpec(
        "dataflow_control",
        "Clocked vs self-timed; design shift registers and route clocks.",
        ("algorithm", "cell_combinations"),
        0.5,
    ),
    TaskSpec(
        "cell_logic_circuits",
        "Circuits for each cell type from its function, combination "
        "grouping, and register stages.",
        ("algorithm", "cell_combinations", "dataflow_control"),
        1.0,
    ),
    TaskSpec(
        "cell_timing_signals",
        "Identify intra-beat sequencing signals (r_out <- t; t <- TRUE) "
        "and add their generators to the data flow control.",
        ("cell_logic_circuits", "dataflow_control"),
        0.25,
    ),
    TaskSpec(
        "communication_sticks",
        "Stick diagram of the routing network, clock and power "
        "distribution, with blanks for the cells.",
        ("dataflow_control", "cell_timing_signals"),
        0.5,
    ),
    TaskSpec(
        "cell_sticks",
        "Topological layout of each cell; port positions fixed by the "
        "communication sticks.",
        ("cell_logic_circuits", "communication_sticks"),
        1.0,
    ),
    TaskSpec(
        "cell_layouts",
        "Dimensioned mask layout of each cell under the lambda rules.",
        ("cell_sticks",),
        1.0,
    ),
    TaskSpec(
        "cell_boundary_layouts",
        "Assemble cells, wire boundaries, hook pads: the complete chip.",
        ("cell_layouts", "communication_sticks"),
        0.5,
    ),
)


def figure_4_1_graph() -> TaskGraph:
    """The paper's task graph as a :class:`TaskGraph`."""
    g = TaskGraph()
    for spec in FIGURE_4_1:
        g.add_task(spec.name, spec.depends_on, spec.effort_weeks,
                   blocking=spec.blocking)
    g.validate()
    return g
