"""The Figure 4-1 graph, executed: algorithm spec to fabricatable CIF.

Each task produces a real artifact with the library's own machinery:

========================  =====================================================
task                      artifact
========================  =====================================================
algorithm                 verified behavioural matcher (vs the oracle)
cell_combinations         the column/row placement map with polarity parities
dataflow_control          two-phase clock plan + dynamic shift register demo
cell_logic_circuits       the four switch-level cell netlists
cell_timing_signals       the master/slave discipline for ``t`` (checked)
communication_sticks      channel/track plan for the array wiring
cell_sticks               generated stick diagrams for all four cells
cell_layouts              DRC-clean lambda-rule layouts
cell_boundary_layouts     assembled chip floorplan + CIF text
========================  =====================================================

Running the flow end to end *is* the paper's methodology demonstration:
every step consumes only artifacts of its graph predecessors.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..alphabet import Alphabet
from ..errors import MethodologyError
from .graph import TaskGraph
from .tasks import figure_4_1_graph


class DesignFlow:
    """Executes the Figure 4-1 flow for an m-column, w-bit-row chip."""

    def __init__(self, columns: int = 8, char_bits: int = 2, signoff: bool = False):
        self.columns = columns
        self.char_bits = char_bits
        self.graph: TaskGraph = figure_4_1_graph()
        self.artifacts: Dict[str, object] = {}
        self._runners: Dict[str, Callable[[], object]] = {
            "algorithm": self._run_algorithm,
            "cell_combinations": self._run_cell_combinations,
            "dataflow_control": self._run_dataflow_control,
            "cell_logic_circuits": self._run_cell_logic_circuits,
            "cell_timing_signals": self._run_cell_timing_signals,
            "communication_sticks": self._run_communication_sticks,
            "cell_sticks": self._run_cell_sticks,
            "cell_layouts": self._run_cell_layouts,
            "cell_boundary_layouts": self._run_cell_boundary_layouts,
        }
        if signoff:
            self._register_signoff_tasks()

    def _register_signoff_tasks(self) -> None:
        """Graft the verification pipeline onto the Figure 4-1 graph.

        DRC, extraction, LVS, and ERC are *blocking* gates -- the chip is
        wrong if they fail.  Timing closure is *advisory*: a missed
        estimate informs the next iteration rather than invalidating the
        masks."""
        for name, deps, blocking in (
            ("signoff_drc", ("cell_layouts",), True),
            ("signoff_extraction", ("cell_layouts",), True),
            ("signoff_lvs", ("signoff_extraction", "cell_logic_circuits"), True),
            ("signoff_erc", ("signoff_extraction",), True),
            ("signoff_timing", ("signoff_extraction",), False),
        ):
            self.graph.add_task(name, deps, effort=0.25, blocking=blocking)
        self.graph.validate()
        self._runners.update(
            {
                "signoff_drc": self._run_signoff_drc,
                "signoff_extraction": self._run_signoff_extraction,
                "signoff_lvs": self._run_signoff_lvs,
                "signoff_erc": self._run_signoff_erc,
                "signoff_timing": self._run_signoff_timing,
            }
        )

    def run(self) -> Dict[str, object]:
        """Execute every task in dependency order; returns all artifacts.

        A failing *blocking* task raises; a failing *advisory* task is
        recorded as an ``{"advisory_failure": ...}`` artifact and the flow
        continues."""
        from ..errors import ReproError

        for task in self.graph.topological_order():
            missing = [
                d for d in self.graph.dependencies(task) if d not in self.artifacts
            ]
            if missing:
                raise MethodologyError(
                    f"task {task!r} scheduled before its inputs {missing}"
                )
            try:
                self.artifacts[task] = self._runners[task]()
            except ReproError as exc:
                if self.graph.is_blocking(task):
                    raise
                self.artifacts[task] = {"advisory_failure": str(exc)}
        return dict(self.artifacts)

    # -- task implementations ---------------------------------------------------

    def _run_algorithm(self) -> object:
        from ..alphabet import Alphabet
        from ..core.matcher import PatternMatcher
        from ..core.reference import match_oracle

        symbols = "ABCD"[: 2 ** self.char_bits]
        alphabet = Alphabet(symbols, bits=self.char_bits)
        pattern = ("A" + "X" + symbols[-1])[: min(3, self.columns)]
        matcher = PatternMatcher(pattern, alphabet, n_cells=self.columns)
        text = (symbols * 4)[:11]
        ok = matcher.match(text) == match_oracle(matcher.pattern, list(text))
        if not ok:
            raise MethodologyError("algorithm artifact failed oracle check")
        return {"matcher": matcher, "alphabet": alphabet, "verified": ok}

    def _run_cell_combinations(self) -> object:
        placement = {
            (i, j): {
                "kind": "comparator" if j < self.char_bits else "accumulator",
                "positive": (i + j) % 2 == 0,
                "phase": (i + j) % 2,
            }
            for i in range(self.columns)
            for j in range(self.char_bits + 1)
        }
        return {"placement": placement, "pairing": "none (cells too small to share)"}

    def _run_dataflow_control(self) -> object:
        from ..circuit.shift_register import DynamicShiftRegister

        sr = DynamicShiftRegister(4, "flow_demo")
        outs = sr.shift_sequence([True, False, True])
        return {
            "style": "clocked (two-phase, doubles as data-flow control)",
            "register_demo": [str(v) for v in outs],
            "control_signals": sr.control_signals,
        }

    def _run_cell_logic_circuits(self) -> object:
        from ..circuit.cells.accumulator import build_accumulator
        from ..circuit.cells.comparator import build_comparator
        from ..circuit.netlist import Circuit

        circuits = {}
        for kind, builder in (
            ("comparator", lambda c, pos: build_comparator(c, "u.", "clk", pos)),
            ("accumulator", lambda c, pos: build_accumulator(c, "u.", "clkA", "clkB", pos)),
        ):
            for pos in (True, False):
                c = Circuit(f"{kind}_{'pos' if pos else 'neg'}")
                ports = builder(c, pos)
                circuits[(kind, pos)] = (c, ports)
        return circuits

    def _run_cell_timing_signals(self) -> object:
        return {
            "sequencing": "r_out <- t then t <- TRUE",
            "mechanism": "t master written on the cell's phase; slave "
                         "refreshed on the opposite phase; r mux latched "
                         "through a clocked pass before the output inverter",
            "extra_control_wires": 0,
        }

    def _run_communication_sticks(self) -> object:
        rows = [f"p{j}/s{j} bit channels" for j in range(self.char_bits)]
        rows.append("lambda/x rightward + r leftward (accumulator row)")
        return {
            "horizontal_channels": rows,
            "vertical_channels": ["d (comparison results, downward)", "clock spine"],
            "power": "VDD top rail / GND bottom rail per cell row, metal",
        }

    def _run_cell_sticks(self) -> object:
        from ..layout.cells import accumulator_layout, comparator_layout

        return {
            ("comparator", pos): comparator_layout(pos)[0] for pos in (True, False)
        } | {
            ("accumulator", pos): accumulator_layout(pos)[0] for pos in (True, False)
        }

    def _run_cell_layouts(self) -> object:
        from ..layout.cells import accumulator_layout, check_cell, comparator_layout

        layouts = {
            ("comparator", pos): comparator_layout(pos)[1] for pos in (True, False)
        } | {
            ("accumulator", pos): accumulator_layout(pos)[1] for pos in (True, False)
        }
        for key, layout in layouts.items():
            violations = check_cell(layout)
            if violations:
                raise MethodologyError(
                    f"cell layout {key} has {len(violations)} DRC violations"
                )
        return layouts

    def _run_cell_boundary_layouts(self) -> object:
        from ..layout.assembly import ChipAssembler

        asm = ChipAssembler(self.columns, self.char_bits)
        return {
            "floorplan": asm.floorplan(),
            "cif": asm.to_cif(),
            "area": asm.area_report(),
        }

    # -- signoff gates (registered only with signoff=True) ----------------------

    def _signoff_state(self):
        """Lazily built, shared across the signoff runners: the pipeline
        driver, the four cell bundles, and their extractions."""
        if not hasattr(self, "_signoff_driver"):
            from ..layout.cells import cell_bundle
            from ..signoff.pipeline import CELL_KINDS, Signoff

            self._signoff_driver = Signoff()
            self._signoff_bundles = [cell_bundle(k, p) for k, p in CELL_KINDS]
            self._signoff_ex = {}
        return self._signoff_driver, self._signoff_bundles

    @staticmethod
    def _stage_artifact(stages) -> Dict[str, object]:
        from ..errors import SignoffError

        findings = [f for s in stages for f in s.findings]
        errors = [f for f in findings if f.severity == "error"]
        if errors:
            raise SignoffError(
                f"{stages[0].stage}: {len(errors)} error(s); first: "
                f"{errors[0].detail}"
            )
        return {
            "stage": stages[0].stage,
            "findings": [f.to_dict() for f in findings],
            "ok": True,
        }

    def _run_signoff_drc(self) -> object:
        driver, bundles = self._signoff_state()
        return self._stage_artifact([driver.drc_stage(b) for b in bundles])

    def _run_signoff_extraction(self) -> object:
        driver, bundles = self._signoff_state()
        stages = []
        for b in bundles:
            stage, ex = driver.extraction_stage(b)
            self._signoff_ex[b.name] = ex
            stages.append(stage)
        return self._stage_artifact(stages)

    def _run_signoff_lvs(self) -> object:
        driver, bundles = self._signoff_state()
        return self._stage_artifact(
            [driver.lvs_stage(b, self._signoff_ex[b.name]) for b in bundles]
        )

    def _run_signoff_erc(self) -> object:
        driver, bundles = self._signoff_state()
        stages = []
        for b in bundles:
            ex = self._signoff_ex[b.name]
            clocks = [ex.net_of_port.get(c, c) for c in b.clocks]
            ports = sorted(set(ex.net_of_port.values()))
            stages.append(
                driver.erc_stage(ex.circuit, clocks, ports, ex.device_geom,
                                 where=b.name)
            )
        return self._stage_artifact(stages)

    def _run_signoff_timing(self) -> object:
        driver, bundles = self._signoff_state()
        stages = []
        for b in bundles:
            ex = self._signoff_ex[b.name]
            clocks = [ex.net_of_port.get(c, c) for c in b.clocks]
            ports = sorted(set(ex.net_of_port.values()))
            stages.append(
                driver.timing_stage(ex.circuit, clocks, ports, ex.device_geom)
            )
        return self._stage_artifact(stages)
