"""The Section 4 design methodology, executable.

* :mod:`repro.methodology.graph` -- generic task dependency graphs with
  topological ordering and critical paths;
* :mod:`repro.methodology.tasks` -- the Figure 4-1 task set for the
  pattern matching chip;
* :mod:`repro.methodology.designflow` -- runs the graph: each task
  actually produces its design artifact (cell circuits, stick diagrams,
  DRC-checked layouts, chip CIF), so "the seemingly complicated process
  of designing a special purpose chip can be carried out systematically,
  one subtask at a time" is demonstrated rather than asserted.
"""

from .designflow import DesignFlow
from .graph import TaskGraph
from .tasks import FIGURE_4_1, TaskSpec

__all__ = ["DesignFlow", "FIGURE_4_1", "TaskGraph", "TaskSpec"]
