"""``python -m repro.obs``: trace replay and the prototype-chip demo.

Subcommands::

    python -m repro.obs replay TRACE.json [--json OUT]
        Aggregate a saved trace (Observability.save) into the
        latency/utilization/queue-depth report; --json writes the
        machine-readable report (the CI artifact format).

    python -m repro.obs demo [--trace PATH] [--json OUT] [--circuit]
        Run the Plate 2 prototype-chip farm on the paper's example,
        fully traced, and print the report plus the span tree.
        --circuit extends tracing down to the switch-level netlist.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from . import Observability
from .replay import render_report, trace_report


def _cmd_replay(args: argparse.Namespace) -> int:
    data = Observability.load(args.trace)
    report = trace_report(data)
    print(render_report(report))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.json}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from ..alphabet import PROTOTYPE_ALPHABET
    from ..chip.prototype import PROTOTYPE
    from ..service import MatcherService, uniform_pool

    obs = Observability(deep=True, trace_circuit=args.circuit)
    svc = MatcherService(
        uniform_pool(args.workers, PROTOTYPE, PROTOTYPE_ALPHABET), obs=obs
    )
    # The paper's own example (Section 3.1): AXC over ABCAACACCAB.
    texts = ["ABCAACACCAB" * args.repeat for _ in range(args.jobs)]
    svc.submit_many("AXC", texts, tenant="demo")
    svc.drain()

    report = trace_report(obs.export())
    print(render_report(report))
    print("\nspan tree (truncated):")
    print(obs.tracer.render_tree(max_spans=40))
    if args.trace:
        obs.save(args.trace)
        print(f"\nwrote {args.trace}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description=__doc__.splitlines()[0],
    )
    sub = ap.add_subparsers(dest="command", required=True)

    rep = sub.add_parser("replay", help="aggregate a saved trace")
    rep.add_argument("trace", help="trace JSON written by Observability.save")
    rep.add_argument("--json", default=None, help="write the report as JSON")
    rep.set_defaults(fn=_cmd_replay)

    demo = sub.add_parser("demo", help="traced prototype-chip farm run")
    demo.add_argument("--workers", type=int, default=2)
    demo.add_argument("--jobs", type=int, default=4)
    demo.add_argument("--repeat", type=int, default=2,
                      help="times the example text is repeated per job")
    demo.add_argument("--circuit", action="store_true",
                      help="trace down to the switch-level netlist (slow)")
    demo.add_argument("--trace", default=None, help="save the raw trace JSON")
    demo.add_argument("--json", default=None, help="write the report as JSON")
    demo.set_defaults(fn=_cmd_demo)

    args = ap.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
