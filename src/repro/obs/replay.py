"""Replay a recorded trace into a latency/utilization/queue report.

Works on the dict :meth:`repro.obs.Observability.export` produces (or
:meth:`~repro.obs.Observability.load` reads back): no live objects are
needed, so a trace captured in CI can be analysed offline, and the
JSON report this module emits is the CI artifact format.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.report import Table, kv_table


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 on empty input."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
    return ordered[int(rank)]


def _metric_value(metrics: Dict, name: str, default: float = 0.0,
                  **labels) -> float:
    want = {k: str(v) for k, v in labels.items()}
    for row in metrics.get(name, []):
        if row.get("labels", {}) == want and "value" in row:
            return float(row["value"])
    return default


def _metric_rows(metrics: Dict, name: str) -> List[Dict]:
    return list(metrics.get(name, []))


def trace_report(data: Dict[str, object]) -> Dict[str, object]:
    """Aggregate a replayed trace into the service-level report dict."""
    spans: List[Dict] = list(data.get("spans", []))          # type: ignore
    events: List[Dict] = list(data.get("events", []))        # type: ignore
    metrics: Dict = dict(data.get("metrics", {}))            # type: ignore

    jobs = [s for s in spans if s.get("name") == "service.job"
            and s.get("t1") is not None]
    latencies = [float(s["t1"]) - float(s["t0"]) for s in jobs]
    waits = [float(s["attrs"].get("wait_beats", 0.0)) for s in jobs]
    services = [float(s["attrs"].get("service_beats", 0.0)) for s in jobs]
    fallbacks = sum(1 for s in jobs if s["attrs"].get("via_fallback"))

    makespan = _metric_value(metrics, "service.makespan_beats")
    if makespan <= 0 and jobs:
        makespan = max(float(s["t1"]) for s in jobs)

    job_section = {
        "count": len(jobs),
        "latency_mean_beats": sum(latencies) / len(latencies) if jobs else 0.0,
        "latency_p50_beats": percentile(latencies, 50),
        "latency_p95_beats": percentile(latencies, 95),
        "latency_max_beats": max(latencies) if latencies else 0.0,
        "wait_mean_beats": sum(waits) / len(waits) if waits else 0.0,
        "service_mean_beats": sum(services) / len(services) if services else 0.0,
        "via_fallback": fallbacks,
        "makespan_beats": makespan,
    }

    # Per-worker view: executions from spans, busy beats from the metric
    # the telemetry layer publishes (already overlap-clipped).
    worker_execs: Dict[str, int] = {}
    worker_chars: Dict[str, int] = {}
    for s in spans:
        if s.get("name") != "worker.match":
            continue
        w = str(s["attrs"].get("worker", "?"))
        worker_execs[w] = worker_execs.get(w, 0) + 1
        worker_chars[w] = worker_chars.get(w, 0) + int(
            s["attrs"].get("chars", 0)
        )
    workers = {}
    busy_rows = _metric_rows(metrics, "service.worker.busy_beats")
    names = sorted(
        set(worker_execs)
        | {r["labels"].get("worker", "?") for r in busy_rows}
    )
    for name in names:
        busy = _metric_value(metrics, "service.worker.busy_beats", worker=name)
        workers[name] = {
            "executions": worker_execs.get(name, 0),
            "chars": worker_chars.get(name, 0),
            "busy_beats": busy,
            "utilization": min(1.0, busy / makespan) if makespan > 0 else 0.0,
        }

    # Queue depth over time, per priority class.
    queue: Dict[str, Dict[str, float]] = {}
    for e in events:
        if e.get("name") != "queue.depth":
            continue
        cls = str(e["attrs"].get("priority", "?"))
        depth = float(e["attrs"].get("depth", 0))
        entry = queue.setdefault(cls, {"samples": 0, "max": 0.0, "last": 0.0})
        entry["samples"] += 1
        entry["max"] = max(entry["max"], depth)
        entry["last"] = depth
    for row in _metric_rows(metrics, "service.queue.high_water"):
        cls = row["labels"].get("priority", "?")
        entry = queue.setdefault(cls, {"samples": 0, "max": 0.0, "last": 0.0})
        entry["high_water"] = float(row.get("value", 0.0))

    bus_section = {
        "busy_beats": _metric_value(metrics, "service.bus.busy_beats"),
        "chars_moved": _metric_value(metrics, "service.bus.chars_moved"),
        "utilization": (
            min(1.0, _metric_value(metrics, "service.bus.busy_beats") / makespan)
            if makespan > 0 else 0.0
        ),
    }

    # Circuit-level totals only exist on trace_circuit runs.
    settle_calls = sum(
        float(r.get("value", 0.0))
        for r in _metric_rows(metrics, "circuit.settle.calls")
    )
    settle_passes = sum(
        float(r.get("value", 0.0))
        for r in _metric_rows(metrics, "circuit.settle.passes")
    )
    depth_section = {
        "array_beats": sum(
            float(r.get("value", 0.0))
            for r in _metric_rows(metrics, "array.beats")
        ),
        "array_fires": sum(
            float(r.get("value", 0.0))
            for r in _metric_rows(metrics, "array.fires")
        ),
        "settle_calls": settle_calls,
        "settle_passes": settle_passes,
        "passes_per_settle": settle_passes / settle_calls if settle_calls else 0.0,
    }

    return {
        "jobs": job_section,
        "workers": workers,
        "queue": queue,
        "bus": bus_section,
        "depth": depth_section,
        "span_count": len(spans),
        "event_count": len(events),
    }


def render_report(report: Dict[str, object]) -> str:
    """The replay report as bench-style tables."""
    sections: List[str] = []
    sections.append(kv_table("jobs", report["jobs"]).render())

    workers: Dict[str, Dict] = report["workers"]             # type: ignore
    if workers:
        t = Table(
            ["worker", "executions", "chars", "busy beats", "utilization"],
            title="workers",
        )
        for name in sorted(workers):
            w = workers[name]
            t.row([name, w["executions"], w["chars"], w["busy_beats"],
                   w["utilization"]])
        sections.append(t.render())

    queue: Dict[str, Dict] = report["queue"]                 # type: ignore
    if queue:
        t = Table(
            ["class", "samples", "max depth", "last depth", "high water"],
            title="queue depth",
        )
        for cls in sorted(queue):
            q = queue[cls]
            t.row([cls.lower(), int(q.get("samples", 0)), q.get("max", 0.0),
                   q.get("last", 0.0), q.get("high_water", q.get("max", 0.0))])
        sections.append(t.render())

    sections.append(kv_table("bus", report["bus"]).render())
    depth: Dict[str, float] = report["depth"]                # type: ignore
    if any(depth.values()):
        sections.append(kv_table("execution depth", depth).render())
    return "\n\n".join(sections)
