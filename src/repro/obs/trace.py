"""Span-based tracing across the simulation stack.

A :class:`Span` is one timed interval of *simulated* time -- a service
job waiting and running (beats), one execution on one worker (beats),
one ``LinearArray`` run (beats), one circuit ``settle()`` (ns).  Spans
nest: the tracer keeps an explicit context stack so a layer that knows
nothing about its caller still parents its spans correctly, and layers
that complete out of stack order (the service's discrete-event loop)
record spans with an explicit parent instead.

Timestamps are supplied by the caller (beat clocks and ``time_ns`` are
simulation state, not wall time), so traces are deterministic and
replayable; :mod:`repro.obs.replay` turns an exported trace back into a
latency/utilization report.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import ObservabilityError


def _jsonable(value: object) -> object:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


@dataclass
class Span:
    """One timed interval at one level of the stack."""

    span_id: int
    name: str
    t0: float
    t1: Optional[float] = None
    unit: str = "beats"
    parent_id: Optional[int] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.t1 - self.t0) if self.t1 is not None else 0.0

    @property
    def open(self) -> bool:
        return self.t1 is None

    def to_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "t0": self.t0,
            "t1": self.t1,
            "unit": self.unit,
            "parent_id": self.parent_id,
            "attrs": {k: _jsonable(v) for k, v in self.attrs.items()},
        }


@dataclass
class TraceEvent:
    """A point record (no duration): a queue-depth sample, a fault."""

    name: str
    t: float
    unit: str = "beats"
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "t": self.t,
            "unit": self.unit,
            "attrs": {k: _jsonable(v) for k, v in self.attrs.items()},
        }


class Tracer:
    """Collects spans and events; maintains the nesting context stack.

    ``max_spans``/``max_events`` bound memory on long runs: once the cap
    is hit, further spans are created (so code holding them still works)
    but not retained, and ``dropped_spans`` counts them.

    Span/event *creation* is lock-protected, so threads (the runtime's
    dispatcher/collector) may record completed spans concurrently with
    the event loop.  The nesting context *stack* stays single-threaded
    by design: concurrent layers must pass ``parent`` explicitly (or
    adopt worker-process spans via :meth:`adopt`).
    """

    def __init__(self, max_spans: int = 100_000, max_events: int = 100_000):
        self.max_spans = max_spans
        self.max_events = max_events
        self.spans: List[Span] = []
        self.events: List[TraceEvent] = []
        self.dropped_spans = 0
        self.dropped_events = 0
        self._stack: List[Span] = []
        self._next_id = 1
        self._lock = threading.RLock()

    # -- creation ----------------------------------------------------------

    def _new(
        self,
        name: str,
        t0: float,
        t1: Optional[float],
        unit: str,
        parent: Optional[Span],
        attrs: Dict[str, object],
    ) -> Span:
        if parent is None and self._stack:
            parent_id: Optional[int] = self._stack[-1].span_id
        else:
            parent_id = parent.span_id if parent is not None else None
        with self._lock:
            span = Span(
                span_id=self._next_id,
                name=name,
                t0=float(t0),
                t1=None if t1 is None else float(t1),
                unit=unit,
                parent_id=parent_id,
                attrs=attrs,
            )
            self._next_id += 1
            if len(self.spans) < self.max_spans:
                self.spans.append(span)
            else:
                self.dropped_spans += 1
        return span

    def begin(
        self,
        name: str,
        t0: float,
        unit: str = "beats",
        parent: Optional[Span] = None,
        **attrs,
    ) -> Span:
        """Open a span and push it on the context stack.

        Subsequent spans (from any layer) parent to it until :meth:`end`.
        """
        span = self._new(name, t0, None, unit, parent, attrs)
        self._stack.append(span)
        return span

    def end(self, span: Span, t1: float, **attrs) -> Span:
        """Close *span* and pop it (and any unclosed children) off the stack."""
        span.t1 = float(t1)
        span.attrs.update(attrs)
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        return span

    def open_span(
        self,
        name: str,
        t0: float,
        unit: str = "beats",
        parent: Optional[Span] = None,
        **attrs,
    ) -> Span:
        """Open a span *without* stacking it (for long-lived async work
        like a queued service job; close with :meth:`close`)."""
        return self._new(name, t0, None, unit, parent, attrs)

    def close(self, span: Span, t1: float, **attrs) -> Span:
        span.t1 = float(t1)
        span.attrs.update(attrs)
        return span

    def record(
        self,
        name: str,
        t0: float,
        t1: float,
        unit: str = "beats",
        parent: Optional[Span] = None,
        **attrs,
    ) -> Span:
        """A completed span in one shot (discrete-event completions)."""
        return self._new(name, t0, t1, unit, parent, attrs)

    @contextmanager
    def span(
        self,
        name: str,
        clock: Callable[[], float],
        unit: str = "beats",
        parent: Optional[Span] = None,
        **attrs,
    ):
        """Context manager: times the block on the caller's sim clock."""
        s = self.begin(name, clock(), unit=unit, parent=parent, **attrs)
        try:
            yield s
        finally:
            self.end(s, clock())

    @contextmanager
    def nest(self, span: Span):
        """Temporarily make *span* the context parent (for re-entering an
        async span's context from a different layer)."""
        self._stack.append(span)
        try:
            yield span
        finally:
            while self._stack:
                if self._stack.pop() is span:
                    break

    def event(self, name: str, t: float, unit: str = "beats", **attrs) -> None:
        with self._lock:
            if len(self.events) < self.max_events:
                self.events.append(TraceEvent(name, float(t), unit, attrs))
            else:
                self.dropped_events += 1

    def adopt(
        self,
        span_dicts: List[Dict[str, object]],
        parent: Optional[Span] = None,
        offset: float = 0.0,
    ) -> List[Span]:
        """Import completed spans recorded by *another* tracer.

        This is the process-boundary half of the span story: a
        :mod:`repro.runtime` worker records ``worker.kernel`` spans into
        its own tracer, ships ``to_dict()["spans"]`` back with its reply,
        and the host adopts them under the job's ``runtime.job`` span.
        Fresh span ids are assigned; parent links *within* the imported
        batch are preserved, and batch roots attach to *parent*.
        *offset* shifts the imported timestamps (worker clocks start at
        its own job start; the host offsets them to dispatch time).
        """
        adopted: List[Span] = []
        with self._lock:
            id_map: Dict[int, int] = {}
            for sd in span_dicts:
                old_id = sd.get("span_id")
                old_parent = sd.get("parent_id")
                if old_parent in id_map:
                    parent_id: Optional[int] = id_map[old_parent]
                elif parent is not None:
                    parent_id = parent.span_id
                else:
                    parent_id = None
                t1 = sd.get("t1")
                span = Span(
                    span_id=self._next_id,
                    name=str(sd["name"]),
                    t0=float(sd["t0"]) + offset,
                    t1=None if t1 is None else float(t1) + offset,
                    unit=str(sd.get("unit", "beats")),
                    parent_id=parent_id,
                    attrs=dict(sd.get("attrs", {})),
                )
                self._next_id += 1
                if old_id is not None:
                    id_map[int(old_id)] = span.span_id
                if len(self.spans) < self.max_spans:
                    self.spans.append(span)
                else:
                    self.dropped_spans += 1
                adopted.append(span)
        return adopted

    # -- queries -----------------------------------------------------------

    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def find(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def children(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def roots(self) -> List[Span]:
        ids = {s.span_id for s in self.spans}
        return [
            s for s in self.spans
            if s.parent_id is None or s.parent_id not in ids
        ]

    def ancestry(self, span: Span) -> List[Span]:
        """The span's parent chain, innermost first (span excluded)."""
        by_id = {s.span_id: s for s in self.spans}
        out: List[Span] = []
        cur = span.parent_id
        while cur is not None:
            parent = by_id.get(cur)
            if parent is None:
                break
            out.append(parent)
            cur = parent.parent_id
        return out

    # -- export ------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "spans": [s.to_dict() for s in self.spans],
            "events": [e.to_dict() for e in self.events],
            "dropped_spans": self.dropped_spans,
            "dropped_events": self.dropped_events,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Tracer":
        tracer = cls()
        for sd in data.get("spans", []):
            span = Span(
                span_id=int(sd["span_id"]),
                name=str(sd["name"]),
                t0=float(sd["t0"]),
                t1=None if sd.get("t1") is None else float(sd["t1"]),
                unit=str(sd.get("unit", "beats")),
                parent_id=sd.get("parent_id"),
                attrs=dict(sd.get("attrs", {})),
            )
            tracer.spans.append(span)
            tracer._next_id = max(tracer._next_id, span.span_id + 1)
        for ed in data.get("events", []):
            tracer.events.append(
                TraceEvent(
                    name=str(ed["name"]),
                    t=float(ed["t"]),
                    unit=str(ed.get("unit", "beats")),
                    attrs=dict(ed.get("attrs", {})),
                )
            )
        return tracer

    def render_tree(self, max_spans: int = 200) -> str:
        """Indented span tree (depth-first, creation order)."""
        children: Dict[Optional[int], List[Span]] = {}
        ids = {s.span_id for s in self.spans}
        for s in self.spans:
            pid = s.parent_id if s.parent_id in ids else None
            children.setdefault(pid, []).append(s)
        lines: List[str] = []

        def walk(pid: Optional[int], depth: int) -> None:
            for s in children.get(pid, []):
                if len(lines) >= max_spans:
                    return
                t1 = "open" if s.t1 is None else f"{s.t1:g}"
                extras = " ".join(
                    f"{k}={_jsonable(v)}" for k, v in sorted(s.attrs.items())
                )
                lines.append(
                    "  " * depth
                    + f"{s.name} [{s.t0:g}..{t1} {s.unit}]"
                    + (f" {extras}" if extras else "")
                )
                walk(s.span_id, depth + 1)

        walk(None, 0)
        if len(self.spans) > max_spans:
            lines.append(f"... ({len(self.spans) - max_spans} more spans)")
        return "\n".join(lines)
