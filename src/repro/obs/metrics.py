"""The metrics registry: counters, gauges, and histograms with labels.

One registry instance collects every number the stack produces -- farm
telemetry, array fire counts, settle passes -- under stable dotted names
(``service.worker.busy_beats``, ``array.fires``, ``circuit.settle.passes``)
qualified by label sets (``worker="chip-3"``).  Layers publish into it
through cached metric handles so the hot paths pay one attribute check
when observability is off and one bound-method call when it is on.

The registry is deliberately small: no time series, no background
threads, just monotone counters, last-value gauges, and fixed-bucket
histograms, all snapshot-able to JSON for the ``python -m repro.obs``
replay tooling.

Concurrency: every mutation (``inc``/``set``/``observe`` and the
get-or-create paths) takes a lock, so one registry may be shared by the
event loop and the :mod:`repro.runtime` pool threads without losing
updates.  Worker *processes* do not share the registry: each keeps a
private one and ships :meth:`MetricsRegistry.snapshot` back with its
reply; the host folds it in with :meth:`MetricsRegistry.merge_snapshot`
(counters add, gauges last-write, histograms merge bucket-by-bucket).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ObservabilityError

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotone accumulator (use a :class:`Gauge` for values that fall)."""

    __slots__ = ("name", "labels", "value", "_lock")
    kind = "counter"

    def __init__(self, name: str, labels: Dict[str, str]):
        self.name = name
        self.labels = labels
        self.value: float = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (amount={amount})"
            )
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}{dict(self.labels)}={self.value})"


class Gauge:
    """A last-value-wins instantaneous reading."""

    __slots__ = ("name", "labels", "value", "_lock")
    kind = "gauge"

    def __init__(self, name: str, labels: Dict[str, str]):
        self.name = name
        self.labels = labels
        self.value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def __repr__(self) -> str:
        return f"Gauge({self.name}{dict(self.labels)}={self.value})"


#: Default histogram buckets: powers of two cover beats and nanoseconds
#: alike without tuning.
DEFAULT_BUCKETS = tuple(float(2 ** k) for k in range(0, 24, 2))


class Histogram:
    """Fixed-bucket distribution: counts per upper bound, plus sum/count."""

    __slots__ = (
        "name", "labels", "bounds", "bucket_counts", "count", "total", "_lock",
    )
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Dict[str, str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ObservabilityError(f"histogram {name!r} needs >= 1 bucket")
        self.name = name
        self.labels = labels
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)  # +overflow
        self.count = 0
        self.total = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    return
            self.bucket_counts[-1] += 1

    def merge(
        self, bucket_counts: Sequence[int], count: int, total: float
    ) -> None:
        """Fold another histogram's buckets in (process-boundary merge).

        The incoming buckets must have been recorded against the same
        bounds (one slot per bound plus overflow)."""
        if len(bucket_counts) != len(self.bucket_counts):
            raise ObservabilityError(
                f"histogram {self.name!r}: cannot merge {len(bucket_counts)} "
                f"buckets into {len(self.bucket_counts)}"
            )
        with self._lock:
            for i, n in enumerate(bucket_counts):
                self.bucket_counts[i] += int(n)
            self.count += int(count)
            self.total += float(total)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}{dict(self.labels)}, n={self.count}, "
            f"mean={self.mean:.3g})"
        )


class MetricsRegistry:
    """Get-or-create registry of named, labelled metrics.

    A metric name is bound to one kind for the registry's lifetime;
    asking for ``counter("x")`` after ``gauge("x")`` is a programming
    error and raises :class:`~repro.errors.ObservabilityError`.
    """

    def __init__(self):
        self._kinds: Dict[str, str] = {}
        self._families: Dict[str, Dict[LabelKey, object]] = {}
        self._lock = threading.RLock()

    # -- get-or-create -----------------------------------------------------

    def _family(self, name: str, kind: str) -> Dict[LabelKey, object]:
        bound = self._kinds.get(name)
        if bound is None:
            self._kinds[name] = kind
            self._families[name] = {}
        elif bound != kind:
            raise ObservabilityError(
                f"metric {name!r} is a {bound}, not a {kind}"
            )
        return self._families[name]

    def counter(self, name: str, **labels) -> Counter:
        with self._lock:
            family = self._family(name, "counter")
            key = _label_key(labels)
            metric = family.get(key)
            if metric is None:
                metric = family[key] = Counter(name, dict(key))
            return metric

    def gauge(self, name: str, **labels) -> Gauge:
        with self._lock:
            family = self._family(name, "gauge")
            key = _label_key(labels)
            metric = family.get(key)
            if metric is None:
                metric = family[key] = Gauge(name, dict(key))
            return metric

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None, **labels
    ) -> Histogram:
        with self._lock:
            family = self._family(name, "histogram")
            key = _label_key(labels)
            metric = family.get(key)
            if metric is None:
                metric = family[key] = Histogram(
                    name, dict(key), buckets or DEFAULT_BUCKETS
                )
            return metric

    # -- queries -----------------------------------------------------------

    def get(self, name: str, **labels):
        """The metric if it exists, else None (never creates)."""
        family = self._families.get(name)
        if family is None:
            return None
        return family.get(_label_key(labels))

    def value(self, name: str, default: float = 0.0, **labels) -> float:
        """Scalar value of a counter/gauge, or *default* if absent."""
        metric = self.get(name, **labels)
        if metric is None:
            return default
        return metric.value

    def series(self, name: str) -> List[object]:
        """Every labelled instance of one metric name."""
        return list(self._families.get(name, {}).values())

    def names(self) -> List[str]:
        return sorted(self._families)

    def __iter__(self) -> Iterable[object]:
        for name in sorted(self._families):
            for key in sorted(self._families[name]):
                yield self._families[name][key]

    # -- merge (process boundary) -----------------------------------------

    def merge_snapshot(self, snapshot: Dict[str, List[Dict[str, object]]]) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        This is how :mod:`repro.runtime` worker processes report: each
        worker accumulates into a private registry, ships the snapshot
        over the reply channel, and the host merges it here.  Counters
        and histograms are additive; gauges take the incoming value
        (last write wins, matching their in-process semantics).
        """
        for name, rows in snapshot.items():
            for row in rows:
                kind = row.get("kind")
                labels = {str(k): v for k, v in row.get("labels", {}).items()}
                if kind == "counter":
                    self.counter(name, **labels).inc(
                        float(row.get("value", 0.0))
                    )
                elif kind == "gauge":
                    self.gauge(name, **labels).set(
                        float(row.get("value", 0.0))
                    )
                elif kind == "histogram":
                    hist = self.histogram(
                        name, buckets=row.get("bounds"), **labels
                    )
                    hist.merge(
                        row.get("bucket_counts", []),
                        row.get("count", 0),
                        row.get("total", 0.0),
                    )
                else:
                    raise ObservabilityError(
                        f"cannot merge metric {name!r} of kind {kind!r}"
                    )

    # -- export ------------------------------------------------------------

    def snapshot(self) -> Dict[str, List[Dict[str, object]]]:
        """JSON-able dump: name -> list of {labels, kind, value...}."""
        out: Dict[str, List[Dict[str, object]]] = {}
        for name in sorted(self._families):
            rows: List[Dict[str, object]] = []
            for key in sorted(self._families[name]):
                m = self._families[name][key]
                row: Dict[str, object] = {
                    "labels": dict(m.labels),
                    "kind": m.kind,
                }
                if isinstance(m, Histogram):
                    row["count"] = m.count
                    row["total"] = m.total
                    row["bounds"] = list(m.bounds)
                    row["bucket_counts"] = list(m.bucket_counts)
                else:
                    row["value"] = m.value
                rows.append(row)
            out[name] = rows
        return out

    def render(self) -> str:
        """Fixed-width text dump (one row per labelled instance)."""
        from ..analysis.report import Table

        table = Table(["metric", "labels", "value"], title="metrics")
        for m in self:
            labels = ",".join(f"{k}={v}" for k, v in sorted(m.labels.items()))
            if isinstance(m, Histogram):
                value = f"n={m.count} mean={m.mean:.4g}"
            else:
                value = m.value
            table.row([m.name, labels, value])
        return table.render()
