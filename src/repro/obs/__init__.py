"""Unified observability: metrics, spans, and waveform export.

One :class:`Observability` handle threads through the whole stack --
``MatcherService`` job -> shard execution -> pool worker -> chip ->
``LinearArray`` beats -> circuit ``settle()`` -- so a single trace
records what the farm did at every level the paper describes, from
Figure 3-2's character flow down to the two-phase clocking of the
Figure 3-5/3-6 circuits.

Usage::

    from repro.obs import Observability

    obs = Observability(deep=True)
    svc = MatcherService(pool, obs=obs)
    svc.submit("AXC", "ABCAACACCAB"); svc.drain()
    print(obs.tracer.render_tree())
    obs.save("trace.json")            # replay: python -m repro.obs replay

Everything is opt-in: with no ``Observability`` attached, the hot paths
pay a single ``is None`` check (the perf harness asserts the bound).
``deep=True`` additionally re-drives each service execution through the
stepwise array model under the tracer; ``trace_circuit=True`` goes all
the way to the switch-level netlist (slow -- bounded by
``circuit_char_limit``).  Deep re-execution is observation only: results
always come from the verified fast path, so tracing can never perturb
behaviour (asserted by the differential tests).
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import Span, TraceEvent, Tracer
from .vcd import (
    CircuitProbe,
    VCDTrace,
    VCDWriter,
    parse_vcd,
    render_waves,
    vcd_value,
)

__all__ = [
    "Observability",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "Tracer",
    "Span",
    "TraceEvent",
    "VCDWriter",
    "VCDTrace",
    "CircuitProbe",
    "parse_vcd",
    "render_waves",
    "vcd_value",
]

#: Export format version (bumped on incompatible trace layout changes).
TRACE_FORMAT = 1


class Observability:
    """The bundle a run threads through the stack.

    Parameters
    ----------
    deep:
        Re-drive each service execution through the beat-accurate array
        model under the tracer (adds ``chip.report``/``array.run`` spans
        and an ``array_agrees`` cross-check attribute).
    trace_circuit:
        Additionally re-drive executions through the switch-level
        netlist (``gate.match``/``circuit.settle`` spans).  Four orders
        of magnitude slower than the fast path; texts longer than
        ``circuit_char_limit`` skip it.
    """

    def __init__(
        self,
        deep: bool = False,
        trace_circuit: bool = False,
        circuit_char_limit: int = 64,
        max_spans: int = 100_000,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(max_spans=max_spans)
        self.deep = deep or trace_circuit
        self.trace_circuit = trace_circuit
        self.circuit_char_limit = circuit_char_limit

    # -- export ------------------------------------------------------------

    def export(self) -> Dict[str, object]:
        """The whole trace as one JSON-able dict (the replay format)."""
        data: Dict[str, object] = {
            "format": TRACE_FORMAT,
            "metrics": self.registry.snapshot(),
        }
        data.update(self.tracer.to_dict())
        return data

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.export(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @staticmethod
    def load(path: str) -> Dict[str, object]:
        """Read a saved trace back as the raw replay dict."""
        with open(path) as fh:
            return json.load(fh)

    def render(self) -> str:
        """Metrics table plus span tree (terminal debugging view)."""
        return self.registry.render() + "\n\n" + self.tracer.render_tree()
