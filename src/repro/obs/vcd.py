"""Value Change Dump (VCD) export of switch-level signals.

The paper's methodology argument rests on being able to *watch* the
chip: Figure 3-6's comparator is trusted because its stored bits and
``eq`` output can be followed phase by phase.  :class:`CircuitProbe`
samples named :class:`~repro.circuit.netlist.Circuit` nodes after every
``settle()`` (i.e. at every clock-phase edge of
:class:`~repro.circuit.clocks.TwoPhaseClock` /
:meth:`~repro.circuit.chipnet.MatcherArrayNetlist.pulse`), and
:class:`VCDWriter` emits the standard four-state dump any waveform
viewer (GTKWave, Surfer) opens directly.

:func:`parse_vcd` is the reader the test suite round-trips exports
through (timestamps must be monotone, every change must name a declared
signal); :func:`render_waves` gives the README-able ASCII rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ObservabilityError

#: Legal VCD scalar states (we never emit ``z``; rails and probes read
#: solved node values, where undriven-unknown is ``x``).
_STATES = frozenset("01xz")

_ID_FIRST = 33   # '!'
_ID_LAST = 126   # '~'


def _id_code(index: int) -> str:
    """Short printable identifier code for signal *index* (VCD 4.7)."""
    span = _ID_LAST - _ID_FIRST + 1
    out = []
    index += 1
    while index > 0:
        index, rem = divmod(index - 1, span)
        out.append(chr(_ID_FIRST + rem))
    return "".join(reversed(out))


def vcd_value(value: object) -> str:
    """Coerce a probe reading to a VCD state character.

    Accepts VCD chars, booleans/ints, and
    :class:`~repro.circuit.signals.LogicValue` (by name, so this module
    stays import-light).
    """
    if isinstance(value, str):
        v = value.lower()
        if v in _STATES:
            return v
        raise ObservabilityError(f"bad VCD state {value!r}")
    if isinstance(value, bool) or value in (0, 1):
        return "1" if value else "0"
    name = getattr(value, "name", "")
    if name == "HIGH":
        return "1"
    if name == "LOW":
        return "0"
    if name == "UNKNOWN":
        return "x"
    raise ObservabilityError(f"cannot encode {value!r} as a VCD state")


class VCDWriter:
    """Accumulates value changes and dumps standard VCD text.

    Changes may arrive in any order (several probes sharing one writer);
    the dump is emitted time-sorted, and within one timestamp the last
    write to a signal wins.  Only *changes* are emitted after the initial
    ``$dumpvars`` block, as the format intends.
    """

    def __init__(self, timescale: str = "1 ns", module: str = "repro",
                 comment: str = ""):
        self.timescale = timescale
        self.module = module
        self.comment = comment
        self._order: List[str] = []
        self._codes: Dict[str, str] = {}
        self._changes: Dict[int, Dict[str, str]] = {}

    # -- declaration -------------------------------------------------------

    def declare(self, name: str) -> None:
        """Register a 1-bit signal (idempotent)."""
        if name in self._codes:
            return
        self._codes[name] = _id_code(len(self._order))
        self._order.append(name)

    @property
    def signals(self) -> List[str]:
        return list(self._order)

    # -- recording ---------------------------------------------------------

    def change(self, t_ns: float, name: str, value: object) -> None:
        """Record signal *name* holding *value* at time *t_ns*."""
        if name not in self._codes:
            raise ObservabilityError(
                f"signal {name!r} was never declared; declare() it first"
            )
        t = int(round(t_ns))
        if t < 0:
            raise ObservabilityError("VCD time cannot be negative")
        self._changes.setdefault(t, {})[name] = vcd_value(value)

    # -- emission ----------------------------------------------------------

    def dump(self) -> str:
        lines: List[str] = []
        if self.comment:
            lines.append(f"$comment {self.comment} $end")
        lines.append(f"$timescale {self.timescale} $end")
        lines.append(f"$scope module {self.module} $end")
        for name in self._order:
            lines.append(f"$var wire 1 {self._codes[name]} {name} $end")
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")

        last: Dict[str, str] = {}
        first = True
        for t in sorted(self._changes):
            moment = self._changes[t]
            if first:
                # Initial snapshot: every declared signal gets a state
                # (unknown if never driven by this time).
                lines.append(f"#{t}")
                lines.append("$dumpvars")
                for name in self._order:
                    state = moment.get(name, "x")
                    lines.append(f"{state}{self._codes[name]}")
                    last[name] = state
                lines.append("$end")
                first = False
                continue
            emitted_time = False
            for name in self._order:
                state = moment.get(name)
                if state is None or last.get(name) == state:
                    continue
                if not emitted_time:
                    lines.append(f"#{t}")
                    emitted_time = True
                lines.append(f"{state}{self._codes[name]}")
                last[name] = state
        return "\n".join(lines) + "\n"

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.dump())


class CircuitProbe:
    """Samples named circuit nodes into a :class:`VCDWriter`.

    Registers itself on the circuit (``circuit.add_probe``), so every
    ``settle()`` -- hence every clock phase of ``pulse()`` /
    :class:`~repro.circuit.clocks.TwoPhaseClock` -- lands one sample at
    the circuit's current ``time_ns``.

    *signals* maps VCD display name -> circuit node name; a plain
    sequence of node names uses each node name as its display name.
    """

    def __init__(
        self,
        circuit,
        signals: Union[Mapping[str, str], Sequence[str]],
        writer: Optional[VCDWriter] = None,
    ):
        if isinstance(signals, Mapping):
            mapping = dict(signals)
        else:
            mapping = {name: name for name in signals}
        missing = [n for n in mapping.values() if n not in circuit.nodes]
        if missing:
            raise ObservabilityError(
                f"circuit {circuit.name!r} has no node(s) {sorted(missing)}"
            )
        self.circuit = circuit
        self.signals = mapping
        self.writer = writer or VCDWriter(module=circuit.name)
        for display in mapping:
            self.writer.declare(display)
        circuit.add_probe(self)
        self.sample()  # initial state

    def sample(self) -> None:
        t = self.circuit.time_ns
        nodes = self.circuit.nodes
        for display, node in self.signals.items():
            self.writer.change(t, display, nodes[node].value)

    def detach(self) -> None:
        probes = self.circuit._probes
        if self in probes:
            probes.remove(self)


@dataclass
class VCDTrace:
    """A parsed dump: declared signals and the time-ordered change list."""

    timescale: str
    signals: Dict[str, str]                     # display name -> id code
    changes: List[Tuple[int, str, str]] = field(default_factory=list)

    def history(self, name: str) -> List[Tuple[int, str]]:
        """(time, state) pairs for one signal, in dump order."""
        if name not in self.signals:
            raise ObservabilityError(
                f"no signal {name!r} in trace; have {sorted(self.signals)}"
            )
        return [(t, v) for t, n, v in self.changes if n == name]

    def value_at(self, name: str, t: int) -> str:
        state = "x"
        for time, s in self.history(name):
            if time > t:
                break
            state = s
        return state

    @property
    def times(self) -> List[int]:
        seen: List[int] = []
        for t, _, _ in self.changes:
            if not seen or seen[-1] != t:
                seen.append(t)
        return seen


def parse_vcd(text: str) -> VCDTrace:
    """Parse a (scalar-signal) VCD dump, validating the invariants the
    acceptance tests rely on: strictly monotone non-decreasing
    timestamps and changes only on declared identifier codes."""
    timescale = ""
    signals: Dict[str, str] = {}
    by_code: Dict[str, str] = {}
    changes: List[Tuple[int, str, str]] = []
    in_defs = True
    t: Optional[int] = None

    tokens = text.split("\n")
    i = 0
    while i < len(tokens):
        line = tokens[i].strip()
        i += 1
        if not line:
            continue
        if in_defs:
            if line.startswith("$timescale"):
                body = line
                while "$end" not in body and i < len(tokens):
                    body += " " + tokens[i].strip()
                    i += 1
                timescale = body.replace("$timescale", "").replace(
                    "$end", ""
                ).strip()
            elif line.startswith("$var"):
                parts = line.split()
                # $var wire 1 <code> <name...> $end
                if len(parts) < 6 or parts[-1] != "$end":
                    raise ObservabilityError(f"malformed $var line: {line!r}")
                code = parts[3]
                name = " ".join(parts[4:-1])
                if code in by_code:
                    raise ObservabilityError(f"duplicate id code {code!r}")
                signals[name] = code
                by_code[code] = name
            elif line.startswith("$enddefinitions"):
                in_defs = False
            continue
        if line.startswith("#"):
            new_t = int(line[1:])
            if t is not None and new_t < t:
                raise ObservabilityError(
                    f"non-monotonic timestamp #{new_t} after #{t}"
                )
            t = new_t
            continue
        if line.startswith("$"):
            continue  # $dumpvars / $end wrappers
        state, code = line[0].lower(), line[1:]
        if state not in _STATES:
            raise ObservabilityError(f"bad state char in change {line!r}")
        name = by_code.get(code)
        if name is None:
            raise ObservabilityError(
                f"change {line!r} names an undeclared signal code {code!r}"
            )
        if t is None:
            raise ObservabilityError(f"change {line!r} before any timestamp")
        changes.append((t, name, state))
    return VCDTrace(timescale=timescale, signals=signals, changes=changes)


def render_waves(
    source: Union[str, VCDWriter, VCDTrace],
    names: Optional[Sequence[str]] = None,
    max_cols: int = 24,
) -> str:
    """ASCII waveform table: one row per signal, one column per time.

    The README-able view of a dump -- Figure 3-6's comparator can be
    checked by eye without leaving the terminal.  *source* is a writer,
    a parsed trace, or raw VCD text.
    """
    if isinstance(source, VCDWriter):
        trace = parse_vcd(source.dump())
    elif isinstance(source, str):
        trace = parse_vcd(source)
    else:
        trace = source
    names = list(names) if names is not None else sorted(trace.signals)
    times = trace.times[:max_cols]
    width = max([len(n) for n in names] + [4])
    header = "time".rjust(width) + "  " + " ".join(
        f"{t:>6d}" for t in times
    )
    lines = [header]
    for name in names:
        row = [trace.value_at(name, t) for t in times]
        lines.append(name.rjust(width) + "  " + " ".join(
            f"{v:>6s}" for v in row
        ))
    if len(trace.times) > max_cols:
        lines.append(f"... ({len(trace.times) - max_cols} more timestamps)")
    return "\n".join(lines)
