"""The two cell algorithms of Section 3.2.1, at the character level.

Figure 3-3 splits every character cell into two stacked modules:

* the **comparator** (top row): pattern flows left-to-right, string flows
  right-to-left, and the cell hands the equality result ``d`` down to the
  accumulator beneath it;
* the **accumulator** (bottom row): receives ``d`` from above together with
  the end-of-pattern bit ``lambda`` and the don't-care bit ``x`` that
  travel with the pattern, maintains the temporary result ``t``, and at
  the end of the pattern uses ``t`` to replace the result ``r`` flowing
  right-to-left with the string.

The normative per-active-beat semantics (see DESIGN.md for the OCR
reconstruction):

    d        = (p_in == s_in)                    # comparator
    t'       = t AND (x_in OR d)                 # accumulator
    if lambda_in:  r_out = t' ; t = TRUE         # emit & re-initialise
    else:          r_out = r_in ; t = t'

The two classes below implement the modules separately (so the Figure 3-3
structure is inspectable and so the switch-level circuit models can be
checked against each module in isolation), and
:class:`MatcherCellKernel` composes them into one systolic cell for the
:class:`~repro.systolic.engine.LinearArray` engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..streams import PatternStreamItem


@dataclass(frozen=True)
class ResultToken:
    """A result value travelling leftward with the string stream."""

    value: object

    def __str__(self) -> str:
        if self.value is True:
            return "1"
        if self.value is False:
            return "0"
        return str(self.value)


class ComparatorCell:
    """Character-level comparator: ``d_out <- (p_in == s_in)``.

    Stateless at the character level.  (At the bit level -- Figure 3-4 --
    the comparator also ANDs in the partial result from the bit above;
    see :mod:`repro.core.bit_level`.)
    """

    def compare(self, p_char: str, s_char: str) -> bool:
        return p_char == s_char


class AccumulatorCell:
    """The accumulator of Section 3.2.1.

    Keeps the temporary result ``t`` between beats; ``t`` powers on TRUE
    (the paper's initialisation ``t <- TRUE`` is also applied on every
    end-of-pattern beat, which is what makes the recirculating pattern
    self-cleaning after array fill-up).
    """

    def __init__(self) -> None:
        self.t: bool = True

    def reset(self) -> None:
        self.t = True

    def absorb(self, d: bool, x_in: bool, lambda_in: bool) -> Optional[ResultToken]:
        """Process one active beat.

        Returns the freshly emitted :class:`ResultToken` on end-of-pattern
        beats (``r_out <- t``), or ``None`` on ordinary beats, where the
        cell simply lets the incoming result slot pass through
        (``r_out <- r_in``).
        """
        t_updated = self.t and (x_in or d)
        if lambda_in:
            self.t = True
            return ResultToken(t_updated)
        self.t = t_updated
        return None


class MatcherCellKernel:
    """One character cell = comparator stacked on accumulator.

    Channel protocol (matching :class:`repro.core.array.SystolicMatcherArray`):

    ``p``
        rightward; carries :class:`~repro.streams.PatternStreamItem`
        (character + ``x`` + ``lambda`` bits).
    ``s``
        leftward; carries :class:`~repro.core.array.TextToken`.
    ``r``
        leftward; carries :class:`ResultToken` (or a bubble/garbage slot
        before the first emission for that string position).

    The kernel fires only when both ``p`` and ``s`` are valid -- the
    alternate-beat activation of Figure 3-2.
    """

    #: exposed for tracing/tests: the last comparison result of this cell
    last_d: Optional[bool]

    def __init__(self) -> None:
        self.comparator = ComparatorCell()
        self.accumulator = AccumulatorCell()
        self.last_d = None

    def reset(self) -> None:
        self.accumulator.reset()
        self.last_d = None

    def fire(self, inputs: Mapping[str, object]) -> Dict[str, object]:
        p: PatternStreamItem = inputs["p"]
        s = inputs["s"]
        d = self.comparator.compare(p.char, s.char)
        self.last_d = d
        emitted = self.accumulator.absorb(d, p.is_wild, p.is_last)
        out: Dict[str, object] = {"p": p, "s": s}
        if emitted is not None:
            out["r"] = emitted
        return out

    def state_snapshot(self) -> Dict[str, object]:
        return {"t": self.accumulator.t, "d": self.last_d}
