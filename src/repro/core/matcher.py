"""The public pattern-matching API (the chip as the host sees it).

:class:`PatternMatcher` wraps the systolic array behind the interface of
Figure 3-1: feed it a pattern (with wild cards) and an endless text
stream; get back one result bit per text character, where bit *i* reports
whether the substring ending at position *i* matches the whole pattern.

>>> from repro import Alphabet, PatternMatcher
>>> m = PatternMatcher("AXC", Alphabet("ABCD"))
>>> m.match("ABCAACACCAB")
[False, False, True, False, False, True, False, False, True, False, False]

which is the paper's own example: pattern AXC matches the substrings
ABC, AAC and ACC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..alphabet import Alphabet, PatternChar, parse_pattern, pattern_to_string
from ..errors import PatternError
from ..streams import RecirculatingPattern
from ..systolic.tracing import TraceRecorder
from .array import SystolicMatcherArray
from .fastpath import FastMatcher
from .reference import match_oracle


@dataclass
class MatchReport:
    """Rich output of a matching run.

    Attributes
    ----------
    results:
        One boolean per text position (``i < k`` positions are False).
    match_positions:
        Indices *i* where the window ending at *i* matched.
    beats:
        Total beats the array ran, including fill and drain.
    utilization:
        Fraction of cell-beats on which a cell computed (steady state 1/2).
    """

    results: List[bool]
    match_positions: List[int] = field(init=False)
    beats: int = 0
    utilization: float = 0.0

    def __post_init__(self) -> None:
        self.match_positions = [i for i, r in enumerate(self.results) if r]


class PatternMatcher:
    """A software model of one pattern-matching chip of ``n_cells`` cells.

    Parameters
    ----------
    pattern:
        The pattern string; the letter ``X`` (configurable via
        ``wildcard_symbol``) denotes the wild card when it is not itself
        an alphabet symbol.  May also be a pre-parsed sequence of
        :class:`~repro.alphabet.PatternChar`.
    alphabet:
        The character alphabet Sigma.
    n_cells:
        Number of character cells; defaults to exactly the pattern length
        (the paper's minimum).  Must be >= the pattern length -- use
        :func:`repro.core.multipass.multipass_match` or a
        :class:`repro.chip.cascade.ChipCascade` for longer patterns.
    trace:
        When True, a :class:`~repro.systolic.tracing.TraceRecorder` is
        attached and exposed as :attr:`recorder`.
    use_fast_path:
        When True (the default), plain :meth:`match` calls run on the
        bit-parallel :class:`~repro.core.fastpath.FastMatcher` (proven
        equivalent to the stepwise array by the property tests); pass
        False to force every call through the beat-by-beat simulation.
        :meth:`report` always runs the stepwise array, since its beat and
        utilization figures only exist there.
    obs:
        Optional :class:`~repro.obs.Observability` bundle.  Fast-path
        matches count into ``matcher.fastpath.matches`` / ``.chars``;
        stepwise runs additionally emit ``array.run`` spans and beat/fire
        counters via the attached array.
    """

    def __init__(
        self,
        pattern,
        alphabet: Alphabet,
        n_cells: Optional[int] = None,
        wildcard_symbol: str = "X",
        trace: bool = False,
        use_fast_path: bool = True,
        obs=None,
    ):
        self.alphabet = alphabet
        if pattern and all(isinstance(pc, PatternChar) for pc in pattern):
            self.pattern: List[PatternChar] = list(pattern)
        else:
            self.pattern = parse_pattern(pattern, alphabet, wildcard_symbol)
        if n_cells is None:
            n_cells = len(self.pattern)
        if n_cells < len(self.pattern):
            raise PatternError(
                f"pattern of length {len(self.pattern)} does not fit in "
                f"{n_cells} cells; cascade chips or use multipass matching"
            )
        self.recorder = TraceRecorder() if trace else None
        self.array = SystolicMatcherArray(n_cells, recorder=self.recorder)
        self._stream = RecirculatingPattern(self.pattern)
        self._fast: Optional[FastMatcher] = (
            FastMatcher(self.pattern, alphabet)
            if use_fast_path and self.recorder is None
            else None
        )
        self.obs = None
        self._m_fast_matches = None
        self._m_fast_chars = None
        if obs is not None:
            self.attach_obs(obs)

    def attach_obs(self, obs) -> None:
        """Attach/detach an Observability bundle (propagates to the array)."""
        self.obs = obs
        self.array.attach_obs(obs)
        if obs is None:
            self._m_fast_matches = self._m_fast_chars = None
        else:
            self._m_fast_matches = obs.registry.counter("matcher.fastpath.matches")
            self._m_fast_chars = obs.registry.counter("matcher.fastpath.chars")

    # -- public API -----------------------------------------------------------

    @property
    def pattern_string(self) -> str:
        return pattern_to_string(self.pattern)

    @property
    def pattern_length(self) -> int:
        return len(self.pattern)

    @property
    def n_cells(self) -> int:
        return self.array.n_cells

    def match(self, text: Sequence[str]) -> List[bool]:
        """One result bit per text character (Section 3.1 semantics)."""
        if self._fast is not None:
            if self._m_fast_matches is not None:
                self._m_fast_matches.inc()
                self._m_fast_chars.inc(len(text))
            return self._fast.match(text)
        return self.report(text).results

    def report(self, text: Sequence[str]) -> MatchReport:
        """Run the array and return results plus run statistics."""
        chars = self.alphabet.validate_text(text)
        raw = self.array.run(self._stream.items, chars)
        k = len(self.pattern) - 1
        results = [
            bool(raw.get(i, False)) if i >= k else False for i in range(len(chars))
        ]
        return MatchReport(
            results=results,
            beats=self.array.array.beat,
            utilization=self.array.utilization(),
        )

    def find(self, text: Sequence[str]) -> List[int]:
        """Start positions of every matching substring."""
        k = len(self.pattern) - 1
        return [i - k for i, r in enumerate(self.match(text)) if r]

    def verify_against_oracle(self, text: Sequence[str]) -> bool:
        """Convenience for tests: does the array agree with the definition?"""
        return self.match(text) == match_oracle(self.pattern, list(text))
