"""The bit-pipelined comparator array of Figure 3-4.

"Rather than using one large circuit to compare whole characters, we can
divide each comparator into modules that can compare single bits. ...  By
staggering the bits so the high order bits enter the array before the low
order ones, we can make a pipeline comparator.  Each single bit comparator
shifts its result down to meet the bits coming into the next lower
comparator.  The active and idle comparators alternate vertically as well
as horizontally, so that on each beat the active comparators form a
checkerboard pattern."

Structure simulated here, for an alphabet of ``w``-bit characters and an
array of ``m`` columns:

* ``w`` rows of one-bit comparators.  Row ``j`` carries bit ``j`` (MSB =
  row 0) of the pattern rightward and of the string leftward, and computes
  ``d_out <- d_in AND (p_bit == s_bit)``, with ``d`` flowing downward one
  row per beat.  Row 0's ``d_in`` is hardwired TRUE.
* one accumulator row beneath, identical in behaviour to the
  character-level accumulator of :mod:`repro.core.cells`, receiving the
  completed character comparison from row ``w-1`` plus the ``lambda``/``x``
  bits, which travel rightward through the accumulator row delayed ``w``
  beats relative to the character's high-order bit.

Timing invariant (verified by the test suite): the accumulator row sees
exactly the character-level schedule of
:class:`~repro.core.array.SystolicMatcherArray`, ``w`` beats late; hence
the whole machine is beat-for-beat equivalent to the character-level
matcher with latency ``+w``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..alphabet import Alphabet, PatternChar, parse_pattern
from ..errors import PatternError, SimulationError
from ..streams import PatternStreamItem, RecirculatingPattern
from ..systolic.cell import BUBBLE, is_bubble


@dataclass
class BitFeedBeat:
    """Edge stimulus for one beat of a bit-pipelined array.

    ``p_row_in[j]`` / ``s_row_in[j]``: bit entering row *j* from the
    left / right (or BUBBLE).  ``lam_in``: the control-bit pair entering
    the accumulator row (a :class:`~repro.streams.PatternStreamItem` or
    BUBBLE).  ``s_tag_in``: the text position whose character's bits have
    fully entered (or BUBBLE).  Shared by the behavioural
    :class:`BitLevelMatcher` and the switch-level array of
    :mod:`repro.circuit.chipnet`, which must agree beat for beat.
    """

    p_row_in: List[object]
    s_row_in: List[object]
    lam_in: object
    s_tag_in: object


def bit_feed_schedule(
    alphabet: Alphabet,
    items: Sequence[PatternStreamItem],
    chars: Sequence[str],
    m: int,
    w: int,
    e_s: int,
    n_beats: int,
) -> List[BitFeedBeat]:
    """The Figure 3-4 feeding discipline as per-beat edge stimulus.

    Pattern character *c*'s bit *j* enters row *j* at beat ``2c + j``
    (recirculating mod ``len(items)``); its control bits enter the
    accumulator row ``w`` beats after the high-order bit.  Text character
    *q*'s bit *j* enters row *j* at beat ``e_s + 2q + j``.
    """
    L = len(items)
    pat_bits = [alphabet.encode(it.char) for it in items]
    txt_bits = [alphabet.encode(c) for c in chars]
    schedule: List[BitFeedBeat] = []
    for b in range(n_beats):
        p_row_in: List[object] = [BUBBLE] * w
        s_row_in: List[object] = [BUBBLE] * w
        lam_in: object = BUBBLE
        s_tag_in: object = BUBBLE
        for j in range(w):
            bj = b - j
            if bj >= 0 and bj % 2 == 0:
                p_row_in[j] = pat_bits[(bj // 2) % L][j]
            bj = b - e_s - j
            if bj >= 0 and bj % 2 == 0:
                q = bj // 2
                if q < len(chars):
                    s_row_in[j] = txt_bits[q][j]
        bl = b - w
        if bl >= 0 and bl % 2 == 0:
            lam_in = items[(bl // 2) % L]
        bq = b - e_s - w
        if bq >= 0 and bq % 2 == 0:
            q = bq // 2
            if q < len(chars):
                s_tag_in = q
        schedule.append(BitFeedBeat(p_row_in, s_row_in, lam_in, s_tag_in))
    return schedule


@dataclass
class CheckerboardSample:
    """One beat's active-comparator map, for the Figure 3-4 reproduction."""

    beat: int
    active: List[List[bool]]  # [row][column]


class BitLevelMatcher:
    """Pattern matcher built from one-bit comparators (Figure 3-4).

    Parameters
    ----------
    pattern:
        Pattern string (or pre-parsed :class:`PatternChar` sequence);
        ``X`` is the wild card by default.
    alphabet:
        Alphabet providing the ``bits``-wide binary character encoding.
    n_cells:
        Number of columns; defaults to the pattern length.
    record_checkerboard:
        When True, per-beat comparator activity maps are collected in
        :attr:`checkerboard`.
    """

    def __init__(
        self,
        pattern,
        alphabet: Alphabet,
        n_cells: Optional[int] = None,
        wildcard_symbol: str = "X",
        record_checkerboard: bool = False,
    ):
        self.alphabet = alphabet
        if pattern and all(isinstance(pc, PatternChar) for pc in pattern):
            self.pattern: List[PatternChar] = list(pattern)
        else:
            self.pattern = parse_pattern(pattern, alphabet, wildcard_symbol)
        if n_cells is None:
            n_cells = len(self.pattern)
        if n_cells < len(self.pattern):
            raise PatternError("pattern does not fit in the array")
        self.m = n_cells
        self.w = alphabet.bits
        self.record_checkerboard = record_checkerboard
        self.checkerboard: List[CheckerboardSample] = []
        self._items = RecirculatingPattern(self.pattern).items
        self._init_state()

    # -- state ----------------------------------------------------------------

    def _init_state(self) -> None:
        m, w = self.m, self.w
        # Horizontal bit pipelines, one pair per row.  Slots hold 0/1 or BUBBLE.
        self.p_bits: List[List[object]] = [[BUBBLE] * m for _ in range(w)]
        self.s_bits: List[List[object]] = [[BUBBLE] * m for _ in range(w)]
        # d_pending[j][i]: value awaiting consumption by row j at cell i this
        # beat (produced by row j-1 last beat).  Row 0 consumes hardwired TRUE
        # whenever its operands are valid, so d_pending[0] is unused.
        self.d_pending: List[List[object]] = [[BUBBLE] * m for _ in range(w + 1)]
        # Accumulator row pipelines.
        self.lam: List[object] = [BUBBLE] * m    # rightward, with x piggybacked
        self.r: List[object] = [BUBBLE] * m      # leftward results
        self.s_tag: List[object] = [BUBBLE] * m  # leftward text-position tags
        self.t: List[bool] = [True] * m          # accumulator temporaries
        self.beat = 0

    def reset(self) -> None:
        self._init_state()
        self.checkerboard = []

    # -- feeding schedule -------------------------------------------------------

    def text_entry_beat(self) -> int:
        """MSB of the first text character enters row 0 on this beat."""
        return self.m + 1

    def beats_needed(self, n_text: int) -> int:
        e_s = self.text_entry_beat()
        return e_s + 2 * max(0, n_text - 1) + self.w + self.m + 2

    # -- one beat ---------------------------------------------------------------

    def _step_raw(
        self,
        p_row_in: List[object],
        s_row_in: List[object],
        lam_in: object,
        r_in: object,
        s_tag_in: object,
    ) -> Tuple[object, object]:
        """One beat given per-row horizontal inputs.

        ``p_row_in[j]`` / ``s_row_in[j]``: bit entering row ``j`` at the
        left / right end (or BUBBLE).  ``lam_in``: the control-bit pair
        (a :class:`PatternStreamItem`) entering the accumulator row at the
        left.  ``s_tag_in``: text-position tag entering at the right.
        """
        m, w = self.m, self.w

        # Phase 1: shift every horizontal pipeline one cell.
        s_tag_out = self.s_tag[0]
        r_out = self.r[0]
        for j in range(w):
            row = self.p_bits[j]
            for i in range(m - 1, 0, -1):
                row[i] = row[i - 1]
            row[0] = p_row_in[j]
            row = self.s_bits[j]
            for i in range(m - 1):
                row[i] = row[i + 1]
            row[-1] = s_row_in[j]
        for i in range(m - 1, 0, -1):
            self.lam[i] = self.lam[i - 1]
        self.lam[0] = lam_in
        for i in range(m - 1):
            self.r[i] = self.r[i + 1]
            self.s_tag[i] = self.s_tag[i + 1]
        self.r[-1] = r_in
        self.s_tag[-1] = s_tag_in

        # Phase 2: comparator rows fire where both bit operands are valid.
        new_pending: List[List[object]] = [[BUBBLE] * m for _ in range(w + 1)]
        active = (
            [[False] * m for _ in range(w)] if self.record_checkerboard else None
        )
        for j in range(w):
            for i in range(m):
                pb, sb = self.p_bits[j][i], self.s_bits[j][i]
                if is_bubble(pb) or is_bubble(sb):
                    continue
                if j == 0:
                    d_in = True
                else:
                    d_in = self.d_pending[j][i]
                    if is_bubble(d_in):
                        raise SimulationError(
                            f"row {j} cell {i}: operands valid but no partial "
                            f"result arrived from above (beat {self.beat})"
                        )
                new_pending[j + 1][i] = bool(d_in) and (pb == sb)
                if active is not None:
                    active[j][i] = True

        # Phase 3: accumulator row consumes the completed comparisons that
        # row w-1 produced last beat.
        for i in range(m):
            d = self.d_pending[w][i]
            ctrl = self.lam[i]
            if is_bubble(d):
                continue
            if is_bubble(ctrl):
                raise SimulationError(
                    f"accumulator {i}: comparison arrived without control bits "
                    f"(beat {self.beat})"
                )
            t_updated = self.t[i] and (ctrl.is_wild or bool(d))
            if ctrl.is_last:
                self.r[i] = t_updated
                self.t[i] = True
            else:
                self.t[i] = t_updated

        self.d_pending = new_pending
        if active is not None:
            self.checkerboard.append(CheckerboardSample(self.beat, active))
        self.beat += 1
        return s_tag_out, r_out

    # -- end-to-end run -----------------------------------------------------------

    def match(self, text: Sequence[str]) -> List[bool]:
        """One result bit per text character; equals the oracle for i >= k."""
        chars = self.alphabet.validate_text(text)
        self.reset()
        e_s = self.text_entry_beat()
        n_beats = self.beats_needed(len(chars))
        schedule = bit_feed_schedule(
            self.alphabet, self._items, chars, self.m, self.w, e_s, n_beats
        )
        results: Dict[int, object] = {}
        for beat in schedule:
            s_tag_out, r_out = self._step_raw(
                beat.p_row_in, beat.s_row_in, beat.lam_in, BUBBLE, beat.s_tag_in
            )
            if not is_bubble(s_tag_out) and not is_bubble(r_out):
                results[s_tag_out] = r_out

        k = len(self.pattern) - 1
        return [
            bool(results.get(i, False)) if i >= k else False
            for i in range(len(chars))
        ]

    # -- Figure 3-4 inspection ------------------------------------------------

    def checkerboard_ok(self) -> bool:
        """Do active comparators form the Figure 3-4 checkerboard?

        In steady state, cell (row j, column i) is active on beats of a
        single parity, and orthogonal neighbours are active on the
        opposite parity.
        """
        for sample in self.checkerboard:
            grid = sample.active
            for j in range(self.w):
                for i in range(self.m):
                    if not grid[j][i]:
                        continue
                    if i + 1 < self.m and grid[j][i + 1]:
                        return False
                    if j + 1 < self.w and grid[j + 1][i]:
                        return False
        return True
