"""Packed-word and strided fast paths for the systolic kernels.

The systolic array computes, for every text position *i*, the AND-chain

    result[i] = all(p[j] matches text[i - k + j]  for j in 0..k)

one cell-beat at a time.  :class:`FastMatcher` computes the same bits with
the classic shift-and recurrence over precomputed per-symbol masks: state
word ``S`` keeps one bit per pattern position (bit *j* set iff the last
``j + 1`` text characters match the first ``j + 1`` pattern positions),
and each text character advances every position at once::

    S = ((S << 1) | 1) & mask[ch]       # mask[ch] bit j set iff p[j] ~ ch
    result.append(bool(S & accept))     # accept = 1 << (len(pattern) - 1)

Wild cards cost nothing: a wild position's bit is simply set in every
symbol's mask.  Python integers are arbitrary-width, so one "word" covers
any pattern length -- patterns longer than a chip, which the hardware
handles by cascading or multipass runs, collapse into the same loop.

This is a *model shortcut*, not a different matcher: the property tests in
``tests/test_fastpath.py`` assert bit-for-bit agreement with the stepwise
:class:`~repro.core.array.SystolicMatcherArray` model and with
:func:`~repro.core.reference.match_oracle` over random patterns, texts and
alphabet widths.  :class:`~repro.core.matcher.PatternMatcher` routes plain
``match()`` calls here (beat-accurate runs and traces still use the
stepwise array), which is what makes whole-corpus runs and the service
farm measure scheduling rather than interpreter overhead.

The same trick carries to the Section 3.4 extensions, all of which share
the matcher's sliding-window shape:

* :class:`FastCounter` packs one small per-position *counter* lane per
  pattern position into a single Python integer (SIMD within a register)
  and advances every lane per character, mirroring the shift-and loop --
  the fast twin of the counting machine.
* :func:`fast_inner_products` / :func:`fast_squared_distances` evaluate
  the numeric kernels (correlation, convolution, FIR, inner products)
  over numpy strided window views -- the fast twins of the correlation
  machine and the linear-product semiring machines.

Each fast kernel is differentially tested against the stepwise
``repro.extensions`` cells in ``tests/test_workloads_kernels.py``.

Batched tier (PR 7)
-------------------

The per-job kernels above still pay Python dispatch once per job.  The
batched twins amortize that over whole batches, in the two shapes the
farm actually sees:

* **many patterns x one text** -- :class:`FastMatcherBank` lane-packs
  every pattern into *one* arbitrary-width Python integer (a spacer bit
  between lanes absorbs each lane's shift-out), so a single shift-and
  step advances all patterns per text character.  :class:`FastCounterBank`
  is the counting twin over a shared code vector.
* **one pattern x many texts** -- :func:`fast_match_many`,
  :func:`fast_counts_many`, :func:`fast_inner_products_many` and
  :func:`fast_squared_distances_many` pad the batch into one
  ``(batch, max_len)`` numpy matrix and evaluate the window recurrence
  as ``O(pattern_len)`` vectorized passes over the whole batch, so the
  per-character Python overhead vanishes entirely.

All batched paths are property-tested equal to the per-job fast kernels
and the oracles (``tests/test_fastpath_batched.py``), ragged batches and
empty batches included, and fall back to per-job loops when numpy is
unavailable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..alphabet import Alphabet, PatternChar, parse_pattern, pattern_to_string

try:  # numpy is a declared dependency, but keep a pure-python fallback
    import numpy as _np
except Exception:  # pragma: no cover - exercised only on stripped installs
    _np = None

__all__ = [
    "FastMatcher",
    "FastCounter",
    "FastMatcherBank",
    "FastCounterBank",
    "fast_inner_products",
    "fast_squared_distances",
    "fast_match_many",
    "fast_counts_many",
    "fast_inner_products_many",
    "fast_squared_distances_many",
]


class FastMatcher:
    """Bit-parallel (shift-and) matcher, equivalent to the systolic array.

    Parameters mirror :class:`~repro.core.matcher.PatternMatcher`: a
    pattern (string or pre-parsed :class:`~repro.alphabet.PatternChar`
    sequence, wild cards included) over an :class:`~repro.alphabet.Alphabet`.
    """

    def __init__(
        self,
        pattern,
        alphabet: Alphabet,
        wildcard_symbol: str = "X",
    ):
        self.alphabet = alphabet
        if pattern and all(isinstance(pc, PatternChar) for pc in pattern):
            self.pattern: List[PatternChar] = list(pattern)
        else:
            self.pattern = parse_pattern(pattern, alphabet, wildcard_symbol)
        wild_bits = 0
        for j, pc in enumerate(self.pattern):
            if pc.is_wild:
                wild_bits |= 1 << j
        masks: Dict[str, int] = {s: wild_bits for s in alphabet.symbols}
        for j, pc in enumerate(self.pattern):
            if not pc.is_wild:
                masks[pc.char] |= 1 << j
        self._masks = masks
        self._accept = 1 << (len(self.pattern) - 1)

    @property
    def pattern_string(self) -> str:
        return pattern_to_string(self.pattern)

    @property
    def pattern_length(self) -> int:
        return len(self.pattern)

    def match(self, text: Sequence[str]) -> List[bool]:
        """One result bit per text character (Section 3.1 semantics)."""
        masks = self._masks
        accept = self._accept
        out: List[bool] = []
        append = out.append
        state = 0
        ch = None
        try:
            for ch in text:
                state = ((state << 1) | 1) & masks[ch]
                append((state & accept) != 0)
        except KeyError:
            # Same failure mode (and message) as the validating paths.
            self.alphabet.require(ch)
            raise
        return out

    def find(self, text: Sequence[str]) -> List[int]:
        """Start positions of every matching substring."""
        k = len(self.pattern) - 1
        return [i - k for i, r in enumerate(self.match(text)) if r]


class FastCounter:
    """Packed-lane match counter, equivalent to the counting machine.

    The Section 3.4 counting cell replaces the matcher's AND with an
    accumulating add: result ``r_i`` is *how many* of the ``L`` window
    positions match.  Here every pattern position gets a fixed-width
    counter lane inside one Python integer.  A lane only ever holds a
    partial match count, which is at most ``L``, so ``L.bit_length()``
    bits per lane can never carry into a neighbour.  Each text character
    shifts the whole lane vector up one lane (retiring the oldest window)
    and adds a precomputed per-symbol increment vector::

        state = ((state << F) & lanes_mask) + inc[ch]

    after which the top lane holds the finished count for the window
    ending at the current character.  Like :class:`FastMatcher`, one
    arbitrary-width integer covers any pattern length, and wild cards
    simply contribute to every symbol's increment vector.

    >>> from repro.alphabet import Alphabet
    >>> FastCounter("AB", Alphabet("AB")).counts("ABBB")
    [0, 2, 1, 1]
    """

    def __init__(
        self,
        pattern,
        alphabet: Alphabet,
        wildcard_symbol: str = "X",
    ):
        self.alphabet = alphabet
        if pattern and all(isinstance(pc, PatternChar) for pc in pattern):
            self.pattern: List[PatternChar] = list(pattern)
        else:
            self.pattern = parse_pattern(pattern, alphabet, wildcard_symbol)
        L = len(self.pattern)
        width = L.bit_length()  # max lane value is L -> never carries
        wild_inc = 0
        for j, pc in enumerate(self.pattern):
            if pc.is_wild:
                wild_inc |= 1 << (width * j)
        inc: Dict[str, int] = {s: wild_inc for s in alphabet.symbols}
        for j, pc in enumerate(self.pattern):
            if not pc.is_wild:
                inc[pc.char] |= 1 << (width * j)
        self._inc = inc
        self._width = width
        self._lanes_mask = (1 << (width * L)) - 1
        self._top_shift = width * (L - 1)
        self._lane_mask = (1 << width) - 1

    @property
    def pattern_string(self) -> str:
        return pattern_to_string(self.pattern)

    @property
    def pattern_length(self) -> int:
        return len(self.pattern)

    def counts(self, text: Sequence[str]) -> List[int]:
        """One match count per text character; 0 before the first full
        window (the convention of :func:`~repro.core.reference.count_oracle`)."""
        inc = self._inc
        width = self._width
        lanes_mask = self._lanes_mask
        top_shift = self._top_shift
        k = len(self.pattern) - 1
        out: List[int] = []
        append = out.append
        state = 0
        ch = None
        try:
            for i, ch in enumerate(text):
                state = ((state << width) & lanes_mask) + inc[ch]
                append(state >> top_shift if i >= k else 0)
        except KeyError:
            self.alphabet.require(ch)
            raise
        return out


def fast_inner_products(
    weights: Sequence[float], stream: Sequence[float]
) -> List[float]:
    """Sliding-window inner products ``sum_j w_j * s_{i-k+j}``.

    The numeric fast twin of the convolution/FIR/inner-product machines:
    one value per stream position, ``0.0`` before the first complete
    window (positions ``i < len(weights) - 1``).

    >>> fast_inner_products([1.0, 2.0], [1.0, 1.0, 1.0])
    [0.0, 3.0, 3.0]
    """
    L = len(weights)
    if L == 0:
        raise ValueError("weights must be non-empty")
    n = len(stream)
    k = L - 1
    if n < L:
        return [0.0] * n
    if _np is not None:
        windows = _np.lib.stride_tricks.sliding_window_view(
            _np.asarray(stream, dtype=float), L
        )
        body = windows @ _np.asarray(weights, dtype=float)
        return [0.0] * k + [float(v) for v in body]
    return [0.0] * k + [  # pragma: no cover - stripped-install fallback
        sum(weights[j] * stream[i - k + j] for j in range(L))
        for i in range(k, n)
    ]


def fast_squared_distances(
    taps: Sequence[float], stream: Sequence[float]
) -> List[float]:
    """Sliding-window squared distances ``sum_j (s_{i-k+j} - t_j)^2``.

    The numeric fast twin of the Section 3.4 correlation machine
    (:func:`~repro.core.reference.correlation_oracle` convention: ``0.0``
    before the first complete window).

    >>> fast_squared_distances([1.0, 3.0], [1.0, 3.0, 5.0])
    [0.0, 0.0, 8.0]
    """
    L = len(taps)
    if L == 0:
        raise ValueError("taps must be non-empty")
    n = len(stream)
    k = L - 1
    if n < L:
        return [0.0] * n
    if _np is not None:
        windows = _np.lib.stride_tricks.sliding_window_view(
            _np.asarray(stream, dtype=float), L
        )
        body = ((windows - _np.asarray(taps, dtype=float)) ** 2).sum(axis=1)
        return [0.0] * k + [float(v) for v in body]
    return [0.0] * k + [  # pragma: no cover - stripped-install fallback
        sum((stream[i - k + j] - taps[j]) ** 2 for j in range(L))
        for i in range(k, n)
    ]


# ---------------------------------------------------------------------------
# Batched tier: many patterns x one text, one pattern x many texts.
# ---------------------------------------------------------------------------

#: Per-alphabet byte->symbol-index lookup tables for vectorized text coding
#: (None when a symbol falls outside latin-1 and the table cannot be built).
_LUT_CACHE: Dict[Alphabet, Optional[object]] = {}


def _symbol_lut(alphabet: Alphabet):
    """A 256-entry byte->index table for *alphabet*, or None if unbuildable."""
    if _np is None:
        return None
    try:
        return _LUT_CACHE[alphabet]
    except KeyError:
        pass
    lut = _np.full(256, -1, dtype=_np.int16)
    for i, s in enumerate(alphabet.symbols):
        o = ord(s)
        if o > 255:
            lut = None
            break
        lut[o] = i
    if len(_LUT_CACHE) > 64:  # unbounded alphabets shouldn't pin memory
        _LUT_CACHE.clear()
    _LUT_CACHE[alphabet] = lut
    return lut


def _text_codes(text: Sequence[str], alphabet: Alphabet):
    """Symbol indices of *text* as an int16 array (AlphabetError on stray)."""
    lut = _symbol_lut(alphabet)
    if not isinstance(text, str):
        try:  # char lists (the validated form) take the fast str path too
            joined = "".join(text)
        except TypeError:
            joined = None
        if joined is not None and len(joined) == len(text):
            text = joined
    if lut is not None and isinstance(text, str):
        try:
            raw = text.encode("latin-1")
        except UnicodeEncodeError:
            raw = None
        if raw is not None:
            codes = lut[_np.frombuffer(raw, dtype=_np.uint8)]
            if codes.size and int(codes.min()) < 0:
                bad = int((codes < 0).argmax())
                alphabet.index(text[bad])  # raises AlphabetError
            return codes
    index = alphabet.index
    return _np.fromiter(
        (index(c) for c in text), dtype=_np.int16, count=len(text)
    )


def _parse(pattern, alphabet: Alphabet, wildcard_symbol: str) -> List[PatternChar]:
    if pattern and all(isinstance(pc, PatternChar) for pc in pattern):
        return list(pattern)
    return parse_pattern(pattern, alphabet, wildcard_symbol)


class FastMatcherBank:
    """Many patterns, one text: lane-packed multi-pattern shift-and.

    Every pattern gets a contiguous bit lane inside one arbitrary-width
    Python integer, with a single spacer bit between lanes: when the
    shared ``state << 1`` pushes a lane's top bit out, it lands on the
    spacer, which no symbol mask ever sets, so lanes never interfere.
    ``seed`` re-injects every lane's start bit each character and a
    single masked shift-and step advances *all* patterns at once --
    many patterns per word op, the multi-match form of Section 3.4.

    >>> from repro.alphabet import Alphabet
    >>> bank = FastMatcherBank(["AB", "BX"], Alphabet("ABCD"))
    >>> bank.match_all("ABC")
    [[False, True, False], [False, False, True]]
    """

    def __init__(
        self,
        patterns: Sequence[object],
        alphabet: Alphabet,
        wildcard_symbol: str = "X",
    ):
        self.alphabet = alphabet
        self.patterns: List[List[PatternChar]] = [
            _parse(p, alphabet, wildcard_symbol) for p in patterns
        ]
        seed = 0
        accept_mask = 0
        wild_bits = 0
        lane_of: Dict[int, int] = {}
        offset = 0
        offsets: List[int] = []
        for p, pcs in enumerate(self.patterns):
            offsets.append(offset)
            seed |= 1 << offset
            accept_bit = offset + len(pcs) - 1
            accept_mask |= 1 << accept_bit
            lane_of[accept_bit] = p
            for j, pc in enumerate(pcs):
                if pc.is_wild:
                    wild_bits |= 1 << (offset + j)
            offset += len(pcs) + 1  # +1 spacer absorbs the lane's shift-out
        masks: Dict[str, int] = {s: wild_bits for s in alphabet.symbols}
        for p, pcs in enumerate(self.patterns):
            off = offsets[p]
            for j, pc in enumerate(pcs):
                if not pc.is_wild:
                    masks[pc.char] |= 1 << (off + j)
        self._masks = masks
        self._seed = seed
        self._accept_mask = accept_mask
        self._lane_of = lane_of

    @property
    def pattern_strings(self) -> List[str]:
        return [pattern_to_string(p) for p in self.patterns]

    def __len__(self) -> int:
        return len(self.patterns)

    def match_all(self, text: Sequence[str]) -> List[List[bool]]:
        """One result list per pattern, each per Section 3.1 semantics."""
        n = len(text)
        out: List[List[bool]] = [[False] * n for _ in self.patterns]
        if not self.patterns:
            return out
        masks = self._masks
        seed = self._seed
        accept_mask = self._accept_mask
        lane_of = self._lane_of
        state = 0
        ch = None
        try:
            for i, ch in enumerate(text):
                state = ((state << 1) | seed) & masks[ch]
                hits = state & accept_mask
                while hits:
                    low = hits & -hits
                    out[lane_of[low.bit_length() - 1]][i] = True
                    hits ^= low
        except KeyError:
            self.alphabet.require(ch)
            raise
        return out


class FastCounterBank:
    """Many patterns, one text: batched window match-counting.

    Computes every pattern's :class:`FastCounter` result over one shared
    symbol-code vector: the text is coded once, then each pattern is an
    ``O(pattern_len)`` sweep of vectorized window compares -- no
    per-character Python at all.  Falls back to per-pattern
    :class:`FastCounter` loops when numpy is unavailable.

    >>> from repro.alphabet import Alphabet
    >>> FastCounterBank(["AB", "BB"], Alphabet("AB")).counts_all("ABBB")
    [[0, 2, 1, 1], [0, 1, 2, 2]]
    """

    def __init__(
        self,
        patterns: Sequence[object],
        alphabet: Alphabet,
        wildcard_symbol: str = "X",
    ):
        self.alphabet = alphabet
        self.patterns: List[List[PatternChar]] = [
            _parse(p, alphabet, wildcard_symbol) for p in patterns
        ]

    def __len__(self) -> int:
        return len(self.patterns)

    def counts_all(self, text: Sequence[str]) -> List[List[int]]:
        if _np is None or not self.patterns:  # pragma: no cover - stripped
            return [
                FastCounter(p, self.alphabet).counts(text)
                for p in self.patterns
            ]
        codes = _text_codes(text, self.alphabet)
        n = len(text)
        index = self.alphabet.index
        out: List[List[int]] = []
        for pcs in self.patterns:
            L = len(pcs)
            k = L - 1
            if n < L:
                out.append([0] * n)
                continue
            n_out = n - k
            cnt = _np.zeros(n_out, dtype=_np.int64)
            for j, pc in enumerate(pcs):
                if pc.is_wild:
                    cnt += 1
                else:
                    cnt += codes[j : j + n_out] == index(pc.char)
            out.append([0] * k + cnt.tolist())
        return out


def _codes_matrix(texts: Sequence[Sequence[str]], alphabet: Alphabet):
    """Pad a ragged batch of texts into one (batch, max_len) code matrix.

    All-str batches (the form the services ship) are encoded in ONE
    pass: join, encode, one LUT gather, one boolean scatter into the
    padded matrix.  Per-text coding only remains for exotic inputs.
    """
    lens = [len(t) for t in texts]
    n_max = max(lens)
    mat = _np.zeros((len(texts), n_max), dtype=_np.int16)
    lut = _symbol_lut(alphabet)
    joined = None
    if lut is not None:
        try:  # validated char lists join to the same one-pass form
            joined = "".join(
                t if isinstance(t, str) else "".join(t) for t in texts
            )
        except TypeError:
            joined = None
    if joined is not None and len(joined) == sum(lens):
        try:
            raw = joined.encode("latin-1")
        except UnicodeEncodeError:
            raw = None
        if raw is not None:
            codes = lut[_np.frombuffer(raw, dtype=_np.uint8)]
            if codes.size and int(codes.min()) < 0:
                bad = int((codes < 0).argmax())
                alphabet.index(joined[bad])  # raises AlphabetError
            # Row-major boolean scatter lines up with the join order.
            valid = _np.arange(n_max) < _np.asarray(lens)[:, None]
            mat[valid] = codes
            return mat, lens
    for b, t in enumerate(texts):
        if lens[b]:
            mat[b, : lens[b]] = _text_codes(t, alphabet)
    return mat, lens


def fast_match_many(
    pattern,
    texts: Sequence[Sequence[str]],
    alphabet: Alphabet,
    wildcard_symbol: str = "X",
) -> List[List[bool]]:
    """One pattern over many texts as vectorized batch-matrix passes.

    The shift-and recurrence is sequential per text, but the windowed
    *definition* is not: ``result[i] = all_j(p[j] ~ text[i-k+j])``.  Over
    a padded ``(batch, max_len)`` code matrix that AND-chain is just
    ``len(pattern)`` vectorized equality passes -- every text advances in
    the same numpy op.  Padded tails never leak: each row is truncated
    back to its own length on extraction.

    >>> from repro.alphabet import Alphabet
    >>> fast_match_many("AB", ["ABC", "AB", "C"], Alphabet("ABCD"))
    [[False, True, False], [False, True], [False]]
    """
    pcs = _parse(pattern, alphabet, wildcard_symbol)
    if not texts:
        return []
    if _np is None:  # pragma: no cover - stripped-install fallback
        m = FastMatcher(pcs, alphabet)
        return [m.match(t) for t in texts]
    L = len(pcs)
    k = L - 1
    mat, lens = _codes_matrix(texts, alphabet)
    n_out = mat.shape[1] - k
    if n_out <= 0:
        return [[False] * n for n in lens]
    res = _np.ones((len(texts), n_out), dtype=bool)
    index = alphabet.index
    for j, pc in enumerate(pcs):
        if not pc.is_wild:
            res &= mat[:, j : j + n_out] == index(pc.char)
    return [
        [False] * n if n < L else [False] * k + res[b, : n - k].tolist()
        for b, n in enumerate(lens)
    ]


def fast_counts_many(
    pattern,
    texts: Sequence[Sequence[str]],
    alphabet: Alphabet,
    wildcard_symbol: str = "X",
) -> List[List[int]]:
    """One pattern's match counts over many texts (batched FastCounter).

    >>> from repro.alphabet import Alphabet
    >>> fast_counts_many("AB", ["ABBB", "AA"], Alphabet("AB"))
    [[0, 2, 1, 1], [0, 1]]
    """
    pcs = _parse(pattern, alphabet, wildcard_symbol)
    if not texts:
        return []
    if _np is None:  # pragma: no cover - stripped-install fallback
        c = FastCounter(pcs, alphabet)
        return [c.counts(t) for t in texts]
    L = len(pcs)
    k = L - 1
    mat, lens = _codes_matrix(texts, alphabet)
    n_out = mat.shape[1] - k
    if n_out <= 0:
        return [[0] * n for n in lens]
    cnt = _np.zeros((len(texts), n_out), dtype=_np.int64)
    index = alphabet.index
    for j, pc in enumerate(pcs):
        if pc.is_wild:
            cnt += 1
        else:
            cnt += mat[:, j : j + n_out] == index(pc.char)
    return [
        [0] * n if n < L else [0] * k + cnt[b, : n - k].tolist()
        for b, n in enumerate(lens)
    ]


def _numeric_matrix(streams: Sequence[Sequence[float]]):
    lens = [len(s) for s in streams]
    n_max = max(lens)
    mat = _np.zeros((len(streams), n_max), dtype=float)
    for b, s in enumerate(streams):
        if lens[b]:
            mat[b, : lens[b]] = _np.asarray(s, dtype=float)
    return mat, lens


def fast_inner_products_many(
    weights: Sequence[float], streams: Sequence[Sequence[float]]
) -> List[List[float]]:
    """Sliding-window inner products of one tap vector over many streams.

    One batched matmul over the padded window view replaces the per-job
    loop; rows are truncated back to their own lengths so ragged batches
    agree element-for-element with :func:`fast_inner_products`.

    >>> fast_inner_products_many([1.0, 2.0], [[1.0, 1.0, 1.0], [2.0]])
    [[0.0, 3.0, 3.0], [0.0]]
    """
    L = len(weights)
    if L == 0:
        raise ValueError("weights must be non-empty")
    if not streams:
        return []
    if _np is None:  # pragma: no cover - stripped-install fallback
        return [fast_inner_products(weights, s) for s in streams]
    k = L - 1
    mat, lens = _numeric_matrix(streams)
    if mat.shape[1] < L:
        return [[0.0] * n for n in lens]
    windows = _np.lib.stride_tricks.sliding_window_view(mat, L, axis=1)
    body = windows @ _np.asarray(weights, dtype=float)
    return [
        [0.0] * n if n < L else [0.0] * k + body[b, : n - k].tolist()
        for b, n in enumerate(lens)
    ]


def fast_squared_distances_many(
    taps: Sequence[float], streams: Sequence[Sequence[float]]
) -> List[List[float]]:
    """Sliding-window squared distances of one tap vector over many streams.

    >>> fast_squared_distances_many([1.0, 3.0], [[1.0, 3.0, 5.0], [3.0, 3.0]])
    [[0.0, 0.0, 8.0], [0.0, 4.0]]
    """
    L = len(taps)
    if L == 0:
        raise ValueError("taps must be non-empty")
    if not streams:
        return []
    if _np is None:  # pragma: no cover - stripped-install fallback
        return [fast_squared_distances(taps, s) for s in streams]
    k = L - 1
    mat, lens = _numeric_matrix(streams)
    if mat.shape[1] < L:
        return [[0.0] * n for n in lens]
    windows = _np.lib.stride_tricks.sliding_window_view(mat, L, axis=1)
    body = ((windows - _np.asarray(taps, dtype=float)) ** 2).sum(axis=2)
    return [
        [0.0] * n if n < L else [0.0] * k + body[b, : n - k].tolist()
        for b, n in enumerate(lens)
    ]
