"""Packed-word fast path for character-level matching.

The systolic array computes, for every text position *i*, the AND-chain

    result[i] = all(p[j] matches text[i - k + j]  for j in 0..k)

one cell-beat at a time.  :class:`FastMatcher` computes the same bits with
the classic shift-and recurrence over precomputed per-symbol masks: state
word ``S`` keeps one bit per pattern position (bit *j* set iff the last
``j + 1`` text characters match the first ``j + 1`` pattern positions),
and each text character advances every position at once::

    S = ((S << 1) | 1) & mask[ch]       # mask[ch] bit j set iff p[j] ~ ch
    result.append(bool(S & accept))     # accept = 1 << (len(pattern) - 1)

Wild cards cost nothing: a wild position's bit is simply set in every
symbol's mask.  Python integers are arbitrary-width, so one "word" covers
any pattern length -- patterns longer than a chip, which the hardware
handles by cascading or multipass runs, collapse into the same loop.

This is a *model shortcut*, not a different matcher: the property tests in
``tests/test_fastpath.py`` assert bit-for-bit agreement with the stepwise
:class:`~repro.core.array.SystolicMatcherArray` model and with
:func:`~repro.core.reference.match_oracle` over random patterns, texts and
alphabet widths.  :class:`~repro.core.matcher.PatternMatcher` routes plain
``match()`` calls here (beat-accurate runs and traces still use the
stepwise array), which is what makes whole-corpus runs and the service
farm measure scheduling rather than interpreter overhead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..alphabet import Alphabet, PatternChar, parse_pattern, pattern_to_string

__all__ = ["FastMatcher"]


class FastMatcher:
    """Bit-parallel (shift-and) matcher, equivalent to the systolic array.

    Parameters mirror :class:`~repro.core.matcher.PatternMatcher`: a
    pattern (string or pre-parsed :class:`~repro.alphabet.PatternChar`
    sequence, wild cards included) over an :class:`~repro.alphabet.Alphabet`.
    """

    def __init__(
        self,
        pattern,
        alphabet: Alphabet,
        wildcard_symbol: str = "X",
    ):
        self.alphabet = alphabet
        if pattern and all(isinstance(pc, PatternChar) for pc in pattern):
            self.pattern: List[PatternChar] = list(pattern)
        else:
            self.pattern = parse_pattern(pattern, alphabet, wildcard_symbol)
        wild_bits = 0
        for j, pc in enumerate(self.pattern):
            if pc.is_wild:
                wild_bits |= 1 << j
        masks: Dict[str, int] = {s: wild_bits for s in alphabet.symbols}
        for j, pc in enumerate(self.pattern):
            if not pc.is_wild:
                masks[pc.char] |= 1 << j
        self._masks = masks
        self._accept = 1 << (len(self.pattern) - 1)

    @property
    def pattern_string(self) -> str:
        return pattern_to_string(self.pattern)

    @property
    def pattern_length(self) -> int:
        return len(self.pattern)

    def match(self, text: Sequence[str]) -> List[bool]:
        """One result bit per text character (Section 3.1 semantics)."""
        masks = self._masks
        accept = self._accept
        out: List[bool] = []
        append = out.append
        state = 0
        ch = None
        try:
            for ch in text:
                state = ((state << 1) | 1) & masks[ch]
                append((state & accept) != 0)
        except KeyError:
            # Same failure mode (and message) as the validating paths.
            self.alphabet.require(ch)
            raise
        return out

    def find(self, text: Sequence[str]) -> List[int]:
        """Start positions of every matching substring."""
        k = len(self.pattern) - 1
        return [i - k for i, r in enumerate(self.match(text)) if r]
