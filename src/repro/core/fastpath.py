"""Packed-word and strided fast paths for the systolic kernels.

The systolic array computes, for every text position *i*, the AND-chain

    result[i] = all(p[j] matches text[i - k + j]  for j in 0..k)

one cell-beat at a time.  :class:`FastMatcher` computes the same bits with
the classic shift-and recurrence over precomputed per-symbol masks: state
word ``S`` keeps one bit per pattern position (bit *j* set iff the last
``j + 1`` text characters match the first ``j + 1`` pattern positions),
and each text character advances every position at once::

    S = ((S << 1) | 1) & mask[ch]       # mask[ch] bit j set iff p[j] ~ ch
    result.append(bool(S & accept))     # accept = 1 << (len(pattern) - 1)

Wild cards cost nothing: a wild position's bit is simply set in every
symbol's mask.  Python integers are arbitrary-width, so one "word" covers
any pattern length -- patterns longer than a chip, which the hardware
handles by cascading or multipass runs, collapse into the same loop.

This is a *model shortcut*, not a different matcher: the property tests in
``tests/test_fastpath.py`` assert bit-for-bit agreement with the stepwise
:class:`~repro.core.array.SystolicMatcherArray` model and with
:func:`~repro.core.reference.match_oracle` over random patterns, texts and
alphabet widths.  :class:`~repro.core.matcher.PatternMatcher` routes plain
``match()`` calls here (beat-accurate runs and traces still use the
stepwise array), which is what makes whole-corpus runs and the service
farm measure scheduling rather than interpreter overhead.

The same trick carries to the Section 3.4 extensions, all of which share
the matcher's sliding-window shape:

* :class:`FastCounter` packs one small per-position *counter* lane per
  pattern position into a single Python integer (SIMD within a register)
  and advances every lane per character, mirroring the shift-and loop --
  the fast twin of the counting machine.
* :func:`fast_inner_products` / :func:`fast_squared_distances` evaluate
  the numeric kernels (correlation, convolution, FIR, inner products)
  over numpy strided window views -- the fast twins of the correlation
  machine and the linear-product semiring machines.

Each fast kernel is differentially tested against the stepwise
``repro.extensions`` cells in ``tests/test_workloads_kernels.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..alphabet import Alphabet, PatternChar, parse_pattern, pattern_to_string

try:  # numpy is a declared dependency, but keep a pure-python fallback
    import numpy as _np
except Exception:  # pragma: no cover - exercised only on stripped installs
    _np = None

__all__ = [
    "FastMatcher",
    "FastCounter",
    "fast_inner_products",
    "fast_squared_distances",
]


class FastMatcher:
    """Bit-parallel (shift-and) matcher, equivalent to the systolic array.

    Parameters mirror :class:`~repro.core.matcher.PatternMatcher`: a
    pattern (string or pre-parsed :class:`~repro.alphabet.PatternChar`
    sequence, wild cards included) over an :class:`~repro.alphabet.Alphabet`.
    """

    def __init__(
        self,
        pattern,
        alphabet: Alphabet,
        wildcard_symbol: str = "X",
    ):
        self.alphabet = alphabet
        if pattern and all(isinstance(pc, PatternChar) for pc in pattern):
            self.pattern: List[PatternChar] = list(pattern)
        else:
            self.pattern = parse_pattern(pattern, alphabet, wildcard_symbol)
        wild_bits = 0
        for j, pc in enumerate(self.pattern):
            if pc.is_wild:
                wild_bits |= 1 << j
        masks: Dict[str, int] = {s: wild_bits for s in alphabet.symbols}
        for j, pc in enumerate(self.pattern):
            if not pc.is_wild:
                masks[pc.char] |= 1 << j
        self._masks = masks
        self._accept = 1 << (len(self.pattern) - 1)

    @property
    def pattern_string(self) -> str:
        return pattern_to_string(self.pattern)

    @property
    def pattern_length(self) -> int:
        return len(self.pattern)

    def match(self, text: Sequence[str]) -> List[bool]:
        """One result bit per text character (Section 3.1 semantics)."""
        masks = self._masks
        accept = self._accept
        out: List[bool] = []
        append = out.append
        state = 0
        ch = None
        try:
            for ch in text:
                state = ((state << 1) | 1) & masks[ch]
                append((state & accept) != 0)
        except KeyError:
            # Same failure mode (and message) as the validating paths.
            self.alphabet.require(ch)
            raise
        return out

    def find(self, text: Sequence[str]) -> List[int]:
        """Start positions of every matching substring."""
        k = len(self.pattern) - 1
        return [i - k for i, r in enumerate(self.match(text)) if r]


class FastCounter:
    """Packed-lane match counter, equivalent to the counting machine.

    The Section 3.4 counting cell replaces the matcher's AND with an
    accumulating add: result ``r_i`` is *how many* of the ``L`` window
    positions match.  Here every pattern position gets a fixed-width
    counter lane inside one Python integer.  A lane only ever holds a
    partial match count, which is at most ``L``, so ``L.bit_length()``
    bits per lane can never carry into a neighbour.  Each text character
    shifts the whole lane vector up one lane (retiring the oldest window)
    and adds a precomputed per-symbol increment vector::

        state = ((state << F) & lanes_mask) + inc[ch]

    after which the top lane holds the finished count for the window
    ending at the current character.  Like :class:`FastMatcher`, one
    arbitrary-width integer covers any pattern length, and wild cards
    simply contribute to every symbol's increment vector.

    >>> from repro.alphabet import Alphabet
    >>> FastCounter("AB", Alphabet("AB")).counts("ABBB")
    [0, 2, 1, 1]
    """

    def __init__(
        self,
        pattern,
        alphabet: Alphabet,
        wildcard_symbol: str = "X",
    ):
        self.alphabet = alphabet
        if pattern and all(isinstance(pc, PatternChar) for pc in pattern):
            self.pattern: List[PatternChar] = list(pattern)
        else:
            self.pattern = parse_pattern(pattern, alphabet, wildcard_symbol)
        L = len(self.pattern)
        width = L.bit_length()  # max lane value is L -> never carries
        wild_inc = 0
        for j, pc in enumerate(self.pattern):
            if pc.is_wild:
                wild_inc |= 1 << (width * j)
        inc: Dict[str, int] = {s: wild_inc for s in alphabet.symbols}
        for j, pc in enumerate(self.pattern):
            if not pc.is_wild:
                inc[pc.char] |= 1 << (width * j)
        self._inc = inc
        self._width = width
        self._lanes_mask = (1 << (width * L)) - 1
        self._top_shift = width * (L - 1)
        self._lane_mask = (1 << width) - 1

    @property
    def pattern_string(self) -> str:
        return pattern_to_string(self.pattern)

    @property
    def pattern_length(self) -> int:
        return len(self.pattern)

    def counts(self, text: Sequence[str]) -> List[int]:
        """One match count per text character; 0 before the first full
        window (the convention of :func:`~repro.core.reference.count_oracle`)."""
        inc = self._inc
        width = self._width
        lanes_mask = self._lanes_mask
        top_shift = self._top_shift
        k = len(self.pattern) - 1
        out: List[int] = []
        append = out.append
        state = 0
        ch = None
        try:
            for i, ch in enumerate(text):
                state = ((state << width) & lanes_mask) + inc[ch]
                append(state >> top_shift if i >= k else 0)
        except KeyError:
            self.alphabet.require(ch)
            raise
        return out


def fast_inner_products(
    weights: Sequence[float], stream: Sequence[float]
) -> List[float]:
    """Sliding-window inner products ``sum_j w_j * s_{i-k+j}``.

    The numeric fast twin of the convolution/FIR/inner-product machines:
    one value per stream position, ``0.0`` before the first complete
    window (positions ``i < len(weights) - 1``).

    >>> fast_inner_products([1.0, 2.0], [1.0, 1.0, 1.0])
    [0.0, 3.0, 3.0]
    """
    L = len(weights)
    if L == 0:
        raise ValueError("weights must be non-empty")
    n = len(stream)
    k = L - 1
    if n < L:
        return [0.0] * n
    if _np is not None:
        windows = _np.lib.stride_tricks.sliding_window_view(
            _np.asarray(stream, dtype=float), L
        )
        body = windows @ _np.asarray(weights, dtype=float)
        return [0.0] * k + [float(v) for v in body]
    return [0.0] * k + [  # pragma: no cover - stripped-install fallback
        sum(weights[j] * stream[i - k + j] for j in range(L))
        for i in range(k, n)
    ]


def fast_squared_distances(
    taps: Sequence[float], stream: Sequence[float]
) -> List[float]:
    """Sliding-window squared distances ``sum_j (s_{i-k+j} - t_j)^2``.

    The numeric fast twin of the Section 3.4 correlation machine
    (:func:`~repro.core.reference.correlation_oracle` convention: ``0.0``
    before the first complete window).

    >>> fast_squared_distances([1.0, 3.0], [1.0, 3.0, 5.0])
    [0.0, 0.0, 8.0]
    """
    L = len(taps)
    if L == 0:
        raise ValueError("taps must be non-empty")
    n = len(stream)
    k = L - 1
    if n < L:
        return [0.0] * n
    if _np is not None:
        windows = _np.lib.stride_tricks.sliding_window_view(
            _np.asarray(stream, dtype=float), L
        )
        body = ((windows - _np.asarray(taps, dtype=float)) ** 2).sum(axis=1)
        return [0.0] * k + [float(v) for v in body]
    return [0.0] * k + [  # pragma: no cover - stripped-install fallback
        sum((stream[i - k + j] - taps[j]) ** 2 for j in range(L))
        for i in range(k, n)
    ]
