"""The paper's primary contribution: the systolic pattern matcher.

Contents map to Section 3.2 of the paper:

* :mod:`repro.core.reference` -- the problem definition of Section 3.1 as a
  direct oracle.
* :mod:`repro.core.cells` -- the comparator and accumulator cell algorithms.
* :mod:`repro.core.array` -- the bidirectional linear array with pattern
  recirculation and the host-side feeding/collection discipline.
* :mod:`repro.core.matcher` -- :class:`PatternMatcher`, the public API.
* :mod:`repro.core.bit_level` -- the bit-pipelined comparator array of
  Figure 3-4.
* :mod:`repro.core.multipass` -- matching patterns longer than the array by
  repeated, delayed runs (Section 3.4).
"""

from .array import SystolicMatcherArray, TextToken
from .bit_level import BitLevelMatcher
from .fastpath import FastMatcher
from .matcher import MatchReport, PatternMatcher
from .multipass import multipass_match
from .reference import match_oracle, count_oracle

__all__ = [
    "BitLevelMatcher",
    "FastMatcher",
    "MatchReport",
    "PatternMatcher",
    "SystolicMatcherArray",
    "TextToken",
    "count_oracle",
    "match_oracle",
    "multipass_match",
]
