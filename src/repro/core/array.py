"""The bidirectional systolic matcher array and its host-side driver.

This module realises the data flow of Section 3.2.1:

* the pattern recirculates left-to-right, one character every other beat,
  carrying its ``x`` and ``lambda`` bits;
* the text string flows right-to-left at the same rate;
* alternate cells are idle each beat so that opposing characters *meet*
  rather than pass;
* results travel leftward with the string, each match bit leaving the
  array alongside the last character of its substring.

Feeding discipline
------------------

With ``m`` cells, pattern items enter cell 0 on beats 0, 2, 4, ...; a text
character entering cell ``m-1`` on beat ``e`` meets pattern characters (as
opposed to passing them between cells) iff ``e = (m-1) (mod 2)``.  The
driver enters the first text character at beat ``m+1`` -- the smallest
correctly-phased beat by which the recirculating pattern has filled the
whole array.  This guarantees that every text character meets a full
pattern period during its transit, so every complete-window result is
exact; the fill-up slots the host must discard are exactly the positions
``i < k`` for which no complete substring exists (see
``tests/test_core_array.py`` for the property-based verification against
the oracle).

The driver is generic over the cell kernel: the Section 3.4 extension
machines (counting, correlation) reuse it unchanged with different kernels
and numeric stream items -- the paper's point that these machines share
the matcher's data flow, differing only in cell function.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..errors import PatternError, SimulationError
from ..systolic.cell import BUBBLE, is_bubble
from ..systolic.engine import ChannelDirection, ChannelSpec, LinearArray
from ..systolic.tracing import TraceRecorder
from .cells import MatcherCellKernel, ResultToken


@dataclass(frozen=True)
class TextToken:
    """A text character tagged with its stream position.

    The tag exists only for host-side bookkeeping and verification; the
    cell kernels read ``.char`` alone, exactly as the hardware sees only
    the character bits.
    """

    char: object
    index: int

    def __str__(self) -> str:
        return str(self.char)


#: The three data channels of Figure 3-3 (``lambda`` and ``x`` ride inside
#: the pattern items; in the silicon they are two extra wires through the
#: accumulator row with identical timing).
MATCHER_CHANNELS = (
    ChannelSpec("p", ChannelDirection.RIGHT),
    ChannelSpec("s", ChannelDirection.LEFT),
    ChannelSpec("r", ChannelDirection.LEFT),
)


class SystolicMatcherArray:
    """A linear array of character cells plus the host feeding discipline.

    Parameters
    ----------
    n_cells:
        Array length ``m``.  A pattern of length L requires ``m >= L``
        ("The number of character cells required is therefore no more
        than the number of characters in the pattern").
    kernel_factory:
        Builds the per-cell kernel; defaults to the paper's matcher cell.
    recorder:
        Optional trace recorder (Figure 3-2 reproduction).
    """

    def __init__(
        self,
        n_cells: int,
        kernel_factory: Callable[[int], object] = None,
        recorder: Optional[TraceRecorder] = None,
        obs: Optional[object] = None,
        name: str = "matcher-array",
    ):
        if kernel_factory is None:
            kernel_factory = lambda i: MatcherCellKernel()
        self.array = LinearArray(
            n_cells=n_cells,
            channels=MATCHER_CHANNELS,
            kernel_factory=kernel_factory,
            activity_channels=("p", "s"),
            recorder=recorder,
            obs=obs,
            name=name,
        )

    def attach_obs(self, obs: Optional[object], name: Optional[str] = None) -> None:
        """Attach/detach an Observability bundle (delegates to the array)."""
        self.array.attach_obs(obs, name)

    @property
    def n_cells(self) -> int:
        return self.array.n_cells

    # -- feeding schedule ---------------------------------------------------

    def text_entry_beat(self) -> int:
        """First beat on which a text character enters the array.

        ``m + 1`` is the smallest beat that (a) has the parity required
        for the opposing streams to meet and (b) lets the pattern fill the
        array first.
        """
        return self.n_cells + 1

    def input_schedule(
        self,
        pattern_cycle: Sequence[object],
        text_tokens: Sequence[TextToken],
        n_beats: int,
        recirculate: bool = True,
        pattern_offset: int = 0,
    ) -> List[Dict[str, object]]:
        """Per-beat channel inputs implementing the feeding discipline.

        With ``recirculate`` (the normal chip operation) the pattern wraps
        around forever.  With ``recirculate=False`` the pattern streams
        through exactly once, starting ``pattern_offset`` pattern-beats
        late (beat ``2 * pattern_offset``) -- the mode used by the
        Section 3.4 multipass scheme for patterns longer than the array.
        """
        if not pattern_cycle:
            raise PatternError("pattern cycle must be non-empty")
        e_s = self.text_entry_beat()
        if recirculate:
            pat = itertools.cycle(pattern_cycle)
        else:
            pat = iter(pattern_cycle)
        schedule: List[Dict[str, object]] = []
        for b in range(n_beats):
            beat_in: Dict[str, object] = {}
            if b % 2 == 0 and b // 2 >= pattern_offset:
                item = next(pat, None)
                if item is not None:
                    beat_in["p"] = item
            if b >= e_s and (b - e_s) % 2 == 0:
                q = (b - e_s) // 2
                if q < len(text_tokens):
                    beat_in["s"] = text_tokens[q]
            schedule.append(beat_in)
        return schedule

    def beats_needed(
        self, n_text: int, pattern_len: int = 0, pattern_offset: int = 0
    ) -> int:
        """Beats until the last text character (and its result) has exited.

        For single-pass runs the pattern tail must also have drained, so
        the pattern timing participates in the bound.
        """
        e_s = self.text_entry_beat()
        last_text_entry = e_s + 2 * max(0, n_text - 1)
        last_pattern_entry = 2 * (pattern_offset + max(0, pattern_len - 1))
        return max(last_text_entry, last_pattern_entry) + self.n_cells + 1

    # -- end-to-end run -------------------------------------------------------

    def run(
        self,
        pattern_cycle: Sequence[object],
        text: Sequence[object],
        reset: bool = True,
        recirculate: bool = True,
        pattern_offset: int = 0,
    ) -> Dict[int, object]:
        """Stream *text* against the recirculating *pattern_cycle*.

        Returns a mapping from text position to the emitted result payload
        (the ``.value`` of the :class:`~repro.core.cells.ResultToken` that
        exited alongside that text character).  Positions whose window is
        incomplete carry fill-up garbage and are still returned; the
        public :class:`~repro.core.matcher.PatternMatcher` masks them.
        """
        if reset:
            self.array.reset()
        tokens = [
            t if isinstance(t, TextToken) else TextToken(t, i)
            for i, t in enumerate(text)
        ]
        for i, t in enumerate(tokens):
            if t.index != i:
                raise SimulationError("text token indices must be 0..N-1 in order")
        n_beats = self.beats_needed(
            len(tokens),
            pattern_len=0 if recirculate else len(pattern_cycle),
            pattern_offset=pattern_offset,
        )
        schedule = self.input_schedule(
            pattern_cycle,
            tokens,
            n_beats,
            recirculate=recirculate,
            pattern_offset=pattern_offset,
        )
        obs = self.array.obs
        span = None
        if obs is not None:
            span = obs.tracer.begin(
                "array.run", t0=float(self.array.beat), unit="beats",
                array=self.array.name, cells=self.n_cells,
                chars=len(tokens),
            )
        try:
            results: Dict[int, object] = {}
            for beat_in in schedule:
                out = self.array.step(beat_in)
                s_out = out["s"]
                if not is_bubble(s_out):
                    r_out = out["r"]
                    if isinstance(r_out, ResultToken):
                        results[s_out.index] = r_out.value
                    elif not is_bubble(r_out):
                        results[s_out.index] = r_out
            return results
        finally:
            if span is not None:
                obs.tracer.end(
                    span, t1=float(self.array.beat),
                    fires=self.array.fire_count,
                )

    def utilization(self) -> float:
        """Fraction of cell-beats on which a cell fired (approaches 1/2)."""
        return self.array.utilization()
