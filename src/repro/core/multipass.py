"""Matching patterns longer than the array: the multipass scheme.

Section 3.4: "If the pattern to be matched is longer than the capacity of
the available pattern matching system, the pattern can be run through the
system several times to match it against the entire string.  If the system
contains a total of n character cells, each run will match the complete
pattern against n substrings.  To cover all substrings, all we need do is
delay the string by n characters on succeeding runs."

Mechanics (derived in ``tests/test_core_multipass.py`` against the
oracle): on each run the pattern streams through the array exactly once
(no recirculation).  With the pattern offset by ``a`` pattern-beats
relative to the string, cell *i* accumulates the window that starts at
text position ``a + i - m`` (``m`` = array cells), so one run yields the
``m`` consecutive window results ending at positions
``(L-1) + (a-m) ... (L-1) + (a-m) + m - 1``.  Choosing ``a = (r+1) * m``
for run ``r`` tiles the whole text.  Shifting the pattern later is the
mirror image of the paper's "delay the string", and avoids re-buffering
the text stream in the driver.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..alphabet import PatternChar
from ..errors import PatternError
from ..streams import RecirculatingPattern
from .array import SystolicMatcherArray


def multipass_match(
    pattern: Sequence[PatternChar],
    text: Sequence[str],
    n_cells: int,
    obs=None,
) -> List[bool]:
    """Match a pattern of any length on an ``n_cells``-cell system.

    Returns the same result stream as
    :meth:`repro.core.matcher.PatternMatcher.match`; the number of runs is
    ``ceil(max(0, N - k) / n_cells)`` where ``k = len(pattern) - 1``.
    An :class:`~repro.obs.Observability` bundle, when given, records one
    ``multipass.run`` span per pass (each wrapping its ``array.run``).
    """
    if not pattern:
        raise PatternError("pattern must be non-empty")
    if n_cells <= 0:
        raise PatternError("n_cells must be positive")
    pattern = list(pattern)
    items = RecirculatingPattern(pattern).items  # one period, with lambda/x bits
    L = len(pattern)
    k = L - 1
    n = len(text)
    results: Dict[int, object] = {}
    array = SystolicMatcherArray(n_cells, obs=obs, name="multipass-array")
    run = 0
    # Run r covers ending positions k + r*n_cells .. k + (r+1)*n_cells - 1.
    while k + run * n_cells < n:
        offset = (run + 1) * n_cells
        span = None
        if obs is not None:
            # reset=True zeroes the beat counter, so each pass spans 0..end.
            span = obs.tracer.begin(
                "multipass.run", t0=0.0, unit="beats",
                run=run, pattern_offset=offset, cells=n_cells,
            )
        raw = array.run(
            items, text, reset=True, recirculate=False, pattern_offset=offset
        )
        if span is not None:
            obs.tracer.end(span, t1=float(array.array.beat))
        lo = k + run * n_cells
        hi = min(n - 1, lo + n_cells - 1)
        for q in range(lo, hi + 1):
            if q in raw:
                results[q] = raw[q]
        run += 1
    return [bool(results.get(i, False)) if i >= k else False for i in range(n)]


def runs_required(pattern_length: int, text_length: int, n_cells: int) -> int:
    """How many passes the scheme needs (for the economics benches)."""
    k = pattern_length - 1
    covered = max(0, text_length - k)
    return -(-covered // n_cells) if covered else 0
