"""Oracle implementations of the Section 3.1 problem definition.

The paper defines the output bit stream by

    r_i = (s_{i-k} = p_0) AND (s_{i+1-k} = p_1) AND ... AND (s_i = p_k)

with the wild-card character deemed to match anything.  These functions
compute that definition directly (O(N * L) time) and serve as the ground
truth against which every hardware model and baseline in the library is
verified.
"""

from __future__ import annotations

from typing import List, Sequence

from ..alphabet import PatternChar
from ..errors import PatternError


def match_oracle(pattern: Sequence[PatternChar], text: Sequence[str]) -> List[bool]:
    """The result bit stream of Section 3.1.

    Returns one boolean per text position *i*; positions ``i < k`` (where
    no complete substring ends) are False, matching the convention of
    Figure 3-1 where the first possible match is at position k.
    """
    if not pattern:
        raise PatternError("pattern must be non-empty")
    k = len(pattern) - 1
    out: List[bool] = []
    for i in range(len(text)):
        if i < k:
            out.append(False)
            continue
        out.append(
            all(pattern[j].matches(text[i - k + j]) for j in range(len(pattern)))
        )
    return out


def count_oracle(pattern: Sequence[PatternChar], text: Sequence[str]) -> List[int]:
    """Oracle for the Section 3.4 counting extension.

    For each text position *i* with a complete window, the number of
    pattern positions that match the corresponding text character
    (wild cards always count).  Positions ``i < k`` report 0.
    """
    if not pattern:
        raise PatternError("pattern must be non-empty")
    k = len(pattern) - 1
    out: List[int] = []
    for i in range(len(text)):
        if i < k:
            out.append(0)
            continue
        out.append(
            sum(1 for j in range(len(pattern)) if pattern[j].matches(text[i - k + j]))
        )
    return out


def correlation_oracle(
    pattern: Sequence[float], signal: Sequence[float]
) -> List[float]:
    """Oracle for the Section 3.4 correlation extension.

    r_i = sum_j (s_{i-k+j} - p_j)^2 for complete windows; 0.0 earlier.
    (The paper calls a *small* squared distance a good match; it labels the
    quantity a correlation.)
    """
    if len(pattern) == 0:
        raise PatternError("pattern must be non-empty")
    k = len(pattern) - 1
    out: List[float] = []
    for i in range(len(signal)):
        if i < k:
            out.append(0.0)
            continue
        out.append(
            sum((signal[i - k + j] - pattern[j]) ** 2 for j in range(len(pattern)))
        )
    return out
