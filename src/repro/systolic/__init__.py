"""Generic beat-synchronous systolic-array simulation substrate.

This subpackage implements the machinery that Section 3.2.1 of the paper
assumes: linear arrays of simple cells through which data streams move at
constant velocity on discrete *beats*, with alternate cells active on
alternate beats (the "systole").  The pattern matcher, the Section 3.4
extension machines, and the rejected unidirectional baseline are all built
on top of it.
"""

from .cell import BUBBLE, CellKernel, PassThroughKernel, is_bubble
from .engine import ChannelDirection, ChannelSpec, LinearArray, StepIO
from .tracing import BeatTrace, TraceRecorder, render_flow

__all__ = [
    "BUBBLE",
    "BeatTrace",
    "CellKernel",
    "ChannelDirection",
    "ChannelSpec",
    "LinearArray",
    "PassThroughKernel",
    "StepIO",
    "TraceRecorder",
    "is_bubble",
    "render_flow",
]
