"""Beat-by-beat traces of systolic arrays (reproduces Figure 3-2).

Figure 3-2 of the paper traces the flow of pattern and string characters
through the linear array over several beats, showing the two streams
marching through each other with alternate cells idle.  The
:class:`TraceRecorder` captures exactly that information from a running
:class:`~repro.systolic.engine.LinearArray`, and :func:`render_flow`
renders it as the same kind of beat-per-row character diagram.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import SimulationError
from .cell import BUBBLE, is_bubble


@dataclass
class BeatTrace:
    """Snapshot of one beat: register contents and which cells fired."""

    beat: int
    slots: Dict[str, List[object]]
    active_cells: List[int]
    inputs: Dict[str, object]
    outputs: Dict[str, object]


@dataclass
class TraceRecorder:
    """Collects :class:`BeatTrace` records from a simulation run.

    Attach to a :class:`~repro.systolic.engine.LinearArray` via its
    ``recorder`` argument.  ``max_beats`` bounds memory for long runs
    (older beats are dropped from the front).
    """

    max_beats: Optional[int] = None
    beats: List[BeatTrace] = field(default_factory=list)

    def record(self, array, active_cells, inputs, outputs) -> None:
        self.beats.append(
            BeatTrace(
                beat=array.beat,
                slots=array.snapshot(),
                active_cells=list(active_cells),
                inputs=inputs,
                outputs=outputs,
            )
        )
        if self.max_beats is not None and len(self.beats) > self.max_beats:
            del self.beats[0]

    def _check_channel(self, channel: str) -> None:
        if self.beats and channel not in self.beats[0].slots:
            raise SimulationError(
                f"recorder has no channel {channel!r}; recorded channels "
                f"are {sorted(self.beats[0].slots)}"
            )

    def channel_history(self, channel: str) -> List[List[object]]:
        """Per-beat register contents of one channel.

        Raises :class:`~repro.errors.SimulationError` (with the recorded
        channel names) when *channel* was never recorded.
        """
        self._check_channel(channel)
        return [list(bt.slots[channel]) for bt in self.beats]

    def activity_matrix(self) -> List[List[bool]]:
        """Per-beat booleans: did cell i fire on beat b?

        In steady state this is the alternating pattern the paper draws:
        cells active on alternate beats, neighbours out of phase.
        """
        out: List[List[bool]] = []
        for bt in self.beats:
            n = len(next(iter(bt.slots.values())))
            row = [False] * n
            for i in bt.active_cells:
                row[i] = True
            out.append(row)
        return out

    def meetings(self, chan_a: str, chan_b: str) -> List[tuple]:
        """All (beat, cell, a_value, b_value) where both channels were valid.

        For the matcher this lists exactly which pattern character met
        which string character where and when -- the content of Figure 3-2.
        """
        self._check_channel(chan_a)
        self._check_channel(chan_b)
        out = []
        for bt in self.beats:
            ra, rb = bt.slots[chan_a], bt.slots[chan_b]
            for i in range(len(ra)):
                if not is_bubble(ra[i]) and not is_bubble(rb[i]):
                    out.append((bt.beat, i, ra[i], rb[i]))
        return out


def render_flow(
    recorder: TraceRecorder,
    channels: List[str],
    fmt: Optional[Callable[[object], str]] = None,
    width: int = 4,
) -> str:
    """Render a recorder's history as a Figure 3-2 style text diagram.

    One block per beat; within a block, one row per channel; idle slots
    render as ``.``.  Active cells are marked with ``*`` on a header row.
    """
    if fmt is None:
        fmt = lambda v: str(v)
    lines: List[str] = []
    for bt in recorder.beats:
        n = len(next(iter(bt.slots.values())))
        marks = ["*" if i in bt.active_cells else " " for i in range(n)]
        lines.append(f"beat {bt.beat:4d}  " + "".join(m.center(width) for m in marks))
        for ch in channels:
            cells = [
                "." if is_bubble(v) else fmt(v) for v in bt.slots[ch]
            ]
            lines.append(f"  {ch:>8s}  " + "".join(c.center(width) for c in cells))
        lines.append("")
    return "\n".join(lines)
