"""The beat-synchronous linear-array simulator.

The simulator models exactly the data discipline of Section 3.2.1:

* each named *channel* is a unidirectional shift register threading every
  cell, moving one cell per beat, left-to-right (``RIGHT``, like the
  pattern and the ``lambda``/``x`` control bits) or right-to-left
  (``LEFT``, like the text string and the result stream);
* on every beat **all** channels shift ("All characters on the chip move
  during each beat");
* a cell whose activity channels all carry valid data then *fires*,
  replacing the contents of its own registers with computed values -- the
  behavioural equivalent of the combinational logic that sits between
  register stages in the NMOS implementation;
* everything else passes through untouched, so alternate cells hold
  bubbles and the active cells form the alternating pattern of Figure 3-2
  (and, for the two-dimensional bit-level array, the checkerboard of
  Figure 3-4).

The same engine drives the character-level matcher, the Section 3.4
counting/correlation/convolution machines and the unidirectional baseline
of Section 3.3.1; only the kernels differ.  That is the paper's design
thesis rendered as software: the data flow is the reusable part, the cell
function is the variation point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..errors import SimulationError
from .cell import BUBBLE, CellKernel, is_bubble


class ChannelDirection(Enum):
    """Which way a channel's shift register moves."""

    RIGHT = "right"  # enters at cell 0, exits after cell n-1
    LEFT = "left"    # enters at cell n-1, exits after cell 0


@dataclass(frozen=True)
class ChannelSpec:
    """Declaration of one data channel threading the array."""

    name: str
    direction: ChannelDirection


@dataclass
class StepIO:
    """Inputs to / outputs from one :meth:`LinearArray.step` call.

    ``inputs`` maps channel name to the value entering the array this beat
    (``BUBBLE`` if the stream has no valid item this beat).  ``outputs``
    maps channel name to the value leaving at the opposite end *after* the
    beat's shift and fire.
    """

    inputs: Dict[str, object] = field(default_factory=dict)
    outputs: Dict[str, object] = field(default_factory=dict)


class LinearArray:
    """A linear systolic array of ``n_cells`` identical cells.

    Parameters
    ----------
    n_cells:
        Number of cells.
    channels:
        The data channels threading the array.
    kernel_factory:
        Called once per cell index to build that cell's kernel.  All the
        machines in this library use a single kernel type ("only a few
        different types of simple cells"), but the factory signature keeps
        the engine general.
    activity_channels:
        A cell fires on a beat only when every one of these channels holds
        valid (non-bubble) data in the cell's registers after the shift.
    recorder:
        Optional :class:`~repro.systolic.tracing.TraceRecorder`.
    collect_stats:
        When True, the per-beat register-occupancy scan behind
        :meth:`occupancy` runs (an O(cells x channels) sweep every beat).
        Off by default: matching hot paths never read it, and the scan
        dominates the beat cost on wide arrays.  :meth:`utilization` is a
        per-fire counter and stays on always.
    obs:
        Optional :class:`~repro.obs.Observability`.  When attached, beat
        and fire totals (and the occupancy sum, under ``collect_stats``)
        are published into its metrics registry as ``array.beats`` /
        ``array.fires`` / ``array.slot_occupancy`` labelled by *name*;
        :meth:`utilization` / :meth:`occupancy` remain as views over the
        same counts.  When absent the only cost is one ``is None`` check
        per step (none per beat inside batched :meth:`run`).
    """

    def __init__(
        self,
        n_cells: int,
        channels: Sequence[ChannelSpec],
        kernel_factory: Callable[[int], CellKernel],
        activity_channels: Sequence[str],
        recorder: Optional["TraceRecorder"] = None,
        collect_stats: bool = False,
        obs: Optional[object] = None,
        name: str = "array",
    ):
        if n_cells <= 0:
            raise SimulationError("array must contain at least one cell")
        names = [c.name for c in channels]
        if len(set(names)) != len(names):
            raise SimulationError("channel names must be unique")
        unknown = set(activity_channels) - set(names)
        if unknown:
            raise SimulationError(f"unknown activity channels: {sorted(unknown)}")
        self.n_cells = n_cells
        self.channels: Dict[str, ChannelSpec] = {c.name: c for c in channels}
        self.activity_channels = tuple(activity_channels)
        self.kernels: List[CellKernel] = [kernel_factory(i) for i in range(n_cells)]
        self.recorder = recorder
        # slots[name][i] is the register content of channel `name` at cell i.
        self.slots: Dict[str, List[object]] = {
            name: [BUBBLE] * n_cells for name in self.channels
        }
        self.beat = 0
        self.fire_count = 0
        self.collect_stats = collect_stats
        self.slot_occupancy = 0  # valid slots observed, when collect_stats
        self.name = name
        self.obs = None
        self._m_beats = self._m_fires = self._g_occupancy = None
        if obs is not None:
            self.attach_obs(obs, name)

    def attach_obs(self, obs: Optional[object], name: Optional[str] = None) -> None:
        """Attach (or detach, with None) an Observability bundle.

        Metric handles are cached here so the publish sites stay one
        bound-method call.
        """
        if name is not None:
            self.name = name
        self.obs = obs
        if obs is None:
            self._m_beats = self._m_fires = self._g_occupancy = None
            return
        reg = obs.registry
        self._m_beats = reg.counter("array.beats", array=self.name)
        self._m_fires = reg.counter("array.fires", array=self.name)
        self._g_occupancy = reg.gauge("array.slot_occupancy", array=self.name)

    # -- lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        """Return the array to its power-on state."""
        for name in self.slots:
            self.slots[name] = [BUBBLE] * self.n_cells
        for k in self.kernels:
            k.reset()
        self.beat = 0
        self.fire_count = 0
        self.slot_occupancy = 0

    # -- one beat ------------------------------------------------------------

    def step(self, inputs: Mapping[str, object]) -> Dict[str, object]:
        """Advance the array by one beat.

        *inputs* supplies the value entering each channel at its input end
        this beat; channels omitted receive a bubble.  Returns the values
        leaving each channel at its output end after the beat.
        """
        outputs: Dict[str, object] = {}
        # Phase 1: global shift.  Capture the values that fall off the ends
        # first, then move everything one cell along its direction.
        for name, spec in self.channels.items():
            row = self.slots[name]
            incoming = inputs.get(name, BUBBLE)
            if spec.direction is ChannelDirection.RIGHT:
                outputs[name] = row[-1]
                for i in range(self.n_cells - 1, 0, -1):
                    row[i] = row[i - 1]
                row[0] = incoming
            else:
                outputs[name] = row[0]
                for i in range(self.n_cells - 1):
                    row[i] = row[i + 1]
                row[-1] = incoming

        # Phase 2: fire active cells.
        active_cells: List[int] = []
        for i in range(self.n_cells):
            if all(not is_bubble(self.slots[c][i]) for c in self.activity_channels):
                active_cells.append(i)
                cell_in = {name: self.slots[name][i] for name in self.channels}
                produced = self.kernels[i].fire(cell_in)
                for name, value in produced.items():
                    if name not in self.channels:
                        raise SimulationError(
                            f"cell {i} produced value for unknown channel {name!r}"
                        )
                    if is_bubble(value):
                        raise SimulationError(
                            f"cell {i} produced a bubble on channel {name!r}"
                        )
                    self.slots[name][i] = value
                self.fire_count += 1

        if self.collect_stats:
            for name in self.channels:
                self.slot_occupancy += sum(
                    1 for v in self.slots[name] if not is_bubble(v)
                )

        if self.recorder is not None:
            self.recorder.record(self, active_cells, dict(inputs), dict(outputs))
        self.beat += 1
        if self.obs is not None:
            self._m_beats.inc()
            if active_cells:
                self._m_fires.inc(len(active_cells))
            if self.collect_stats:
                self._g_occupancy.set(self.slot_occupancy)
        return outputs

    def run(self, input_schedule: Sequence[Mapping[str, object]]) -> List[Dict[str, object]]:
        """Run one beat per entry of *input_schedule*; return all outputs.

        When no recorder is attached this runs a batched loop with the
        per-beat allocation hoisted out: shifts use C-level list rotation
        instead of a Python slot loop, and the fire check indexes the
        activity rows directly.  Semantics are identical to calling
        :meth:`step` per beat (asserted by the engine tests).
        """
        if self.recorder is not None:
            return [self.step(beat_inputs) for beat_inputs in input_schedule]

        channels = self.channels
        names = list(channels)
        rows = [self.slots[name] for name in names]
        right_rows = [
            (name, self.slots[name]) for name, spec in channels.items()
            if spec.direction is ChannelDirection.RIGHT
        ]
        left_rows = [
            (name, self.slots[name]) for name, spec in channels.items()
            if spec.direction is ChannelDirection.LEFT
        ]
        act_rows = [self.slots[c] for c in self.activity_channels]
        kernels = self.kernels
        n = self.n_cells
        collect = self.collect_stats
        fire_count = self.fire_count
        fire_base = fire_count
        occupancy = self.slot_occupancy
        outputs_all: List[Dict[str, object]] = []
        append_out = outputs_all.append

        for beat_inputs in input_schedule:
            get = beat_inputs.get
            outputs: Dict[str, object] = {}
            for name, row in right_rows:
                outputs[name] = row.pop()
                row.insert(0, get(name, BUBBLE))
            for name, row in left_rows:
                outputs[name] = row.pop(0)
                row.append(get(name, BUBBLE))

            for i in range(n):
                active = True
                for row in act_rows:
                    if row[i] is BUBBLE:
                        active = False
                        break
                if not active:
                    continue
                cell_in = {name: row[i] for name, row in zip(names, rows)}
                produced = kernels[i].fire(cell_in)
                for name, value in produced.items():
                    if name not in channels:
                        raise SimulationError(
                            f"cell {i} produced value for unknown channel {name!r}"
                        )
                    if value is BUBBLE:
                        raise SimulationError(
                            f"cell {i} produced a bubble on channel {name!r}"
                        )
                    self.slots[name][i] = value
                fire_count += 1

            if collect:
                for row in rows:
                    occupancy += sum(1 for v in row if v is not BUBBLE)
            self.beat += 1
            append_out(outputs)

        self.fire_count = fire_count
        self.slot_occupancy = occupancy
        if self.obs is not None:
            self._m_beats.inc(len(outputs_all))
            if fire_count > fire_base:
                self._m_fires.inc(fire_count - fire_base)
            if collect:
                self._g_occupancy.set(occupancy)
        return outputs_all

    # -- inspection ----------------------------------------------------------

    def snapshot(self) -> Dict[str, List[object]]:
        """A copy of every channel's register contents."""
        return {name: list(row) for name, row in self.slots.items()}

    def utilization(self) -> float:
        """Fraction of cell-beats on which a cell fired.

        The paper's data flow keeps alternate cells idle, so the steady
        state utilization of the matcher array approaches 1/2.
        """
        total = self.beat * self.n_cells
        return self.fire_count / total if total else 0.0

    def occupancy(self) -> float:
        """Fraction of register slots holding valid data, averaged over time.

        Requires the array to have been built with ``collect_stats=True``;
        the per-beat scan that feeds it is off by default.
        """
        if not self.collect_stats:
            raise SimulationError(
                "occupancy accounting is off; construct the array with "
                "collect_stats=True to enable it"
            )
        total = self.beat * self.n_cells * len(self.channels)
        return self.slot_occupancy / total if total else 0.0
