"""Composition of systolic arrays: end-to-end chaining.

Section 3.4 / Figure 3-7: "Several pattern matching chips can then be
cascaded ... so that the cells on all of the chips form a single linear
array."  The chip-to-chip connections are wires between pins, not extra
register stages, so the cascade is *exactly* a longer array: the value a
stage shifts out on a beat enters its neighbour on the same beat.

(This matters for correctness, not just latency.  The pattern and string
streams cross each other at relative velocity two stages per beat; adding
a register stage at a boundary would make some pattern/string pairs cross
*inside* the boundary and never be compared.  :class:`ChainedArrays`
therefore wires boundaries combinationally, which is what the paper's
figure depicts.)
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from ..errors import SimulationError
from .cell import BUBBLE
from .engine import ChannelDirection, LinearArray


class ChainedArrays:
    """Several :class:`LinearArray` stages wired as one long array.

    All stages must declare identical channels.  The chain presents the
    same ``step`` interface as a single array: rightward inputs enter
    stage 0, leftward inputs enter the last stage, and outputs appear at
    the opposite ends.  Behaviour is beat-for-beat identical to a single
    ``LinearArray`` with ``sum(n_cells)`` cells (verified by the test
    suite), so drivers written for one chip work unchanged on a cascade.
    """

    def __init__(self, stages: Sequence[LinearArray]):
        if not stages:
            raise SimulationError("chain needs at least one stage")
        channel_sets = [tuple(sorted(s.channels)) for s in stages]
        if len(set(channel_sets)) != 1:
            raise SimulationError("all chained stages must share channel names")
        directions = {
            name: spec.direction for name, spec in stages[0].channels.items()
        }
        for s in stages[1:]:
            for name, spec in s.channels.items():
                if spec.direction is not directions[name]:
                    raise SimulationError(
                        f"channel {name!r} direction differs between stages"
                    )
        self.stages: List[LinearArray] = list(stages)
        self.directions = directions
        self.beat = 0

    @property
    def n_cells(self) -> int:
        """Total cells across all stages."""
        return sum(s.n_cells for s in self.stages)

    def reset(self) -> None:
        for s in self.stages:
            s.reset()
        self.beat = 0

    def step(self, inputs: Mapping[str, object]) -> Dict[str, object]:
        """Advance the whole chain by one beat.

        Boundary values are sampled from each stage's end registers
        *before* any stage shifts, then every stage shifts with those
        values as inputs -- the software equivalent of wiring output pins
        to input pins.
        """
        n = len(self.stages)
        # Pre-shift boundary sampling: what each stage will hand over.
        right_handoff: List[Dict[str, object]] = []  # stage b -> stage b+1
        left_handoff: List[Dict[str, object]] = []   # stage b+1 -> stage b
        for b in range(n - 1):
            right_handoff.append(
                {
                    name: self.stages[b].slots[name][-1]
                    for name, d in self.directions.items()
                    if d is ChannelDirection.RIGHT
                }
            )
            left_handoff.append(
                {
                    name: self.stages[b + 1].slots[name][0]
                    for name, d in self.directions.items()
                    if d is ChannelDirection.LEFT
                }
            )

        stage_outputs: List[Dict[str, object]] = []
        for idx, stage in enumerate(self.stages):
            stage_in: Dict[str, object] = {}
            for name, direction in self.directions.items():
                if direction is ChannelDirection.RIGHT:
                    stage_in[name] = (
                        inputs.get(name, BUBBLE)
                        if idx == 0
                        else right_handoff[idx - 1][name]
                    )
                else:
                    stage_in[name] = (
                        inputs.get(name, BUBBLE)
                        if idx == n - 1
                        else left_handoff[idx][name]
                    )
            stage_outputs.append(stage.step(stage_in))

        outputs: Dict[str, object] = {}
        for name, direction in self.directions.items():
            if direction is ChannelDirection.RIGHT:
                outputs[name] = stage_outputs[-1][name]
            else:
                outputs[name] = stage_outputs[0][name]
        self.beat += 1
        return outputs

    def snapshot(self) -> Dict[str, List[object]]:
        """Concatenated register contents across the whole chain."""
        out: Dict[str, List[object]] = {name: [] for name in self.directions}
        for stage in self.stages:
            snap = stage.snapshot()
            for name in self.directions:
                out[name].extend(snap[name])
        return out
