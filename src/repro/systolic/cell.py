"""Cell kernels and the bubble convention.

A *cell kernel* is the behavioural content of one systolic cell: given the
values that just shifted into the cell's registers, it produces the values
the cell presents to its neighbours on the next beat.  Kernels may keep
internal state (the pattern matcher's accumulator keeps the temporary
result ``t``); state must be re-initialisable via :meth:`CellKernel.reset`.

Because the algorithm keeps alternate cells idle on alternate beats
(Section 3.2.1, Figure 3-2), half of all register slots hold no valid data
at any instant.  The simulator represents such slots with the :data:`BUBBLE`
sentinel.  Real NMOS registers of course hold *some* voltage in those
stages; the sentinel is the behavioural abstraction of "garbage the host
never samples".  A cell *fires* only when every designated activity channel
holds a non-bubble value -- exactly the beats on which the two-phase clock
enables the cell in hardware.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping


class _Bubble:
    """Singleton marking an empty (idle) register slot."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "BUBBLE"

    def __bool__(self) -> bool:
        return False


#: Sentinel stored in register slots that carry no valid data this beat.
BUBBLE = _Bubble()


def is_bubble(value: object) -> bool:
    """Return True if *value* is the idle-slot sentinel."""
    return value is BUBBLE


class CellKernel:
    """Base class for cell behaviours.

    Subclasses override :meth:`fire`, which is invoked only on the cell's
    active beats, receives a mapping from channel name to the value that
    just shifted in, and returns a mapping from channel name to the value
    the cell passes on.  Channels omitted from the returned mapping are
    passed through unchanged.  :meth:`fire` must not return bubbles.
    """

    def reset(self) -> None:
        """Reinitialise internal state.  Default: stateless, no-op."""

    def fire(self, inputs: Mapping[str, object]) -> Dict[str, object]:
        """Compute this cell's outputs for one active beat."""
        raise NotImplementedError

    def state_snapshot(self) -> Dict[str, object]:
        """Internal state for tracing; default empty."""
        return {}


class PassThroughKernel(CellKernel):
    """A kernel that forwards everything unchanged (pure delay cell).

    Channels omitted from a kernel's output pass through automatically,
    so forwarding everything means producing nothing.
    """

    def fire(self, inputs: Mapping[str, object]) -> Dict[str, object]:
        return {}


class FunctionKernel(CellKernel):
    """Adapt a plain function ``inputs -> outputs`` into a kernel."""

    def __init__(self, fn, state_factory=None):
        self._fn = fn
        self._state_factory = state_factory
        self.state = state_factory() if state_factory else None

    def reset(self) -> None:
        if self._state_factory:
            self.state = self._state_factory()

    def fire(self, inputs: Mapping[str, object]) -> Dict[str, object]:
        if self._state_factory:
            return self._fn(inputs, self.state)
        return self._fn(inputs)


def all_valid(inputs: Mapping[str, object], channels: Iterable[str]) -> bool:
    """True when every named channel holds a non-bubble value."""
    return all(not is_bubble(inputs[c]) for c in channels)
