"""Self-timed (asynchronous) data flow -- the Section 3.3.2 alternative.

"In a self-timed implementation, data flow control is distributed among
the cells, so that each cell controls its own data transfers.
Neighboring cells must obey a signalling convention to coordinate their
communication. ... Each of the cells may run at its own pace,
synchronizing with its neighbors only when communication is needed."

:class:`SelfTimedLinearArray` is that machine: the same cells and channel
structure as the clocked :class:`~repro.systolic.engine.LinearArray`, but
no clock.  Every cell-to-cell link is a bounded FIFO guarded by a
request/acknowledge handshake (modelled as the FIFO's space/occupancy),
and each cell fires -- after its own, possibly unique, computation delay
-- as soon as every input link offers a slot token and every output link
has space.  Slot tokens include the idle "bubbles" of the synchronous
schedule, which is exactly what a self-timed pipeline's valid bits carry;
with the slot streams identical, the array is a deterministic Kahn
network and produces beat-for-beat the clocked array's outputs, which the
test suite asserts.  What changes is *time*: the clocked array must run
every cell at the worst-case cell delay plus clock-distribution margin,
while the self-timed array's steady throughput is set by its slowest cell
alone -- the trade the paper weighs against the handshake circuitry cost.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..errors import SimulationError
from .cell import BUBBLE, CellKernel
from .engine import ChannelDirection, ChannelSpec


@dataclass
class SelfTimedStats:
    """Timing outcome of a self-timed run."""

    finish_time: float
    firings: int
    slots_delivered: int

    @property
    def mean_slot_interval(self) -> float:
        return self.finish_time / self.slots_delivered if self.slots_delivered else 0.0


class SelfTimedLinearArray:
    """An asynchronous linear array, functionally equal to the clocked one.

    Parameters
    ----------
    n_cells, channels, kernel_factory, activity_channels:
        As for :class:`~repro.systolic.engine.LinearArray`.
    cell_delays:
        Per-cell computation delay (arbitrary units).  Defaults to 1.0
        everywhere; pass heterogeneous values to model fabrication
        spread -- the case where self-timing pays.
    fifo_depth:
        Handshake buffer depth per link (>= 2: each link is primed with
        one spacer bubble -- the self-timed equivalent of the clocked
        array's reset-state registers -- and needs one free slot so the
        opposing streams cannot deadlock each other at start-up).
    """

    def __init__(
        self,
        n_cells: int,
        channels: Sequence[ChannelSpec],
        kernel_factory: Callable[[int], CellKernel],
        activity_channels: Sequence[str],
        cell_delays: Optional[Sequence[float]] = None,
        fifo_depth: int = 2,
    ):
        if n_cells <= 0:
            raise SimulationError("array must contain at least one cell")
        if fifo_depth < 2:
            raise SimulationError(
                "handshake FIFOs need depth >= 2 (one spacer + one slot)"
            )
        self.n_cells = n_cells
        self.channels = {c.name: c for c in channels}
        self.activity_channels = tuple(activity_channels)
        self.kernels = [kernel_factory(i) for i in range(n_cells)]
        if cell_delays is None:
            cell_delays = [1.0] * n_cells
        if len(cell_delays) != n_cells or any(d <= 0 for d in cell_delays):
            raise SimulationError("need one positive delay per cell")
        self.cell_delays = list(cell_delays)
        self.fifo_depth = fifo_depth
        # Input FIFO of each cell per channel; cell n_cells is the output
        # port for rightward channels, cell -1 (index n_cells+...) handled
        # via dedicated sink lists.
        self._in: List[Dict[str, deque]] = [
            {name: deque([BUBBLE]) for name in self.channels}
            for _ in range(n_cells)
        ]
        self.sink_right: Dict[str, List[object]] = {
            n: [] for n, c in self.channels.items()
            if c.direction is ChannelDirection.RIGHT
        }
        self.sink_left: Dict[str, List[object]] = {
            n: [] for n, c in self.channels.items()
            if c.direction is ChannelDirection.LEFT
        }
        self.stats = SelfTimedStats(0.0, 0, 0)

    # -- wiring helpers ------------------------------------------------------

    def _entry_cell(self, name: str) -> int:
        return 0 if self.channels[name].direction is ChannelDirection.RIGHT else self.n_cells - 1

    def _next_cell(self, name: str, i: int) -> Optional[int]:
        if self.channels[name].direction is ChannelDirection.RIGHT:
            return i + 1 if i + 1 < self.n_cells else None
        return i - 1 if i - 1 >= 0 else None

    def _cell_ready(self, i: int) -> bool:
        """Fire rule: a slot token on every channel, space downstream."""
        for name in self.channels:
            if not self._in[i][name]:
                return False
            nxt = self._next_cell(name, i)
            if nxt is not None and len(self._in[nxt][name]) >= self.fifo_depth:
                return False
        return True

    # -- simulation -----------------------------------------------------------

    def run(self, slot_schedule: Sequence[Mapping[str, object]]) -> List[Dict[str, object]]:
        """Feed the synchronous slot schedule; return the slot outputs.

        *slot_schedule* is the same per-beat input mapping the clocked
        array takes (bubbles included implicitly).  Environment sources
        are assumed able to deliver one slot per time unit -- the host's
        DMA keeps up -- so functional behaviour is scheduling-independent
        and timing reflects the cells.
        """
        n_slots = len(slot_schedule)
        # Pre-load source queues (the environment's token streams).
        sources: Dict[str, deque] = {
            name: deque(
                beat_in.get(name, BUBBLE) for beat_in in slot_schedule
            )
            for name in self.channels
        }
        # Event loop: (time, seq, kind, cell)
        counter = itertools.count()
        events: List = []

        def schedule_cell(i: int, t: float) -> None:
            heapq.heappush(events, (t, next(counter), "fire", i))

        def feed_sources(t: float) -> None:
            for name, queue in sources.items():
                if not queue:
                    continue
                entry = self._entry_cell(name)
                while queue and len(self._in[entry][name]) < self.fifo_depth:
                    self._in[entry][name].append(queue.popleft())
                    schedule_cell(entry, t)

        outputs: List[Dict[str, object]] = []
        out_count = {name: 0 for name in self.channels}
        busy_until = [0.0] * self.n_cells
        now = 0.0
        feed_sources(now)
        for i in range(self.n_cells):
            schedule_cell(i, now)
        guard = 0
        max_events = 40 * n_slots * self.n_cells + 1000
        while events:
            guard += 1
            if guard > max_events:
                raise SimulationError("self-timed simulation did not drain "
                                      "(handshake deadlock?)")
            now, _, _, i = heapq.heappop(events)
            if now < busy_until[i]:
                # Safe to drop: every firing self-schedules a retry at its
                # completion time, so the wake-up this event carries is
                # subsumed (requeueing instead causes an event storm).
                continue
            if not self._cell_ready(i):
                continue
            # consume one slot per channel
            slot = {name: self._in[i][name].popleft() for name in self.channels}
            active = all(
                slot[c] is not BUBBLE for c in self.activity_channels
            )
            if active:
                produced = self.kernels[i].fire(slot)
                for name, value in produced.items():
                    slot[name] = value
                self.stats.firings += 1
            done = now + self.cell_delays[i]
            busy_until[i] = done
            for name, value in slot.items():
                nxt = self._next_cell(name, i)
                if nxt is None:
                    sink = (
                        self.sink_right if self.channels[name].direction
                        is ChannelDirection.RIGHT else self.sink_left
                    )
                    sink[name].append(value)
                    out_count[name] += 1
                else:
                    self._in[nxt][name].append(value)
                    schedule_cell(nxt, done)
            # this cell may fire again; upstream may now have space
            schedule_cell(i, done)
            for name in self.channels:
                prev = self._prev_cell(name, i)
                if prev is not None:
                    schedule_cell(prev, done)
            feed_sources(done)
            self.stats.finish_time = max(self.stats.finish_time, done)
        self.stats.slots_delivered = min(out_count.values()) if out_count else 0
        # assemble per-slot outputs in arrival order
        length = self.stats.slots_delivered
        for k in range(length):
            outputs.append(
                {
                    name: (self.sink_right.get(name) or self.sink_left.get(name))[k]
                    for name in self.channels
                }
            )
        return outputs

    def _prev_cell(self, name: str, i: int) -> Optional[int]:
        if self.channels[name].direction is ChannelDirection.RIGHT:
            return i - 1 if i - 1 >= 0 else None
        return i + 1 if i + 1 < self.n_cells else None
