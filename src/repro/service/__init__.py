"""The matcher farm: a multi-tenant service over a pool of simulated chips.

Figure 1-1 pitches the pattern matcher as an attached device serving a
host; Section 5 imagines many cheap special-purpose chips deployed at
scale.  This package is that deployment story rendered executable: many
concurrent match queries multiplexed onto a pool of simulated devices,
with bounded queues and backpressure (CSP-style channels between explicit
scheduler and worker processes), priority classes, tenant fairness,
pattern/text sharding, fault injection with retry-and-reassignment, and
graceful degradation to the Section 3.3 software baselines when the pool
is saturated or exhausted.

The public surface is :class:`MatcherService` (``submit``/``drain``) over
a :class:`DevicePool`; everything is beat-accounted against the paper's
250 ns/char timing model so throughput and latency numbers stay faithful
to the hardware story.

Layout
------
* :mod:`~repro.service.pool` -- workers wrapping chips, cascades, or
  wafer harvests (some degraded or dead).
* :mod:`~repro.service.scheduler` -- bounded queues, priority classes,
  tenant round-robin, the simulated beat clock, and the shared host bus.
* :mod:`~repro.service.sharding` -- long patterns via multipass, wide
  texts split across workers and merged back into one result stream.
* :mod:`~repro.service.reliability` -- fault injection, retry policy,
  and the software-baseline fallback path.
* :mod:`~repro.service.telemetry` -- per-job and per-worker counters
  rendered through :class:`repro.analysis.report.Table`.
* :mod:`~repro.service.cache` -- the cross-tenant :class:`ResultCache`
  the batch tier consults before dispatching (``submit``/``submit_many``
  with ``cache=ResultCache(...)``).
* :mod:`~repro.service.health` -- the fleet-health loop: background
  gate-level BIST on idle workers, quarantine of failing chips, and
  re-provisioning from the :mod:`repro.wafer` harvest model.
"""

from __future__ import annotations

from .cache import ResultCache, result_cache_key
from .health import FleetHealth, HealthConfig, HealthEvent
from .pool import (
    DevicePool,
    PoolWorker,
    WorkerState,
    cascade_pool,
    pool_from_wafers,
    uniform_pool,
)
from .reliability import (
    CellDefect,
    CellDefectKind,
    Fault,
    FaultInjector,
    FaultKind,
    RetryPolicy,
    SoftwareFallback,
)
from .scheduler import (
    BeatClock,
    BoundedQueue,
    JobQueues,
    Priority,
    SchedulerConfig,
    SharedBus,
)
from .service import JobResult, MatchJob, MatcherService
from .sharding import (
    ShardMode,
    ShardPlan,
    TextShard,
    merge_shard_results,
    merge_shard_values,
    plan_shards,
)
from .telemetry import ServiceTelemetry, WorkerStats

__all__ = [
    "BeatClock",
    "BoundedQueue",
    "CellDefect",
    "CellDefectKind",
    "DevicePool",
    "Fault",
    "FaultInjector",
    "FaultKind",
    "FleetHealth",
    "HealthConfig",
    "HealthEvent",
    "JobQueues",
    "JobResult",
    "MatchJob",
    "MatcherService",
    "PoolWorker",
    "Priority",
    "ResultCache",
    "RetryPolicy",
    "SchedulerConfig",
    "ServiceTelemetry",
    "ShardMode",
    "ShardPlan",
    "SharedBus",
    "SoftwareFallback",
    "TextShard",
    "WorkerState",
    "cascade_pool",
    "merge_shard_results",
    "merge_shard_values",
    "plan_shards",
    "pool_from_wafers",
    "result_cache_key",
    "uniform_pool",
]
