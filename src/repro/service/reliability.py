"""Fault injection, retries, and graceful degradation.

The farm's failure model covers the two ways a simulated chip lets the
scheduler down:

* *worker death* -- the chip stops mid-job (a Section 5 wafer reality:
  latent defects, infant mortality).  The in-flight execution is lost;
  the job is requeued at the front of its lane and reassigned to another
  worker.
* *stuck beats* -- the chip stalls for a bounded number of beats (clock
  or handshake glitch) but completes correctly.  Only latency suffers.

When retries are exhausted, the pool has no live workers, or admission
hits backpressure, the job degrades to a *software* matcher from
:mod:`repro.baselines` running on the host CPU -- slower by the paper's
own host model, but still bit-identical to the oracle.  Degradation
trades throughput for availability; it never trades correctness.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence, Tuple

from ..alphabet import PatternChar
from ..baselines.shift_or import shift_or_match
from ..errors import ServiceError
from ..host.bus import HostSpec


class FaultKind(Enum):
    WORKER_DEATH = "worker-death"
    STUCK_BEATS = "stuck-beats"


@dataclass(frozen=True)
class Fault:
    """One injected fault on one execution.

    ``at_fraction`` locates a death within the service interval (the
    beats burned before the loss is noticed); ``extra_beats`` is the
    stall length for a stuck-beat fault.
    """

    kind: FaultKind
    at_fraction: float = 1.0
    extra_beats: int = 0


class FaultInjector:
    """Seeded random fault source; deterministic per seed.

    Probabilities are per *execution* (each shard assignment and each
    retry samples independently).
    """

    def __init__(
        self,
        seed: int = 0,
        p_death: float = 0.0,
        p_stuck: float = 0.0,
        stuck_beats: Tuple[int, int] = (1, 64),
    ):
        if not 0.0 <= p_death <= 1.0 or not 0.0 <= p_stuck <= 1.0:
            raise ServiceError("fault probabilities must be in [0, 1]")
        if p_death + p_stuck > 1.0:
            raise ServiceError("fault probabilities must sum to at most 1")
        if stuck_beats[0] < 0 or stuck_beats[1] < stuck_beats[0]:
            raise ServiceError("stuck_beats must be a non-negative range")
        self.p_death = p_death
        self.p_stuck = p_stuck
        self.stuck_beats = stuck_beats
        self._rng = random.Random(seed)
        self.obs = None

    def attach_obs(self, obs) -> None:
        """Attach/detach an Observability bundle; injected faults count
        into ``faults.injected`` labelled by kind."""
        self.obs = obs

    def _count(self, kind: FaultKind) -> None:
        if self.obs is not None:
            self.obs.registry.counter("faults.injected", kind=kind.value).inc()

    def sample(self) -> Optional[Fault]:
        r = self._rng.random()
        if r < self.p_death:
            self._count(FaultKind.WORKER_DEATH)
            return Fault(FaultKind.WORKER_DEATH, at_fraction=self._rng.random())
        if r < self.p_death + self.p_stuck:
            self._count(FaultKind.STUCK_BEATS)
            return Fault(
                FaultKind.STUCK_BEATS,
                extra_beats=self._rng.randint(*self.stuck_beats),
            )
        return None


#: An injector that never fires -- the default, healthy farm.
def no_faults() -> FaultInjector:
    return FaultInjector(seed=0, p_death=0.0, p_stuck=0.0)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times an execution may be reassigned before degrading."""

    max_retries: int = 2

    def should_retry(self, attempts: int) -> bool:
        """*attempts* = completed (failed) tries so far."""
        return attempts <= self.max_retries


class SoftwareFallback:
    """The host CPU running a Section 3.3 software baseline.

    Uses shift-or (the strongest streaming software baseline in
    :mod:`repro.baselines`) for the answer and the host model's
    per-character instruction cost for the time -- the same comparison
    the paper's introduction draws, now serving as the farm's pressure
    relief valve.
    """

    def __init__(self, host: Optional[HostSpec] = None):
        self.host = host or HostSpec()

    def match(
        self, pattern: Sequence[PatternChar], text: Sequence[str]
    ) -> List[bool]:
        if len(text) == 0:
            return []
        return shift_or_match(list(pattern), list(text))

    def kernel(self, spec, taps: Sequence, stream: Sequence) -> List:
        """Serve one Section 3.4 kernel shard from the host CPU.

        Evaluates the workload's *direct oracle* definition -- the
        behavioral ground truth -- so degraded kernel jobs keep the same
        never-wrong guarantee as degraded match jobs.
        """
        if len(stream) == 0:
            return []
        return spec.oracle(taps, list(stream), None)

    def beats(self, pattern_len: int, text_len: int, beat_ns: float) -> int:
        """Software matching time, expressed in chip beats for apples-to-
        apples latency accounting."""
        if beat_ns <= 0:
            raise ServiceError("beat time must be positive")
        ns = self.host.software_match_time_ns(text_len, pattern_len)
        return int(math.ceil(ns / beat_ns))
