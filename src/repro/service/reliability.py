"""Fault injection, retries, and graceful degradation.

The farm's failure model covers the two ways a simulated chip lets the
scheduler down:

* *worker death* -- the chip stops mid-job (a Section 5 wafer reality:
  latent defects, infant mortality).  The in-flight execution is lost;
  the job is requeued at the front of its lane and reassigned to another
  worker.
* *stuck beats* -- the chip stalls for a bounded number of beats (clock
  or handshake glitch) but completes correctly.  Only latency suffers.

When retries are exhausted, the pool has no live workers, or admission
hits backpressure, the job degrades to a *software* matcher from
:mod:`repro.baselines` running on the host CPU -- slower by the paper's
own host model, but still bit-identical to the oracle.  Degradation
trades throughput for availability; it never trades correctness.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from ..alphabet import PatternChar
from ..baselines.shift_or import shift_or_match
from ..errors import ServiceError
from ..host.bus import HostSpec


class FaultKind(Enum):
    WORKER_DEATH = "worker-death"
    STUCK_BEATS = "stuck-beats"


class CellDefectKind(Enum):
    """Circuit-level defect universe: what silicon actually does wrong.

    These are *latent* defects -- they live in a chip's cells and are
    invisible to the scheduler until a BIST pass (:mod:`repro.bist`)
    stimulates the cell and the signature diverges.  They never corrupt
    served results: a defective chip is quarantined, not trusted.
    """

    STUCK_AT_0 = "stuck-at-0"      # node welded to GND
    STUCK_AT_1 = "stuck-at-1"      # node welded to VDD
    BRIDGE = "bridge"              # two tracks shorted (always-on channel)
    OPEN = "open"                  # device disconnected (missing contact)
    SLOW_PATH = "slow-path"        # unbuffered series chain: timing escape
    MISPHASE = "misphase"          # transfer gate on the wrong clock phase


@dataclass(frozen=True)
class CellDefect:
    """One gate-level defect located in one cell of a matcher array.

    ``col``/``row`` address the cell: row ``>= 0`` is a comparator,
    row ``-1`` the accumulator in that column.  ``port`` (and
    ``other_port`` for bridges) name cell ports; ``device`` names a
    transistor label suffix for opens/misphases; ``stages`` is the chain
    length for slow paths.
    """

    kind: CellDefectKind
    col: int
    row: int
    port: str = ""
    other_port: str = ""
    device: str = ""
    stages: int = 0

    @property
    def cell(self) -> str:
        """The netlist prefix of the afflicted cell (``c{col}_{row}`` or
        ``a{col}``)."""
        return f"a{self.col}" if self.row < 0 else f"c{self.col}_{self.row}"

    def describe(self) -> str:
        what = self.port or self.device or "?"
        if self.kind is CellDefectKind.BRIDGE:
            what = f"{self.port}~{self.other_port}"
        if self.kind is CellDefectKind.SLOW_PATH:
            what = f"{what}+{self.stages}"
        return f"{self.kind.value}@{self.cell}.{what}"

    def to_wire(self) -> Dict[str, object]:
        """A picklable dict safe to ship across a process boundary."""
        return {
            "kind": self.kind.value, "col": self.col, "row": self.row,
            "port": self.port, "other_port": self.other_port,
            "device": self.device, "stages": self.stages,
        }

    @staticmethod
    def from_wire(d: Dict[str, object]) -> "CellDefect":
        return CellDefect(
            kind=CellDefectKind(d["kind"]), col=int(d["col"]),
            row=int(d["row"]), port=str(d.get("port", "")),
            other_port=str(d.get("other_port", "")),
            device=str(d.get("device", "")), stages=int(d.get("stages", 0)),
        )


@dataclass(frozen=True)
class Fault:
    """One injected fault on one execution.

    ``at_fraction`` locates a death within the service interval (the
    beats burned before the loss is noticed); ``extra_beats`` is the
    stall length for a stuck-beat fault.
    """

    kind: FaultKind
    at_fraction: float = 1.0
    extra_beats: int = 0


class FaultInjector:
    """Seeded random fault source; deterministic per seed.

    Probabilities are per *execution* (each shard assignment and each
    retry samples independently).
    """

    def __init__(
        self,
        seed: int = 0,
        p_death: float = 0.0,
        p_stuck: float = 0.0,
        stuck_beats: Tuple[int, int] = (1, 64),
        p_defect: float = 0.0,
    ):
        if not 0.0 <= p_death <= 1.0 or not 0.0 <= p_stuck <= 1.0:
            raise ServiceError("fault probabilities must be in [0, 1]")
        if p_death + p_stuck > 1.0:
            raise ServiceError("fault probabilities must sum to at most 1")
        if stuck_beats[0] < 0 or stuck_beats[1] < stuck_beats[0]:
            raise ServiceError("stuck_beats must be a non-negative range")
        if not 0.0 <= p_defect <= 1.0:
            raise ServiceError("fault probabilities must be in [0, 1]")
        self.p_death = p_death
        self.p_stuck = p_stuck
        self.stuck_beats = stuck_beats
        self.p_defect = p_defect
        self._rng = random.Random(seed)
        # Latent-defect sampling runs on its own stream so that turning
        # the health loop on/off never perturbs the execution fault
        # sequence (determinism audit: same seed, same deaths).
        self._defect_rng = random.Random((seed ^ 0x9E3779B9) & 0xFFFFFFFF)
        self.obs = None

    def attach_obs(self, obs) -> None:
        """Attach/detach an Observability bundle; injected faults count
        into ``faults.injected`` labelled by kind."""
        self.obs = obs

    def _count(self, kind: FaultKind) -> None:
        if self.obs is not None:
            self.obs.registry.counter("faults.injected", kind=kind.value).inc()

    def sample(self) -> Optional[Fault]:
        r = self._rng.random()
        if r < self.p_death:
            self._count(FaultKind.WORKER_DEATH)
            return Fault(FaultKind.WORKER_DEATH, at_fraction=self._rng.random())
        if r < self.p_death + self.p_stuck:
            self._count(FaultKind.STUCK_BEATS)
            return Fault(
                FaultKind.STUCK_BEATS,
                extra_beats=self._rng.randint(*self.stuck_beats),
            )
        return None

    #: (kind, weight) table for latent-defect sampling.  Stuck/bridge/open
    #: dominate (they are the yield-model defects); slow paths and
    #: misphased transfers are rarer process escapes.
    _DEFECT_WEIGHTS = (
        (CellDefectKind.STUCK_AT_0, 3),
        (CellDefectKind.STUCK_AT_1, 3),
        (CellDefectKind.BRIDGE, 3),
        (CellDefectKind.OPEN, 3),
        (CellDefectKind.SLOW_PATH, 1),
        (CellDefectKind.MISPHASE, 1),
    )
    _STUCK_PORTS = ("eq", "p_out", "s_out", "d_out", "p_store", "s_store")
    _BRIDGE_PAIRS = (("p_in", "s_in"), ("s_in", "d_in"), ("p_store", "s_store"))
    _OPEN_DEVICES = ("pass_p", "pass_s", "pass_d")

    def sample_defect(self, cols: int, rows: int) -> Optional["CellDefect"]:
        """Maybe grow a latent defect in a ``cols``x``rows`` array.

        Returns ``None`` (no defect, probability ``1 - p_defect``) or one
        :class:`CellDefect` placed uniformly over the array.  Uses a
        dedicated RNG stream -- see ``__init__``.
        """
        rng = self._defect_rng
        if rng.random() >= self.p_defect:
            return None
        kinds = [k for k, w in self._DEFECT_WEIGHTS for _ in range(w)]
        kind = rng.choice(kinds)
        col = rng.randrange(cols)
        row = rng.randrange(rows)
        if kind in (CellDefectKind.STUCK_AT_0, CellDefectKind.STUCK_AT_1):
            defect = CellDefect(kind, col, row, port=rng.choice(self._STUCK_PORTS))
        elif kind is CellDefectKind.BRIDGE:
            a, b = rng.choice(self._BRIDGE_PAIRS)
            defect = CellDefect(kind, col, row, port=a, other_port=b)
        elif kind is CellDefectKind.OPEN:
            defect = CellDefect(kind, col, row, device=rng.choice(self._OPEN_DEVICES))
        elif kind is CellDefectKind.SLOW_PATH:
            defect = CellDefect(
                kind, col, row, port="d_out", stages=rng.randrange(40, 60)
            )
        else:
            defect = CellDefect(CellDefectKind.MISPHASE, col, -1, device="t_xfer")
        if self.obs is not None:
            self.obs.registry.counter(
                "faults.injected", kind=f"defect-{kind.value}"
            ).inc()
        return defect


#: An injector that never fires -- the default, healthy farm.
def no_faults() -> FaultInjector:
    return FaultInjector(seed=0, p_death=0.0, p_stuck=0.0)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times an execution may be reassigned before degrading."""

    max_retries: int = 2

    def should_retry(self, attempts: int) -> bool:
        """*attempts* = completed (failed) tries so far."""
        return attempts <= self.max_retries


class SoftwareFallback:
    """The host CPU running a Section 3.3 software baseline.

    Uses shift-or (the strongest streaming software baseline in
    :mod:`repro.baselines`) for the answer and the host model's
    per-character instruction cost for the time -- the same comparison
    the paper's introduction draws, now serving as the farm's pressure
    relief valve.
    """

    def __init__(self, host: Optional[HostSpec] = None):
        self.host = host or HostSpec()

    def match(
        self, pattern: Sequence[PatternChar], text: Sequence[str]
    ) -> List[bool]:
        if len(text) == 0:
            return []
        return shift_or_match(list(pattern), list(text))

    def kernel(self, spec, taps: Sequence, stream: Sequence) -> List:
        """Serve one Section 3.4 kernel shard from the host CPU.

        Evaluates the workload's *direct oracle* definition -- the
        behavioral ground truth -- so degraded kernel jobs keep the same
        never-wrong guarantee as degraded match jobs.
        """
        if len(stream) == 0:
            return []
        return spec.oracle(taps, list(stream), None)

    def beats(self, pattern_len: int, text_len: int, beat_ns: float) -> int:
        """Software matching time, expressed in chip beats for apples-to-
        apples latency accounting."""
        if beat_ns <= 0:
            raise ServiceError("beat time must be positive")
        ns = self.host.software_match_time_ns(text_len, pattern_len)
        return int(math.ceil(ns / beat_ns))
