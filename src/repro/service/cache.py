"""Cross-tenant result caching in front of the farm.

Section 5's deployment story has many tenants hammering the same attached
devices, and real multi-tenant query mixes repeat themselves: the same
pattern over the same corpus shard shows up from many clients.  Device
beats spent recomputing an identical window product are pure waste, so
the batch tier puts a :class:`ResultCache` in front of dispatch: results
are keyed on the *canonicalized* workload identity (workload name +
parsed parameters + a content digest of the validated input stream), so
any tenant's hit serves every tenant -- while telemetry stays per-tenant
so operators can see who benefits.

Keys are computed by :func:`result_cache_key` from post-parse,
pre-``prepare`` values: canonicalization (wildcards rendered as ``X``,
taps as floats) means two spellings of the same job share an entry, and
keying on parameters means a changed ``workload`` or tap vector can
never alias a stale result -- the invalidation property the cache tests
pin down.  Entries are LRU with three bounds: entry count, total cached
output values (a size bound, since one result value ~ one output word),
and an optional TTL in the caller's clock units (beats for the simulated
farm, seconds for the asyncio runtime).

The cache is deliberately clock-agnostic (``now`` is an argument, never
``time.time()``): the farm runs on a simulated :class:`~repro.service.scheduler.BeatClock`
and tests need determinism.
"""

from __future__ import annotations

import hashlib
from array import array
from collections import OrderedDict
from typing import Dict, Optional, Sequence, Tuple

from ..alphabet import PatternChar, pattern_to_string
from ..errors import ServiceError
from ..obs.metrics import MetricsRegistry

__all__ = ["ResultCache", "canonical_params", "result_cache_key"]


def canonical_params(taps: Sequence):
    """The canonical spelling of a parsed parameter vector.

    Wildcard-bearing patterns render to their ``X`` string; numeric taps
    become a float tuple.  ``submit_many`` hoists this out of the
    per-member loop -- every member shares one parameter vector.
    """
    if taps and all(isinstance(pc, PatternChar) for pc in taps):
        return pattern_to_string(taps)
    return tuple(float(v) for v in taps)


def _stream_digest(stream: Sequence, numeric: bool) -> bytes:
    """A content digest of a validated input stream.

    Character streams hash their utf-8 text; numeric streams hash the
    exact IEEE-754 bytes (no repr round-off), so two streams collide only
    if they are value-identical.
    """
    h = hashlib.blake2b(digest_size=16)
    if numeric:
        h.update(array("d", stream).tobytes())
    else:
        h.update("".join(stream).encode("utf-8"))
    return h.digest()


def result_cache_key(
    workload: str, taps: Sequence, stream: Sequence, numeric: bool,
    params=None,
) -> Tuple:
    """The cross-tenant identity of one job's answer.

    ``taps`` is the *parsed* parameter vector (:class:`PatternChar` list
    or float taps) and ``stream`` the *validated* input, both pre-
    ``prepare``: prepare-side padding is derived from these, so it can
    never split identical jobs into distinct keys.  Pass ``params``
    (from :func:`canonical_params`) to skip re-canonicalizing ``taps``
    when keying many jobs that share one parameter vector.
    """
    if params is None:
        params = canonical_params(taps)
    return (workload, params, len(stream), _stream_digest(stream, numeric))


class _Entry:
    __slots__ = ("results", "size", "stored_at")

    def __init__(self, results: list, stored_at: float):
        self.results = results
        self.size = len(results)
        self.stored_at = stored_at


class ResultCache:
    """Bounded LRU of job results, shared across tenants.

    Parameters
    ----------
    max_entries:
        Maximum number of cached results (LRU eviction beyond it).
    max_values:
        Bound on the *total* number of cached output values across all
        entries -- the size bound.  A single result larger than this is
        simply not cached.
    ttl:
        Optional time-to-live in the caller's clock units; entries older
        than this at ``get``/``put`` time are expired.  ``None`` means
        entries never age out.

    >>> cache = ResultCache(max_entries=2)
    >>> key = result_cache_key("match", [], "ABAB", numeric=False)
    >>> cache.get(key, tenant="t0") is None
    True
    >>> cache.put(key, [False, True])
    >>> cache.get(key, tenant="t1")
    [False, True]
    """

    def __init__(
        self,
        max_entries: int = 1024,
        max_values: int = 4_000_000,
        ttl: Optional[float] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        if max_entries <= 0:
            raise ServiceError("cache max_entries must be positive")
        if max_values <= 0:
            raise ServiceError("cache max_values must be positive")
        if ttl is not None and ttl <= 0:
            raise ServiceError("cache ttl must be positive (or None)")
        self.max_entries = max_entries
        self.max_values = max_values
        self.ttl = ttl
        self._entries: "OrderedDict[Tuple, _Entry]" = OrderedDict()
        self._total_values = 0
        self._registry = registry if registry is not None else MetricsRegistry()
        r = self._registry
        self._hits = r.counter("service.cache.hits")
        self._misses = r.counter("service.cache.misses")
        self._evictions = r.counter("service.cache.evictions")
        self._expirations = r.counter("service.cache.expirations")
        self._stores = r.counter("service.cache.stores")
        self._by_tenant: Dict[str, Tuple] = {}

    # -- telemetry ---------------------------------------------------------

    def _tenant_counters(self, tenant: str):
        pair = self._by_tenant.get(tenant)
        if pair is None:
            pair = self._by_tenant[tenant] = (
                self._registry.counter("service.cache.tenant_hits",
                                       tenant=tenant),
                self._registry.counter("service.cache.tenant_misses",
                                       tenant=tenant),
            )
        return pair

    @property
    def hits(self) -> int:
        return int(self._hits.value)

    @property
    def misses(self) -> int:
        return int(self._misses.value)

    @property
    def evictions(self) -> int:
        return int(self._evictions.value)

    @property
    def expirations(self) -> int:
        return int(self._expirations.value)

    @property
    def stores(self) -> int:
        return int(self._stores.value)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        """A snapshot for benches and ops dashboards."""
        return {
            "entries": len(self._entries),
            "values": self._total_values,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "stores": self.stores,
            "hit_rate": self.hit_rate(),
            "by_tenant": {
                t: {"hits": int(h.value), "misses": int(m.value)}
                for t, (h, m) in sorted(self._by_tenant.items())
            },
        }

    # -- the cache proper --------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def _expired(self, entry: _Entry, now: float) -> bool:
        return self.ttl is not None and (now - entry.stored_at) > self.ttl

    def _drop(self, key: Tuple, counter) -> None:
        entry = self._entries.pop(key)
        self._total_values -= entry.size
        counter.inc()

    def get(
        self, key: Tuple, tenant: str = "anon", now: float = 0.0
    ) -> Optional[list]:
        """The cached result for *key*, or None.  Hits return a copy, so
        callers can never mutate the shared entry."""
        t_hits, t_misses = self._tenant_counters(tenant)
        entry = self._entries.get(key)
        if entry is not None and self._expired(entry, now):
            self._drop(key, self._expirations)
            entry = None
        if entry is None:
            self._misses.inc()
            t_misses.inc()
            return None
        self._entries.move_to_end(key)
        self._hits.inc()
        t_hits.inc()
        return list(entry.results)

    def put(self, key: Tuple, results: Sequence, now: float = 0.0) -> None:
        """Store one result (a copy of it), evicting LRU past the bounds."""
        if len(results) > self.max_values:
            return  # larger than the whole size budget: not cacheable
        old = self._entries.pop(key, None)  # re-store refreshes age + order
        if old is not None:
            self._total_values -= old.size
        entry = _Entry(list(results), now)
        self._entries[key] = entry
        self._total_values += entry.size
        self._stores.inc()
        while (
            len(self._entries) > self.max_entries
            or self._total_values > self.max_values
        ):
            oldest = next(iter(self._entries))
            self._drop(oldest, self._evictions)

    def invalidate(self, key: Tuple) -> bool:
        """Drop one entry; True if it existed."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self._total_values -= entry.size
        return True

    def clear(self) -> None:
        self._entries.clear()
        self._total_values = 0
