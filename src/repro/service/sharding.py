"""Sharding: long patterns via multipass, wide texts across workers.

Two independent axes, both straight from Section 3.4:

* A pattern longer than a worker's cell count runs the *multipass*
  scheme on that worker (handled inside
  :meth:`~repro.service.pool.PoolWorker.run_match`); the plan records it
  so telemetry and timing use multipass rates.
* A text much longer than a pattern can be cut into chunks and matched
  on several workers at once.  Each chunk overlaps its left neighbour by
  ``k = len(pattern) - 1`` characters so every window is seen whole;
  chunk results for the overlap prefix are discarded on merge, exactly
  like the substring bookkeeping of the multipass derivation.

The merge reassembles per-shard result streams into the single oracle
stream through :class:`repro.streams.ResultStream`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Sequence

from ..errors import ServiceError
from ..streams import ResultStream


class ShardMode(Enum):
    """How a job is mapped onto the pool."""

    DIRECT = "direct"            # one worker, pattern fits
    MULTIPASS = "multipass"      # one worker, pattern longer than its cells
    TEXT_SHARDED = "text-sharded"  # several workers, text split with overlap


@dataclass(frozen=True)
class TextShard:
    """One contiguous slice of responsibility over the text.

    The shard owns output positions ``out_lo..out_hi`` (inclusive) and is
    fed ``text[feed_start : out_hi + 1]`` -- the owned slice plus the
    ``k``-character overlap needed to complete its leftmost window.
    """

    index: int
    out_lo: int
    out_hi: int
    feed_start: int

    @property
    def n_owned(self) -> int:
        return self.out_hi - self.out_lo + 1

    @property
    def n_fed(self) -> int:
        return self.out_hi - self.feed_start + 1

    def feed(self, text: Sequence[str]) -> Sequence[str]:
        return text[self.feed_start : self.out_hi + 1]


@dataclass(frozen=True)
class ShardPlan:
    """The placement decision for one job."""

    mode: ShardMode
    shards: List[TextShard]

    @property
    def n_shards(self) -> int:
        return len(self.shards)


def plan_shards(
    pattern_len: int,
    text_len: int,
    n_workers: int,
    max_shards: int = 4,
    min_shard_chars: int = 64,
    obs=None,
) -> ShardPlan:
    """Cut ``[0, text_len)`` into at most ``min(n_workers, max_shards)``
    overlapping shards; falls back to one shard when the text is too
    short to be worth splitting.  An :class:`~repro.obs.Observability`
    bundle counts every decision into ``service.shard_plans`` by mode."""
    if pattern_len <= 0:
        raise ServiceError("pattern length must be positive")
    if text_len < 0:
        raise ServiceError("text length cannot be negative")
    if n_workers <= 0:
        raise ServiceError("need at least one worker to plan")
    plan = _plan_shards(pattern_len, text_len, n_workers, max_shards,
                        min_shard_chars)
    if obs is not None:
        obs.registry.counter("service.shard_plans", mode=plan.mode.value).inc()
    return plan


def _plan_shards(
    pattern_len: int,
    text_len: int,
    n_workers: int,
    max_shards: int,
    min_shard_chars: int,
) -> ShardPlan:
    k = pattern_len - 1
    whole = ShardPlan(ShardMode.DIRECT, [TextShard(0, 0, text_len - 1, 0)])
    if text_len == 0:
        return ShardPlan(ShardMode.DIRECT, [])
    n = min(n_workers, max_shards, max(1, text_len // min_shard_chars))
    # A shard must own at least one position past its overlap to be useful.
    n = min(n, max(1, text_len // max(1, k + 1)))
    if n <= 1:
        return whole
    base = text_len // n
    extra = text_len % n
    shards: List[TextShard] = []
    lo = 0
    for i in range(n):
        size = base + (1 if i < extra else 0)
        hi = lo + size - 1
        shards.append(TextShard(i, lo, hi, max(0, lo - k)))
        lo = hi + 1
    return ShardPlan(ShardMode.TEXT_SHARDED, shards)


def merge_shard_values(
    shards: Sequence[TextShard],
    shard_results: Sequence[Sequence],
    text_len: int,
    incomplete=False,
) -> List:
    """Reassemble per-shard windowed result streams, any value type.

    Each shard's results are local to its fed slice; position ``j`` of
    shard *s* is global position ``s.feed_start + j``.  Only owned
    positions are kept; overlap-prefix results (incomplete windows from
    the shard's local point of view, which report ``incomplete``, and
    duplicated positions belonging to the left neighbour) are dropped.
    This is what makes halo-overlap sharding workload-agnostic: every
    Section 3.4 kernel produces one value per stream position with a
    ``window - 1`` warm-up, so the same owned/overlap bookkeeping merges
    match bits, match counts, and numeric windows alike.
    """
    if len(shards) != len(shard_results):
        raise ServiceError(
            f"{len(shards)} shards but {len(shard_results)} result streams"
        )
    filled = [False] * text_len
    out = [incomplete] * text_len
    for shard, results in zip(shards, shard_results):
        if len(results) != shard.n_fed:
            raise ServiceError(
                f"shard {shard.index} fed {shard.n_fed} chars but returned "
                f"{len(results)} results"
            )
        for g in range(shard.out_lo, shard.out_hi + 1):
            out[g] = results[g - shard.feed_start]
            filled[g] = True
    if not all(filled):
        missing = filled.index(False)
        raise ServiceError(f"no shard owns text position {missing}")
    return out


def merge_shard_results(
    shards: Sequence[TextShard],
    shard_results: Sequence[Sequence[bool]],
    text_len: int,
) -> List[bool]:
    """Boolean-matching specialization of :func:`merge_shard_values`,
    funnelled through :class:`repro.streams.ResultStream` like the
    hardware result pin."""
    merged = merge_shard_values(shards, shard_results, text_len, False)
    stream = ResultStream()
    for bit in merged:
        stream.record_result(bool(bit))
    return stream.results
