"""`MatcherService`: submit/drain over the device pool.

The service is a discrete-event simulation driven by the beat clock.
``submit`` admits jobs through the bounded priority queues (backpressure
applies); ``drain`` runs the farm to completion: assign queued work to
idle workers, advance the clock to the next completion, handle faults,
repeat.  Every execution is beat-accounted (worker service time from the
250 ns timing model, bus occupancy from the host memory model), and every
result is produced by a verified matching engine -- chip, cascade,
multipass, or the software fallback -- so service output is bit-identical
to :func:`repro.core.reference.match_oracle` no matter how the job was
routed, retried, or sharded.

Beyond matching, ``submit(workload=...)`` serves any kernel registered in
:mod:`repro.workloads` -- match counting, correlation, convolution, FIR,
sliding inner products (Section 3.4) -- through the *same* scheduler:
windowed kernels shard across workers with halo overlap exactly like
match jobs (one value per stream position, ``window - 1`` warm-up), and
retry exhaustion degrades to the workload's behavioral oracle instead of
the software matcher.  Whatever the routing, kernel results equal the
direct oracle definition, property-tested under fault injection in
``tests/test_workloads_service.py``.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..alphabet import PatternChar, parse_pattern
from ..errors import BackpressureError, ServiceError
from ..host.bus import HostSpec
from .cache import ResultCache, canonical_params, result_cache_key
from .pool import DevicePool, PoolWorker, WorkerState
from .reliability import FaultInjector, FaultKind, RetryPolicy, SoftwareFallback
from .scheduler import BeatClock, JobQueues, Priority, SchedulerConfig, SharedBus
from .sharding import (
    ShardMode,
    ShardPlan,
    TextShard,
    merge_shard_results,
    merge_shard_values,
    plan_shards,
)
from .telemetry import ServiceTelemetry
from ..workloads.registry import WorkloadSpec, get_workload


@dataclass
class MatchJob:
    """One admitted query: a match by default, or any registered
    Section 3.4 workload.

    For kernel workloads ``taps`` holds the *prepared* tap vector,
    ``text`` the prepared stream (padded for convolution/FIR), and
    ``orig_len`` the validated input-stream length that ``spec.finalize``
    maps windowed results back onto; ``pattern`` stays empty."""

    job_id: int
    tenant: str
    priority: Priority
    pattern: List[PatternChar]
    text: List
    submitted_beat: float
    attempts: int = 0  # failed executions so far (drives the retry policy)
    span: Optional[object] = None  # open service.job span (obs attached)
    workload: str = "match"
    taps: Optional[list] = None
    orig_len: int = 0
    spec: Optional[WorkloadSpec] = None
    deadline: Optional[float] = None  # absolute beat; None = no SLO
    #: Cross-tenant result-cache identity (also the submit_many dedup
    #: key): canonical workload + params + content digest of the
    #: validated input.  None until the admission path computes it.
    cache_key: Optional[tuple] = None

    @property
    def window_len(self) -> int:
        """Cells the job needs: the sliding-window width (pattern or taps)."""
        return len(self.taps) if self.taps is not None else len(self.pattern)


@dataclass(frozen=True)
class JobResult:
    """The completed job: the oracle-identical result stream plus its
    latency story."""

    job_id: int
    tenant: str
    priority: Priority
    results: List
    submitted_beat: float
    started_beat: float
    finished_beat: float
    wait_beats: float
    service_beats: float
    mode: str
    workers: Tuple[str, ...]
    attempts: int
    via_fallback: bool
    workload: str = "match"
    timed_out: bool = False

    @property
    def latency_beats(self) -> float:
        return self.finished_beat - self.submitted_beat


@dataclass
class _JobState:
    """In-flight bookkeeping for one job."""

    job: MatchJob
    plan: ShardPlan
    pending: Dict[int, TextShard]
    shard_results: Dict[int, List] = field(default_factory=dict)
    shard_finish: Dict[int, float] = field(default_factory=dict)
    started_beat: Optional[float] = None
    service_beats: float = 0.0
    workers_used: List[str] = field(default_factory=list)
    via_fallback: bool = False
    timed_out: bool = False

    @property
    def done(self) -> bool:
        return not self.pending


@dataclass(frozen=True)
class _Execution:
    """One shard running on one worker (or dying on it)."""

    seq: int
    state: _JobState
    shard: TextShard
    worker: PoolWorker
    start_beat: float
    finish_beat: float
    fault: Optional[object]


@dataclass
class _BatchJob:
    """A coalesced batch plan: many compatible jobs, one queue entry.

    All members share one parsed pattern/tap vector, tenant, and
    priority (the ``submit_many`` contract), and every member's text is
    *unique* -- duplicates were already peeled off as followers of their
    representative.  The batch occupies one worker for the sum of its
    members' service beats and is retried, shed, or degraded as a unit
    (per-member deadlines are still honoured individually at launch)."""

    jobs: List[MatchJob]
    tenant: str
    priority: Priority
    workload: str

    @property
    def window_len(self) -> int:
        return self.jobs[0].window_len


@dataclass
class _BatchState:
    """In-flight bookkeeping for one batch plan."""

    batch: _BatchJob
    jobs: List[MatchJob]  # members still owed a device execution
    started_beat: Optional[float] = None
    attempts: int = 0  # failed batch executions (drives the retry policy)


@dataclass(frozen=True)
class _BatchExecution:
    """One whole batch running on one worker (or dying on it)."""

    seq: int
    state: _BatchState
    worker: PoolWorker
    start_beat: float
    finish_beat: float
    fault: Optional[object]


class MatcherService:
    """The multi-tenant matcher farm (the public API of the subsystem).

    >>> pool = uniform_pool(4, ChipSpec(8, 2), Alphabet("ABCD"))  # doctest: +SKIP
    >>> svc = MatcherService(pool)                                # doctest: +SKIP
    >>> jid = svc.submit("AXC", "ABCAACACCAB", tenant="alice")    # doctest: +SKIP
    >>> svc.drain()[0].results                                    # doctest: +SKIP
    """

    def __init__(
        self,
        pool: DevicePool,
        config: Optional[SchedulerConfig] = None,
        host: Optional[HostSpec] = None,
        faults: Optional[FaultInjector] = None,
        obs=None,
        cache: Optional[ResultCache] = None,
    ):
        self.pool = pool
        self.config = config or SchedulerConfig()
        self.host = host or HostSpec()
        self.faults = faults or FaultInjector()
        self.retry = RetryPolicy(self.config.max_retries)
        self.fallback = SoftwareFallback(self.host)
        self.beat_ns = pool.workers[0].beat_ns
        self.clock = BeatClock()
        self.queues = JobQueues(self.config)
        self.obs = obs
        self.bus = SharedBus(self.host, self.beat_ns, obs=obs)
        self.telemetry = ServiceTelemetry(
            registry=obs.registry if obs is not None else None
        )
        if obs is not None:
            self.faults.attach_obs(obs)
        # Optional cross-tenant result cache.  Pass
        # ``ResultCache(registry=obs.registry)`` to fold its hit/miss
        # counters into the run's unified metrics; its TTL is measured
        # in beats (the farm's clock).
        self.cache = cache
        self._next_id = 0
        self._seq = 0
        self._inflight: List[Tuple[float, int, object]] = []
        self._retry_ready: Deque[Tuple[_JobState, TextShard]] = deque()
        self._retry_batches: Deque[_BatchState] = deque()
        self._followers: Dict[int, List[MatchJob]] = {}
        self._completed: Dict[int, JobResult] = {}
        for w in pool:
            stats = self.telemetry.worker_stats(w.name, w.capacity)
            stats.died = not w.is_live

    # -- submission --------------------------------------------------------

    def submit(
        self,
        pattern,
        text: Sequence,
        tenant: str = "default",
        priority: Priority = Priority.BATCH,
        workload: str = "match",
        timeout: Optional[float] = None,
    ) -> int:
        """Admit one query; returns its job id.

        *pattern* is a match pattern for the default workload, or the
        tap/pattern parameters of any workload registered in
        :mod:`repro.workloads` (``"count"``, ``"correlation"``,
        ``"convolution"``, ``"fir"``, ``"inner-product"``); *text* is the
        character text or numeric sample stream accordingly.

        Raises :class:`BackpressureError` when the priority class's
        bounded queue is full and ``degrade_when_saturated`` is off;
        otherwise a saturated submission runs on the host CPU's software
        matcher (or the workload's behavioral oracle) immediately
        (slower, never wrong).

        *timeout* (beats) is the job's SLO: any shard launch whose
        projected finish would land past ``submitted + timeout`` is not
        committed to a worker at all -- the shard is served degraded
        from the host oracle instead, so a slow or hung worker can
        never wedge a drain past the deadline.  The result is flagged
        ``timed_out`` (and still oracle-identical).
        """
        if timeout is not None and timeout <= 0:
            raise ServiceError("timeout must be a positive number of beats")
        if workload == "match":
            parsed = self._parse(pattern)
            chars = self.pool.alphabet.validate_text(text)
            job = MatchJob(
                job_id=self._next_id,
                tenant=tenant,
                priority=priority,
                pattern=parsed,
                text=chars,
                submitted_beat=self.clock.now,
            )
            empty = not chars
            key_taps, key_stream, key_numeric = parsed, chars, False
        else:
            spec = get_workload(workload)
            taps = spec.parse_params(pattern, self.pool.alphabet)
            validated = spec.validate_stream(text, self.pool.alphabet)
            ktaps, feed = spec.prepare(taps, validated)
            job = MatchJob(
                job_id=self._next_id,
                tenant=tenant,
                priority=priority,
                pattern=[],
                text=feed,
                submitted_beat=self.clock.now,
                workload=workload,
                taps=ktaps,
                orig_len=len(validated),
                spec=spec,
            )
            empty = not validated
            key_taps, key_stream, key_numeric = taps, validated, spec.numeric
        if timeout is not None:
            job.deadline = job.submitted_beat + timeout
        self._next_id += 1
        self.telemetry.submitted += 1
        if self.obs is not None:
            # Jobs overlap in simulated time, so their spans cannot nest on
            # the tracer stack: open/close explicitly, keyed off the job.
            job.span = self.obs.tracer.open_span(
                "service.job", t0=self.clock.now, unit="beats",
                job_id=job.job_id, tenant=tenant, priority=priority.name,
                workload=workload,
            )
        if empty:
            self._complete_empty(job)
            return job.job_id
        if self.cache is not None:
            job.cache_key = result_cache_key(
                workload, key_taps, key_stream, key_numeric
            )
            hit = self.cache.get(
                job.cache_key, tenant=tenant, now=self.clock.now
            )
            if hit is not None:
                self._complete_cached(job, hit)
                return job.job_id
        try:
            self.queues.put(priority, tenant, job)
            self._note_queue_depth(priority)
        except BackpressureError:
            self.telemetry.backpressure_hits += 1
            if not self.config.degrade_when_saturated:
                self.telemetry.submitted -= 1
                if job.span is not None:
                    self.obs.tracer.close(
                        job.span, t1=self.clock.now, rejected=True
                    )
                raise
            self._complete_software(job)
        return job.job_id

    def _note_queue_depth(self, priority: Priority) -> None:
        if self.obs is not None:
            self.obs.tracer.event(
                "queue.depth", t=self.clock.now, unit="beats",
                priority=priority.name,
                depth=self.queues.depth(priority),
            )

    def submit_many(
        self,
        pattern,
        texts: Sequence[Sequence],
        tenant: str = "default",
        priority: Priority = Priority.BATCH,
        workload: str = "match",
        timeout: Optional[float] = None,
    ) -> List[int]:
        """Admit one job per text in *texts*, coalesced into batch plans.

        The batched front door for query chunks.  The pattern (or tap
        vector) is parsed **once**; each text then takes the cheapest
        route that still yields an oracle-identical result:

        * empty texts complete immediately;
        * texts whose canonical result is already in the
          :class:`~repro.service.cache.ResultCache` complete from it
          (``mode="cached"``);
        * duplicate texts build **one** plan per *unique* text -- the
          first occurrence is the representative, later ones are
          followers that share its execution and results
          (``mode="deduped"``);
        * wide texts (``>= wide_text_threshold``) keep their own
          shard/merge plans, exactly like :meth:`submit`;
        * everything else is coalesced into :class:`_BatchJob` plans of
          at most ``config.max_batch_jobs`` members, each dispatched to
          a worker as a single batched execution (``mode="batched"``).

        Backpressure applies per queue entry (one batch plan is one
        entry): with ``degrade_when_saturated`` the overflowing plan is
        served by the software baseline; otherwise the overflowing plan
        and every not-yet-admitted job after it is rejected and
        :class:`BackpressureError` raised (already-admitted jobs stay
        admitted).
        """
        if timeout is not None and timeout <= 0:
            raise ServiceError("timeout must be a positive number of beats")
        if workload == "match":
            parsed = self._parse(pattern)
            spec = None
            numeric = False
        else:
            spec = get_workload(workload)
            parsed = spec.parse_params(pattern, self.pool.alphabet)
            numeric = spec.numeric
        now = self.clock.now
        job_ids: List[int] = []
        reps: Dict[tuple, MatchJob] = {}
        batchable: List[MatchJob] = []
        units: List[object] = []  # wide-text singleton jobs + batch plans
        params = canonical_params(parsed)
        for text in texts:
            if workload == "match":
                validated = self.pool.alphabet.validate_text(text)
                job = MatchJob(
                    job_id=self._next_id,
                    tenant=tenant,
                    priority=priority,
                    pattern=parsed,
                    text=validated,
                    submitted_beat=now,
                )
            else:
                validated = spec.validate_stream(text, self.pool.alphabet)
                ktaps, feed = spec.prepare(parsed, validated)
                job = MatchJob(
                    job_id=self._next_id,
                    tenant=tenant,
                    priority=priority,
                    pattern=[],
                    text=feed,
                    submitted_beat=now,
                    workload=workload,
                    taps=ktaps,
                    orig_len=len(validated),
                    spec=spec,
                )
            if timeout is not None:
                job.deadline = now + timeout
            self._next_id += 1
            self.telemetry.submitted += 1
            job_ids.append(job.job_id)
            if self.obs is not None:
                job.span = self.obs.tracer.open_span(
                    "service.job", t0=now, unit="beats",
                    job_id=job.job_id, tenant=tenant,
                    priority=priority.name, workload=workload,
                )
            if not validated:
                self._complete_empty(job)
                continue
            job.cache_key = result_cache_key(
                workload, parsed, validated, numeric, params=params
            )
            if self.cache is not None:
                hit = self.cache.get(job.cache_key, tenant=tenant, now=now)
                if hit is not None:
                    self._complete_cached(job, hit)
                    continue
            rep = reps.get(job.cache_key)
            if rep is not None:
                # One plan per unique text: this job shares the
                # representative's execution and fans out at completion.
                self.telemetry.deduped += 1
                self._followers.setdefault(rep.job_id, []).append(job)
                continue
            reps[job.cache_key] = job
            if len(job.text) >= self.config.wide_text_threshold:
                units.append(job)  # its own shard/merge plan
            else:
                batchable.append(job)
        step = self.config.max_batch_jobs
        for i in range(0, len(batchable), step):
            units.append(_BatchJob(
                jobs=batchable[i : i + step],
                tenant=tenant,
                priority=priority,
                workload=workload,
            ))
        for i, unit in enumerate(units):
            members = [unit] if isinstance(unit, MatchJob) else unit.jobs
            try:
                self.queues.put(priority, tenant, unit)
                self._note_queue_depth(priority)
            except BackpressureError:
                self.telemetry.backpressure_hits += 1
                if self.config.degrade_when_saturated:
                    for job in members:
                        self._complete_member_software(job)
                    continue
                for late in units[i:]:
                    late_members = (
                        [late] if isinstance(late, MatchJob) else late.jobs
                    )
                    for job in late_members:
                        self._reject(job)
                raise
        return job_ids

    def _reject(self, job: MatchJob) -> None:
        """Roll one not-admitted job (and its followers) back out."""
        self.telemetry.submitted -= 1
        if job.span is not None:
            self.obs.tracer.close(job.span, t1=self.clock.now, rejected=True)
            job.span = None
        for follower in self._followers.pop(job.job_id, []):
            self._reject(follower)

    def _parse(self, pattern) -> List[PatternChar]:
        if pattern and not isinstance(pattern, str) and all(
            isinstance(pc, PatternChar) for pc in pattern
        ):
            return list(pattern)
        return parse_pattern(pattern, self.pool.alphabet)

    # -- draining ----------------------------------------------------------

    def drain(self) -> List[JobResult]:
        """Run the farm until every admitted job has completed; returns
        all results so far, in job-id order."""
        while (
            self.queues.depth() or self._retry_ready
            or self._retry_batches or self._inflight
        ):
            self._assign_all()
            if not self._inflight:
                if self.pool.n_live == 0:
                    self._degrade_remaining()
                    continue
                if (
                    not self.queues.depth() and not self._retry_ready
                    and not self._retry_batches
                ):
                    # Everything was served inline (deadline timeouts /
                    # saturation degrades) without touching a worker.
                    continue
                raise ServiceError(
                    "scheduler stalled with live workers and queued jobs"
                )
            _, _, execution = heapq.heappop(self._inflight)
            self.clock.advance_to(execution.finish_beat)
            if isinstance(execution, _BatchExecution):
                self._complete_batch(execution)
            else:
                self._complete_execution(execution)
        self._sync_telemetry()
        return [self._completed[i] for i in sorted(self._completed)]

    def results(self) -> List[JobResult]:
        """Completed results so far (without draining)."""
        return [self._completed[i] for i in sorted(self._completed)]

    # -- assignment --------------------------------------------------------

    def _assign_all(self) -> None:
        while True:
            idle = self.pool.idle_workers()
            if not idle:
                return
            if self._retry_ready:
                state, shard = self._retry_ready.popleft()
                worker = self._choose_worker(idle, state.job.window_len)
                self._launch(state, shard, worker)
                continue
            if self._retry_batches:
                bstate = self._retry_batches.popleft()
                worker = self._choose_worker(idle, bstate.batch.window_len)
                self._launch_batch(bstate, worker)
                continue
            unit = self.queues.pop()
            if unit is None:
                return
            if isinstance(unit, _BatchJob):
                self._start_batch(unit)
            else:
                self._start_job(unit)

    @staticmethod
    def _choose_worker(
        idle: Sequence[PoolWorker], pattern_len: int
    ) -> PoolWorker:
        """Best fit: the smallest worker the pattern fits on; otherwise
        the largest worker (fewest multipass runs)."""
        fitting = [w for w in idle if w.fits(pattern_len)]
        if fitting:
            return min(fitting, key=lambda w: (w.capacity, w.name))
        return max(idle, key=lambda w: (w.capacity, w.name))

    def _start_job(self, job: MatchJob) -> None:
        self._note_queue_depth(job.priority)
        idle = self.pool.idle_workers()
        plen, tlen = job.window_len, len(job.text)
        fitting = sorted(
            (w for w in idle if w.fits(plen)), key=lambda w: (w.capacity, w.name)
        )
        if tlen >= self.config.wide_text_threshold and len(fitting) >= 2:
            plan = plan_shards(
                plen,
                tlen,
                len(fitting),
                self.config.max_shards,
                self.config.min_shard_chars,
                obs=self.obs,
            )
            if plan.mode is ShardMode.TEXT_SHARDED:
                state = _JobState(
                    job, plan, pending={s.index: s for s in plan.shards}
                )
                for shard, worker in zip(plan.shards, fitting):
                    self._launch(state, shard, worker)
                return
        worker = self._choose_worker(idle, plen)
        mode = ShardMode.DIRECT if worker.fits(plen) else ShardMode.MULTIPASS
        whole = TextShard(0, 0, tlen - 1, 0)
        state = _JobState(job, ShardPlan(mode, [whole]), pending={0: whole})
        self._launch(state, whole, worker)

    def _launch(
        self, state: _JobState, shard: TextShard, worker: PoolWorker
    ) -> None:
        now = self.clock.now
        plen = state.job.window_len
        n_fed = shard.n_fed
        service = worker.service_beats(plen, n_fed)
        chars = worker.transfer_chars(plen, n_fed)
        fault = self.faults.sample()
        if fault is not None and fault.kind is FaultKind.WORKER_DEATH:
            # The stream dies partway through; beats and bus time up to
            # the failure point are burned, nothing useful comes back.
            burned = max(1.0, fault.at_fraction * service)
            bus_chars = int(chars * fault.at_fraction)
            finish = now + burned
        else:
            extra = fault.extra_beats if fault is not None else 0
            bus_chars = chars
            finish = max(now + service + extra, self.bus.eta(chars, now))
        deadline = state.job.deadline
        if deadline is not None and finish > deadline:
            # The SLO would be blown before this launch even finished
            # (slow worker, stuck beats, bus queue, or a death that
            # would burn past the deadline): don't commit the worker or
            # the bus at all -- serve the shard degraded right now.
            # The sampled fault is discarded with the launch.
            self.telemetry.timeouts += 1
            state.timed_out = True
            if state.started_beat is None:
                state.started_beat = now
            if self.obs is not None:
                self.obs.tracer.event(
                    "job.timeout", t=now, unit="beats",
                    job_id=state.job.job_id, shard=shard.index,
                    projected_finish=finish, deadline=deadline,
                )
            self._shard_software(state, shard)
            return
        if state.started_beat is None:
            state.started_beat = now
        worker.state = WorkerState.BUSY
        self.bus.reserve(bus_chars, now)
        self._seq += 1
        execution = _Execution(
            self._seq, state, shard, worker, now, finish, fault
        )
        heapq.heappush(self._inflight, (finish, self._seq, execution))

    # -- completion --------------------------------------------------------

    def _complete_execution(self, execution: _Execution) -> None:
        state, shard, worker = execution.state, execution.shard, execution.worker
        job = state.job
        stats = self.telemetry.worker_stats(worker.name, worker.capacity)
        stats.executions += 1
        stats.record_busy(execution.start_beat, execution.finish_beat)
        fault = execution.fault
        exec_span = None
        if self.obs is not None:
            exec_span = self.obs.tracer.record(
                "service.execution",
                t0=execution.start_beat, t1=execution.finish_beat,
                unit="beats", parent=job.span,
                worker=worker.name, shard=shard.index,
                attempt=job.attempts,
                fault=fault.kind.value if fault is not None else None,
            )
        if fault is not None and fault.kind is FaultKind.WORKER_DEATH:
            worker.state = WorkerState.DEAD
            stats.died = True
            self.telemetry.deaths += 1
            job.attempts += 1
            if self.retry.should_retry(job.attempts) and self.pool.n_live > 0:
                self.telemetry.retries += 1
                self._retry_ready.append((state, shard))
            else:
                self._shard_software(state, shard)
            return
        worker.state = WorkerState.IDLE
        if fault is not None and fault.kind is FaultKind.STUCK_BEATS:
            stats.stuck_events += 1
            self.telemetry.stuck_events += 1
        feed = shard.feed(job.text)
        if job.workload == "match":
            results = worker.run_match(
                job.pattern, feed, obs=self.obs, parent=exec_span,
                t0=execution.start_beat, t1=execution.finish_beat,
            )
        else:
            results = worker.run_kernel(
                job.spec, job.taps, feed, obs=self.obs, parent=exec_span,
                t0=execution.start_beat, t1=execution.finish_beat,
            )
        state.shard_results[shard.index] = results
        state.shard_finish[shard.index] = execution.finish_beat
        state.service_beats += execution.finish_beat - execution.start_beat
        state.workers_used.append(worker.name)
        del state.pending[shard.index]
        if state.done:
            self._finalize(state)

    def _shard_software(self, state: _JobState, shard: TextShard) -> None:
        """Retries exhausted (or no live workers): the host CPU finishes
        this shard with the software baseline."""
        job = state.job
        feed = shard.feed(job.text)
        if job.workload == "match":
            results = self.fallback.match(job.pattern, feed)
        else:
            results = self.fallback.kernel(job.spec, job.taps, feed)
        beats = self.fallback.beats(job.window_len, len(feed), self.beat_ns)
        finish = self.clock.now + beats
        if self.obs is not None:
            self.obs.tracer.record(
                "service.software_fallback", t0=self.clock.now, t1=finish,
                unit="beats", parent=job.span,
                shard=shard.index, chars=len(feed),
            )
        state.shard_results[shard.index] = results
        state.shard_finish[shard.index] = finish
        state.service_beats += beats
        state.via_fallback = True
        self.telemetry.fallbacks += 1
        del state.pending[shard.index]
        if state.done:
            self._finalize(state)

    def _finalize(self, state: _JobState) -> None:
        job, plan = state.job, state.plan
        if plan.mode is ShardMode.TEXT_SHARDED:
            ordered = [state.shard_results[s.index] for s in plan.shards]
            if job.workload == "match":
                results = merge_shard_results(
                    plan.shards, ordered, len(job.text)
                )
            else:
                results = merge_shard_values(
                    plan.shards, ordered, len(job.text), job.spec.incomplete
                )
        else:
            results = state.shard_results[0]
        if job.workload != "match":
            results = job.spec.finalize(job.taps, job.orig_len, results)
        finished = max(state.shard_finish.values())
        started = state.started_beat if state.started_beat is not None else finished
        mode = "software" if state.via_fallback and not state.workers_used \
            else plan.mode.value
        self._record(
            JobResult(
                job_id=job.job_id,
                tenant=job.tenant,
                priority=job.priority,
                results=results,
                submitted_beat=job.submitted_beat,
                started_beat=started,
                finished_beat=finished,
                wait_beats=started - job.submitted_beat,
                service_beats=state.service_beats,
                mode=mode,
                workers=tuple(state.workers_used),
                attempts=job.attempts,
                via_fallback=state.via_fallback,
                workload=job.workload,
                timed_out=state.timed_out,
            ),
            job,
        )

    def _complete_empty(self, job: MatchJob) -> None:
        now = self.clock.now
        self._record(
            JobResult(
                job_id=job.job_id,
                tenant=job.tenant,
                priority=job.priority,
                results=[],
                submitted_beat=now,
                started_beat=now,
                finished_beat=now,
                wait_beats=0.0,
                service_beats=0.0,
                mode=ShardMode.DIRECT.value,
                workers=(),
                attempts=0,
                via_fallback=False,
                workload=job.workload,
            ),
            job,
        )

    def _complete_software(self, job: MatchJob) -> None:
        """Saturation path: serve immediately from the host CPU."""
        if job.workload == "match":
            results = self.fallback.match(job.pattern, job.text)
        else:
            merged = self.fallback.kernel(job.spec, job.taps, job.text)
            results = job.spec.finalize(job.taps, job.orig_len, merged)
        beats = self.fallback.beats(
            job.window_len, len(job.text), self.beat_ns
        )
        now = self.clock.now
        self.telemetry.fallbacks += 1
        if self.obs is not None:
            self.obs.tracer.record(
                "service.software_fallback", t0=now, t1=now + beats,
                unit="beats", parent=job.span, chars=len(job.text),
            )
        self._record(
            JobResult(
                job_id=job.job_id,
                tenant=job.tenant,
                priority=job.priority,
                results=results,
                submitted_beat=now,
                started_beat=now,
                finished_beat=now + beats,
                wait_beats=0.0,
                service_beats=beats,
                mode="software",
                workers=(),
                attempts=job.attempts,
                via_fallback=True,
                workload=job.workload,
            ),
            job,
        )

    def _complete_cached(self, job: MatchJob, results: List) -> None:
        """Cache hit: the canonical answer is already known -- no queue,
        no worker, no bus, zero service beats."""
        now = self.clock.now
        self._record(
            JobResult(
                job_id=job.job_id,
                tenant=job.tenant,
                priority=job.priority,
                results=results,
                submitted_beat=job.submitted_beat,
                started_beat=now,
                finished_beat=now,
                wait_beats=0.0,
                service_beats=0.0,
                mode="cached",
                workers=(),
                attempts=0,
                via_fallback=False,
                workload=job.workload,
            ),
            job,
        )

    def _complete_member_software(
        self, job: MatchJob, timed_out: bool = False
    ) -> None:
        """Serve one batch member from the host CPU (deadline shed,
        batch retry exhaustion, or saturation degrade), preserving its
        original submission beat for latency accounting."""
        if job.workload == "match":
            results = self.fallback.match(job.pattern, job.text)
        else:
            merged = self.fallback.kernel(job.spec, job.taps, job.text)
            results = job.spec.finalize(job.taps, job.orig_len, merged)
        beats = self.fallback.beats(job.window_len, len(job.text), self.beat_ns)
        now = self.clock.now
        self.telemetry.fallbacks += 1
        if self.obs is not None:
            self.obs.tracer.record(
                "service.software_fallback", t0=now, t1=now + beats,
                unit="beats", parent=job.span, chars=len(job.text),
            )
        self._record(
            JobResult(
                job_id=job.job_id,
                tenant=job.tenant,
                priority=job.priority,
                results=results,
                submitted_beat=job.submitted_beat,
                started_beat=now,
                finished_beat=now + beats,
                wait_beats=now - job.submitted_beat,
                service_beats=beats,
                mode="software",
                workers=(),
                attempts=job.attempts,
                via_fallback=True,
                workload=job.workload,
                timed_out=timed_out,
            ),
            job,
        )

    # -- batch plans -------------------------------------------------------

    def _start_batch(self, batch: _BatchJob) -> None:
        self._note_queue_depth(batch.priority)
        state = _BatchState(batch, jobs=list(batch.jobs))
        worker = self._choose_worker(
            self.pool.idle_workers(), batch.window_len
        )
        self._launch_batch(state, worker)

    def _batch_demand(
        self, jobs: Sequence[MatchJob], worker: PoolWorker
    ) -> Tuple[float, int]:
        """Summed device beats and bus characters for a batch's members
        run back-to-back on *worker* (one load of the shared pattern per
        member, same accounting as a singleton launch)."""
        plen = jobs[0].window_len
        service = sum(worker.service_beats(plen, len(j.text)) for j in jobs)
        chars = sum(worker.transfer_chars(plen, len(j.text)) for j in jobs)
        return service, chars

    def _launch_batch(self, state: _BatchState, worker: PoolWorker) -> None:
        now = self.clock.now

        def project(jobs):
            service, chars = self._batch_demand(jobs, worker)
            if fault is not None and fault.kind is FaultKind.WORKER_DEATH:
                burned = max(1.0, fault.at_fraction * service)
                return now + burned, int(chars * fault.at_fraction)
            extra = fault.extra_beats if fault is not None else 0
            return max(now + service + extra, self.bus.eta(chars, now)), chars

        # One fault sample per batch execution: the whole batch lives or
        # dies with the worker it lands on.
        fault = self.faults.sample()
        finish, bus_chars = project(state.jobs)
        shed = [
            j for j in state.jobs
            if j.deadline is not None and finish > j.deadline
        ]
        if shed:
            # Per-member SLO check before committing the worker: members
            # whose deadline the projected finish would blow are served
            # degraded right now; the survivors are re-projected once.
            shed_ids = {j.job_id for j in shed}
            for job in shed:
                self.telemetry.timeouts += 1
                if self.obs is not None:
                    self.obs.tracer.event(
                        "job.timeout", t=now, unit="beats",
                        job_id=job.job_id, batch=True,
                        projected_finish=finish, deadline=job.deadline,
                    )
                self._complete_member_software(job, timed_out=True)
            state.jobs = [
                j for j in state.jobs if j.job_id not in shed_ids
            ]
            if not state.jobs:
                return  # the worker was never committed
            finish, bus_chars = project(state.jobs)
        if state.started_beat is None:
            state.started_beat = now
        worker.state = WorkerState.BUSY
        self.bus.reserve(bus_chars, now)
        self._seq += 1
        execution = _BatchExecution(
            self._seq, state, worker, now, finish, fault
        )
        heapq.heappush(self._inflight, (finish, self._seq, execution))

    def _complete_batch(self, execution: _BatchExecution) -> None:
        state, worker = execution.state, execution.worker
        batch = state.batch
        stats = self.telemetry.worker_stats(worker.name, worker.capacity)
        stats.executions += 1
        stats.record_busy(execution.start_beat, execution.finish_beat)
        fault = execution.fault
        batch_span = None
        if self.obs is not None:
            batch_span = self.obs.tracer.record(
                "service.batch",
                t0=execution.start_beat, t1=execution.finish_beat,
                unit="beats", worker=worker.name, jobs=len(state.jobs),
                workload=batch.workload, attempt=state.attempts,
                fault=fault.kind.value if fault is not None else None,
            )
        if fault is not None and fault.kind is FaultKind.WORKER_DEATH:
            worker.state = WorkerState.DEAD
            stats.died = True
            self.telemetry.deaths += 1
            state.attempts += 1
            for job in state.jobs:
                job.attempts += 1
            if self.retry.should_retry(state.attempts) and self.pool.n_live:
                self.telemetry.retries += 1
                self._retry_batches.append(state)
            else:
                for job in state.jobs:
                    self._complete_member_software(job)
            return
        worker.state = WorkerState.IDLE
        if fault is not None and fault.kind is FaultKind.STUCK_BEATS:
            stats.stuck_events += 1
            self.telemetry.stuck_events += 1
        jobs = state.jobs
        if batch.workload == "match":
            results_many = worker.run_match_batch(
                jobs[0].pattern, [j.text for j in jobs],
                obs=self.obs, parent=batch_span,
                t0=execution.start_beat, t1=execution.finish_beat,
            )
        else:
            results_many = worker.run_kernel_batch(
                jobs[0].spec, jobs[0].taps, [j.text for j in jobs],
                obs=self.obs, parent=batch_span,
                t0=execution.start_beat, t1=execution.finish_beat,
            )
        self.telemetry.batches += 1
        started = (
            state.started_beat if state.started_beat is not None
            else execution.start_beat
        )
        plen = batch.window_len
        for job, merged in zip(jobs, results_many):
            if batch.workload == "match":
                results = merged
            else:
                results = job.spec.finalize(job.taps, job.orig_len, merged)
            self.telemetry.batched_jobs += 1
            self._record(
                JobResult(
                    job_id=job.job_id,
                    tenant=job.tenant,
                    priority=job.priority,
                    results=results,
                    submitted_beat=job.submitted_beat,
                    started_beat=started,
                    finished_beat=execution.finish_beat,
                    wait_beats=started - job.submitted_beat,
                    # The member's share of the batch: what its own
                    # device run would have cost on this worker.
                    service_beats=worker.service_beats(plen, len(job.text)),
                    mode="batched",
                    workers=(worker.name,),
                    attempts=job.attempts,
                    via_fallback=False,
                    workload=batch.workload,
                ),
                job,
            )

    def _degrade_remaining(self) -> None:
        """Every live worker is gone: drain all remaining work through
        the software fallback (availability over throughput)."""
        while self._retry_ready:
            state, shard = self._retry_ready.popleft()
            self._shard_software(state, shard)
        while self._retry_batches:
            bstate = self._retry_batches.popleft()
            for job in bstate.jobs:
                self._complete_member_software(job)
        while True:
            unit = self.queues.pop()
            if unit is None:
                break
            if isinstance(unit, _BatchJob):
                for job in unit.jobs:
                    self._complete_member_software(job)
            else:
                self._complete_software(unit)

    # -- accounting --------------------------------------------------------

    def _record(self, result: JobResult, job: MatchJob) -> None:
        self._completed[result.job_id] = result
        self.telemetry.completed += 1
        self.telemetry.text_chars_served += len(result.results)
        self.telemetry.record_job(
            result.priority, result.wait_beats, result.service_beats
        )
        self.telemetry.record_workload(result.workload, len(result.results))
        if job.span is not None:
            self.obs.tracer.close(
                job.span, t1=result.finished_beat,
                mode=result.mode, workers=list(result.workers),
                attempts=result.attempts, via_fallback=result.via_fallback,
                timed_out=result.timed_out,
                wait_beats=result.wait_beats,
                service_beats=result.service_beats,
            )
            job.span = None
        if (
            self.cache is not None and job.cache_key is not None
            and result.mode not in ("cached", "deduped")
        ):
            self.cache.put(
                job.cache_key, result.results, now=result.finished_beat
            )
        # Fan results out to any deduplicated followers of this job:
        # they share the execution (and its faults, retries, timeouts)
        # but keep their own identity and latency accounting.
        for follower in self._followers.pop(result.job_id, []):
            self._record(
                JobResult(
                    job_id=follower.job_id,
                    tenant=follower.tenant,
                    priority=follower.priority,
                    results=list(result.results),
                    submitted_beat=follower.submitted_beat,
                    started_beat=result.started_beat,
                    finished_beat=result.finished_beat,
                    wait_beats=result.started_beat - follower.submitted_beat,
                    service_beats=0.0,
                    mode="deduped",
                    workers=result.workers,
                    attempts=0,
                    via_fallback=result.via_fallback,
                    workload=follower.workload,
                    timed_out=result.timed_out,
                ),
                follower,
            )

    def _sync_telemetry(self) -> None:
        t = self.telemetry
        t.queue_high_water = dict(self.queues.high_water)
        t.bus_busy_beats = self.bus.busy_beats
        t.bus_chars_moved = self.bus.chars_moved
        finishes = [r.finished_beat for r in self._completed.values()]
        t.makespan_beats = max([self.clock.now] + finishes)

    def report(self) -> str:
        """The telemetry tables (render after a drain)."""
        self._sync_telemetry()
        return self.telemetry.render()
