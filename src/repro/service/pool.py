"""The device pool: workers built from chips, cascades, or wafer harvests.

Each :class:`PoolWorker` wraps one simulated matching engine -- a
:class:`~repro.chip.chip.PatternMatchingChip`, a
:class:`~repro.chip.cascade.ChipCascade`, or an array harvested from a
defective :class:`~repro.wafer.wafer.Wafer` -- behind a uniform execute
interface.  Workers harvested from wafers may be *degraded* (fewer
functional cells than sites, so long patterns need more multipass runs)
or *dead* on arrival (an unharvestable wafer), which is exactly the
Section 5 deployment reality the farm has to schedule around.

Timing is delegated to :class:`repro.timing.model.TimingModel` so every
service-level beat count traces back to the paper's 250 ns/char model.
"""

from __future__ import annotations

import math
from enum import Enum
from typing import List, Optional, Sequence

from ..alphabet import Alphabet, PatternChar
from ..chip.cascade import ChipCascade
from ..chip.chip import ChipSpec, PatternMatchingChip
from ..core.fastpath import FastMatcher, fast_match_many
from ..core.multipass import runs_required
from ..errors import ChipError, ServiceError
from ..timing.model import TimingModel
from ..wafer.reconfigure import harvest_linear_array
from ..wafer.wafer import Wafer


class WorkerState(Enum):
    """Lifecycle of a pool worker.

    ``QUARANTINED`` is the fleet-health state: the worker failed a
    background self-test (:mod:`repro.service.health`), has been drained
    and removed from dispatch, and is held for diagnosis rather than
    declared dead -- a quarantined part can be re-binned or scrapped,
    but it never serves another job.
    """

    IDLE = "idle"
    BUSY = "busy"
    DEAD = "dead"
    QUARANTINED = "quarantined"


class PoolWorker:
    """One schedulable matching engine in the farm.

    ``capacity`` is the number of usable character cells; patterns longer
    than it run multipass (Section 3.4) on this worker, at multipass
    rates.  ``nominal_capacity`` is what a defect-free unit would have
    had, so ``is_degraded`` distinguishes harvest losses from design.
    """

    def __init__(
        self,
        name: str,
        backend: Optional[object],
        capacity: int,
        nominal_capacity: int,
        beat_ns: float,
        alphabet: Alphabet,
    ):
        if capacity < 0:
            raise ServiceError("worker capacity cannot be negative")
        self.name = name
        self.backend = backend
        self.capacity = capacity
        self.nominal_capacity = max(nominal_capacity, capacity)
        self.beat_ns = beat_ns
        self.alphabet = alphabet
        self.timing = TimingModel(beat_ns)
        self.state = WorkerState.DEAD if capacity == 0 else WorkerState.IDLE
        # Compiled-pattern cache: farms typically run many texts against
        # one pattern, so keep the last FastMatcher built for this worker.
        self._fast: Optional[FastMatcher] = None
        self._fast_key: Optional[tuple] = None
        # Gate-level twin for deep tracing (built lazily, same cache idea).
        self._gate: Optional[object] = None
        self._gate_key: Optional[tuple] = None
        # A latent circuit defect (repro.service.reliability.CellDefect)
        # waiting for background BIST to find it.  Seeded by the fault
        # injector's defect channel; None on healthy silicon.
        self.latent_defect = None

    # -- construction ------------------------------------------------------

    @classmethod
    def from_chip(cls, name: str, chip: PatternMatchingChip) -> "PoolWorker":
        return cls(
            name,
            chip,
            chip.spec.n_cells,
            chip.spec.n_cells,
            chip.spec.beat_ns,
            chip.alphabet,
        )

    @classmethod
    def from_cascade(cls, name: str, cascade: ChipCascade) -> "PoolWorker":
        return cls(
            name,
            cascade,
            cascade.capacity,
            cascade.capacity,
            cascade.spec.beat_ns,
            cascade.alphabet,
        )

    @classmethod
    def from_wafer(
        cls,
        name: str,
        wafer: Wafer,
        alphabet: Alphabet,
        beat_ns: float = 250.0,
        max_bypass_run: int = 4,
    ) -> "PoolWorker":
        """Harvest a wafer into a worker; an unharvestable wafer yields a
        dead worker rather than an exception (the farm routes around it)."""
        try:
            harvest = harvest_linear_array(wafer, max_bypass_run=max_bypass_run)
            n_cells = harvest.n_cells
        except ChipError:
            n_cells = 0
        backend = None
        if n_cells > 0:
            backend = PatternMatchingChip(
                ChipSpec(n_cells, alphabet.bits, beat_ns, name=name), alphabet
            )
        return cls(name, backend, n_cells, wafer.n_sites, beat_ns, alphabet)

    # -- queries ----------------------------------------------------------

    @property
    def is_live(self) -> bool:
        return self.state in (WorkerState.IDLE, WorkerState.BUSY)

    @property
    def is_degraded(self) -> bool:
        return 0 < self.capacity < self.nominal_capacity

    def fits(self, pattern_len: int) -> bool:
        """Can this worker hold the pattern without multipass?"""
        return 0 < pattern_len <= self.capacity

    # -- fleet health ------------------------------------------------------

    def seed_defect(self, defect) -> None:
        """Plant a latent :class:`~repro.service.reliability.CellDefect`
        for the background self-test to find (test/soak hook)."""
        self.latent_defect = defect

    def quarantine(self) -> None:
        """Pull this worker out of dispatch after a failed self-test.

        Only a live worker can be quarantined; a dead one already left
        the farm and re-labelling it would hide the death from the
        yield accounting.
        """
        if not self.is_live:
            raise ServiceError(
                f"cannot quarantine worker {self.name!r} in state "
                f"{self.state.value!r}"
            )
        self.state = WorkerState.QUARANTINED

    # -- execution --------------------------------------------------------

    def run_match(
        self,
        pattern: Sequence[PatternChar],
        text: Sequence[str],
        obs=None,
        parent=None,
        t0: float = 0.0,
        t1: float = 0.0,
    ) -> List[bool]:
        """Execute one match on this worker's engine.

        The result stream is always computed on the packed-word fast
        path (:class:`~repro.core.fastpath.FastMatcher`, proven
        bit-identical to the stepwise chip/cascade/multipass models);
        whether the job *fits* or needs the Section 3.4 multipass scheme
        only affects the beat and bus accounting in
        :meth:`service_beats` / :meth:`transfer_chars`.

        With an :class:`~repro.obs.Observability` bundle this records a
        ``worker.match`` span (``t0``/``t1`` are the execution's service
        beats, ``parent`` its job span) and, when ``obs.deep`` is set,
        re-drives the execution through the beat-accurate array -- and,
        when ``obs.trace_circuit`` allows, the transistor-level netlist --
        purely for observation: the returned results are ALWAYS the fast
        path's.
        """
        if not self.is_live or self.backend is None:
            raise ServiceError(
                f"worker {self.name!r} is not live ({self.state.value})"
            )
        key = tuple(pattern)
        fast = self._fast
        if fast is None or key != self._fast_key:
            fast = FastMatcher(list(key), self.alphabet)
            self._fast = fast
            self._fast_key = key
        results = fast.match(text)
        if obs is not None:
            span = obs.tracer.record(
                "worker.match", t0=t0, t1=t1, unit="beats", parent=parent,
                worker=self.name, chars=len(text), pattern_len=len(key),
                engine="fastpath",
            )
            obs.registry.counter("worker.matches", worker=self.name).inc()
            obs.registry.counter("worker.chars", worker=self.name).inc(len(text))
            if obs.deep:
                self._deep_trace(obs, span, key, text, results)
        return results

    def run_kernel(
        self,
        spec,
        taps: Sequence,
        stream: Sequence,
        obs=None,
        parent=None,
        t0: float = 0.0,
        t1: float = 0.0,
    ) -> List:
        """Execute one Section 3.4 kernel window pass on this worker.

        *spec* is a :class:`~repro.workloads.WorkloadSpec`; *taps* are its
        prepared taps and *stream* the (shard of the) prepared stream.
        Like :meth:`run_match`, the values come from the packed/strided
        fast kernel while multipass-vs-direct only affects the beat and
        bus accounting.  With an :class:`~repro.obs.Observability` bundle
        this records a ``worker.kernel`` span, and ``obs.deep`` re-checks
        the window values against the workload's direct oracle (recorded
        as ``oracle_agrees``; results are always the fast kernel's).
        """
        if not self.is_live or self.backend is None:
            raise ServiceError(
                f"worker {self.name!r} is not live ({self.state.value})"
            )
        results = spec.fast(taps, stream, self.alphabet)
        if obs is not None:
            span = obs.tracer.record(
                "worker.kernel", t0=t0, t1=t1, unit="beats", parent=parent,
                worker=self.name, workload=spec.name, samples=len(stream),
                window=len(taps), engine="fastpath",
            )
            obs.registry.counter(
                "worker.kernels", worker=self.name, workload=spec.name
            ).inc()
            obs.registry.counter("worker.samples", worker=self.name).inc(
                len(stream)
            )
            if obs.deep:
                oracle = spec.oracle(taps, stream, self.alphabet)
                span.attrs["oracle_agrees"] = oracle == results
        return results

    def run_match_batch(
        self,
        pattern: Sequence[PatternChar],
        texts: Sequence[Sequence[str]],
        obs=None,
        parent=None,
        t0: float = 0.0,
        t1: float = 0.0,
    ) -> List[List[bool]]:
        """Execute one pattern over a whole batch of texts in one call.

        The batch tier's device model: the farm streams many short texts
        through the loaded pattern back to back, and the result streams
        come out per text.  Values come from the vectorized
        :func:`~repro.core.fastpath.fast_match_many` kernel; ``obs.deep``
        re-checks the whole batch against the per-job fast path (results
        are always the batched kernel's).
        """
        if not self.is_live or self.backend is None:
            raise ServiceError(
                f"worker {self.name!r} is not live ({self.state.value})"
            )
        pattern = list(pattern)
        results = fast_match_many(pattern, texts, self.alphabet)
        if obs is not None:
            chars = sum(len(t) for t in texts)
            span = obs.tracer.record(
                "worker.batch", t0=t0, t1=t1, unit="beats", parent=parent,
                worker=self.name, jobs=len(texts), chars=chars,
                pattern_len=len(pattern), workload="match", engine="batched",
            )
            obs.registry.counter("worker.batches", worker=self.name).inc()
            obs.registry.counter("worker.chars", worker=self.name).inc(chars)
            if obs.deep:
                fast = FastMatcher(pattern, self.alphabet)
                span.attrs["fast_agrees"] = all(
                    fast.match(t) == r for t, r in zip(texts, results)
                )
        return results

    def run_kernel_batch(
        self,
        spec,
        taps: Sequence,
        streams: Sequence[Sequence],
        obs=None,
        parent=None,
        t0: float = 0.0,
        t1: float = 0.0,
    ) -> List[List]:
        """Execute one Section 3.4 kernel over a batch of streams.

        Uses the workload's vectorized ``batched`` kernel when it has
        one, else loops the per-job fast kernel; ``obs.deep`` re-checks
        every member against the workload's direct oracle.
        """
        if not self.is_live or self.backend is None:
            raise ServiceError(
                f"worker {self.name!r} is not live ({self.state.value})"
            )
        if spec.batched is not None:
            results = spec.batched(taps, list(streams), self.alphabet)
        else:
            results = [spec.fast(taps, s, self.alphabet) for s in streams]
        if obs is not None:
            samples = sum(len(s) for s in streams)
            span = obs.tracer.record(
                "worker.batch", t0=t0, t1=t1, unit="beats", parent=parent,
                worker=self.name, jobs=len(streams), chars=samples,
                window=len(taps), workload=spec.name, engine="batched",
            )
            obs.registry.counter("worker.batches", worker=self.name).inc()
            obs.registry.counter("worker.samples", worker=self.name).inc(
                samples
            )
            if obs.deep:
                span.attrs["oracle_agrees"] = all(
                    spec.oracle(taps, s, self.alphabet) == r
                    for s, r in zip(streams, results)
                )
        return results

    def _deep_trace(self, obs, span, key, text, results) -> None:
        """Re-drive the execution through slower models under the tracer.

        Observation only -- agreement is recorded as span attributes, the
        service's results are untouched.
        """
        backend = self.backend
        if (
            isinstance(backend, PatternMatchingChip)
            and 0 < len(key) <= self.capacity
        ):
            backend.load_pattern(list(key))
            backend.attach_obs(obs)
            try:
                with obs.tracer.nest(span):
                    rep = backend.report(text)
                span.attrs["array_agrees"] = rep.results == results
                span.attrs["array_beats"] = rep.beats
            finally:
                backend.attach_obs(None)
        if (
            obs.trace_circuit
            and 0 < len(text) <= obs.circuit_char_limit
            and 0 < len(key)
        ):
            from ..circuit.chipnet import GateLevelMatcher

            if self._gate is None or self._gate_key != key:
                self._gate = GateLevelMatcher(
                    list(key), self.alphabet, n_cells=len(key)
                )
                self._gate_key = key
            self._gate.attach_obs(obs)
            try:
                with obs.tracer.nest(span):
                    gate_results = self._gate.match(text)
                span.attrs["circuit_agrees"] = gate_results == results
            finally:
                self._gate.attach_obs(None)

    # -- beat accounting --------------------------------------------------

    def service_beats(self, pattern_len: int, n_text: int) -> int:
        """Beats this worker occupies for one job (fill + stream + drain)."""
        if n_text == 0:
            return 0
        if pattern_len <= self.capacity:
            ns = self.timing.single_chip_run_ns(n_text, self.capacity)
        else:
            ns = self.timing.multipass_run_ns(n_text, self.capacity, pattern_len)
        return int(math.ceil(ns / self.beat_ns))

    def transfer_chars(self, pattern_len: int, n_text: int) -> int:
        """Bus characters one job moves: pattern and text interleave (two
        stream characters per text character, Section 3.2.1) plus the
        result bits coming back; multipass re-streams everything per run."""
        if n_text == 0:
            return 0
        runs = 1
        if pattern_len > self.capacity:
            runs = max(1, runs_required(pattern_len, n_text, self.capacity))
        return runs * 3 * n_text

    def __repr__(self) -> str:
        tag = self.state.value
        if self.is_degraded:
            tag += ", degraded"
        return (
            f"PoolWorker({self.name!r}, {self.capacity}/{self.nominal_capacity} "
            f"cells, {tag})"
        )


class DevicePool:
    """The farm's set of workers, all sharing one alphabet."""

    def __init__(self, workers: Sequence[PoolWorker]):
        workers = list(workers)
        if not workers:
            raise ServiceError("a device pool needs at least one worker")
        alphabets = {w.alphabet for w in workers}
        if len(alphabets) != 1:
            raise ServiceError("all pool workers must share one alphabet")
        names = [w.name for w in workers]
        if len(set(names)) != len(names):
            raise ServiceError("pool worker names must be distinct")
        self.workers = workers
        self.alphabet = workers[0].alphabet

    def __len__(self) -> int:
        return len(self.workers)

    def __iter__(self):
        return iter(self.workers)

    def worker(self, name: str) -> PoolWorker:
        for w in self.workers:
            if w.name == name:
                return w
        raise ServiceError(f"no worker named {name!r}")

    def live_workers(self) -> List[PoolWorker]:
        return [w for w in self.workers if w.is_live]

    def idle_workers(self) -> List[PoolWorker]:
        return [w for w in self.workers if w.state is WorkerState.IDLE]

    def quarantined_workers(self) -> List[PoolWorker]:
        return [
            w for w in self.workers if w.state is WorkerState.QUARANTINED
        ]

    def add_worker(self, worker: PoolWorker) -> PoolWorker:
        """Admit a freshly provisioned worker (the healing path)."""
        if worker.alphabet != self.alphabet:
            raise ServiceError(
                "replacement worker must share the pool's alphabet"
            )
        if any(w.name == worker.name for w in self.workers):
            raise ServiceError(
                f"pool already has a worker named {worker.name!r}"
            )
        self.workers.append(worker)
        return worker

    @property
    def n_live(self) -> int:
        return len(self.live_workers())

    @property
    def total_capacity(self) -> int:
        return sum(w.capacity for w in self.live_workers())


def uniform_pool(
    n_workers: int, spec: ChipSpec, alphabet: Alphabet
) -> DevicePool:
    """*n* identical single-chip workers (the catalogue-order farm)."""
    if n_workers <= 0:
        raise ServiceError("pool needs at least one worker")
    return DevicePool(
        [
            PoolWorker.from_chip(f"chip-{i}", PatternMatchingChip(spec, alphabet))
            for i in range(n_workers)
        ]
    )


def cascade_pool(
    n_workers: int, spec: ChipSpec, n_chips: int, alphabet: Alphabet
) -> DevicePool:
    """*n* workers, each a Figure 3-7 cascade of ``n_chips`` chips."""
    if n_workers <= 0:
        raise ServiceError("pool needs at least one worker")
    return DevicePool(
        [
            PoolWorker.from_cascade(
                f"cascade-{i}", ChipCascade(spec, n_chips, alphabet)
            )
            for i in range(n_workers)
        ]
    )


def pool_from_wafers(
    wafers: Sequence[Wafer],
    alphabet: Alphabet,
    beat_ns: float = 250.0,
    max_bypass_run: int = 4,
) -> DevicePool:
    """One worker per wafer, harvested around defects.

    Wafers whose defect runs exceed the bypass budget become dead
    workers; partially defective wafers become degraded workers.  The
    pool is usable as long as one worker survives.
    """
    return DevicePool(
        [
            PoolWorker.from_wafer(
                f"wafer-{i}", w, alphabet, beat_ns, max_bypass_run
            )
            for i, w in enumerate(wafers)
        ]
    )
