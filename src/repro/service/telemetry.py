"""Farm observability: per-job and per-worker counters.

Everything the scheduler knows about its own behaviour -- queue depth
high-water marks, wait and service beats by priority class, per-worker
utilization, retries, deaths, fallbacks, bus occupancy -- accumulated as
plain counters and rendered through the same
:class:`repro.analysis.report.Table` the paper-figure benches use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..analysis.report import Table
from .scheduler import Priority


@dataclass
class WorkerStats:
    """Lifetime counters for one pool worker."""

    name: str
    capacity: int
    executions: int = 0
    busy_beats: float = 0.0
    stuck_events: int = 0
    died: bool = False

    def utilization(self, makespan_beats: float) -> float:
        if makespan_beats <= 0:
            return 0.0
        return min(1.0, self.busy_beats / makespan_beats)


@dataclass
class ClassStats:
    """Latency accounting for one priority class."""

    jobs: int = 0
    total_wait_beats: float = 0.0
    total_service_beats: float = 0.0

    @property
    def mean_wait_beats(self) -> float:
        return self.total_wait_beats / self.jobs if self.jobs else 0.0

    @property
    def mean_service_beats(self) -> float:
        return self.total_service_beats / self.jobs if self.jobs else 0.0


@dataclass
class ServiceTelemetry:
    """The farm's aggregate counters."""

    submitted: int = 0
    completed: int = 0
    retries: int = 0
    deaths: int = 0
    stuck_events: int = 0
    fallbacks: int = 0
    backpressure_hits: int = 0
    text_chars_served: int = 0
    bus_busy_beats: float = 0.0
    bus_chars_moved: int = 0
    makespan_beats: float = 0.0
    queue_high_water: Dict[Priority, int] = field(default_factory=dict)
    by_class: Dict[Priority, ClassStats] = field(
        default_factory=lambda: {p: ClassStats() for p in Priority}
    )
    workers: Dict[str, WorkerStats] = field(default_factory=dict)

    # -- accumulation hooks (called by the service) -----------------------

    def worker_stats(self, name: str, capacity: int) -> WorkerStats:
        if name not in self.workers:
            self.workers[name] = WorkerStats(name=name, capacity=capacity)
        return self.workers[name]

    def record_job(
        self, priority: Priority, wait_beats: float, service_beats: float
    ) -> None:
        cls = self.by_class.setdefault(priority, ClassStats())
        cls.jobs += 1
        cls.total_wait_beats += wait_beats
        cls.total_service_beats += service_beats

    # -- derived ----------------------------------------------------------

    def aggregate_chars_per_s(self, beat_ns: float) -> float:
        """Text characters served per second of simulated time."""
        if self.makespan_beats <= 0:
            return 0.0
        return self.text_chars_served / (self.makespan_beats * beat_ns * 1e-9)

    def bus_utilization(self) -> float:
        if self.makespan_beats <= 0:
            return 0.0
        return min(1.0, self.bus_busy_beats / self.makespan_beats)

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        """A bench-style report: farm summary, class latencies, workers."""
        summary = Table(["metric", "value"], title="matcher farm")
        for name, value in [
            ("jobs submitted", self.submitted),
            ("jobs completed", self.completed),
            ("retries", self.retries),
            ("worker deaths", self.deaths),
            ("stuck-beat events", self.stuck_events),
            ("software fallbacks", self.fallbacks),
            ("backpressure hits", self.backpressure_hits),
            ("text chars served", self.text_chars_served),
            ("makespan beats", self.makespan_beats),
            ("bus utilization", self.bus_utilization()),
        ]:
            summary.row([name, value])

        classes = Table(
            ["class", "jobs", "mean wait beats", "mean service beats",
             "queue high-water"],
            title="priority classes",
        )
        for p in sorted(self.by_class):
            cls = self.by_class[p]
            classes.row(
                [
                    p.name.lower(),
                    cls.jobs,
                    cls.mean_wait_beats,
                    cls.mean_service_beats,
                    self.queue_high_water.get(p, 0),
                ]
            )

        workers = Table(
            ["worker", "cells", "executions", "busy beats", "utilization",
             "stuck", "state"],
            title="workers",
        )
        for name in sorted(self.workers):
            w = self.workers[name]
            workers.row(
                [
                    w.name,
                    w.capacity,
                    w.executions,
                    w.busy_beats,
                    w.utilization(self.makespan_beats),
                    w.stuck_events,
                    "dead" if w.died else "alive",
                ]
            )
        return "\n\n".join(t.render() for t in (summary, classes, workers))
