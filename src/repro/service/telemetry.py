"""Farm observability: per-job and per-worker counters.

Everything the scheduler knows about its own behaviour -- queue depth
high-water marks, wait and service beats by priority class, per-worker
utilization, retries, deaths, fallbacks, bus occupancy -- published into
a :class:`~repro.obs.metrics.MetricsRegistry` under stable dotted names
(``service.worker.busy_beats{worker=...}`` and friends) and rendered
through the same :class:`repro.analysis.report.Table` the paper-figure
benches use.

The attribute API predating the registry (``telemetry.submitted``,
``worker.busy_beats``...) is preserved as thin property views over the
registered metrics, so existing callers and tests read the same numbers
the trace tooling exports.

Worker busy time is accounted through :meth:`WorkerStats.record_busy`,
which clips overlapping intervals against a per-worker high-water mark:
however executions land (including a death being charged while the
retry is already being reassigned), one worker can never accumulate
more busy beats than wall-clock, so utilization stays <= 1.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.report import Table, kv_table
from ..obs.metrics import MetricsRegistry
from .scheduler import Priority


class WorkerStats:
    """Lifetime counters for one pool worker (a registry view)."""

    __slots__ = (
        "name", "capacity", "_executions", "_busy", "_stuck", "_died",
        "_busy_until",
    )

    def __init__(self, registry: MetricsRegistry, name: str, capacity: int):
        self.name = name
        self.capacity = capacity
        self._executions = registry.counter(
            "service.worker.executions", worker=name
        )
        self._busy = registry.counter("service.worker.busy_beats", worker=name)
        self._stuck = registry.counter(
            "service.worker.stuck_events", worker=name
        )
        self._died = registry.gauge("service.worker.died", worker=name)
        # High-water mark of accounted busy time: record_busy clips
        # against it so overlapping executions count once.
        self._busy_until = 0.0

    # -- the pre-registry attribute API (thin views) ----------------------

    @property
    def executions(self) -> int:
        return int(self._executions.value)

    @executions.setter
    def executions(self, v: int) -> None:
        self._executions.value = float(v)

    @property
    def busy_beats(self) -> float:
        return self._busy.value

    @busy_beats.setter
    def busy_beats(self, v: float) -> None:
        self._busy.value = float(v)

    @property
    def stuck_events(self) -> int:
        return int(self._stuck.value)

    @stuck_events.setter
    def stuck_events(self, v: int) -> None:
        self._stuck.value = float(v)

    @property
    def died(self) -> bool:
        return bool(self._died.value)

    @died.setter
    def died(self, v: bool) -> None:
        self._died.set(1.0 if v else 0.0)

    # -- accounting --------------------------------------------------------

    def record_busy(self, start_beat: float, finish_beat: float) -> float:
        """Charge one execution's interval, clipped against time already
        accounted to this worker; returns the beats actually charged."""
        start = max(start_beat, self._busy_until)
        charged = max(0.0, finish_beat - start)
        if charged > 0:
            self._busy.inc(charged)
        if finish_beat > self._busy_until:
            self._busy_until = finish_beat
        return charged

    def utilization(self, makespan_beats: float) -> float:
        if makespan_beats <= 0:
            return 0.0
        return min(1.0, self.busy_beats / makespan_beats)

    def __repr__(self) -> str:
        return (
            f"WorkerStats({self.name!r}, executions={self.executions}, "
            f"busy_beats={self.busy_beats})"
        )


class ClassStats:
    """Latency accounting for one priority class (a registry view)."""

    __slots__ = ("_jobs", "_wait", "_service")

    def __init__(self, registry: MetricsRegistry, priority: Priority):
        cls = priority.name
        self._jobs = registry.counter("service.class.jobs", cls=cls)
        self._wait = registry.counter("service.class.wait_beats", cls=cls)
        self._service = registry.counter(
            "service.class.service_beats", cls=cls
        )

    @property
    def jobs(self) -> int:
        return int(self._jobs.value)

    @jobs.setter
    def jobs(self, v: int) -> None:
        self._jobs.value = float(v)

    @property
    def total_wait_beats(self) -> float:
        return self._wait.value

    @total_wait_beats.setter
    def total_wait_beats(self, v: float) -> None:
        self._wait.value = float(v)

    @property
    def total_service_beats(self) -> float:
        return self._service.value

    @total_service_beats.setter
    def total_service_beats(self, v: float) -> None:
        self._service.value = float(v)

    @property
    def mean_wait_beats(self) -> float:
        return self.total_wait_beats / self.jobs if self.jobs else 0.0

    @property
    def mean_service_beats(self) -> float:
        return self.total_service_beats / self.jobs if self.jobs else 0.0


class _Scalar:
    """Descriptor exposing one registry metric as a plain attribute."""

    __slots__ = ("attr", "cast")

    def __init__(self, attr: str, cast=float):
        self.attr = attr
        self.cast = cast

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return self.cast(getattr(obj, self.attr).value)

    def __set__(self, obj, value) -> None:
        getattr(obj, self.attr).value = float(value)


class ServiceTelemetry:
    """The farm's aggregate counters, backed by one metrics registry.

    Construct with the registry of the run's
    :class:`~repro.obs.Observability` to fold farm telemetry into the
    unified trace; standalone construction gets a private registry and
    behaves exactly like the pre-registry dataclass.
    """

    submitted = _Scalar("_submitted", int)
    completed = _Scalar("_completed", int)
    retries = _Scalar("_retries", int)
    deaths = _Scalar("_deaths", int)
    stuck_events = _Scalar("_stuck", int)
    fallbacks = _Scalar("_fallbacks", int)
    timeouts = _Scalar("_timeouts", int)
    backpressure_hits = _Scalar("_backpressure", int)
    batches = _Scalar("_batches", int)
    batched_jobs = _Scalar("_batched_jobs", int)
    deduped = _Scalar("_deduped", int)
    text_chars_served = _Scalar("_chars", int)
    bus_busy_beats = _Scalar("_bus_busy", float)
    bus_chars_moved = _Scalar("_bus_chars", int)
    makespan_beats = _Scalar("_makespan", float)
    bist_runs = _Scalar("_bist_runs", int)
    bist_failures = _Scalar("_bist_failures", int)
    quarantines = _Scalar("_quarantines", int)
    heals = _Scalar("_heals", int)

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self._submitted = r.counter("service.jobs.submitted")
        self._completed = r.counter("service.jobs.completed")
        self._retries = r.counter("service.retries")
        self._deaths = r.counter("service.worker_deaths")
        self._stuck = r.counter("service.stuck_events")
        self._fallbacks = r.counter("service.fallbacks")
        self._timeouts = r.counter("service.timeouts")
        self._backpressure = r.counter("service.backpressure_hits")
        self._batches = r.counter("service.batches")
        self._batched_jobs = r.counter("service.jobs.batched")
        self._deduped = r.counter("service.jobs.deduped")
        self._chars = r.counter("service.text_chars_served")
        self._bus_busy = r.gauge("service.bus.busy_beats")
        self._bus_chars = r.gauge("service.bus.chars_moved")
        self._makespan = r.gauge("service.makespan_beats")
        self._bist_runs = r.counter("service.health.bist_runs")
        self._bist_failures = r.counter("service.health.bist_failures")
        self._quarantines = r.counter("service.health.quarantines")
        self._heals = r.counter("service.health.heals")
        self._wait_hist = r.histogram("service.job.wait_beats")
        self._service_hist = r.histogram("service.job.service_beats")
        self._queue_high_water: Dict[Priority, int] = {}
        self.by_class: Dict[Priority, ClassStats] = {
            p: ClassStats(r, p) for p in Priority
        }
        self.workers: Dict[str, WorkerStats] = {}
        self._by_workload: Dict[str, tuple] = {}

    # -- accumulation hooks (called by the service) -----------------------

    @property
    def queue_high_water(self) -> Dict[Priority, int]:
        return self._queue_high_water

    @queue_high_water.setter
    def queue_high_water(self, value: Dict[Priority, int]) -> None:
        self._queue_high_water = dict(value)
        for p, depth in self._queue_high_water.items():
            self.registry.gauge(
                "service.queue.high_water", priority=p.name
            ).set(depth)

    def worker_stats(self, name: str, capacity: int) -> WorkerStats:
        if name not in self.workers:
            self.workers[name] = WorkerStats(self.registry, name, capacity)
        return self.workers[name]

    def record_job(
        self, priority: Priority, wait_beats: float, service_beats: float
    ) -> None:
        cls = self.by_class.get(priority)
        if cls is None:
            cls = self.by_class[priority] = ClassStats(self.registry, priority)
        cls.jobs += 1
        cls.total_wait_beats += wait_beats
        cls.total_service_beats += service_beats
        self._wait_hist.observe(wait_beats)
        self._service_hist.observe(service_beats)

    def record_workload(self, workload: str, n_outputs: int) -> None:
        """Count one completed job (and its output values) by workload."""
        pair = self._by_workload.get(workload)
        if pair is None:
            pair = self._by_workload[workload] = (
                self.registry.counter("service.jobs.by_workload",
                                      workload=workload),
                self.registry.counter("service.outputs.by_workload",
                                      workload=workload),
            )
        jobs, outputs = pair
        jobs.inc()
        outputs.inc(n_outputs)

    @property
    def by_workload(self) -> Dict[str, Dict[str, int]]:
        """``{workload: {"jobs": ..., "outputs": ...}}`` so far."""
        return {
            name: {"jobs": int(j.value), "outputs": int(o.value)}
            for name, (j, o) in sorted(self._by_workload.items())
        }

    # -- derived ----------------------------------------------------------

    def aggregate_chars_per_s(self, beat_ns: float) -> float:
        """Text characters served per second of simulated time."""
        if self.makespan_beats <= 0:
            return 0.0
        return self.text_chars_served / (self.makespan_beats * beat_ns * 1e-9)

    def bus_utilization(self) -> float:
        if self.makespan_beats <= 0:
            return 0.0
        return min(1.0, self.bus_busy_beats / self.makespan_beats)

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        """A bench-style report: farm summary, class latencies, workers."""
        summary = kv_table(
            "matcher farm",
            {
                "jobs submitted": self.submitted,
                "jobs completed": self.completed,
                "retries": self.retries,
                "worker deaths": self.deaths,
                "stuck-beat events": self.stuck_events,
                "software fallbacks": self.fallbacks,
                "deadline timeouts": self.timeouts,
                "backpressure hits": self.backpressure_hits,
                "batched executions": self.batches,
                "jobs served batched": self.batched_jobs,
                "jobs deduplicated": self.deduped,
                "text chars served": self.text_chars_served,
                "makespan beats": self.makespan_beats,
                "bus utilization": self.bus_utilization(),
                "bist runs": self.bist_runs,
                "bist failures": self.bist_failures,
                "quarantines": self.quarantines,
                "heals": self.heals,
            },
        )

        classes = Table(
            ["class", "jobs", "mean wait beats", "mean service beats",
             "queue high-water"],
            title="priority classes",
        )
        for p in sorted(self.by_class):
            cls = self.by_class[p]
            classes.row(
                [
                    p.name.lower(),
                    cls.jobs,
                    cls.mean_wait_beats,
                    cls.mean_service_beats,
                    self.queue_high_water.get(p, 0),
                ]
            )

        tables = [summary, classes]
        if self._by_workload:
            workloads = Table(
                ["workload", "jobs", "output values"], title="workloads"
            )
            for name, stats in self.by_workload.items():
                workloads.row([name, stats["jobs"], stats["outputs"]])
            tables.append(workloads)

        workers = Table(
            ["worker", "cells", "executions", "busy beats", "utilization",
             "stuck", "state"],
            title="workers",
        )
        for name in sorted(self.workers):
            w = self.workers[name]
            workers.row(
                [
                    w.name,
                    w.capacity,
                    w.executions,
                    w.busy_beats,
                    w.utilization(self.makespan_beats),
                    w.stuck_events,
                    "dead" if w.died else "alive",
                ]
            )
        tables.append(workers)
        return "\n\n".join(t.render() for t in tables)
