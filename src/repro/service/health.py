"""Fleet health: background BIST, quarantine, yield-to-capacity healing.

The paper's Section 5 deployment story has three implicit maintenance
obligations: *find* the chip that has gone bad (built-in self-test at
the gate level, :mod:`repro.bist`), *stop scheduling onto it*
(quarantine), and *replace it from the fab line* (re-provisioning from
the :mod:`repro.wafer` harvest model).  :class:`FleetHealth` is that
loop for the synchronous farm's :class:`~repro.service.pool.DevicePool`:

1. **detect** -- every idle worker is probed with a full gate-level
   self-test (LFSR stimulus, MISR signature, Elmore timing closure) on
   a representative matcher array carrying the worker's latent defect,
   if the fault injector has grown one;
2. **quarantine** -- a failing worker is moved to
   :attr:`~repro.service.pool.WorkerState.QUARANTINED`, leaves dispatch
   immediately (``is_live`` is false), and the failure is recorded with
   the BIST diagnosis (which cell, which kind) in an
   ``health.quarantine`` span;
3. **heal** -- replacements are harvested from a
   :class:`~repro.wafer.provision.WaferSupply` until the live-worker
   count is back to the sweep's baseline; each candidate passes an
   incoming self-test before it is admitted.  An exhausted supply
   raises :class:`~repro.errors.ProvisionError` -- a clean, catchable
   signal, never a hang.

Determinism: the latent-defect stream comes from the fault injector's
dedicated defect RNG and the wafer lot from the supply's seed, so a
soak with the same seeds sees the same deaths, the same diagnoses, and
the same replacement fleet on every run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from typing import TYPE_CHECKING

from ..errors import ProvisionError
from ..wafer.provision import WaferSupply
from .pool import DevicePool, PoolWorker
from .reliability import FaultInjector
from .telemetry import ServiceTelemetry

if TYPE_CHECKING:  # pragma: no cover
    from ..bist.controller import BISTReport


@dataclass(frozen=True)
class HealthConfig:
    """Knobs of the background self-test loop.

    The probe array is deliberately small (``bist_m`` x ``bist_w``): the
    point of a health probe is the verdict, and a 2x2 array already
    exercises every cell circuit type (both polarity twins, both clock
    phases, the accumulator column).  ``vectors`` trades escape rate for
    probe latency; the defaults hold the measured per-probe cost to
    milliseconds once the golden signature is cached.
    """

    bist_m: int = 2
    bist_w: int = 2
    vectors: int = 12
    seed: int = 0b1011
    characterize: bool = True
    beat_ns: float = 250.0
    min_capacity: int = 1
    max_provision_attempts: int = 8
    verify_replacements: bool = True


@dataclass(frozen=True)
class HealthEvent:
    """One action the health loop took (the sweep's audit trail)."""

    worker: str
    action: str  # "quarantine" | "heal"
    cell: str = ""
    detail: str = ""


class FleetHealth:
    """The detect / quarantine / heal loop over one device pool."""

    def __init__(
        self,
        pool: DevicePool,
        supply: Optional[WaferSupply] = None,
        injector: Optional[FaultInjector] = None,
        config: Optional[HealthConfig] = None,
        telemetry: Optional[ServiceTelemetry] = None,
        obs=None,
    ):
        self.pool = pool
        self.supply = supply
        self.injector = injector
        self.config = config or HealthConfig()
        self.telemetry = telemetry
        self.obs = obs
        cfg = self.config
        # Imported here, not at module top: repro.bist models defects
        # with this package's CellDefect, so a module-level import in
        # both directions would be circular.
        from ..bist.controller import BISTController

        self.controller = BISTController(
            m=cfg.bist_m,
            w=cfg.bist_w,
            vectors=cfg.vectors,
            seed=cfg.seed,
            characterize=cfg.characterize,
        )
        self.events: List[HealthEvent] = []
        self._heal_seq = 0
        #: The fleet size healing restores: the live count at the time
        #: the loop was attached.  Quarantines *and* execution deaths
        #: both erode ``pool.n_live``; healing replaces either.
        self.target_live = pool.n_live

    # -- detect ------------------------------------------------------------

    def probe(self, worker: PoolWorker) -> BISTReport:
        """Self-test one worker (against its latent defect, if any)."""
        report = self.controller.run(
            defect=worker.latent_defect, chip_name=worker.name, obs=self.obs
        )
        if self.telemetry is not None:
            self.telemetry.bist_runs += 1
            if not report.ok:
                self.telemetry.bist_failures += 1
        return report

    # -- quarantine --------------------------------------------------------

    def quarantine(
        self, worker: PoolWorker, report: Optional[BISTReport] = None
    ) -> HealthEvent:
        """Drain *worker* out of dispatch and log why."""
        worker.quarantine()
        cell = detail = ""
        if report is not None and report.diagnosis is not None:
            d = report.diagnosis
            cell = d.cell
            detail = f"{d.node or d.cell}: got {d.got}, want {d.want}"
        if self.telemetry is not None:
            self.telemetry.quarantines += 1
        if self.obs is not None:
            self.obs.tracer.record(
                "health.quarantine", t0=0.0, t1=0.0, unit="beats",
                worker=worker.name, cell=cell,
                defect=(
                    worker.latent_defect.describe()
                    if worker.latent_defect is not None else ""
                ),
            )
            self.obs.registry.counter(
                "health.quarantines", worker=worker.name
            ).inc()
        event = HealthEvent(worker.name, "quarantine", cell=cell,
                            detail=detail)
        self.events.append(event)
        return event

    # -- heal --------------------------------------------------------------

    def _next_heal_name(self) -> str:
        names = {w.name for w in self.pool.workers}
        while True:
            self._heal_seq += 1
            name = f"heal-{self._heal_seq}"
            if name not in names:
                return name

    def heal_one(self) -> PoolWorker:
        """Provision one replacement worker from the wafer supply.

        Draws wafers until one harvests at least ``min_capacity`` cells
        *and* passes its incoming self-test; raises
        :class:`~repro.errors.ProvisionError` when the supply runs dry
        or ``max_provision_attempts`` candidates all fail.
        """
        if self.supply is None:
            raise ProvisionError("no wafer supply to heal from")
        cfg = self.config
        rejected = 0
        for _ in range(cfg.max_provision_attempts):
            wafer = self.supply.draw()  # ProvisionError when exhausted
            name = self._next_heal_name()
            worker = PoolWorker.from_wafer(
                name, wafer, self.pool.alphabet, beat_ns=cfg.beat_ns
            )
            if worker.capacity < cfg.min_capacity:
                rejected += 1
                continue
            if cfg.verify_replacements and not self.probe(worker).ok:
                rejected += 1
                continue
            self.pool.add_worker(worker)
            if self.telemetry is not None:
                self.telemetry.heals += 1
            if self.obs is not None:
                self.obs.registry.counter(
                    "health.heals", worker=worker.name
                ).inc()
            event = HealthEvent(
                worker.name, "heal",
                detail=f"{worker.capacity}/{worker.nominal_capacity} cells",
            )
            self.events.append(event)
            return worker
        raise ProvisionError(
            f"no provisionable wafer in {rejected} candidates "
            f"(min capacity {cfg.min_capacity}, "
            f"{self.supply.remaining} wafers left)"
        )

    def heal_to_capacity(self, target_live: int) -> List[PoolWorker]:
        """Add replacements until ``pool.n_live`` reaches *target_live*."""
        added: List[PoolWorker] = []
        while self.pool.n_live < target_live:
            added.append(self.heal_one())
        return added

    # -- the loop ----------------------------------------------------------

    def sweep(
        self, heal: bool = True, target_live: Optional[int] = None
    ) -> List[HealthEvent]:
        """One background pass: probe every idle worker, quarantine the
        failures, and (optionally) heal back up to *target_live* (the
        fleet's original size by default -- execution deaths are healed
        too, not just quarantines).  Returns this sweep's actions."""
        target = self.target_live if target_live is None else target_live
        before = len(self.events)
        for worker in self.pool.idle_workers():
            if (
                self.injector is not None
                and worker.latent_defect is None
            ):
                defect = self.injector.sample_defect(
                    self.config.bist_m, self.config.bist_w
                )
                if defect is not None:
                    worker.seed_defect(defect)
            report = self.probe(worker)
            if not report.ok:
                self.quarantine(worker, report)
        if heal and self.supply is not None:
            self.heal_to_capacity(target)
        return self.events[before:]
