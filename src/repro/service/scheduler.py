"""Bounded queues, priority classes, the beat clock, and the shared bus.

The decomposition follows the CSP shape: explicit producer (tenants),
bounded channels (one :class:`BoundedQueue` per priority class), and
consumer processes (the pool workers), with backpressure surfacing as
:class:`~repro.errors.BackpressureError` when a channel is full.  Time is
a simulated beat counter -- the same beat the chip's 250 ns clock ticks
-- so queueing delay, service time, and bus occupancy all share one unit
and reconcile against :class:`repro.timing.model.TimingModel`.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from enum import IntEnum
from typing import Deque, Dict, List, Optional

from ..errors import BackpressureError, ServiceError
from ..host.bus import HostSpec


class Priority(IntEnum):
    """Service classes; lower value is served first."""

    INTERACTIVE = 0
    BATCH = 1


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of the farm scheduler.

    ``queue_capacity``: bound of each priority-class channel (CSP buffer
    size); submissions beyond it hit backpressure.
    ``max_retries``: attempts per execution before the job degrades to
    the software fallback.
    ``wide_text_threshold``: texts at least this long are sharded across
    idle workers when enough of them can hold the pattern.
    ``max_shards`` / ``min_shard_chars``: shard fan-out bounds.
    ``degrade_when_saturated``: on backpressure, run the job on the host
    CPU (software baseline) instead of raising.
    ``max_batch_jobs``: how many compatible ``submit_many`` jobs one
    batch plan may coalesce into a single worker execution; narrow texts
    sharing one pattern ride together up to this bound (wide texts keep
    their own shard plans).
    """

    queue_capacity: int = 64
    max_retries: int = 2
    wide_text_threshold: int = 512
    max_shards: int = 4
    min_shard_chars: int = 64
    degrade_when_saturated: bool = True
    max_batch_jobs: int = 32

    def __post_init__(self):
        if self.queue_capacity <= 0:
            raise ServiceError("queue capacity must be positive")
        if self.max_retries < 0:
            raise ServiceError("max_retries cannot be negative")
        if self.max_shards <= 0:
            raise ServiceError("max_shards must be positive")
        if self.min_shard_chars <= 0:
            raise ServiceError("min_shard_chars must be positive")
        if self.max_batch_jobs <= 0:
            raise ServiceError("max_batch_jobs must be positive")


class BeatClock:
    """Monotonic simulated time, in beats (fractions allowed: the bus
    moves characters at memory-cycle granularity, not beat granularity)."""

    def __init__(self):
        self.now: float = 0.0

    def advance_to(self, beat: float) -> None:
        if beat < self.now:
            raise ServiceError(
                f"clock cannot run backwards ({beat} < {self.now})"
            )
        self.now = beat


class BoundedQueue:
    """A bounded FIFO channel, fair across tenants.

    Jobs from different tenants interleave round-robin; within one tenant
    order is FIFO.  ``put`` raises :class:`BackpressureError` at
    capacity -- the CSP "blocked sender", surfaced as an exception
    because the simulation has no real concurrency to suspend.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ServiceError("queue capacity must be positive")
        self.capacity = capacity
        self._by_tenant: "OrderedDict[str, Deque[object]]" = OrderedDict()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def is_full(self) -> bool:
        return self._size >= self.capacity

    def put(self, tenant: str, job: object, force: bool = False) -> None:
        """Enqueue at the tail; ``force`` bypasses the bound (used for
        retries, which were already admitted once)."""
        if self.is_full and not force:
            raise BackpressureError(
                f"queue full ({self.capacity} jobs); backpressure"
            )
        self._by_tenant.setdefault(tenant, deque()).append(job)
        self._size += 1

    def put_front(self, tenant: str, job: object) -> None:
        """Requeue at the head of the tenant's lane (retry path)."""
        self._by_tenant.setdefault(tenant, deque()).appendleft(job)
        self._size += 1

    def pop(self) -> Optional[object]:
        """Dequeue round-robin across tenants; None when empty."""
        while self._by_tenant:
            tenant, lane = next(iter(self._by_tenant.items()))
            if not lane:
                del self._by_tenant[tenant]
                continue
            job = lane.popleft()
            # Rotate the tenant to the back so the next pop serves the
            # next tenant -- round-robin fairness.
            self._by_tenant.move_to_end(tenant)
            if not lane:
                del self._by_tenant[tenant]
            self._size -= 1
            return job
        return None

    def tenants(self) -> List[str]:
        return [t for t, lane in self._by_tenant.items() if lane]


class JobQueues:
    """One bounded channel per priority class, drained in class order."""

    def __init__(self, config: SchedulerConfig):
        self.config = config
        self.queues: Dict[Priority, BoundedQueue] = {
            p: BoundedQueue(config.queue_capacity) for p in Priority
        }
        self.high_water: Dict[Priority, int] = {p: 0 for p in Priority}

    def put(
        self, priority: Priority, tenant: str, job: object, force: bool = False
    ) -> None:
        q = self.queues[priority]
        q.put(tenant, job, force=force)
        self.high_water[priority] = max(self.high_water[priority], len(q))

    def put_front(self, priority: Priority, tenant: str, job: object) -> None:
        q = self.queues[priority]
        q.put_front(tenant, job)
        self.high_water[priority] = max(self.high_water[priority], len(q))

    def pop(self) -> Optional[object]:
        for p in sorted(self.queues):
            job = self.queues[p].pop()
            if job is not None:
                return job
        return None

    def depth(self, priority: Optional[Priority] = None) -> int:
        if priority is not None:
            return len(self.queues[priority])
        return sum(len(q) for q in self.queues.values())

    def __len__(self) -> int:
        return self.depth()


class SharedBus:
    """The host's DMA channel, time-multiplexed across the whole farm.

    Per-character *occupancy* is the memory-side cost (one memory cycle
    moves ``bytes_per_word`` characters); the device-side pacing is
    already captured in each worker's service beats.  A job's stream
    reserves bus time serially, so aggregate farm throughput saturates at
    the host's memory bandwidth -- the paper's introduction, scaled up:
    one chip can outrun a 1979 memory, and a farm certainly does.
    """

    def __init__(self, host: Optional[HostSpec] = None, beat_ns: float = 250.0,
                 obs=None):
        if beat_ns <= 0:
            raise ServiceError("beat time must be positive")
        self.host = host or HostSpec()
        self.beat_ns = beat_ns
        per_char_ns = self.host.memory_cycle_ns / self.host.bytes_per_word
        self.per_char_beats = per_char_ns / beat_ns
        self.free_at: float = 0.0
        self.busy_beats: float = 0.0
        self.chars_moved: int = 0
        self.obs = None
        self._m_reservations = None
        self._h_wait = None
        if obs is not None:
            self.attach_obs(obs)

    def attach_obs(self, obs) -> None:
        """Attach/detach an Observability bundle: each reservation counts
        into ``bus.reservations`` and its queueing delay (beats spent
        waiting for the bus to free up) observes into ``bus.wait_beats``."""
        self.obs = obs
        if obs is None:
            self._m_reservations = self._h_wait = None
            return
        self._m_reservations = obs.registry.counter("bus.reservations")
        self._h_wait = obs.registry.histogram("bus.wait_beats")

    def eta(self, n_chars: int, now: float) -> float:
        """The beat at which an *n_chars* transfer starting no earlier
        than *now* would complete -- a pure peek, no reservation.  The
        service uses this to test a job against its deadline *before*
        committing worker and bus time to it."""
        if n_chars < 0:
            raise ServiceError("cannot transfer a negative number of characters")
        return max(self.free_at, now) + n_chars * self.per_char_beats

    def reserve(self, n_chars: int, now: float) -> float:
        """Claim bus time for *n_chars* starting no earlier than *now*;
        returns the beat at which the transfer completes."""
        if n_chars < 0:
            raise ServiceError("cannot transfer a negative number of characters")
        start = max(self.free_at, now)
        duration = n_chars * self.per_char_beats
        self.free_at = start + duration
        self.busy_beats += duration
        self.chars_moved += n_chars
        if self._m_reservations is not None:
            self._m_reservations.inc()
            self._h_wait.observe(start - now)
        return self.free_at

    def utilization(self, makespan_beats: float) -> float:
        if makespan_beats <= 0:
            return 0.0
        return min(1.0, self.busy_beats / makespan_beats)
